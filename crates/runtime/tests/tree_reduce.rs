//! Property tests for [`Runtime::tree_reduce`]: the reduction order is a
//! pure function of the buffer count — never of the pool size — so
//! replica-summed gradients are bitwise pinned (the data-parallel
//! determinism contract of the trainer).

use proptest::prelude::*;
use srmac_runtime::Runtime;

/// Deterministic pseudo-random f32 with a wide dynamic range, so partial
/// sums actually lose low-order bits and any reassociation shows up.
fn val(seed: u64, r: usize, i: usize) -> f32 {
    let mut z = seed
        ^ (r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let mag = ((z >> 8) % 17) as i32 - 8; // magnitudes 2^-8 .. 2^8
    let frac = (z & 0xFFFF) as f32 / 65536.0 + 0.5;
    let sign = if z & 0x100_0000 == 0 { 1.0 } else { -1.0 };
    sign * frac * (mag as f32).exp2()
}

/// The serial oracle: adjacent pairing with doubling strides, written
/// independently of the implementation.
fn tree_reference(bufs: &[Vec<f32>]) -> Vec<f32> {
    let mut work: Vec<Vec<f32>> = bufs.to_vec();
    let n = work.len();
    let mut stride = 1;
    while stride < n {
        let mut i = 0;
        while i + stride < n {
            let src = work[i + stride].clone();
            for (d, s) in work[i].iter_mut().zip(&src) {
                *d += *s;
            }
            i += 2 * stride;
        }
        stride *= 2;
    }
    work.into_iter().next().unwrap_or_default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For random buffer lengths and replica counts, every pool size
    /// produces the identical bit pattern — and it equals the fixed
    /// adjacent-pair tree computed by hand.
    #[test]
    fn order_is_fixed_for_every_pool_size(
        seed in any::<u64>(),
        count in 1usize..=9,
        len in 0usize..=257,
    ) {
        let bufs: Vec<Vec<f32>> = (0..count)
            .map(|r| (0..len).map(|i| val(seed, r, i)).collect())
            .collect();
        let want = tree_reference(&bufs);
        for threads in [1usize, 2, 3, 4, 8] {
            let rt = Runtime::new(threads);
            let mut work = bufs.clone();
            rt.tree_reduce(&mut work);
            let same = want
                .iter()
                .zip(&work[0])
                .all(|(a, b)| a.to_bits() == b.to_bits());
            prop_assert!(
                same,
                "count {} len {} threads {}: tree_reduce diverged from the pinned order",
                count, len, threads
            );
        }
    }
}

/// Hand-computed 3-replica witness: the tree order is `(b0 + b1) + b2`,
/// never `b0 + (b1 + b2)` — with values chosen so the two orders give
/// different f32 bits, this pins the association, not just the multiset
/// of addends.
#[test]
fn three_replica_association_witness() {
    // The classic absorption case at the f32 precision edge, b0 = 2^24,
    // b1 = b2 = 1.0:
    //   pinned:      (2^24 + 1) + 1 — each +1 is half an ulp and rounds
    //                back down (ties-to-even), so the result is 2^24;
    //   right-first: 2^24 + (1 + 1) = 2^24 + 2 = 16777218, representable.
    let two24 = 16_777_216.0f32;
    let rt = Runtime::serial();
    let mut bufs = vec![vec![two24], vec![1.0f32], vec![1.0f32]];
    rt.tree_reduce(&mut bufs);
    assert_eq!(bufs[0][0].to_bits(), two24.to_bits(), "pinned (b0+b1)+b2");
    let right_first = two24 + (1.0f32 + 1.0f32);
    assert_eq!(right_first, 16_777_218.0f32);
    assert_ne!(
        right_first.to_bits(),
        bufs[0][0].to_bits(),
        "witness must distinguish the association orders"
    );
}
