//! # srmac-runtime: the shared parallel runtime
//!
//! One persistent worker pool and two data-parallel fill primitives —
//! chunked ([`Runtime::parallel_fill`]) and 2D-tiled
//! ([`Runtime::parallel_fill_blocks`]) — shared by every layer of the
//! stack: the `MacGemm` accumulation loops in `srmac-qgemm` dispatch
//! tile rectangles through the blocked primitive, and the data-movement
//! kernels (`im2row`, `col2im`, the NCHW scatter/gathers, transposes,
//! batch assembly) in `srmac-tensor` / `srmac-models` dispatch item
//! chunks through the chunked one.
//!
//! # The `parallel_fill` determinism contract
//!
//! [`Runtime::parallel_fill`] partitions an output buffer into disjoint,
//! contiguous chunks of whole items and runs one job per chunk. The
//! contract every caller relies on (and every test asserts):
//!
//! - **Disjoint writes.** A job writes only its own chunk. No two chunks
//!   overlap, so there are no write races and no need for atomics.
//! - **Zeroed blocks.** Each chunk arrives zero-filled; a job either
//!   overwrites every element or accumulates into zeros. The serial path
//!   zero-fills the whole output first, so both paths start identically.
//! - **No reduction-order changes.** The runtime never splits an *item*
//!   across jobs and never reassociates arithmetic: whatever order a job
//!   uses to compute one item is the same order the serial path uses.
//!   Consequently results are **bitwise identical** for every thread
//!   count, including 1 — parallelism changes wall-clock time, never bits.
//!
//! [`Runtime::parallel_fill_blocks`] extends the same contract to 2D: the
//! tile grid is a pure function of the shape and the tile sizes, never of
//! the thread count, and an output element belongs to exactly one tile.
//! [`Runtime::parallel_fill_pair`] is the lock-step two-output variant
//! used by the optimizer, and [`Runtime::tree_reduce`] extends the
//! discipline to *reductions*: a binary tree over equal-length buffers
//! whose association order is a pure function of the buffer count —
//! never of the pool size — so a gradient sum over R replicas is bitwise
//! pinned. [`Runtime::run_jobs`] runs heterogeneous `'static` jobs and
//! hands their results back in job order (the trainer's replica seam);
//! all primitives detect calls from inside a pool worker and run inline
//! then, so nested dispatch can never deadlock the pool.
//!
//! # Workspace reuse
//!
//! Worker jobs must be `'static` (the pool outlives any one call), so
//! inputs are shared via `Arc` and each job fills a recycled scratch block
//! that the runtime copies into the caller's output. Scratch blocks live
//! in a free list on the runtime: after warm-up, a steady-state training
//! step performs no transient allocations inside the runtime. The
//! [`Workspace`] type gives callers the same property for their own
//! buffers: a persistently owned, cheaply sharable `Arc<Vec<f32>>` whose
//! exclusive view is recovered without copying once in-flight shares are
//! dropped.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod pool;

pub use pool::WorkerPool;

use std::ops::Range;
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex, OnceLock};

/// Number of worker threads to use by default (the machine's available
/// parallelism).
#[must_use]
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// A parallel execution context: an optional persistent [`WorkerPool`]
/// plus a free list of recycled scratch blocks.
///
/// A runtime with one thread has no pool at all; every dispatch runs
/// inline on the caller's thread with zero overhead. Results are bitwise
/// identical either way (see the module docs).
#[derive(Debug)]
pub struct Runtime {
    pool: Option<WorkerPool>,
    scratch: Mutex<Vec<Vec<f32>>>,
}

impl Runtime {
    /// Creates a runtime with `threads` workers (min 1; 1 means serial).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            pool: (threads > 1).then(|| WorkerPool::new(threads)),
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// A strictly serial runtime (no pool, inline execution).
    #[must_use]
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// The process-wide shared runtime, sized to [`available_threads`].
    /// Layers and models use this by default so the whole stack shares one
    /// pool instead of spawning one per layer.
    #[must_use]
    pub fn global() -> &'static Arc<Runtime> {
        static GLOBAL: OnceLock<Arc<Runtime>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(Runtime::new(available_threads())))
    }

    /// Worker count (1 for a serial runtime).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, WorkerPool::threads)
    }

    /// Fills `out` — logically `items` items of `item_len` elements each —
    /// by running `job(range, block)` over disjoint chunks of whole items.
    ///
    /// `out` is treated as fully overwritten: every element the job does
    /// not write ends up `0.0`. `grain` is the minimum number of items per
    /// chunk; work smaller than one grain (or a serial runtime) runs
    /// inline. See the module docs for the determinism contract.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != items * item_len` or if a worker job dies
    /// (a panicking job would otherwise silently corrupt the output).
    pub fn parallel_fill<F>(
        &self,
        items: usize,
        item_len: usize,
        grain: usize,
        out: &mut [f32],
        job: F,
    ) where
        F: Fn(Range<usize>, &mut [f32]) + Send + Sync + 'static,
    {
        assert_eq!(out.len(), items * item_len, "out must be items * item_len");
        let threads = self.threads();
        let chunk = items.div_ceil(threads).max(grain.max(1));
        if threads == 1 || chunk >= items || pool::in_worker() {
            out.fill(0.0);
            if items > 0 {
                job(0..items, out);
            }
            return;
        }
        let pool = self.pool.as_ref().expect("threads > 1 implies a pool"); // PANIC-OK: threads > 1 implies new() built the pool.
        let jobs = items.div_ceil(chunk);
        let job = Arc::new(job);
        let (tx, rx) = channel::<(usize, Vec<f32>)>();
        for ci in 0..jobs {
            let start = ci * chunk;
            let end = (start + chunk).min(items);
            let mut block = self
                .scratch
                .lock()
                .expect("scratch poisoned") // PANIC-OK: a poisoned stash means a worker already panicked — propagate the abort.
                .pop()
                .unwrap_or_default();
            let job = Arc::clone(&job);
            let tx = tx.clone();
            pool.execute(Box::new(move || {
                block.clear();
                block.resize((end - start) * item_len, 0.0);
                job(start..end, &mut block);
                let _ = tx.send((ci, block));
            }));
        }
        drop(tx);
        let mut completed = 0usize;
        for (ci, block) in rx.iter().take(jobs) {
            out[ci * chunk * item_len..ci * chunk * item_len + block.len()].copy_from_slice(&block);
            self.recycle(block);
            completed += 1;
        }
        // A job that panics drops its sender without sending; returning a
        // partial result would silently corrupt downstream numerics.
        assert_eq!(
            completed, jobs,
            "a runtime worker job died before completing"
        );
    }

    /// Fills `out` — a row-major `rows x cols` matrix — by running
    /// `job(row_range, col_range, block)` over a fixed grid of disjoint
    /// rectangles of `row_tile x col_tile` (edge tiles smaller). The
    /// block handed to the job is the rectangle in row-major order with
    /// stride `col_range.len()`; the runtime copies it back into `out`
    /// row segment by row segment.
    ///
    /// This is the 2D counterpart of [`Runtime::parallel_fill`] with the
    /// same determinism contract: the grid is a pure function of
    /// `(rows, cols, row_tile, col_tile)` — **never** of the thread
    /// count — and no output element is ever split across jobs, so
    /// results are bitwise identical for every thread count. A serial
    /// runtime (or a single-tile grid) runs the job inline over the
    /// whole matrix.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != rows * cols` or if a worker job dies.
    pub fn parallel_fill_blocks<F>(
        &self,
        rows: usize,
        cols: usize,
        row_tile: usize,
        col_tile: usize,
        out: &mut [f32],
        job: F,
    ) where
        F: Fn(Range<usize>, Range<usize>, &mut [f32]) + Send + Sync + 'static,
    {
        assert_eq!(out.len(), rows * cols, "out must be rows * cols");
        if rows == 0 || cols == 0 {
            return;
        }
        let rt = row_tile.max(1);
        let ct = col_tile.max(1);
        let row_jobs = rows.div_ceil(rt);
        let col_jobs = cols.div_ceil(ct);
        let threads = self.threads();
        if threads == 1 || row_jobs * col_jobs <= 1 || pool::in_worker() {
            out.fill(0.0);
            job(0..rows, 0..cols, out);
            return;
        }
        let pool = self.pool.as_ref().expect("threads > 1 implies a pool"); // PANIC-OK: threads > 1 implies new() built the pool.
        let jobs = row_jobs * col_jobs;
        let job = Arc::new(job);
        let (tx, rx) = channel::<(usize, Vec<f32>)>();
        for ji in 0..jobs {
            let (jr, jc) = (ji / col_jobs, ji % col_jobs);
            let r0 = jr * rt;
            let r1 = (r0 + rt).min(rows);
            let c0 = jc * ct;
            let c1 = (c0 + ct).min(cols);
            let mut block = self
                .scratch
                .lock()
                .expect("scratch poisoned") // PANIC-OK: poisoned stash — propagate the abort.
                .pop()
                .unwrap_or_default();
            let job = Arc::clone(&job);
            let tx = tx.clone();
            pool.execute(Box::new(move || {
                block.clear();
                block.resize((r1 - r0) * (c1 - c0), 0.0);
                job(r0..r1, c0..c1, &mut block);
                let _ = tx.send((ji, block));
            }));
        }
        drop(tx);
        let mut completed = 0usize;
        for (ji, block) in rx.iter().take(jobs) {
            let (jr, jc) = (ji / col_jobs, ji % col_jobs);
            let r0 = jr * rt;
            let c0 = jc * ct;
            let w = (c0 + ct).min(cols) - c0;
            for (bi, brow) in block.chunks_exact(w).enumerate() {
                let dst = (r0 + bi) * cols + c0;
                out[dst..dst + w].copy_from_slice(brow);
            }
            self.recycle(block);
            completed += 1;
        }
        // Same loud-failure rule as parallel_fill: a partial result would
        // silently corrupt downstream numerics.
        assert_eq!(
            completed, jobs,
            "a runtime worker job died before completing"
        );
    }

    /// Fills two parallel outputs — each logically `items` scalar elements
    /// — by running `job(range, block_a, block_b)` over disjoint chunks.
    /// The two blocks handed to a job cover the *same* item range of the
    /// two outputs, which is exactly the shape of an optimizer update
    /// (velocity and weight written in lock-step from shared inputs).
    ///
    /// Same determinism contract as [`Runtime::parallel_fill`]: disjoint
    /// whole-item chunks, zeroed blocks, no reassociation — bitwise
    /// identical results at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `out_a.len() != items`, `out_b.len() != items`, or a
    /// worker job dies.
    pub fn parallel_fill_pair<F>(
        &self,
        items: usize,
        grain: usize,
        out_a: &mut [f32],
        out_b: &mut [f32],
        job: F,
    ) where
        F: Fn(Range<usize>, &mut [f32], &mut [f32]) + Send + Sync + 'static,
    {
        assert_eq!(out_a.len(), items, "out_a must hold items elements");
        assert_eq!(out_b.len(), items, "out_b must hold items elements");
        let threads = self.threads();
        let chunk = items.div_ceil(threads).max(grain.max(1));
        if threads == 1 || chunk >= items || pool::in_worker() {
            out_a.fill(0.0);
            out_b.fill(0.0);
            if items > 0 {
                job(0..items, out_a, out_b);
            }
            return;
        }
        let pool = self.pool.as_ref().expect("threads > 1 implies a pool"); // PANIC-OK: threads > 1 implies new() built the pool.
        let jobs = items.div_ceil(chunk);
        let job = Arc::new(job);
        let (tx, rx) = channel::<(usize, Vec<f32>, Vec<f32>)>();
        for ci in 0..jobs {
            let start = ci * chunk;
            let end = (start + chunk).min(items);
            let (mut block_a, mut block_b) = {
                let mut stash = self.scratch.lock().expect("scratch poisoned"); // PANIC-OK: poisoned stash — propagate the abort.
                (
                    stash.pop().unwrap_or_default(),
                    stash.pop().unwrap_or_default(),
                )
            };
            let job = Arc::clone(&job);
            let tx = tx.clone();
            pool.execute(Box::new(move || {
                block_a.clear();
                block_a.resize(end - start, 0.0);
                block_b.clear();
                block_b.resize(end - start, 0.0);
                job(start..end, &mut block_a, &mut block_b);
                let _ = tx.send((ci, block_a, block_b));
            }));
        }
        drop(tx);
        let mut completed = 0usize;
        for (ci, block_a, block_b) in rx.iter().take(jobs) {
            let dst = ci * chunk;
            out_a[dst..dst + block_a.len()].copy_from_slice(&block_a);
            out_b[dst..dst + block_b.len()].copy_from_slice(&block_b);
            self.recycle(block_a);
            self.recycle(block_b);
            completed += 1;
        }
        assert_eq!(
            completed, jobs,
            "a runtime worker job died before completing"
        );
    }

    /// Reduces `bufs` — equal-length `f32` buffers, one per replica —
    /// into `bufs[0]` by a **fixed binary tree**: level one adds buffer
    /// `i + 1` into buffer `i` for every even `i`, level two adds
    /// `i + 2` into `i` for every `i` divisible by 4, and so on with
    /// doubling strides. The reduction order is a pure function of
    /// `bufs.len()` — **never** of the pool size — in the same
    /// discipline as [`Runtime::parallel_fill`]: 3 buffers always reduce
    /// as `(b0 + b1) + b2` element-wise, 4 as `(b0 + b1) + (b2 + b3)`,
    /// so results are bitwise identical at every thread count.
    ///
    /// Within one level the pairs are disjoint and run concurrently on
    /// the pool; levels are barriers. On return `bufs[0]` holds the
    /// reduction; the other buffers are clobbered with intermediate
    /// partial sums.
    ///
    /// # Panics
    ///
    /// Panics if the buffers have unequal lengths or a worker job dies.
    pub fn tree_reduce(&self, bufs: &mut [Vec<f32>]) {
        fn add_into(dst: &mut [f32], src: &[f32]) {
            for (d, s) in dst.iter_mut().zip(src) {
                *d += *s;
            }
        }
        let n = bufs.len();
        if n <= 1 {
            return;
        }
        let len = bufs[0].len();
        for (i, b) in bufs.iter().enumerate() {
            assert_eq!(b.len(), len, "tree_reduce buffer {i} length mismatch");
        }
        let mut stride = 1;
        while stride < n {
            let pairs: Vec<usize> = (0..n)
                .step_by(2 * stride)
                .filter(|i| i + stride < n)
                .collect();
            if self.threads() == 1 || pairs.len() <= 1 || pool::in_worker() || len == 0 {
                for &i in &pairs {
                    let (left, right) = bufs.split_at_mut(i + stride);
                    add_into(&mut left[i], &right[0]);
                }
            } else {
                let pool = self.pool.as_ref().expect("threads > 1 implies a pool"); // PANIC-OK: threads > 1 implies new() built the pool.
                let (tx, rx) = channel::<(usize, Vec<f32>, Vec<f32>)>();
                for &i in &pairs {
                    let mut dst = std::mem::take(&mut bufs[i]);
                    let src = std::mem::take(&mut bufs[i + stride]);
                    let tx = tx.clone();
                    pool.execute(Box::new(move || {
                        add_into(&mut dst, &src);
                        let _ = tx.send((i, dst, src));
                    }));
                }
                drop(tx);
                let mut completed = 0usize;
                for (i, dst, src) in rx.iter().take(pairs.len()) {
                    bufs[i] = dst;
                    bufs[i + stride] = src;
                    completed += 1;
                }
                assert_eq!(
                    completed,
                    pairs.len(),
                    "a runtime worker job died before completing"
                );
            }
            stride *= 2;
        }
    }

    /// Runs independent `'static` closures on the pool and returns their
    /// results **in job order**. A serial runtime — or a call from inside
    /// a pool worker — runs them inline in order; provided each job is
    /// deterministic in isolation, results are identical either way
    /// (scheduling changes wall-clock time, never values).
    ///
    /// This is the replica-dispatch seam of the data-parallel trainer:
    /// each job owns its replica's model and returns that replica's
    /// flattened gradients and state.
    ///
    /// # Panics
    ///
    /// Panics if a worker job dies before returning a result.
    pub fn run_jobs<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = jobs.len();
        if self.threads() == 1 || n <= 1 || pool::in_worker() {
            return jobs.into_iter().map(|job| job()).collect();
        }
        let pool = self.pool.as_ref().expect("threads > 1 implies a pool"); // PANIC-OK: threads > 1 implies new() built the pool.
        let (tx, rx) = channel::<(usize, T)>();
        for (i, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            pool.execute(Box::new(move || {
                let out = job();
                let _ = tx.send((i, out));
            }));
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut completed = 0usize;
        for (i, out) in rx.iter().take(n) {
            slots[i] = Some(out);
            completed += 1;
        }
        assert_eq!(completed, n, "a runtime worker job died before completing");
        slots
            .into_iter()
            .map(|s| s.expect("every job completed")) // PANIC-OK: the pool ran every job; each slot was filled exactly once.
            .collect()
    }

    fn recycle(&self, block: Vec<f32>) {
        let mut stash = self.scratch.lock().expect("scratch poisoned"); // PANIC-OK: poisoned stash — propagate the abort.
                                                                        // Bound the free list by the only concurrency the pool can reach.
        if stash.len() < 2 * self.threads() {
            stash.push(block);
        }
    }
}

/// A persistently owned, cheaply sharable `f32` buffer for layer
/// workspaces.
///
/// [`Workspace::share`] hands an `Arc` clone to `'static` runtime jobs;
/// [`Workspace::reset`] recovers the exclusive mutable view once those
/// shares are gone (which [`Runtime::parallel_fill`] guarantees by the
/// time it returns). If a stale share *is* still alive — e.g. a layer
/// cached it for a backward pass that has not run yet — `reset` clones
/// instead of corrupting it, so reuse is an optimization, never a
/// correctness hazard.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    buf: Arc<Vec<f32>>,
}

impl Workspace {
    /// Creates an empty workspace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears and resizes the buffer to `len` zeros, returning the
    /// exclusive mutable view. Reuses the existing allocation whenever no
    /// share is outstanding.
    pub fn reset(&mut self, len: usize) -> &mut Vec<f32> {
        let buf = Arc::make_mut(&mut self.buf);
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// A shared handle for `'static` runtime jobs.
    #[must_use]
    pub fn share(&self) -> Arc<Vec<f32>> {
        Arc::clone(&self.buf)
    }

    /// Read-only view of the current contents.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reference fill: the contract says parallel_fill(out) must equal
    /// zero-fill + job(0..items, out) bit for bit.
    fn serial_reference<F>(items: usize, item_len: usize, job: F) -> Vec<f32>
    where
        F: Fn(Range<usize>, &mut [f32]),
    {
        let mut out = vec![f32::NAN; items * item_len];
        out.fill(0.0);
        job(0..items, &mut out);
        out
    }

    fn gather_job(
        src: Arc<Vec<f32>>,
        item_len: usize,
    ) -> impl Fn(Range<usize>, &mut [f32]) + Send + Sync {
        move |range: Range<usize>, block: &mut [f32]| {
            for (bi, item) in range.clone().enumerate() {
                for j in 0..item_len {
                    // A non-trivial, item-dependent computation.
                    block[bi * item_len + j] = src[item * item_len + j] * 0.5 + (item as f32).sin();
                }
            }
        }
    }

    #[test]
    fn parallel_fill_is_bitwise_thread_invariant() {
        let (items, item_len) = (37, 13);
        let src = Arc::new(
            (0..items * item_len)
                .map(|i| i as f32 * 0.17 - 3.0)
                .collect::<Vec<_>>(),
        );
        let want = serial_reference(items, item_len, gather_job(Arc::clone(&src), item_len));
        for threads in 1..=8 {
            let rt = Runtime::new(threads);
            let mut out = vec![f32::NAN; items * item_len];
            rt.parallel_fill(
                items,
                item_len,
                1,
                &mut out,
                gather_job(Arc::clone(&src), item_len),
            );
            let same = want
                .iter()
                .zip(&out)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{threads} threads: parallel fill diverged");
        }
    }

    #[test]
    fn parallel_fill_zeroes_unwritten_elements() {
        let rt = Runtime::new(3);
        let mut out = vec![f32::NAN; 12];
        // Job writes only the first element of each item.
        rt.parallel_fill(4, 3, 1, &mut out, |range, block| {
            for (bi, item) in range.enumerate() {
                block[bi * 3] = item as f32 + 1.0;
            }
        });
        assert_eq!(
            out,
            vec![1.0, 0.0, 0.0, 2.0, 0.0, 0.0, 3.0, 0.0, 0.0, 4.0, 0.0, 0.0]
        );
    }

    #[test]
    fn grain_forces_inline_execution_for_small_work() {
        let rt = Runtime::new(4);
        let mut out = vec![0.0f32; 8];
        // items <= grain: must run inline (observable as a single range).
        let ranges = Arc::new(Mutex::new(Vec::new()));
        let seen = Arc::clone(&ranges);
        rt.parallel_fill(8, 1, 8, &mut out, move |range, block| {
            seen.lock().unwrap().push(range.clone());
            for (bi, item) in range.enumerate() {
                block[bi] = item as f32;
            }
        });
        let seen_ranges = ranges.lock().unwrap();
        assert_eq!(seen_ranges.len(), 1, "inline execution means one job");
        assert_eq!(seen_ranges[0], 0..8);
        assert_eq!(out, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "worker job died")]
    fn panicking_job_fails_the_fill_loudly() {
        let rt = Runtime::new(2);
        let mut out = vec![0.0f32; 64];
        rt.parallel_fill(64, 1, 1, &mut out, |range, _block| {
            if range.start >= 32 {
                panic!("job failure injection");
            }
        });
    }

    #[test]
    fn scratch_blocks_are_recycled() {
        let rt = Runtime::new(2);
        for _ in 0..10 {
            let mut out = vec![0.0f32; 64 * 4];
            rt.parallel_fill(64, 4, 1, &mut out, |range, block| {
                for (bi, item) in range.enumerate() {
                    block[bi * 4] = item as f32;
                }
            });
        }
        let stash = rt.scratch.lock().unwrap();
        assert!(
            !stash.is_empty() && stash.len() <= 2 * rt.threads(),
            "free list should hold a bounded number of recycled blocks, has {}",
            stash.len()
        );
    }

    /// A rectangle job for the blocked primitive with an output that
    /// depends on the absolute (row, col) position, so any partition or
    /// copy-back mistake shows up as a bit difference.
    fn rect_job() -> impl Fn(Range<usize>, Range<usize>, &mut [f32]) + Send + Sync {
        |rows: Range<usize>, cols: Range<usize>, block: &mut [f32]| {
            let w = cols.len();
            for (bi, r) in rows.enumerate() {
                for (bj, c) in cols.clone().enumerate() {
                    block[bi * w + bj] = (r as f32 * 1.7 - 3.0) * (c as f32).cos() + c as f32;
                }
            }
        }
    }

    #[test]
    fn parallel_fill_blocks_is_bitwise_thread_and_tile_invariant() {
        let (rows, cols) = (23, 37);
        let mut want = vec![f32::NAN; rows * cols];
        want.fill(0.0);
        rect_job()(0..rows, 0..cols, &mut want);
        for threads in [1, 2, 3, 8] {
            let rt = Runtime::new(threads);
            for (row_tile, col_tile) in [(1, 64), (5, 7), (8, 16), (64, 64)] {
                let mut out = vec![f32::NAN; rows * cols];
                rt.parallel_fill_blocks(rows, cols, row_tile, col_tile, &mut out, rect_job());
                let same = want
                    .iter()
                    .zip(&out)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(
                    same,
                    "{threads} threads, {row_tile}x{col_tile} tiles: blocked fill diverged"
                );
            }
        }
    }

    #[test]
    fn parallel_fill_blocks_zeroes_unwritten_elements() {
        let rt = Runtime::new(3);
        let mut out = vec![f32::NAN; 4 * 6];
        // Job writes only the first column of its rectangle.
        rt.parallel_fill_blocks(4, 6, 2, 3, &mut out, |rows, cols, block| {
            let w = cols.len();
            for (bi, r) in rows.enumerate() {
                block[bi * w] = r as f32 + 1.0;
            }
        });
        for r in 0..4 {
            for c in 0..6 {
                let want = if c % 3 == 0 { r as f32 + 1.0 } else { 0.0 };
                assert_eq!(out[r * 6 + c], want, "({r},{c})");
            }
        }
    }

    #[test]
    fn single_tile_grid_runs_inline() {
        let rt = Runtime::new(4);
        let ranges = Arc::new(Mutex::new(Vec::new()));
        let seen = Arc::clone(&ranges);
        let mut out = vec![0.0f32; 5 * 9];
        rt.parallel_fill_blocks(5, 9, 8, 16, &mut out, move |rows, cols, _block| {
            seen.lock().unwrap().push((rows.clone(), cols.clone()));
        });
        let seen_ranges = ranges.lock().unwrap();
        assert_eq!(seen_ranges.len(), 1, "one tile means inline execution");
        assert_eq!(seen_ranges[0], (0..5, 0..9));
    }

    #[test]
    #[should_panic(expected = "worker job died")]
    fn panicking_block_job_fails_the_fill_loudly() {
        let rt = Runtime::new(2);
        let mut out = vec![0.0f32; 64 * 8];
        rt.parallel_fill_blocks(64, 8, 4, 8, &mut out, |rows, _cols, _block| {
            if rows.start >= 32 {
                panic!("job failure injection");
            }
        });
    }

    #[test]
    fn workspace_reuses_allocation_and_respects_stale_shares() {
        let mut ws = Workspace::new();
        ws.reset(16)
            .iter_mut()
            .enumerate()
            .for_each(|(i, v)| *v = i as f32);
        let ptr = ws.as_slice().as_ptr();
        // No outstanding share: same allocation, contents re-zeroed.
        let buf = ws.reset(16);
        assert_eq!(buf.as_ptr(), ptr);
        assert!(buf.iter().all(|&v| v == 0.0));

        // Outstanding share: reset must not corrupt it.
        ws.reset(4).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let held = ws.share();
        ws.reset(4).copy_from_slice(&[9.0; 4]);
        assert_eq!(held.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ws.as_slice(), &[9.0; 4]);
    }

    #[test]
    fn parallel_fill_pair_matches_the_serial_reference() {
        let items = 103;
        let gi: Vec<f32> = (0..items).map(|i| i as f32 * 0.13 - 2.0).collect();
        let src = Arc::new(gi);
        let job = |src: Arc<Vec<f32>>| {
            move |range: Range<usize>, a: &mut [f32], b: &mut [f32]| {
                for (bi, i) in range.enumerate() {
                    a[bi] = src[i] * 0.9 + 0.5;
                    b[bi] = src[i] - a[bi] * 0.25;
                }
            }
        };
        let mut want_a = vec![0.0f32; items];
        let mut want_b = vec![0.0f32; items];
        job(Arc::clone(&src))(0..items, &mut want_a, &mut want_b);
        for threads in 1..=8 {
            let rt = Runtime::new(threads);
            let mut out_a = vec![f32::NAN; items];
            let mut out_b = vec![f32::NAN; items];
            rt.parallel_fill_pair(items, 1, &mut out_a, &mut out_b, job(Arc::clone(&src)));
            let same = want_a
                .iter()
                .zip(&out_a)
                .chain(want_b.iter().zip(&out_b))
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "{threads} threads: pair fill diverged");
        }
    }

    #[test]
    #[should_panic(expected = "worker job died")]
    fn panicking_pair_job_fails_loudly() {
        let rt = Runtime::new(2);
        let mut a = vec![0.0f32; 64];
        let mut b = vec![0.0f32; 64];
        rt.parallel_fill_pair(64, 1, &mut a, &mut b, |range, _a, _b| {
            if range.start >= 32 {
                panic!("job failure injection");
            }
        });
    }

    /// The serial oracle of the fixed tree order: adjacent pairing with
    /// doubling strides, written independently of the implementation.
    fn tree_reference(bufs: &[Vec<f32>]) -> Vec<f32> {
        let mut work: Vec<Vec<f32>> = bufs.to_vec();
        let n = work.len();
        let mut stride = 1;
        while stride < n {
            let mut i = 0;
            while i + stride < n {
                let src = work[i + stride].clone();
                for (d, s) in work[i].iter_mut().zip(&src) {
                    *d += *s;
                }
                i += 2 * stride;
            }
            stride *= 2;
        }
        work.into_iter().next().unwrap_or_default()
    }

    #[test]
    fn tree_reduce_is_bitwise_pool_invariant() {
        for count in [2usize, 3, 4, 5, 7, 8] {
            let bufs: Vec<Vec<f32>> = (0..count)
                .map(|r| {
                    (0..97)
                        .map(|i| ((i * 31 + r * 7) as f32).sin() * 3.0)
                        .collect()
                })
                .collect();
            let want = tree_reference(&bufs);
            for threads in [1, 2, 3, 8] {
                let rt = Runtime::new(threads);
                let mut work = bufs.clone();
                rt.tree_reduce(&mut work);
                let same = want
                    .iter()
                    .zip(&work[0])
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "{count} buffers, {threads} threads: tree diverged");
            }
        }
    }

    #[test]
    fn tree_reduce_three_buffers_is_left_pair_first() {
        // Non-associativity witness: values chosen so (b0 + b1) + b2 and
        // b0 + (b1 + b2) differ in f32. Under the pinned order,
        // (1e8 + -1e8) + 1.25 == 1.25 exactly; right-first would compute
        // -1e8 + 1.25 -> -1e8 (1.25 is below the half-ulp of 4 at that
        // magnitude), so 1e8 + (…) == 0.0 — a different bit pattern.
        let rt = Runtime::serial();
        let mut bufs = vec![vec![1.0e8f32], vec![-1.0e8f32], vec![1.25f32]];
        rt.tree_reduce(&mut bufs);
        assert_eq!(bufs[0][0].to_bits(), 1.25f32.to_bits());
        let right_first = 1.0e8f32 + (-1.0e8f32 + 1.25f32);
        assert_ne!(
            right_first.to_bits(),
            1.25f32.to_bits(),
            "witness must actually be non-associative"
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn tree_reduce_rejects_unequal_lengths() {
        let rt = Runtime::serial();
        let mut bufs = vec![vec![0.0f32; 4], vec![0.0f32; 5]];
        rt.tree_reduce(&mut bufs);
    }

    #[test]
    fn run_jobs_returns_results_in_job_order() {
        for threads in [1, 2, 4] {
            let rt = Runtime::new(threads);
            let jobs: Vec<_> = (0..9usize)
                .map(|i| {
                    move || {
                        // Stagger completion so out-of-order arrival is
                        // likely on a real pool.
                        std::thread::sleep(std::time::Duration::from_millis(((9 - i) % 3) as u64));
                        i * i
                    }
                })
                .collect();
            let got = rt.run_jobs(jobs);
            let want: Vec<usize> = (0..9).map(|i| i * i).collect();
            assert_eq!(got, want, "{threads} threads");
        }
    }

    #[test]
    #[should_panic(expected = "worker job died")]
    fn panicking_run_job_fails_loudly() {
        let rt = Runtime::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4usize)
            .map(|i| {
                Box::new(move || {
                    assert!(i != 2, "job failure injection");
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let _ = rt.run_jobs(jobs);
    }

    #[test]
    fn nested_dispatch_from_a_worker_runs_inline_and_matches() {
        // A run_jobs job that itself calls parallel_fill and tree_reduce:
        // with a pool of 2 and 2 such jobs, every worker is busy, so the
        // nested dispatches can only complete via the in-worker inline
        // path — and must still match the serial bits.
        let serial = Runtime::serial();
        let compute = |rt: &Runtime| -> Vec<f32> {
            let mut out = vec![0.0f32; 64];
            rt.parallel_fill(64, 1, 1, &mut out, |range, block| {
                for (bi, i) in range.enumerate() {
                    block[bi] = (i as f32).cos() * 2.0;
                }
            });
            let mut bufs = vec![out.clone(), out.clone(), out];
            rt.tree_reduce(&mut bufs);
            bufs.swap_remove(0)
        };
        let want = compute(&serial);
        let rt = Arc::new(Runtime::new(2));
        let jobs: Vec<_> = (0..2)
            .map(|_| {
                let rt = Arc::clone(&rt);
                move || compute(&rt)
            })
            .collect();
        for got in rt.run_jobs(jobs) {
            let same = want
                .iter()
                .zip(&got)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "nested dispatch changed bits");
        }
    }

    #[test]
    fn global_runtime_is_shared() {
        let a = Arc::as_ptr(Runtime::global());
        let b = Arc::as_ptr(Runtime::global());
        assert_eq!(a, b);
        assert!(Runtime::global().threads() >= 1);
    }
}
