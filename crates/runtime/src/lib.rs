//! # srmac-runtime: the shared parallel runtime
//!
//! One persistent worker pool and two data-parallel fill primitives —
//! chunked ([`Runtime::parallel_fill`]) and 2D-tiled
//! ([`Runtime::parallel_fill_blocks`]) — shared by every layer of the
//! stack: the `MacGemm` accumulation loops in `srmac-qgemm` dispatch
//! tile rectangles through the blocked primitive, and the data-movement
//! kernels (`im2row`, `col2im`, the NCHW scatter/gathers, transposes,
//! batch assembly) in `srmac-tensor` / `srmac-models` dispatch item
//! chunks through the chunked one.
//!
//! # The `parallel_fill` determinism contract
//!
//! [`Runtime::parallel_fill`] partitions an output buffer into disjoint,
//! contiguous chunks of whole items and runs one job per chunk. The
//! contract every caller relies on (and every test asserts):
//!
//! - **Disjoint writes.** A job writes only its own chunk. No two chunks
//!   overlap, so there are no write races and no need for atomics.
//! - **Zeroed blocks.** Each chunk arrives zero-filled; a job either
//!   overwrites every element or accumulates into zeros. The serial path
//!   zero-fills the whole output first, so both paths start identically.
//! - **No reduction-order changes.** The runtime never splits an *item*
//!   across jobs and never reassociates arithmetic: whatever order a job
//!   uses to compute one item is the same order the serial path uses.
//!   Consequently results are **bitwise identical** for every thread
//!   count, including 1 — parallelism changes wall-clock time, never bits.
//!
//! [`Runtime::parallel_fill_blocks`] extends the same contract to 2D: the
//! tile grid is a pure function of the shape and the tile sizes, never of
//! the thread count, and an output element belongs to exactly one tile.
//!
//! # Workspace reuse
//!
//! Worker jobs must be `'static` (the pool outlives any one call), so
//! inputs are shared via `Arc` and each job fills a recycled scratch block
//! that the runtime copies into the caller's output. Scratch blocks live
//! in a free list on the runtime: after warm-up, a steady-state training
//! step performs no transient allocations inside the runtime. The
//! [`Workspace`] type gives callers the same property for their own
//! buffers: a persistently owned, cheaply sharable `Arc<Vec<f32>>` whose
//! exclusive view is recovered without copying once in-flight shares are
//! dropped.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod pool;

pub use pool::WorkerPool;

use std::ops::Range;
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex, OnceLock};

/// Number of worker threads to use by default (the machine's available
/// parallelism).
#[must_use]
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// A parallel execution context: an optional persistent [`WorkerPool`]
/// plus a free list of recycled scratch blocks.
///
/// A runtime with one thread has no pool at all; every dispatch runs
/// inline on the caller's thread with zero overhead. Results are bitwise
/// identical either way (see the module docs).
#[derive(Debug)]
pub struct Runtime {
    pool: Option<WorkerPool>,
    scratch: Mutex<Vec<Vec<f32>>>,
}

impl Runtime {
    /// Creates a runtime with `threads` workers (min 1; 1 means serial).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            pool: (threads > 1).then(|| WorkerPool::new(threads)),
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// A strictly serial runtime (no pool, inline execution).
    #[must_use]
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// The process-wide shared runtime, sized to [`available_threads`].
    /// Layers and models use this by default so the whole stack shares one
    /// pool instead of spawning one per layer.
    #[must_use]
    pub fn global() -> &'static Arc<Runtime> {
        static GLOBAL: OnceLock<Arc<Runtime>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(Runtime::new(available_threads())))
    }

    /// Worker count (1 for a serial runtime).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, WorkerPool::threads)
    }

    /// Fills `out` — logically `items` items of `item_len` elements each —
    /// by running `job(range, block)` over disjoint chunks of whole items.
    ///
    /// `out` is treated as fully overwritten: every element the job does
    /// not write ends up `0.0`. `grain` is the minimum number of items per
    /// chunk; work smaller than one grain (or a serial runtime) runs
    /// inline. See the module docs for the determinism contract.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != items * item_len` or if a worker job dies
    /// (a panicking job would otherwise silently corrupt the output).
    pub fn parallel_fill<F>(
        &self,
        items: usize,
        item_len: usize,
        grain: usize,
        out: &mut [f32],
        job: F,
    ) where
        F: Fn(Range<usize>, &mut [f32]) + Send + Sync + 'static,
    {
        assert_eq!(out.len(), items * item_len, "out must be items * item_len");
        let threads = self.threads();
        let chunk = items.div_ceil(threads).max(grain.max(1));
        if threads == 1 || chunk >= items {
            out.fill(0.0);
            if items > 0 {
                job(0..items, out);
            }
            return;
        }
        let pool = self.pool.as_ref().expect("threads > 1 implies a pool");
        let jobs = items.div_ceil(chunk);
        let job = Arc::new(job);
        let (tx, rx) = channel::<(usize, Vec<f32>)>();
        for ci in 0..jobs {
            let start = ci * chunk;
            let end = (start + chunk).min(items);
            let mut block = self
                .scratch
                .lock()
                .expect("scratch poisoned")
                .pop()
                .unwrap_or_default();
            let job = Arc::clone(&job);
            let tx = tx.clone();
            pool.execute(Box::new(move || {
                block.clear();
                block.resize((end - start) * item_len, 0.0);
                job(start..end, &mut block);
                let _ = tx.send((ci, block));
            }));
        }
        drop(tx);
        let mut completed = 0usize;
        for (ci, block) in rx.iter().take(jobs) {
            out[ci * chunk * item_len..ci * chunk * item_len + block.len()].copy_from_slice(&block);
            self.recycle(block);
            completed += 1;
        }
        // A job that panics drops its sender without sending; returning a
        // partial result would silently corrupt downstream numerics.
        assert_eq!(
            completed, jobs,
            "a runtime worker job died before completing"
        );
    }

    /// Fills `out` — a row-major `rows x cols` matrix — by running
    /// `job(row_range, col_range, block)` over a fixed grid of disjoint
    /// rectangles of `row_tile x col_tile` (edge tiles smaller). The
    /// block handed to the job is the rectangle in row-major order with
    /// stride `col_range.len()`; the runtime copies it back into `out`
    /// row segment by row segment.
    ///
    /// This is the 2D counterpart of [`Runtime::parallel_fill`] with the
    /// same determinism contract: the grid is a pure function of
    /// `(rows, cols, row_tile, col_tile)` — **never** of the thread
    /// count — and no output element is ever split across jobs, so
    /// results are bitwise identical for every thread count. A serial
    /// runtime (or a single-tile grid) runs the job inline over the
    /// whole matrix.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != rows * cols` or if a worker job dies.
    pub fn parallel_fill_blocks<F>(
        &self,
        rows: usize,
        cols: usize,
        row_tile: usize,
        col_tile: usize,
        out: &mut [f32],
        job: F,
    ) where
        F: Fn(Range<usize>, Range<usize>, &mut [f32]) + Send + Sync + 'static,
    {
        assert_eq!(out.len(), rows * cols, "out must be rows * cols");
        if rows == 0 || cols == 0 {
            return;
        }
        let rt = row_tile.max(1);
        let ct = col_tile.max(1);
        let row_jobs = rows.div_ceil(rt);
        let col_jobs = cols.div_ceil(ct);
        let threads = self.threads();
        if threads == 1 || row_jobs * col_jobs <= 1 {
            out.fill(0.0);
            job(0..rows, 0..cols, out);
            return;
        }
        let pool = self.pool.as_ref().expect("threads > 1 implies a pool");
        let jobs = row_jobs * col_jobs;
        let job = Arc::new(job);
        let (tx, rx) = channel::<(usize, Vec<f32>)>();
        for ji in 0..jobs {
            let (jr, jc) = (ji / col_jobs, ji % col_jobs);
            let r0 = jr * rt;
            let r1 = (r0 + rt).min(rows);
            let c0 = jc * ct;
            let c1 = (c0 + ct).min(cols);
            let mut block = self
                .scratch
                .lock()
                .expect("scratch poisoned")
                .pop()
                .unwrap_or_default();
            let job = Arc::clone(&job);
            let tx = tx.clone();
            pool.execute(Box::new(move || {
                block.clear();
                block.resize((r1 - r0) * (c1 - c0), 0.0);
                job(r0..r1, c0..c1, &mut block);
                let _ = tx.send((ji, block));
            }));
        }
        drop(tx);
        let mut completed = 0usize;
        for (ji, block) in rx.iter().take(jobs) {
            let (jr, jc) = (ji / col_jobs, ji % col_jobs);
            let r0 = jr * rt;
            let c0 = jc * ct;
            let w = (c0 + ct).min(cols) - c0;
            for (bi, brow) in block.chunks_exact(w).enumerate() {
                let dst = (r0 + bi) * cols + c0;
                out[dst..dst + w].copy_from_slice(brow);
            }
            self.recycle(block);
            completed += 1;
        }
        // Same loud-failure rule as parallel_fill: a partial result would
        // silently corrupt downstream numerics.
        assert_eq!(
            completed, jobs,
            "a runtime worker job died before completing"
        );
    }

    fn recycle(&self, block: Vec<f32>) {
        let mut stash = self.scratch.lock().expect("scratch poisoned");
        // Bound the free list by the only concurrency the pool can reach.
        if stash.len() < 2 * self.threads() {
            stash.push(block);
        }
    }
}

/// A persistently owned, cheaply sharable `f32` buffer for layer
/// workspaces.
///
/// [`Workspace::share`] hands an `Arc` clone to `'static` runtime jobs;
/// [`Workspace::reset`] recovers the exclusive mutable view once those
/// shares are gone (which [`Runtime::parallel_fill`] guarantees by the
/// time it returns). If a stale share *is* still alive — e.g. a layer
/// cached it for a backward pass that has not run yet — `reset` clones
/// instead of corrupting it, so reuse is an optimization, never a
/// correctness hazard.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    buf: Arc<Vec<f32>>,
}

impl Workspace {
    /// Creates an empty workspace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears and resizes the buffer to `len` zeros, returning the
    /// exclusive mutable view. Reuses the existing allocation whenever no
    /// share is outstanding.
    pub fn reset(&mut self, len: usize) -> &mut Vec<f32> {
        let buf = Arc::make_mut(&mut self.buf);
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// A shared handle for `'static` runtime jobs.
    #[must_use]
    pub fn share(&self) -> Arc<Vec<f32>> {
        Arc::clone(&self.buf)
    }

    /// Read-only view of the current contents.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reference fill: the contract says parallel_fill(out) must equal
    /// zero-fill + job(0..items, out) bit for bit.
    fn serial_reference<F>(items: usize, item_len: usize, job: F) -> Vec<f32>
    where
        F: Fn(Range<usize>, &mut [f32]),
    {
        let mut out = vec![f32::NAN; items * item_len];
        out.fill(0.0);
        job(0..items, &mut out);
        out
    }

    fn gather_job(
        src: Arc<Vec<f32>>,
        item_len: usize,
    ) -> impl Fn(Range<usize>, &mut [f32]) + Send + Sync {
        move |range: Range<usize>, block: &mut [f32]| {
            for (bi, item) in range.clone().enumerate() {
                for j in 0..item_len {
                    // A non-trivial, item-dependent computation.
                    block[bi * item_len + j] = src[item * item_len + j] * 0.5 + (item as f32).sin();
                }
            }
        }
    }

    #[test]
    fn parallel_fill_is_bitwise_thread_invariant() {
        let (items, item_len) = (37, 13);
        let src = Arc::new(
            (0..items * item_len)
                .map(|i| i as f32 * 0.17 - 3.0)
                .collect::<Vec<_>>(),
        );
        let want = serial_reference(items, item_len, gather_job(Arc::clone(&src), item_len));
        for threads in 1..=8 {
            let rt = Runtime::new(threads);
            let mut out = vec![f32::NAN; items * item_len];
            rt.parallel_fill(
                items,
                item_len,
                1,
                &mut out,
                gather_job(Arc::clone(&src), item_len),
            );
            let same = want
                .iter()
                .zip(&out)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{threads} threads: parallel fill diverged");
        }
    }

    #[test]
    fn parallel_fill_zeroes_unwritten_elements() {
        let rt = Runtime::new(3);
        let mut out = vec![f32::NAN; 12];
        // Job writes only the first element of each item.
        rt.parallel_fill(4, 3, 1, &mut out, |range, block| {
            for (bi, item) in range.enumerate() {
                block[bi * 3] = item as f32 + 1.0;
            }
        });
        assert_eq!(
            out,
            vec![1.0, 0.0, 0.0, 2.0, 0.0, 0.0, 3.0, 0.0, 0.0, 4.0, 0.0, 0.0]
        );
    }

    #[test]
    fn grain_forces_inline_execution_for_small_work() {
        let rt = Runtime::new(4);
        let mut out = vec![0.0f32; 8];
        // items <= grain: must run inline (observable as a single range).
        let ranges = Arc::new(Mutex::new(Vec::new()));
        let seen = Arc::clone(&ranges);
        rt.parallel_fill(8, 1, 8, &mut out, move |range, block| {
            seen.lock().unwrap().push(range.clone());
            for (bi, item) in range.enumerate() {
                block[bi] = item as f32;
            }
        });
        let seen_ranges = ranges.lock().unwrap();
        assert_eq!(seen_ranges.len(), 1, "inline execution means one job");
        assert_eq!(seen_ranges[0], 0..8);
        assert_eq!(out, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "worker job died")]
    fn panicking_job_fails_the_fill_loudly() {
        let rt = Runtime::new(2);
        let mut out = vec![0.0f32; 64];
        rt.parallel_fill(64, 1, 1, &mut out, |range, _block| {
            if range.start >= 32 {
                panic!("job failure injection");
            }
        });
    }

    #[test]
    fn scratch_blocks_are_recycled() {
        let rt = Runtime::new(2);
        for _ in 0..10 {
            let mut out = vec![0.0f32; 64 * 4];
            rt.parallel_fill(64, 4, 1, &mut out, |range, block| {
                for (bi, item) in range.enumerate() {
                    block[bi * 4] = item as f32;
                }
            });
        }
        let stash = rt.scratch.lock().unwrap();
        assert!(
            !stash.is_empty() && stash.len() <= 2 * rt.threads(),
            "free list should hold a bounded number of recycled blocks, has {}",
            stash.len()
        );
    }

    /// A rectangle job for the blocked primitive with an output that
    /// depends on the absolute (row, col) position, so any partition or
    /// copy-back mistake shows up as a bit difference.
    fn rect_job() -> impl Fn(Range<usize>, Range<usize>, &mut [f32]) + Send + Sync {
        |rows: Range<usize>, cols: Range<usize>, block: &mut [f32]| {
            let w = cols.len();
            for (bi, r) in rows.enumerate() {
                for (bj, c) in cols.clone().enumerate() {
                    block[bi * w + bj] = (r as f32 * 1.7 - 3.0) * (c as f32).cos() + c as f32;
                }
            }
        }
    }

    #[test]
    fn parallel_fill_blocks_is_bitwise_thread_and_tile_invariant() {
        let (rows, cols) = (23, 37);
        let mut want = vec![f32::NAN; rows * cols];
        want.fill(0.0);
        rect_job()(0..rows, 0..cols, &mut want);
        for threads in [1, 2, 3, 8] {
            let rt = Runtime::new(threads);
            for (row_tile, col_tile) in [(1, 64), (5, 7), (8, 16), (64, 64)] {
                let mut out = vec![f32::NAN; rows * cols];
                rt.parallel_fill_blocks(rows, cols, row_tile, col_tile, &mut out, rect_job());
                let same = want
                    .iter()
                    .zip(&out)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(
                    same,
                    "{threads} threads, {row_tile}x{col_tile} tiles: blocked fill diverged"
                );
            }
        }
    }

    #[test]
    fn parallel_fill_blocks_zeroes_unwritten_elements() {
        let rt = Runtime::new(3);
        let mut out = vec![f32::NAN; 4 * 6];
        // Job writes only the first column of its rectangle.
        rt.parallel_fill_blocks(4, 6, 2, 3, &mut out, |rows, cols, block| {
            let w = cols.len();
            for (bi, r) in rows.enumerate() {
                block[bi * w] = r as f32 + 1.0;
            }
        });
        for r in 0..4 {
            for c in 0..6 {
                let want = if c % 3 == 0 { r as f32 + 1.0 } else { 0.0 };
                assert_eq!(out[r * 6 + c], want, "({r},{c})");
            }
        }
    }

    #[test]
    fn single_tile_grid_runs_inline() {
        let rt = Runtime::new(4);
        let ranges = Arc::new(Mutex::new(Vec::new()));
        let seen = Arc::clone(&ranges);
        let mut out = vec![0.0f32; 5 * 9];
        rt.parallel_fill_blocks(5, 9, 8, 16, &mut out, move |rows, cols, _block| {
            seen.lock().unwrap().push((rows.clone(), cols.clone()));
        });
        let seen_ranges = ranges.lock().unwrap();
        assert_eq!(seen_ranges.len(), 1, "one tile means inline execution");
        assert_eq!(seen_ranges[0], (0..5, 0..9));
    }

    #[test]
    #[should_panic(expected = "worker job died")]
    fn panicking_block_job_fails_the_fill_loudly() {
        let rt = Runtime::new(2);
        let mut out = vec![0.0f32; 64 * 8];
        rt.parallel_fill_blocks(64, 8, 4, 8, &mut out, |rows, _cols, _block| {
            if rows.start >= 32 {
                panic!("job failure injection");
            }
        });
    }

    #[test]
    fn workspace_reuses_allocation_and_respects_stale_shares() {
        let mut ws = Workspace::new();
        ws.reset(16)
            .iter_mut()
            .enumerate()
            .for_each(|(i, v)| *v = i as f32);
        let ptr = ws.as_slice().as_ptr();
        // No outstanding share: same allocation, contents re-zeroed.
        let buf = ws.reset(16);
        assert_eq!(buf.as_ptr(), ptr);
        assert!(buf.iter().all(|&v| v == 0.0));

        // Outstanding share: reset must not corrupt it.
        ws.reset(4).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let held = ws.share();
        ws.reset(4).copy_from_slice(&[9.0; 4]);
        assert_eq!(held.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ws.as_slice(), &[9.0; 4]);
    }

    #[test]
    fn global_runtime_is_shared() {
        let a = Arc::as_ptr(Runtime::global());
        let b = Arc::as_ptr(Runtime::global());
        assert_eq!(a, b);
        assert!(Runtime::global().threads() >= 1);
    }
}
