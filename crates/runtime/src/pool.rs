//! A persistent worker pool: threads are spawned once per [`crate::Runtime`]
//! and reused across every dispatch, replacing the per-call
//! `std::thread::scope` spawning of the original design (OS thread creation
//! dominated small- and mid-sized products).
//!
//! Jobs are `'static` closures; callers share inputs via `Arc` and collect
//! owned per-chunk outputs over a channel, which keeps the pool free of
//! `unsafe` lifetime laundering (`#![forbid(unsafe_code)]` holds).

use std::cell::Cell;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send>;

thread_local! {
    /// True on threads spawned by a [`WorkerPool`]. Dispatch primitives
    /// consult this to run *nested* dispatches inline: a pool job that
    /// itself dispatched to the pool and blocked on the results could
    /// deadlock once every worker is such a job (all waiting, none
    /// computing). Inline nested execution is bit-identical by the
    /// thread-invariance contract, so this only changes scheduling.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when the calling thread is a [`WorkerPool`] worker.
pub(crate) fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// A fixed-size pool of worker threads executing boxed jobs in FIFO order.
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (min 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads.max(1))
            .map(|i| {
                let receiver: Arc<Mutex<Receiver<Job>>> = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("srmac-rt-{i}"))
                    .spawn(move || {
                        IN_WORKER.with(|flag| flag.set(true));
                        loop {
                            // Holding the lock only while dequeueing;
                            // disconnect (pool drop) ends the loop.
                            let job = {
                                let rx = receiver.lock().expect("pool receiver poisoned"); // PANIC-OK: a poisoned receiver means a worker already panicked — propagate the abort.
                                rx.recv()
                            };
                            match job {
                                // Isolate panics so one bad job cannot kill
                                // the worker: the pool keeps its full size,
                                // and the job's result-sender drops during
                                // unwinding, so the dispatching call observes
                                // a missing block and fails loudly instead of
                                // hanging on a channel that never disconnects.
                                Ok(job) => {
                                    let outcome =
                                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                                    if let Err(payload) = outcome {
                                        let msg = payload
                                            .downcast_ref::<&str>()
                                            .map(ToString::to_string)
                                            .or_else(|| payload.downcast_ref::<String>().cloned())
                                            .unwrap_or_else(|| "non-string panic".to_owned());
                                        eprintln!("srmac-runtime worker: job panicked: {msg}");
                                    }
                                }
                                Err(_) => break,
                            }
                        }
                    })
                    .expect("failed to spawn runtime worker") // PANIC-OK: failing to spawn pool workers at construction is unrecoverable.
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues one job.
    ///
    /// # Panics
    ///
    /// Panics if the pool has already shut down (cannot happen while the
    /// pool is alive: workers only exit when the sender is dropped).
    pub fn execute(&self, job: Job) {
        self.sender
            .as_ref()
            .expect("pool already shut down") // PANIC-OK: submitting after shutdown() is an API-misuse bug worth aborting on.
            .send(job)
            .expect("runtime worker pool disconnected"); // PANIC-OK: workers only disconnect after a panic — propagate the abort.
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect the channel so workers drain pending jobs and exit.
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_all_jobs_and_joins_on_drop() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(3);
            assert_eq!(pool.threads(), 3);
            let (tx, rx) = channel();
            for _ in 0..64 {
                let counter = Arc::clone(&counter);
                let tx = tx.clone();
                pool.execute(Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    let _ = tx.send(());
                }));
            }
            drop(tx);
            // All 64 jobs complete even while the pool stays alive.
            for _ in 0..64 {
                rx.recv().unwrap();
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = channel();
        // Two panicking jobs, then a healthy one: with only one worker,
        // the healthy job can only complete if the worker survived both.
        for _ in 0..2 {
            pool.execute(Box::new(|| panic!("boom")));
        }
        pool.execute(Box::new(move || {
            let _ = tx.send(42);
        }));
        assert_eq!(rx.recv().unwrap(), 42);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn pool_survives_reuse_across_many_batches() {
        let pool = WorkerPool::new(2);
        for _ in 0..10 {
            let (tx, rx) = channel();
            for i in 0..8usize {
                let tx = tx.clone();
                pool.execute(Box::new(move || {
                    let _ = tx.send(i * i);
                }));
            }
            drop(tx);
            let mut got: Vec<usize> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 4, 9, 16, 25, 36, 49]);
        }
    }
}
