//! The storage abstraction checkpoint I/O runs on: a small [`Storage`]
//! trait over the five primitives a checkpoint writer needs (write,
//! rename, read, remove, exists), the real-filesystem implementation
//! [`FsStorage`], and a fault-injecting wrapper [`FailpointStorage`] that
//! turns "what if the disk fails mid-save?" into a deterministic unit
//! test: injected errors on any primitive, torn (partial) writes, and a
//! simulated mid-write process crash after which every operation fails.
//!
//! [`write_atomic`] is the one correct save sequence — write a
//! writer-unique sibling temp file, then rename over the target — and it
//! removes the temp file on **every** failure path (the legacy
//! `save_model` leaked the partial `.tmp` when the write itself failed;
//! the fault-injection suite pins the fix).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The checkpoint I/O primitives, object-safe so the trainer can hold an
/// `Arc<dyn Storage>` and tests can substitute a failpoint layer. All
/// methods are `&self`: implementations carry interior mutability where
/// they need it (the filesystem itself is the mutable state for
/// [`FsStorage`]).
pub trait Storage: Send + Sync + std::fmt::Debug {
    /// Writes `bytes` to `path`, creating or truncating it.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the file may be partially
    /// written in that case (exactly like a real disk).
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` to `to` (POSIX rename semantics: `to` is
    /// replaced if present).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Reads the full contents of `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (`NotFound` included).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Removes `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (`NotFound` included).
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// Whether `path` currently exists.
    fn exists(&self, path: &Path) -> bool;
}

/// The real filesystem.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsStorage;

impl Storage for FsStorage {
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// Which storage primitive a fault attaches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// [`Storage::write`].
    Write,
    /// [`Storage::rename`].
    Rename,
    /// [`Storage::read`].
    Read,
}

/// What happens when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails cleanly with an injected I/O error (nothing
    /// written for writes).
    Error,
    /// A torn write: only the first `keep` bytes land on the underlying
    /// storage, then the operation reports failure — the shape of a disk
    /// filling up or a kernel buffer lost in a power cut. Only meaningful
    /// on [`FaultOp::Write`]; on other ops it behaves like
    /// [`FaultKind::Error`].
    Torn(usize),
    /// A simulated process crash mid-write: the first half of the bytes
    /// land, and from then on **every** operation on this storage fails —
    /// the process is "dead". Recovery is exercised by opening a fresh
    /// storage over the same directory, exactly like a restarted process.
    Crash,
}

#[derive(Debug)]
struct FailState {
    /// Armed faults: (op, zero-based op index at which to fire, kind).
    faults: Vec<(FaultOp, u64, FaultKind)>,
    /// Per-op call counters.
    writes: u64,
    renames: u64,
    reads: u64,
    /// Set once a [`FaultKind::Crash`] fired.
    crashed: bool,
}

/// A [`Storage`] decorator that injects failures at scripted points —
/// the failpoint layer behind the crash-tolerance test suite.
///
/// Faults are armed with [`FailpointStorage::fail_nth`] against the
/// zero-based invocation index of a primitive ("the 2nd write fails
/// torn"). Un-armed operations pass through to the inner storage.
#[derive(Debug)]
pub struct FailpointStorage<S: Storage> {
    inner: S,
    state: Mutex<FailState>,
}

impl<S: Storage> FailpointStorage<S> {
    /// Wraps `inner` with no faults armed.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            state: Mutex::new(FailState {
                faults: Vec::new(),
                writes: 0,
                renames: 0,
                reads: 0,
                crashed: false,
            }),
        }
    }

    /// Arms a fault: the `n`-th invocation (zero-based) of `op` fires
    /// `kind`. Multiple faults may be armed, including several on the
    /// same op at different indices.
    pub fn fail_nth(&self, op: FaultOp, n: u64, kind: FaultKind) {
        self.lock().faults.push((op, n, kind));
    }

    /// Whether a [`FaultKind::Crash`] has fired (after which every
    /// operation fails).
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Total invocations of `op` so far (fired faults included).
    pub fn op_count(&self, op: FaultOp) -> u64 {
        let s = self.lock();
        match op {
            FaultOp::Write => s.writes,
            FaultOp::Rename => s.renames,
            FaultOp::Read => s.reads,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FailState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Bumps the op counter and returns the fault armed for this
    /// invocation, if any. Errors immediately when already crashed.
    fn check(&self, op: FaultOp) -> io::Result<Option<FaultKind>> {
        let mut s = self.lock();
        if s.crashed {
            return Err(injected("storage crashed (simulated)"));
        }
        let n = match op {
            FaultOp::Write => {
                s.writes += 1;
                s.writes - 1
            }
            FaultOp::Rename => {
                s.renames += 1;
                s.renames - 1
            }
            FaultOp::Read => {
                s.reads += 1;
                s.reads - 1
            }
        };
        let hit = s
            .faults
            .iter()
            .position(|&(fop, fn_, _)| fop == op && fn_ == n);
        Ok(hit.map(|i| {
            let (_, _, kind) = s.faults.remove(i);
            if kind == FaultKind::Crash {
                s.crashed = true;
            }
            kind
        }))
    }
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

impl<S: Storage> Storage for FailpointStorage<S> {
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.check(FaultOp::Write)? {
            None => self.inner.write(path, bytes),
            Some(FaultKind::Error) => Err(injected("write error")),
            Some(FaultKind::Torn(keep)) => {
                let keep = keep.min(bytes.len());
                self.inner.write(path, &bytes[..keep])?;
                Err(injected("torn write"))
            }
            Some(FaultKind::Crash) => {
                // Half the payload lands, then the "process" dies.
                let keep = bytes.len() / 2;
                self.inner.write(path, &bytes[..keep]).ok();
                Err(injected("crash during write"))
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.check(FaultOp::Rename)? {
            None => self.inner.rename(from, to),
            Some(FaultKind::Crash) => Err(injected("crash during rename")),
            Some(_) => Err(injected("rename error")),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.check(FaultOp::Read)? {
            None => self.inner.read(path),
            Some(FaultKind::Crash) => Err(injected("crash during read")),
            Some(_) => Err(injected("read error")),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        // Removes are not fault-injectable (rotation treats them as
        // best-effort), but a crashed storage stays dead for them too.
        if self.lock().crashed {
            return Err(injected("storage crashed (simulated)"));
        }
        self.inner.remove(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

/// Builds a writer-unique sibling temp path for `path`: the full target
/// file name plus pid plus a process-global counter, so concurrent saves
/// (to the same path or to siblings sharing a stem) never interleave
/// through one temp file.
///
/// # Errors
///
/// Returns `InvalidInput` when `path` has no file name.
pub fn unique_tmp_path(path: &Path) -> io::Result<PathBuf> {
    static SAVE_COUNTER: AtomicU64 = AtomicU64::new(0);
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "checkpoint path has no file name",
            )
        })?
        .to_os_string();
    tmp_name.push(format!(
        ".{}.{}.tmp",
        std::process::id(),
        SAVE_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    Ok(path.with_file_name(tmp_name))
}

/// Writes `bytes` to `path` atomically: a writer-unique sibling temp file
/// first, then a rename over the target — a crash between the two cannot
/// leave a half-written file under the final name. The temp file is
/// removed on **both** failure paths (write and rename), so a failed save
/// leaves no `.tmp` litter behind.
///
/// # Errors
///
/// Returns the first I/O error (the temp-file cleanup itself is
/// best-effort: on a dead disk there is nothing more to do).
pub fn write_atomic(storage: &dyn Storage, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = unique_tmp_path(path)?;
    if let Err(e) = storage.write(&tmp, bytes) {
        storage.remove(&tmp).ok();
        return Err(e);
    }
    if let Err(e) = storage.rename(&tmp, path) {
        storage.remove(&tmp).ok();
        return Err(e);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("srmac_storage_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fs_storage_roundtrips() {
        let dir = tmp_dir("fs");
        let p = dir.join("a.bin");
        let s = FsStorage;
        s.write(&p, b"hello").unwrap();
        assert!(s.exists(&p));
        assert_eq!(s.read(&p).unwrap(), b"hello");
        let q = dir.join("b.bin");
        s.rename(&p, &q).unwrap();
        assert!(!s.exists(&p));
        assert_eq!(s.read(&q).unwrap(), b"hello");
        s.remove(&q).unwrap();
        assert!(!s.exists(&q));
    }

    #[test]
    fn failpoint_fires_on_the_armed_invocation_only() {
        let dir = tmp_dir("nth");
        let s = FailpointStorage::new(FsStorage);
        s.fail_nth(FaultOp::Write, 1, FaultKind::Error);
        s.write(&dir.join("w0"), b"x").unwrap();
        assert!(s.write(&dir.join("w1"), b"x").is_err());
        s.write(&dir.join("w2"), b"x").unwrap();
        assert_eq!(s.op_count(FaultOp::Write), 3);
    }

    #[test]
    fn torn_write_leaves_a_prefix() {
        let dir = tmp_dir("torn");
        let p = dir.join("t.bin");
        let s = FailpointStorage::new(FsStorage);
        s.fail_nth(FaultOp::Write, 0, FaultKind::Torn(3));
        assert!(s.write(&p, b"abcdef").is_err());
        assert_eq!(std::fs::read(&p).unwrap(), b"abc");
    }

    #[test]
    fn crash_poisons_every_later_operation() {
        let dir = tmp_dir("crash");
        let p = dir.join("c.bin");
        let s = FailpointStorage::new(FsStorage);
        s.fail_nth(FaultOp::Write, 0, FaultKind::Crash);
        assert!(s.write(&p, b"abcdefgh").is_err());
        assert!(s.crashed());
        assert_eq!(std::fs::read(&p).unwrap(), b"abcd", "half landed");
        assert!(s.read(&p).is_err(), "dead storage cannot read");
        assert!(s.write(&dir.join("d"), b"x").is_err());
        assert!(s.rename(&p, &dir.join("e")).is_err());
    }

    #[test]
    fn write_atomic_cleans_up_on_write_failure() {
        // The regression test for the save_model temp-file leak: a failed
        // *write* (not just a failed rename) must remove the partial temp.
        let dir = tmp_dir("leak");
        let p = dir.join("model.srmc");
        let s = FailpointStorage::new(FsStorage);
        s.fail_nth(FaultOp::Write, 0, FaultKind::Torn(2));
        assert!(write_atomic(&s, &p, b"payload").is_err());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert!(
            leftovers.is_empty(),
            "torn write must leave no temp litter: {leftovers:?}"
        );
    }

    #[test]
    fn write_atomic_cleans_up_on_rename_failure() {
        let dir = tmp_dir("leak2");
        let p = dir.join("model.srmc");
        let s = FailpointStorage::new(FsStorage);
        s.fail_nth(FaultOp::Rename, 0, FaultKind::Error);
        assert!(write_atomic(&s, &p, b"payload").is_err());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert!(
            leftovers.is_empty(),
            "failed rename must leave no temp litter: {leftovers:?}"
        );
    }

    #[test]
    fn write_atomic_never_exposes_a_partial_target() {
        // A torn write of the *temp* file must leave the target either
        // absent or fully intact — never half-written.
        let dir = tmp_dir("atomic");
        let p = dir.join("model.srmc");
        write_atomic(&FsStorage, &p, b"version-one").unwrap();
        let s = FailpointStorage::new(FsStorage);
        s.fail_nth(FaultOp::Write, 0, FaultKind::Torn(4));
        assert!(write_atomic(&s, &p, b"version-two!").is_err());
        assert_eq!(std::fs::read(&p).unwrap(), b"version-one");
    }
}
