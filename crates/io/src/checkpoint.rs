//! The checkpoint container: capture from / apply to a [`Sequential`]
//! model, plus the version-3 binary encoding (version-1 and version-2
//! files decode unchanged).
//!
//! # Layout (version 3, all integers little-endian)
//!
//! ```text
//! offset 0   magic            b"SRMC"
//!        4   u16              format version (currently 3)
//!        6   u16              reserved flags (must be 0)
//!        8   u32 La           architecture-tag length
//!        12  [La]             architecture tag (UTF-8, caller-chosen)
//!            u8               engine-meta tag: 0 = none, 1 = MacGemmConfig
//!            [16]             MacGemmConfig wire record (tag 1 only)
//!            u8               numerics tag: 0 = none, 1 = policy spec   (v2+)
//!            u32 Lp ; [Lp]    numerics policy spec (UTF-8, tag 1 only) (v2+)
//!            u8               train-state tag: 0 = none, 1 = present    (v3+)
//!            train state record (tag 1 only, v3+):
//!              u32 epoch ; u32 step ; u64 rng_state
//!              u32 scaler scale bits ; u32 good_steps ; u32 growth_interval
//!              u64 epoch-loss f64 bits ; u32 finite_batches
//!              config: u32 epochs ; u32 batch_size ;
//!                      u32 x4 lr/momentum/weight_decay/init_loss_scale bits ;
//!                      u64 seed ; u32 replicas ; u32 grad_shards (resolved) ;
//!                      u64 train_len
//!              history: u32 Ne ; Ne x f32 loss ; u32 Na ; Na x f32 acc ;
//!                       u64 skipped ; u64 nonfinite ; u32 final-scale bits ;
//!                       u64 ckpt_save_failures
//!              optimizer: u32 Nv ; Nv x (u32 len ; len x f32 velocity)
//!            u32 Nl           layer record count
//!            Nl x layer record:
//!              u32 Ln ; [Ln]  layer describe() string (UTF-8)
//!              u32 Np         parameter tensor count
//!              Np x tensor:   u32 ndim ; ndim x u32 dims ; f32 payload
//!              u32 Ns         state buffer count
//!              Ns x state:    u32 len ; f32 payload
//! end-8      u64              FNV-1a-64 checksum of every preceding byte
//! ```
//!
//! The **numerics policy spec** (new in version 2) records the full
//! per-role engine policy the model was trained with, in the
//! `srmac_tensor::numerics` spec grammar (e.g.
//! `fwd=fp8_fp12_rn;bwd=fp8_fp12_sr13`): a loaded checkpoint rebuilds the
//! exact training numerics — forward *and* both backward roles — via
//! `srmac_qgemm::numerics_from_spec`, where the single `MacGemmConfig`
//! record of version 1 could only name one engine. The legacy engine
//! record remains a first-class field — version-1 files decode it, and
//! v2 writers may still fill it as a single-engine summary — but the
//! policy field supersedes it and new writers may leave it `None`.
//! Decoding validates the spec structurally — policy grammar plus every
//! atom — so no decodable checkpoint can fail the engine rebuild.
//! Version-1 files simply decode with no policy. Note the validator
//! knows the two in-tree atom families (`f32` and the MAC grammar):
//! engines registered by out-of-tree resolvers cannot ride in checkpoint
//! metadata yet (matching `GemmEngine::spec`'s contract for spec-less
//! engines).
//!
//! The **train-state record** (new in version 3; see
//! [`crate::train_state::TrainState`]) carries the full trainer snapshot —
//! epoch/step cursor, shuffle-RNG position, loss-scaler trajectory,
//! mid-epoch loss partials, resolved training configuration, accumulated
//! history, and SGD momentum buffers — so a crashed run resumes bitwise
//! identical to an uninterrupted one. Version-1/2 files decode with
//! `train: None` (weights-only checkpoints remain first-class; the field
//! is optional in v3 too).
//!
//! The encoding is a pure function of the captured model state — no
//! timestamps, pointers, padding or map iteration orders — so identical
//! models produce identical bytes, and `f32` payloads are carried as raw
//! bit patterns (`-0.0` and NaN payloads survive). Decoding validates
//! every length against the bytes actually present *before* allocating,
//! and verifies the checksum before looking at any record, so corruption
//! surfaces as a typed [`CheckpointError`], never a panic or garbage
//! weights.

use std::path::Path;

use srmac_qgemm::MacGemmConfig;
use srmac_tensor::{Param, Sequential};

use crate::error::CheckpointError;
use crate::storage::{write_atomic, FsStorage, Storage};
use crate::train_state::TrainState;

/// File magic: the first four bytes of every srmac checkpoint.
pub const MAGIC: [u8; 4] = *b"SRMC";

/// The newest format version this crate writes.
pub const FORMAT_VERSION: u16 = 3;

/// The oldest format version this crate still decodes.
pub const MIN_FORMAT_VERSION: u16 = 1;

/// Maximum tensor rank the format accepts (sanity bound for decoding).
const MAX_NDIM: u32 = 8;

/// Checkpoint-level metadata.
#[derive(Debug, Clone, Default)]
pub struct CheckpointMeta {
    /// Caller-chosen architecture tag (e.g. `"resnet20-w8-c10"`); checked
    /// on load via [`Checkpoint::require_arch`], not interpreted.
    pub arch: String,
    /// The single GEMM engine configuration of the legacy (version-1)
    /// metadata, when the engine was a `MacGemm` (serialized via
    /// [`MacGemmConfig::to_wire`]). Kept for old checkpoints and as a
    /// summary; new writers should also fill [`CheckpointMeta::numerics`].
    pub engine: Option<MacGemmConfig>,
    /// The full per-role numerics policy spec the model was trained with
    /// (version 2+; see the module docs) — `Numerics::to_spec()` on the
    /// way in, `srmac_qgemm::numerics_from_spec` on the way out.
    pub numerics: Option<String>,
}

/// One captured tensor: logical shape plus row-major values.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorRecord {
    /// Logical shape.
    pub shape: Vec<usize>,
    /// Row-major values (bit-exact).
    pub data: Vec<f32>,
}

/// One captured layer: its `describe()` string, parameter tensors in
/// `visit_params` order, and non-parameter state buffers in `visit_state`
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRecord {
    /// The layer's `describe()` string (doubles as an architecture check).
    pub name: String,
    /// Parameter tensors.
    pub params: Vec<TensorRecord>,
    /// Non-parameter state buffers (e.g. batch-norm running statistics).
    pub state: Vec<Vec<f32>>,
}

/// A fully parsed (or about-to-be-written) checkpoint.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Checkpoint metadata.
    pub meta: CheckpointMeta,
    /// The trainer snapshot for crash-tolerant resume (version 3+;
    /// `None` for weights-only checkpoints and for v1/v2 files).
    pub train: Option<TrainState>,
    /// Per-layer records, in model order.
    pub layers: Vec<LayerRecord>,
}

impl Checkpoint {
    /// Captures the full persistable state of `model` (parameters and
    /// state buffers; gradients are transient and excluded).
    #[must_use]
    pub fn capture(model: &mut Sequential, meta: CheckpointMeta) -> Self {
        let mut layers = Vec::with_capacity(model.len());
        model.for_each_layer(&mut |layer| {
            let mut params = Vec::new();
            layer.visit_params(&mut |p: &mut Param| {
                params.push(TensorRecord {
                    shape: p.value.shape().to_vec(),
                    data: p.value.data().to_vec(),
                });
            });
            let mut state = Vec::new();
            layer.visit_state(&mut |s: &mut Vec<f32>| state.push(s.clone()));
            layers.push(LayerRecord {
                name: layer.describe(),
                params,
                state,
            });
        });
        Self {
            meta,
            train: None,
            layers,
        }
    }

    /// Attaches a trainer snapshot (builder style) — the resumable-
    /// checkpoint writer's hook.
    #[must_use]
    pub fn with_train_state(mut self, train: TrainState) -> Self {
        self.train = Some(train);
        self
    }

    /// Restores this checkpoint's tensors into `model`, which must have
    /// the same architecture (layer count, layer `describe()` strings,
    /// parameter shapes, state buffer lengths). Parameter writes go
    /// through [`srmac_tensor::Tensor::copy_from_slice`], so the layers'
    /// packed-weight caches invalidate exactly as after an optimizer step.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::ModelMismatch`] on the first structural
    /// disagreement; the model may be partially written in that case and
    /// should be discarded.
    pub fn apply_to(&self, model: &mut Sequential) -> Result<(), CheckpointError> {
        if model.len() != self.layers.len() {
            return Err(CheckpointError::ModelMismatch {
                what: format!(
                    "checkpoint has {} layer records, model has {} layers",
                    self.layers.len(),
                    model.len()
                ),
            });
        }
        let mut err: Option<String> = None;
        let mut li = 0usize;
        model.for_each_layer(&mut |layer| {
            let rec = &self.layers[li];
            li += 1;
            if err.is_some() {
                return;
            }
            let name = layer.describe();
            if name != rec.name {
                err = Some(format!(
                    "layer {} is {name:?} but the record says {:?}",
                    li - 1,
                    rec.name
                ));
                return;
            }
            let mut pi = 0usize;
            layer.visit_params(&mut |p: &mut Param| {
                if err.is_some() {
                    return;
                }
                let Some(r) = rec.params.get(pi) else {
                    err = Some(format!("layer {name:?} has more params than its record"));
                    return;
                };
                pi += 1;
                if p.value.shape() != r.shape.as_slice() {
                    err = Some(format!(
                        "param {} of {name:?}: model shape {:?}, record shape {:?}",
                        pi - 1,
                        p.value.shape(),
                        r.shape
                    ));
                    return;
                }
                p.value.copy_from_slice(&r.data);
            });
            if err.is_none() && pi != rec.params.len() {
                err = Some(format!(
                    "layer {name:?}: record has {} params, model visited {pi}",
                    rec.params.len()
                ));
            }
            let mut si = 0usize;
            layer.visit_state(&mut |s: &mut Vec<f32>| {
                if err.is_some() {
                    return;
                }
                let Some(r) = rec.state.get(si) else {
                    err = Some(format!(
                        "layer {name:?} has more state buffers than its record"
                    ));
                    return;
                };
                si += 1;
                if s.len() != r.len() {
                    err = Some(format!(
                        "state buffer {} of {name:?}: model len {}, record len {}",
                        si - 1,
                        s.len(),
                        r.len()
                    ));
                    return;
                }
                s.copy_from_slice(r);
            });
            if err.is_none() && si != rec.state.len() {
                err = Some(format!(
                    "layer {name:?}: record has {} state buffers, model visited {si}",
                    rec.state.len()
                ));
            }
        });
        match err {
            Some(what) => Err(CheckpointError::ModelMismatch { what }),
            None => Ok(()),
        }
    }

    /// Verifies the stored architecture tag.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::ModelMismatch`] when the tag differs.
    pub fn require_arch(&self, expected: &str) -> Result<(), CheckpointError> {
        if self.meta.arch == expected {
            Ok(())
        } else {
            Err(CheckpointError::ModelMismatch {
                what: format!(
                    "architecture tag is {:?}, expected {expected:?}",
                    self.meta.arch
                ),
            })
        }
    }

    /// Serializes to the current binary layout (deterministic: equal
    /// checkpoints produce equal bytes).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len_hint());
        out.extend_from_slice(&MAGIC);
        push_u16(&mut out, FORMAT_VERSION);
        push_u16(&mut out, 0); // reserved flags
        push_bytes(&mut out, self.meta.arch.as_bytes());
        match &self.meta.engine {
            None => out.push(0),
            Some(cfg) => {
                out.push(1);
                out.extend_from_slice(&cfg.to_wire());
            }
        }
        match &self.meta.numerics {
            None => out.push(0),
            Some(spec) => {
                // Refuse to write a policy the decoder would reject: the
                // whole point of the field is a checkpoint that rebuilds
                // its engines.
                validate_policy_spec(spec)
                    .unwrap_or_else(|e| panic!("cannot serialize numerics spec {spec:?}: {e}"));
                out.push(1);
                push_bytes(&mut out, spec.as_bytes());
            }
        }
        match &self.train {
            None => out.push(0),
            Some(train) => {
                out.push(1);
                train.encode_into(&mut out);
            }
        }
        push_u32(&mut out, len_u32(self.layers.len(), "layer count"));
        for layer in &self.layers {
            push_bytes(&mut out, layer.name.as_bytes());
            push_u32(&mut out, len_u32(layer.params.len(), "param count"));
            for p in &layer.params {
                push_u32(&mut out, len_u32(p.shape.len(), "tensor rank"));
                let mut numel = 1usize;
                for &d in &p.shape {
                    push_u32(&mut out, len_u32(d, "tensor dim"));
                    numel = numel.checked_mul(d).expect("tensor too large"); // PANIC-OK: refusing to save a >usize-element tensor; aborting beats silent truncation.
                }
                assert_eq!(numel, p.data.len(), "tensor record shape/data mismatch");
                push_f32s(&mut out, &p.data);
            }
            push_u32(&mut out, len_u32(layer.state.len(), "state count"));
            for s in &layer.state {
                push_u32(&mut out, len_u32(s.len(), "state len"));
                push_f32s(&mut out, s);
            }
        }
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses a checkpoint of any supported version.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CheckpointError`] on any structural problem —
    /// wrong magic, unsupported version, truncation, checksum mismatch,
    /// impossible field values, or an invalid embedded engine config.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        // The checksum footer is validated first: every later length check
        // then runs over bytes known to be exactly what the writer wrote.
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(CheckpointError::Truncated {
                offset: 0,
                needed: MAGIC.len() + 4 + 8,
            });
        }
        let (body, footer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(footer.try_into().expect("8-byte footer")); // PANIC-OK: split_at(len - 8) makes the footer exactly 8 bytes.
        let computed = fnv1a64(body);
        if stored != computed {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }

        let mut r = Reader::new(body);
        let magic: [u8; 4] = r.take(4)?.try_into().expect("4 bytes"); // PANIC-OK: take(4) returned exactly 4 bytes.
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic(magic));
        }
        let version = r.u16()?;
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let flags = r.u16()?;
        if flags != 0 {
            return Err(r.malformed("reserved flags must be 0"));
        }
        let arch = r.string()?;
        let engine = match r.u8()? {
            0 => None,
            1 => {
                let wire: [u8; MacGemmConfig::WIRE_BYTES] = r
                    .take(MacGemmConfig::WIRE_BYTES)?
                    .try_into()
                    .expect("wire record"); // PANIC-OK: take(WIRE_BYTES) returned exactly that many bytes.
                Some(MacGemmConfig::from_wire(&wire)?)
            }
            _ => return Err(r.malformed("engine-meta tag must be 0 or 1")),
        };
        // The per-role numerics policy exists from version 2 on; older
        // files decode with no policy.
        let numerics = if version >= 2 {
            match r.u8()? {
                0 => None,
                1 => {
                    let spec = r.string()?;
                    validate_policy_spec(&spec).map_err(|what| CheckpointError::BadPolicySpec {
                        spec: spec.clone(),
                        what,
                    })?;
                    Some(spec)
                }
                _ => return Err(r.malformed("numerics tag must be 0 or 1")),
            }
        } else {
            None
        };
        // The trainer snapshot exists from version 3 on; older files (and
        // v3 weights-only files) decode with no train state.
        let train = if version >= 3 {
            match r.u8()? {
                0 => None,
                1 => Some(TrainState::decode_from(&mut r)?),
                _ => return Err(r.malformed("train-state tag must be 0 or 1")),
            }
        } else {
            None
        };
        let layer_count = r.count()?;
        let mut layers = Vec::with_capacity(layer_count.min(r.remaining()));
        for _ in 0..layer_count {
            let name = r.string()?;
            let param_count = r.count()?;
            let mut params = Vec::with_capacity(param_count.min(r.remaining()));
            for _ in 0..param_count {
                let ndim = r.u32()?;
                if ndim > MAX_NDIM {
                    return Err(r.malformed("tensor rank above the format maximum"));
                }
                let mut shape = Vec::with_capacity(ndim as usize);
                let mut numel = 1usize;
                for _ in 0..ndim {
                    let d = r.u32()? as usize;
                    numel = numel
                        .checked_mul(d)
                        .ok_or_else(|| r.malformed("tensor element count overflows"))?;
                    shape.push(d);
                }
                let data = r.f32s(numel)?;
                params.push(TensorRecord { shape, data });
            }
            let state_count = r.count()?;
            let mut state = Vec::with_capacity(state_count.min(r.remaining()));
            for _ in 0..state_count {
                let len = r.u32()? as usize;
                state.push(r.f32s(len)?);
            }
            layers.push(LayerRecord {
                name,
                params,
                state,
            });
        }
        if r.remaining() != 0 {
            return Err(CheckpointError::TrailingBytes {
                extra: r.remaining(),
            });
        }
        Ok(Self {
            meta: CheckpointMeta {
                arch,
                engine,
                numerics,
            },
            train,
            layers,
        })
    }

    fn encoded_len_hint(&self) -> usize {
        let payload: usize = self
            .layers
            .iter()
            .map(|l| {
                l.name.len()
                    + l.params
                        .iter()
                        .map(|p| 4 * (p.shape.len() + p.data.len() + 2))
                        .sum::<usize>()
                    + l.state.iter().map(|s| 4 * (s.len() + 1)).sum::<usize>()
            })
            .sum();
        64 + self.meta.arch.len() + payload
    }
}

/// Captures `model` and writes the checkpoint to `path` (atomically via a
/// sibling temp file, so a crash cannot leave a half-written checkpoint
/// under the final name).
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failure.
pub fn save_model(
    path: impl AsRef<Path>,
    model: &mut Sequential,
    meta: CheckpointMeta,
) -> Result<(), CheckpointError> {
    save_model_with(&FsStorage, path.as_ref(), model, meta)
}

/// [`save_model`] over an explicit [`Storage`] — the hook the
/// fault-injection suite and the trainer's auto-checkpointing use.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on storage failure (the temp file is
/// removed on every failure path) and [`CheckpointError::BadPolicySpec`]
/// for an invalid numerics policy string.
pub fn save_model_with(
    storage: &dyn Storage,
    path: &Path,
    model: &mut Sequential,
    meta: CheckpointMeta,
) -> Result<(), CheckpointError> {
    // Caller-supplied policy strings (config files, CLI flags) fail here
    // as a typed error; the panic inside `encode` stays as the backstop
    // for direct misuse of the lower-level API.
    if let Some(spec) = &meta.numerics {
        validate_policy_spec(spec).map_err(|what| CheckpointError::BadPolicySpec {
            spec: spec.clone(),
            what,
        })?;
    }
    let bytes = Checkpoint::capture(model, meta).encode();
    write_atomic(storage, path, &bytes)?;
    Ok(())
}

/// Reads and parses a checkpoint file without touching any model.
///
/// # Errors
///
/// Returns a typed [`CheckpointError`] on I/O failure or any structural
/// problem in the bytes.
pub fn read_checkpoint(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
    read_checkpoint_with(&FsStorage, path.as_ref())
}

/// [`read_checkpoint`] over an explicit [`Storage`].
///
/// # Errors
///
/// Returns a typed [`CheckpointError`] on I/O failure or any structural
/// problem in the bytes.
pub fn read_checkpoint_with(
    storage: &dyn Storage,
    path: &Path,
) -> Result<Checkpoint, CheckpointError> {
    Checkpoint::decode(&storage.read(path)?)
}

/// Peeks the wire-format version out of a checkpoint header without
/// decoding the body — cheap provenance for resume diagnostics.
///
/// # Errors
///
/// Returns [`CheckpointError::BadMagic`] or [`CheckpointError::Truncated`]
/// when the bytes do not start with a checkpoint header.
pub fn wire_version(bytes: &[u8]) -> Result<u16, CheckpointError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(CheckpointError::BadMagic(
            magic.try_into().expect("4 bytes"), // PANIC-OK: the magic slice is exactly 4 bytes.
        ));
    }
    r.u16()
}

/// Reads the checkpoint at `path` and restores it into `model`
/// (architecture-checked). Returns the checkpoint metadata.
///
/// # Errors
///
/// Returns a typed [`CheckpointError`] on I/O failure, corruption, or a
/// model/checkpoint mismatch.
pub fn load_model(
    path: impl AsRef<Path>,
    model: &mut Sequential,
) -> Result<CheckpointMeta, CheckpointError> {
    let ckpt = read_checkpoint(path)?;
    ckpt.apply_to(model)?;
    Ok(ckpt.meta)
}

/// Structural validation of a numerics policy spec: the policy grammar
/// of `srmac_tensor::numerics` plus every atom as either `f32` or a valid
/// MAC atom — the loader contract is that any decodable checkpoint can
/// rebuild its engines without panicking. (Engines are *not* built here;
/// validation is cheap.) Deliberate limitation: this knows the in-tree
/// atom families only, so atoms from out-of-tree `register_engine_resolver`
/// extensions are rejected — lifting that needs a build-free "validate
/// atom" hook on the tensor-side registry, not a wider hardcode here.
fn validate_policy_spec(spec: &str) -> Result<(), String> {
    let parsed: srmac_tensor::PolicySpec = spec.parse().map_err(|e| format!("{e}"))?;
    for atom in parsed.atoms() {
        if atom == "f32" {
            continue;
        }
        atom.parse::<MacGemmConfig>()
            .map_err(|e| format!("atom {atom:?}: {e}"))?;
    }
    Ok(())
}

/// FNV-1a 64-bit hash (the trailing integrity checksum).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn len_u32(n: usize, what: &str) -> u32 {
    u32::try_from(n).unwrap_or_else(|_| panic!("{what} {n} exceeds the u32 wire field"))
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    push_u32(out, len_u32(bytes.len(), "string length"));
    out.extend_from_slice(bytes);
}

pub(crate) fn push_f32s(out: &mut Vec<u8>, vals: &[f32]) {
    out.reserve(4 * vals.len());
    for v in vals {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

/// Bounds-checked little-endian cursor. Every length read from the stream
/// is validated against the bytes actually remaining before any
/// allocation, so hostile length fields cannot trigger huge allocations
/// or out-of-bounds reads.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn malformed(&self, what: &'static str) -> CheckpointError {
        CheckpointError::Malformed {
            offset: self.pos,
            what,
        }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated {
                offset: self.pos,
                needed: n,
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"), // PANIC-OK: take(2) returned exactly 2 bytes.
        ))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"), // PANIC-OK: take(4) returned exactly 4 bytes.
        ))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"), // PANIC-OK: take(8) returned exactly 8 bytes.
        ))
    }

    /// A record count: each record needs at least one more byte, so a
    /// count beyond the remaining length is structurally impossible.
    pub(crate) fn count(&mut self) -> Result<usize, CheckpointError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(self.malformed("record count exceeds remaining bytes"));
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, CheckpointError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.malformed("string is not UTF-8"))
    }

    pub(crate) fn f32s(&mut self, n: usize) -> Result<Vec<f32>, CheckpointError> {
        let need = n
            .checked_mul(4)
            .ok_or_else(|| self.malformed("f32 payload length overflows"))?;
        let raw = self.take(need)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("4 bytes")))) // PANIC-OK: chunks_exact(4) yields 4-byte chunks.
            .collect())
    }
}
