//! Typed checkpoint errors.
//!
//! Every way an untrusted checkpoint can be wrong maps to a variant here:
//! decoding never panics and never silently loads garbage (the corruption
//! property tests in `tests/proptests.rs` drive truncations, bit flips,
//! bad versions and bad checksums through the decoder and assert exactly
//! that).

use std::fmt;

use srmac_qgemm::ConfigWireError;

/// Error produced while encoding, decoding or applying a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with the `SRMC` magic.
    BadMagic([u8; 4]),
    /// The format version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// The byte stream ended before a field it promised.
    Truncated {
        /// Byte offset at which the read was attempted.
        offset: usize,
        /// Bytes the field needed.
        needed: usize,
    },
    /// The trailing checksum does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the received bytes.
        computed: u64,
    },
    /// Structurally valid records ended before the checksum footer, leaving
    /// unaccounted bytes (a sign of a mangled record table).
    TrailingBytes {
        /// Number of unconsumed bytes before the checksum.
        extra: usize,
    },
    /// A field holds a structurally impossible value.
    Malformed {
        /// Byte offset of the offending field.
        offset: usize,
        /// What was wrong.
        what: &'static str,
    },
    /// The embedded engine configuration failed validation.
    EngineConfig(ConfigWireError),
    /// The embedded numerics policy spec failed structural validation
    /// (policy grammar or one of its engine atoms).
    BadPolicySpec {
        /// The stored spec string.
        spec: String,
        /// What was wrong with it.
        what: String,
    },
    /// The checkpoint is internally valid but does not fit the model it
    /// was asked to restore (layer count, layer kind, or tensor shape).
    ModelMismatch {
        /// Human-readable description of the first mismatch.
        what: String,
    },
    /// Recovery scanned the whole keep-K rotation set and found no slot
    /// that decodes to a valid checkpoint.
    NoValidCheckpoint {
        /// How many rotation slots were examined.
        scanned: usize,
    },
    /// Resume was asked to continue from a checkpoint that carries no
    /// trainer-state record (a weights-only save, or a pre-v3 file).
    MissingTrainState,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CheckpointError::BadMagic(m) => {
                write!(f, "not an srmac checkpoint (magic {m:02x?})")
            }
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            CheckpointError::Truncated { offset, needed } => {
                write!(
                    f,
                    "checkpoint truncated: needed {needed} bytes at offset {offset}"
                )
            }
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CheckpointError::TrailingBytes { extra } => {
                write!(
                    f,
                    "checkpoint has {extra} unaccounted bytes before the checksum"
                )
            }
            CheckpointError::Malformed { offset, what } => {
                write!(f, "malformed checkpoint at offset {offset}: {what}")
            }
            CheckpointError::EngineConfig(e) => {
                write!(f, "invalid engine configuration in checkpoint: {e}")
            }
            CheckpointError::BadPolicySpec { spec, what } => {
                write!(
                    f,
                    "invalid numerics policy spec {spec:?} in checkpoint: {what}"
                )
            }
            CheckpointError::ModelMismatch { what } => {
                write!(f, "checkpoint does not fit the model: {what}")
            }
            CheckpointError::NoValidCheckpoint { scanned } => {
                write!(
                    f,
                    "no valid checkpoint in the rotation set ({scanned} slots scanned)"
                )
            }
            CheckpointError::MissingTrainState => {
                write!(f, "checkpoint carries no trainer state to resume from")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::EngineConfig(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<ConfigWireError> for CheckpointError {
    fn from(e: ConfigWireError) -> Self {
        CheckpointError::EngineConfig(e)
    }
}
