//! # srmac-io: deterministic model checkpoints
//!
//! A hand-rolled, versioned binary checkpoint format (no external
//! dependencies) that round-trips any [`srmac_tensor::Sequential`] model
//! **bitwise**: magic/version header, an architecture tag, the
//! [`srmac_qgemm::MacGemmConfig`] the model was trained with, an optional
//! numerics policy, an optional trainer-state record ([`TrainState`],
//! format v3 — everything a resumed run needs to continue bitwise),
//! per-layer records carrying every parameter tensor and non-parameter
//! state buffer (batch-norm running statistics included), little-endian
//! `f32` bit patterns, and a trailing FNV-1a-64 checksum. See
//! [`checkpoint`] for the exact byte layout.
//!
//! Around the format sit the crash-tolerance layers: [`storage`] (the
//! [`Storage`] trait, the real filesystem, and a fault-injecting
//! failpoint wrapper for deterministic disk-failure tests) and
//! [`rotation`] (atomic keep-K checkpoint rotation with bounded
//! retry-with-backoff and a newest-valid-generation recovery scan).
//!
//! Guarantees:
//!
//! - **Determinism** — encoding is a pure function of the model state:
//!   the same weights produce the same bytes, byte for byte.
//! - **Bitwise round trip** — save → load restores every `f32` exactly
//!   (`-0.0`, NaN payloads and all), so a reloaded model's `evaluate` and
//!   logits are bit-identical to the source model's under every engine.
//! - **Typed failure** — corrupt input (truncation, bit flips, wrong
//!   version, bad checksum) yields a [`CheckpointError`], never a panic
//!   and never silently-wrong weights (property-tested in
//!   `tests/proptests.rs`).
//! - **No partial files** — saves land via a writer-unique temp file and
//!   an atomic rename, and the temp is removed on every failure path
//!   (pinned by the fault-injection suite in `tests/fault_injection.rs`).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use srmac_io::{Checkpoint, CheckpointMeta};
//! use srmac_tensor::layers::Linear;
//! use srmac_tensor::{F32Engine, GemmEngine, Sequential, Tensor};
//!
//! let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
//! let mut model = Sequential::new();
//! let w = Tensor::from_vec(vec![0.5, -1.25, 2.0, 0.0, -0.0, 3.5], &[2, 3]);
//! model.push(Linear::new(3, 2, w, engine.clone()));
//!
//! // Capture -> encode -> decode -> apply is a bitwise round trip.
//! let meta = CheckpointMeta { arch: "demo".into(), ..Default::default() };
//! let bytes = Checkpoint::capture(&mut model, meta).encode();
//! let ckpt = Checkpoint::decode(&bytes).unwrap();
//! ckpt.require_arch("demo").unwrap();
//!
//! let mut restored = Sequential::new();
//! restored.push(Linear::new(3, 2, Tensor::zeros(&[2, 3]), engine));
//! ckpt.apply_to(&mut restored).unwrap();
//! let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
//! use srmac_tensor::Layer;
//! assert_eq!(
//!     model.forward(&x, false).data(),
//!     restored.forward(&x, false).data(),
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod checkpoint;
mod error;
pub mod rotation;
pub mod storage;
pub mod train_state;

pub use checkpoint::{
    fnv1a64, load_model, read_checkpoint, read_checkpoint_with, save_model, save_model_with,
    wire_version, Checkpoint, CheckpointMeta, LayerRecord, TensorRecord, FORMAT_VERSION, MAGIC,
};
pub use error::CheckpointError;
pub use rotation::{recover_latest, save_rotating, slot_path, Recovery, RetryPolicy, SaveReport};
pub use storage::{
    unique_tmp_path, write_atomic, FailpointStorage, FaultKind, FaultOp, FsStorage, Storage,
};
pub use train_state::{HistoryRecord, TrainConfigRecord, TrainState};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use srmac_qgemm::{AccumRounding, MacGemmConfig};
    use srmac_tensor::layers::{BatchNorm2d, Linear};
    use srmac_tensor::{F32Engine, GemmEngine, Sequential, Tensor};

    use super::*;

    fn engine() -> Arc<dyn GemmEngine> {
        Arc::new(F32Engine::new(1))
    }

    fn small_model(seed_shift: f32) -> Sequential {
        let mut m = Sequential::new();
        let w: Vec<f32> = (0..12).map(|i| i as f32 * 0.25 - seed_shift).collect();
        m.push(Linear::new(4, 3, Tensor::from_vec(w, &[3, 4]), engine()));
        m.push(BatchNorm2d::new(3));
        m
    }

    #[test]
    fn encode_is_deterministic_and_header_is_fixed() {
        let meta = || CheckpointMeta {
            arch: "t".into(),
            engine: Some(MacGemmConfig::fp8_fp12(
                AccumRounding::Stochastic { r: 13 },
                false,
            )),
            numerics: None,
        };
        let a = Checkpoint::capture(&mut small_model(1.0), meta()).encode();
        let b = Checkpoint::capture(&mut small_model(1.0), meta()).encode();
        assert_eq!(a, b, "same model state must encode to identical bytes");
        assert_eq!(&a[..4], &MAGIC);
        assert_eq!(u16::from_le_bytes([a[4], a[5]]), FORMAT_VERSION);
    }

    #[test]
    fn roundtrip_restores_params_state_and_engine_meta() {
        let cfg = MacGemmConfig::fp8_fp12(AccumRounding::Stochastic { r: 13 }, false).with_seed(3);
        let mut src = small_model(0.5);
        // Dirty the batch-norm running stats so state restoration is
        // actually exercised (fresh stats are all 0/1).
        use srmac_tensor::Layer;
        src.visit_state(&mut |s| s.iter_mut().enumerate().for_each(|(i, v)| *v += i as f32));
        let bytes = Checkpoint::capture(
            &mut src,
            CheckpointMeta {
                arch: "small".into(),
                engine: Some(cfg),
                numerics: None,
            },
        )
        .encode();

        let ckpt = Checkpoint::decode(&bytes).expect("decode");
        let eng = ckpt.meta.engine.expect("engine meta");
        assert_eq!(eng.rounding, cfg.rounding);
        assert_eq!(eng.seed, cfg.seed);
        assert_eq!(eng.mul_fmt, cfg.mul_fmt);
        assert_eq!(eng.acc_fmt, cfg.acc_fmt);

        let mut dst = small_model(9.0);
        ckpt.apply_to(&mut dst).expect("apply");
        let want = Checkpoint::capture(&mut src, ckpt.meta.clone());
        let got = Checkpoint::capture(&mut dst, ckpt.meta.clone());
        assert_eq!(want.layers, got.layers, "restored state must be bitwise");
    }

    #[test]
    fn apply_rejects_architecture_mismatches() {
        let bytes = Checkpoint::capture(
            &mut small_model(0.0),
            CheckpointMeta {
                arch: "small".into(),
                engine: None,
                numerics: None,
            },
        )
        .encode();
        let ckpt = Checkpoint::decode(&bytes).unwrap();
        assert!(ckpt.require_arch("other").is_err());

        // Wrong layer count.
        let mut short = Sequential::new();
        short.push(Linear::new(4, 3, Tensor::zeros(&[3, 4]), engine()));
        assert!(matches!(
            ckpt.apply_to(&mut short),
            Err(CheckpointError::ModelMismatch { .. })
        ));

        // Right count, wrong shapes.
        let mut wrong = Sequential::new();
        wrong.push(Linear::new(3, 4, Tensor::zeros(&[4, 3]), engine()));
        wrong.push(BatchNorm2d::new(4));
        assert!(matches!(
            ckpt.apply_to(&mut wrong),
            Err(CheckpointError::ModelMismatch { .. })
        ));
    }

    #[test]
    fn file_roundtrip_via_save_and_load() {
        let dir = std::env::temp_dir().join("srmac_io_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.srmc");
        let mut src = small_model(2.5);
        save_model(
            &path,
            &mut src,
            CheckpointMeta {
                arch: "small".into(),
                engine: None,
                numerics: None,
            },
        )
        .expect("save");
        let mut dst = small_model(0.0);
        let meta = load_model(&path, &mut dst).expect("load");
        assert_eq!(meta.arch, "small");
        assert_eq!(
            Checkpoint::capture(&mut src, meta.clone()).layers,
            Checkpoint::capture(&mut dst, meta).layers,
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let mut m = small_model(0.0);
        assert!(matches!(
            load_model("/nonexistent/srmac/nope.srmc", &mut m),
            Err(CheckpointError::Io(_))
        ));
    }
}
