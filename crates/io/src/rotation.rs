//! Keep-K checkpoint rotation with bounded retry and corruption-tolerant
//! recovery.
//!
//! A rotation set for head path `ckpt.srmc` is the head plus numbered
//! history slots `ckpt.1.srmc`, `ckpt.2.srmc`, … (newest first, the index
//! inserted before the extension). [`save_rotating`] shifts the existing
//! slots oldest-first, then lands the new bytes atomically under the head
//! name — a crash at any point leaves every slot either intact or absent,
//! never half-written. Each full save attempt is wrapped in a
//! [`RetryPolicy`] with exponential backoff, so transient storage errors
//! are absorbed without the trainer noticing.
//!
//! [`recover_latest`] walks the set newest-first and returns the first
//! slot whose bytes pass the checksum and decode cleanly, reporting every
//! rejected slot with its typed error — the corrupt-head-fallback path of
//! crash-tolerant training.

use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::checkpoint::Checkpoint;
use crate::error::CheckpointError;
use crate::storage::{write_atomic, Storage};

/// Bounded retry with exponential backoff for checkpoint saves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (>= 1; 1 means no retries).
    pub attempts: u32,
    /// Sleep before the first retry; doubles per retry. Zero sleeps not
    /// at all (what the fault-injection tests use).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 3,
            backoff: Duration::from_millis(20),
        }
    }
}

impl RetryPolicy {
    /// A single attempt, no retries.
    #[must_use]
    pub fn none() -> Self {
        Self {
            attempts: 1,
            backoff: Duration::ZERO,
        }
    }
}

/// What a successful [`save_rotating`] call actually took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveReport {
    /// Attempts used (1 = clean first try; more means transient failures
    /// were retried away — worth a diagnostic).
    pub attempts: u32,
}

/// The path of rotation slot `i` for head path `path`: slot 0 is the head
/// itself; slot `i > 0` inserts the index before the extension
/// (`ckpt.srmc` → `ckpt.1.srmc`; an extensionless `ckpt` → `ckpt.1`).
#[must_use]
pub fn slot_path(path: &Path, i: usize) -> PathBuf {
    if i == 0 {
        return path.to_path_buf();
    }
    match path.extension() {
        Some(ext) => {
            let stem = path.file_stem().unwrap_or_default().to_os_string();
            let mut name = stem;
            name.push(format!(".{i}."));
            name.push(ext);
            path.with_file_name(name)
        }
        None => {
            let mut name = path.file_name().unwrap_or_default().to_os_string();
            name.push(format!(".{i}"));
            path.with_file_name(name)
        }
    }
}

/// Shifts the existing rotation set down one slot, oldest-first, keeping
/// at most `keep` files total. Best-effort: a failed shift must never
/// block the save itself (the head rename is the operation that matters),
/// so errors here are swallowed.
fn shift_slots(storage: &dyn Storage, path: &Path, keep: usize) {
    if keep <= 1 {
        // Keeping one file means the head is simply replaced.
        return;
    }
    // Drop the slot that would fall off the end.
    let last = slot_path(path, keep - 1);
    if storage.exists(&last) {
        storage.remove(&last).ok();
    }
    // Shift keep-2 → keep-1, …, 0 → 1 (oldest first so nothing is
    // overwritten before it has moved).
    for i in (0..keep - 1).rev() {
        let from = slot_path(path, i);
        if storage.exists(&from) {
            storage.rename(&from, &slot_path(path, i + 1)).ok();
        }
    }
}

/// Saves `bytes` as the new rotation head at `path`, keeping up to `keep`
/// generations, retrying each full atomic attempt per `retry`.
///
/// The sequence per attempt is: shift existing slots down (best-effort),
/// write a writer-unique temp file, rename it over the head. A crash at
/// any point leaves all existing generations readable.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] with the *last* attempt's error once
/// the retry budget is exhausted. The rotation set is left in whatever
/// consistent state the last attempt reached (previous generations
/// intact; no partial file under the head name).
pub fn save_rotating(
    storage: &dyn Storage,
    path: &Path,
    bytes: &[u8],
    keep: usize,
    retry: RetryPolicy,
) -> Result<SaveReport, CheckpointError> {
    let attempts = retry.attempts.max(1);
    let mut backoff = retry.backoff;
    let mut last_err: Option<std::io::Error> = None;
    for attempt in 1..=attempts {
        if attempt > 1 {
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
            backoff = backoff.saturating_mul(2);
        }
        // Shift once, on the first attempt only: retries are re-runs of
        // the atomic head write, not new generations.
        if attempt == 1 {
            shift_slots(storage, path, keep);
        }
        match write_atomic(storage, path, bytes) {
            Ok(()) => return Ok(SaveReport { attempts: attempt }),
            Err(e) => last_err = Some(e),
        }
    }
    // PANIC-OK: the retry loop runs at least once, so a failure to
    // return above always recorded an error here.
    Err(CheckpointError::Io(last_err.expect("at least one attempt")))
}

/// A checkpoint recovered from a rotation set.
#[derive(Debug)]
pub struct Recovery {
    /// The decoded checkpoint.
    pub checkpoint: Checkpoint,
    /// The slot file it came from.
    pub path: PathBuf,
    /// The slot index (0 = head; > 0 means the head was unusable and an
    /// older generation was used — the corrupt-head-fallback case).
    pub slot: usize,
    /// Slots that were present but rejected, newest-first, with the typed
    /// error each one failed on.
    pub rejected: Vec<(PathBuf, CheckpointError)>,
}

/// Scans the rotation set at `path` newest-first and returns the first
/// generation whose bytes decode to a checksum-valid checkpoint.
///
/// The scan tolerates single-slot gaps: a crash between the rotation
/// shift and the head rename leaves the head name empty while older
/// generations sit in the numbered slots, and a crash mid-shift can leave
/// one interior gap. Two adjacent missing slots mark the end of the set.
///
/// # Errors
///
/// Returns [`CheckpointError::NoValidCheckpoint`] when every present slot
/// fails to read or decode (including the degenerate empty set).
pub fn recover_latest(storage: &dyn Storage, path: &Path) -> Result<Recovery, CheckpointError> {
    let mut rejected = Vec::new();
    let mut missing_run = 0usize;
    let mut slot = 0usize;
    while missing_run < 2 {
        let p = slot_path(path, slot);
        slot += 1;
        if !storage.exists(&p) {
            missing_run += 1;
            continue;
        }
        missing_run = 0;
        let result = storage
            .read(&p)
            .map_err(CheckpointError::from)
            .and_then(|bytes| Checkpoint::decode(&bytes));
        match result {
            Ok(checkpoint) => {
                return Ok(Recovery {
                    checkpoint,
                    path: p,
                    slot: slot - 1,
                    rejected,
                })
            }
            Err(e) => rejected.push((p, e)),
        }
    }
    Err(CheckpointError::NoValidCheckpoint {
        scanned: rejected.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{fnv1a64, save_model, CheckpointMeta};
    use crate::storage::{FailpointStorage, FaultKind, FaultOp, FsStorage};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("srmac_rot_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn slot_paths_insert_the_index_before_the_extension() {
        let p = Path::new("/x/ckpt.srmc");
        assert_eq!(slot_path(p, 0), PathBuf::from("/x/ckpt.srmc"));
        assert_eq!(slot_path(p, 1), PathBuf::from("/x/ckpt.1.srmc"));
        assert_eq!(slot_path(p, 12), PathBuf::from("/x/ckpt.12.srmc"));
        let q = Path::new("/x/ckpt");
        assert_eq!(slot_path(q, 2), PathBuf::from("/x/ckpt.2"));
    }

    #[test]
    fn rotation_keeps_the_newest_k_generations() {
        let dir = tmp_dir("keepk");
        let head = dir.join("ckpt.srmc");
        let s = FsStorage;
        for gen in 0..5u8 {
            save_rotating(&s, &head, &[gen; 8], 3, RetryPolicy::none()).unwrap();
        }
        assert_eq!(std::fs::read(&head).unwrap(), [4u8; 8]);
        assert_eq!(std::fs::read(slot_path(&head, 1)).unwrap(), [3u8; 8]);
        assert_eq!(std::fs::read(slot_path(&head, 2)).unwrap(), [2u8; 8]);
        assert!(!slot_path(&head, 3).exists(), "keep=3 caps the set");
    }

    #[test]
    fn retry_absorbs_transient_write_errors() {
        let dir = tmp_dir("retry");
        let head = dir.join("ckpt.srmc");
        let s = FailpointStorage::new(FsStorage);
        s.fail_nth(FaultOp::Write, 0, FaultKind::Error);
        s.fail_nth(FaultOp::Write, 1, FaultKind::Torn(1));
        let report = save_rotating(
            &s,
            &head,
            b"payload",
            3,
            RetryPolicy {
                attempts: 3,
                backoff: Duration::ZERO,
            },
        )
        .unwrap();
        assert_eq!(report.attempts, 3);
        assert_eq!(std::fs::read(&head).unwrap(), b"payload");
    }

    #[test]
    fn exhausted_retries_surface_the_last_error() {
        let dir = tmp_dir("exhaust");
        let head = dir.join("ckpt.srmc");
        let s = FailpointStorage::new(FsStorage);
        for n in 0..2 {
            s.fail_nth(FaultOp::Write, n, FaultKind::Error);
        }
        let err = save_rotating(
            &s,
            &head,
            b"payload",
            3,
            RetryPolicy {
                attempts: 2,
                backoff: Duration::ZERO,
            },
        )
        .unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
        assert!(!head.exists(), "no partial file under the head name");
    }

    fn valid_checkpoint_bytes(dir: &Path, tag: u64) -> Vec<u8> {
        use std::sync::Arc;

        use srmac_tensor::layers::Linear;
        use srmac_tensor::{F32Engine, GemmEngine, Sequential, Tensor};

        let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
        let mut model = Sequential::new();
        let w: Vec<f32> = (0..6).map(|i| (i as f32) * 0.5 + tag as f32).collect();
        model.push(Linear::new(3, 2, Tensor::from_vec(w, &[2, 3]), engine));
        let p = dir.join(format!("src_{tag}.srmc"));
        let meta = CheckpointMeta {
            arch: format!("m{tag}"),
            ..Default::default()
        };
        save_model(&p, &mut model, meta).unwrap();
        std::fs::read(&p).unwrap()
    }

    #[test]
    fn recovery_prefers_the_head_when_valid() {
        let dir = tmp_dir("rec_head");
        let head = dir.join("ckpt.srmc");
        let bytes = valid_checkpoint_bytes(&dir, 1);
        std::fs::write(&head, &bytes).unwrap();
        let rec = recover_latest(&FsStorage, &head).unwrap();
        assert_eq!(rec.slot, 0);
        assert!(rec.rejected.is_empty());
        assert_eq!(rec.checkpoint.meta.arch, "m1");
    }

    #[test]
    fn corrupt_head_falls_back_to_the_newest_valid_slot() {
        let dir = tmp_dir("rec_fall");
        let head = dir.join("ckpt.srmc");
        let good = valid_checkpoint_bytes(&dir, 2);
        // Head: corrupted copy (flip a payload byte; checksum now fails).
        let mut bad = good.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        assert_ne!(fnv1a64(&bad), fnv1a64(&good));
        std::fs::write(&head, &bad).unwrap();
        std::fs::write(slot_path(&head, 1), &good).unwrap();
        let rec = recover_latest(&FsStorage, &head).unwrap();
        assert_eq!(rec.slot, 1, "fell back past the corrupt head");
        assert_eq!(rec.rejected.len(), 1);
        assert_eq!(rec.checkpoint.meta.arch, "m2");
    }

    #[test]
    fn all_slots_corrupt_is_a_typed_error() {
        let dir = tmp_dir("rec_none");
        let head = dir.join("ckpt.srmc");
        std::fs::write(&head, b"garbage").unwrap();
        std::fs::write(slot_path(&head, 1), b"more garbage").unwrap();
        let err = recover_latest(&FsStorage, &head).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::NoValidCheckpoint { scanned: 2 }
        ));
    }

    #[test]
    fn empty_set_is_a_typed_error() {
        let dir = tmp_dir("rec_empty");
        let err = recover_latest(&FsStorage, &dir.join("ckpt.srmc")).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::NoValidCheckpoint { scanned: 0 }
        ));
    }
}
