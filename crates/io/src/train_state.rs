//! The version-3 trainer-state record: everything a resumed run needs to
//! continue **bitwise identically** to an uninterrupted one — the
//! epoch/step cursor, the shuffle-RNG position, the loss-scaler
//! trajectory, the mid-epoch loss partials, the full training
//! configuration (gradient shards *resolved*, since they define the
//! step's numerics), the accumulated history, and the optimizer's
//! momentum buffers.
//!
//! The wire layout (appended to the checkpoint body behind a presence
//! tag; see the [`crate::checkpoint`] module docs for the framing) is a
//! pure function of the state: fixed-width little-endian integers, `f32`/
//! `f64` as raw bit patterns, and length-prefixed vectors whose lengths
//! the decoder validates against the bytes actually present before
//! allocating — hostile length fields surface as typed
//! [`CheckpointError`]s, never panics or huge allocations (property-
//! tested in `tests/proptests.rs`).

use crate::checkpoint::{push_f32s, push_u32, Reader};
use crate::error::CheckpointError;

/// The persisted snapshot of a [`Trainer`] mid-run (new in format
/// version 3).
///
/// [`Trainer`]: https://docs.rs/srmac-models (srmac_models::trainer::Trainer)
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainState {
    /// Epoch the run is inside (0-based). `epoch == config.epochs` marks
    /// a completed run.
    pub epoch: u32,
    /// Optimizer steps completed inside the current epoch. May equal the
    /// epoch's step count (checkpoint taken after the last step, before
    /// the evaluation pass).
    pub step: u32,
    /// The shuffle RNG's state after the current epoch's shuffle — a
    /// resume replays the shuffles from the seed and verifies it lands on
    /// exactly this state (a mismatch means the dataset or seed changed).
    pub rng_state: u64,
    /// Loss-scaler scale at the snapshot.
    pub scaler_scale: f32,
    /// Loss-scaler consecutive-good-step counter.
    pub scaler_good_steps: u32,
    /// Loss-scaler growth interval.
    pub scaler_growth_interval: u32,
    /// Mid-epoch running loss sum (`f64`, finite batches only).
    pub epoch_loss: f64,
    /// Mid-epoch finite-batch count.
    pub finite_batches: u32,
    /// The training configuration of the interrupted run.
    pub config: TrainConfigRecord,
    /// The history accumulated so far (completed epochs).
    pub history: HistoryRecord,
    /// SGD momentum buffers, flat, in parameter visit order; may be
    /// shorter than the parameter count (slots are created lazily by the
    /// first optimizer step).
    pub velocities: Vec<Vec<f32>>,
}

/// The persisted training configuration. Field meanings mirror
/// `srmac_models::trainer::TrainConfig`, with two deliberate deltas: the
/// gradient-shard count is stored **resolved** (the `0 = follow replicas`
/// default must not re-resolve differently on resume — it defines the
/// numerics), and the cosmetic `verbose` flag is not persisted.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainConfigRecord {
    /// Total epochs of the run.
    pub epochs: u32,
    /// Minibatch size.
    pub batch_size: u32,
    /// Initial learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Initial dynamic loss scale.
    pub init_loss_scale: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Replica count (pure scheduling; persisted for fidelity).
    pub replicas: u32,
    /// Gradient-shard count, **resolved** (always >= 1).
    pub grad_shards: u32,
    /// Training-set length — resume checks it against the dataset it is
    /// handed, since the shuffle permutation depends on it.
    pub train_len: u64,
}

/// The persisted `History`: per-epoch records plus run counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistoryRecord {
    /// Mean training loss per completed epoch.
    pub train_loss: Vec<f32>,
    /// Test accuracy (percent) per completed epoch.
    pub test_acc: Vec<f32>,
    /// Steps skipped by the loss scaler so far.
    pub skipped_steps: u64,
    /// Batches with non-finite loss so far.
    pub nonfinite_batches: u64,
    /// Final loss scale (0.0 until the run completes).
    pub final_scale: f32,
    /// Checkpoint saves that exhausted their retries so far (the
    /// graceful-degradation counter).
    pub ckpt_save_failures: u64,
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f32_bits(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

impl TrainState {
    /// Appends the wire encoding (without the presence tag) to `out`.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        push_u32(out, self.epoch);
        push_u32(out, self.step);
        push_u64(out, self.rng_state);
        push_f32_bits(out, self.scaler_scale);
        push_u32(out, self.scaler_good_steps);
        push_u32(out, self.scaler_growth_interval);
        push_u64(out, self.epoch_loss.to_bits());
        push_u32(out, self.finite_batches);
        let c = &self.config;
        push_u32(out, c.epochs);
        push_u32(out, c.batch_size);
        push_f32_bits(out, c.lr);
        push_f32_bits(out, c.momentum);
        push_f32_bits(out, c.weight_decay);
        push_f32_bits(out, c.init_loss_scale);
        push_u64(out, c.seed);
        push_u32(out, c.replicas);
        assert!(
            c.grad_shards >= 1,
            "grad_shards must be stored resolved (>= 1)"
        );
        push_u32(out, c.grad_shards);
        push_u64(out, c.train_len);
        let h = &self.history;
        push_u32(out, h.train_loss.len().try_into().expect("loss count")); // PANIC-OK: history lengths are epoch counts, far below u32::MAX.
        push_f32s(out, &h.train_loss);
        push_u32(out, h.test_acc.len().try_into().expect("acc count")); // PANIC-OK: same bound.
        push_f32s(out, &h.test_acc);
        push_u64(out, h.skipped_steps);
        push_u64(out, h.nonfinite_batches);
        push_f32_bits(out, h.final_scale);
        push_u64(out, h.ckpt_save_failures);
        push_u32(
            out,
            self.velocities.len().try_into().expect("velocity count"), // PANIC-OK: one velocity buffer per parameter tensor — far below u32::MAX.
        );
        for v in &self.velocities {
            push_u32(out, v.len().try_into().expect("velocity len")); // PANIC-OK: velocity lengths are tensor element counts, validated at u32 scale on save.
            push_f32s(out, v);
        }
    }

    /// Decodes the record (after the presence tag) from `r`, validating
    /// every structural invariant the trainer relies on.
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let epoch = r.u32()?;
        let step = r.u32()?;
        let rng_state = r.u64()?;
        let scaler_scale = f32::from_bits(r.u32()?);
        let scaler_good_steps = r.u32()?;
        let scaler_growth_interval = r.u32()?;
        let epoch_loss = f64::from_bits(r.u64()?);
        let finite_batches = r.u32()?;
        let config = TrainConfigRecord {
            epochs: r.u32()?,
            batch_size: r.u32()?,
            lr: f32::from_bits(r.u32()?),
            momentum: f32::from_bits(r.u32()?),
            weight_decay: f32::from_bits(r.u32()?),
            init_loss_scale: f32::from_bits(r.u32()?),
            seed: r.u64()?,
            replicas: r.u32()?,
            grad_shards: r.u32()?,
            train_len: r.u64()?,
        };
        if config.batch_size == 0 {
            return Err(r.malformed("train-state batch size must be nonzero"));
        }
        if config.grad_shards == 0 {
            return Err(r.malformed("train-state grad_shards must be stored resolved (>= 1)"));
        }
        if u64::from(epoch) > u64::from(config.epochs) {
            return Err(r.malformed("train-state epoch cursor beyond the configured epochs"));
        }
        let n_loss = r.count()?;
        let train_loss = r.f32s(n_loss)?;
        let n_acc = r.count()?;
        let test_acc = r.f32s(n_acc)?;
        let history = HistoryRecord {
            train_loss,
            test_acc,
            skipped_steps: r.u64()?,
            nonfinite_batches: r.u64()?,
            final_scale: f32::from_bits(r.u32()?),
            ckpt_save_failures: r.u64()?,
        };
        if history.train_loss.len() != history.test_acc.len() {
            return Err(r.malformed("train-state history loss/accuracy counts disagree"));
        }
        if history.train_loss.len() as u64 > u64::from(config.epochs) {
            return Err(r.malformed("train-state history longer than the configured epochs"));
        }
        let n_vel = r.count()?;
        let mut velocities = Vec::with_capacity(n_vel.min(r.remaining()));
        for _ in 0..n_vel {
            let len = r.u32()? as usize;
            velocities.push(r.f32s(len)?);
        }
        Ok(Self {
            epoch,
            step,
            rng_state,
            scaler_scale,
            scaler_good_steps,
            scaler_growth_interval,
            epoch_loss,
            finite_batches,
            config,
            history,
            velocities,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainState {
        TrainState {
            epoch: 3,
            step: 7,
            rng_state: 0xDEAD_BEEF_1234_5678,
            scaler_scale: 512.0,
            scaler_good_steps: 41,
            scaler_growth_interval: 2000,
            epoch_loss: 12.25625,
            finite_batches: 7,
            config: TrainConfigRecord {
                epochs: 5,
                batch_size: 16,
                lr: 0.1,
                momentum: 0.9,
                weight_decay: 1e-4,
                init_loss_scale: 1024.0,
                seed: 0xC0FFEE,
                replicas: 2,
                grad_shards: 4,
                train_len: 300,
            },
            history: HistoryRecord {
                train_loss: vec![2.5, 2.0, -0.0],
                test_acc: vec![10.0, 30.0, f32::NAN],
                skipped_steps: 2,
                nonfinite_batches: 1,
                final_scale: 0.0,
                ckpt_save_failures: 1,
            },
            velocities: vec![vec![0.5, -0.25, 0.0], vec![], vec![1.0e-7]],
        }
    }

    #[test]
    fn roundtrip_is_bitwise() {
        let state = sample();
        let mut bytes = Vec::new();
        state.encode_into(&mut bytes);
        let mut r = Reader::new(&bytes);
        let back = TrainState::decode_from(&mut r).expect("decode");
        assert_eq!(r.remaining(), 0, "decode must consume exactly the record");
        // PartialEq on f32 treats NaN as unequal; compare the bit level.
        assert_eq!(
            back.history.test_acc[2].to_bits(),
            state.history.test_acc[2].to_bits()
        );
        let mut again = Vec::new();
        back.encode_into(&mut again);
        assert_eq!(bytes, again, "re-encode must reproduce identical bytes");
    }

    #[test]
    fn truncation_anywhere_is_typed() {
        let state = sample();
        let mut bytes = Vec::new();
        state.encode_into(&mut bytes);
        for keep in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..keep]);
            assert!(
                TrainState::decode_from(&mut r).is_err(),
                "truncation to {keep} bytes must error"
            );
        }
    }

    #[test]
    fn structural_invariants_are_enforced() {
        let break_and_decode = |f: &dyn Fn(&mut TrainState)| {
            let mut s = sample();
            f(&mut s);
            let mut bytes = Vec::new();
            s.encode_into(&mut bytes);
            TrainState::decode_from(&mut Reader::new(&bytes))
        };
        assert!(matches!(
            break_and_decode(&|s| s.config.batch_size = 0),
            Err(CheckpointError::Malformed { .. })
        ));
        assert!(matches!(
            break_and_decode(&|s| s.epoch = 99),
            Err(CheckpointError::Malformed { .. })
        ));
        assert!(matches!(
            break_and_decode(&|s| s.history.test_acc.push(1.0)),
            Err(CheckpointError::Malformed { .. })
        ));
    }
}
