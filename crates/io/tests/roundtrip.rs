//! End-to-end checkpoint round trips on the paper's workloads: a trained
//! ResNet-20 (batch-norm running statistics and all) must save → load →
//! evaluate to *bitwise* identical logits and accuracy, under the exact
//! f32 engine and the low-precision MAC engine alike.

use std::sync::Arc;

use srmac_io::{load_model, read_checkpoint, save_model, Checkpoint, CheckpointMeta};
use srmac_models::{data, evaluate, resnet, train, TrainConfig};
use srmac_qgemm::{AccumRounding, MacGemm, MacGemmConfig};
use srmac_tensor::layers::Layer;
use srmac_tensor::{F32Engine, GemmEngine, Sequential, Tensor};

fn ckpt_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("srmac_io_roundtrip");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn logits_bits(model: &mut Sequential, x: &Tensor) -> Vec<u32> {
    model
        .forward(x, false)
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

/// Trains a slim ResNet-20 for a couple of epochs (so batch-norm running
/// statistics and weights are all non-trivial), checkpoints it, restores
/// into a freshly built model, and demands bitwise equality of logits and
/// evaluation accuracy.
fn roundtrip_case(label: &str, engine: Arc<dyn GemmEngine>, cfg: Option<MacGemmConfig>) {
    let train_ds = data::synth_cifar10(60, 8, 5);
    let test_ds = data::synth_cifar10(40, 8, 6);
    let mut model = resnet::resnet20(&engine, 4, 10, 11);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 12,
        lr: 0.05,
        ..TrainConfig::default()
    };
    train(&mut model, &train_ds, &test_ds, &tc);

    let path = ckpt_path(&format!("resnet20_{label}.srmc"));
    save_model(
        &path,
        &mut model,
        CheckpointMeta {
            arch: "resnet20-w4-c10".into(),
            engine: cfg,
            numerics: None,
        },
    )
    .expect("save");

    // A fresh differently-seeded model (different weights AND different
    // running stats) restored from the checkpoint.
    let mut restored = resnet::resnet20(&engine, 4, 10, 999);
    let meta = load_model(&path, &mut restored).expect("load");
    assert_eq!(meta.arch, "resnet20-w4-c10");

    let (x, _) = test_ds.batch(&(0..8).collect::<Vec<_>>());
    assert_eq!(
        logits_bits(&mut model, &x),
        logits_bits(&mut restored, &x),
        "{label}: restored logits must match the source bit for bit"
    );
    let acc_src = evaluate(&mut model, &test_ds, 10);
    let acc_restored = evaluate(&mut restored, &test_ds, 10);
    assert_eq!(
        acc_src.to_bits(),
        acc_restored.to_bits(),
        "{label}: restored accuracy must match bitwise"
    );

    // Saving the restored model reproduces the original file byte for
    // byte: the format is a pure function of model state.
    let path2 = ckpt_path(&format!("resnet20_{label}_resaved.srmc"));
    save_model(
        &path2,
        &mut restored,
        CheckpointMeta {
            arch: "resnet20-w4-c10".into(),
            engine: cfg,
            numerics: None,
        },
    )
    .expect("re-save");
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&path2).unwrap(),
        "{label}: re-encoding a restored model must be byte-identical"
    );
    std::fs::remove_file(path).ok();
    std::fs::remove_file(path2).ok();
}

#[test]
fn resnet20_f32_roundtrip_is_bitwise() {
    roundtrip_case("f32", Arc::new(F32Engine::new(2)), None);
}

#[test]
fn resnet20_mac_sr_roundtrip_is_bitwise() {
    // The paper's best MAC: the SR streams make training nondeterministic
    // across seeds but perfectly deterministic for a fixed config, and the
    // checkpoint must restore the weights such that eval logits (computed
    // through the same SR engine) are bitwise identical.
    let cfg = MacGemmConfig::fp8_fp12(AccumRounding::Stochastic { r: 13 }, false).with_threads(2);
    roundtrip_case("mac_sr13", Arc::new(MacGemm::new(cfg)), Some(cfg));
}

#[test]
fn engine_meta_rebuilds_the_same_engine() {
    // The stored MacGemmConfig is enough to rebuild an engine that
    // produces bitwise-identical products — the "load on a fresh process"
    // story: nothing about the engine lives outside the checkpoint.
    let cfg = MacGemmConfig::fp8_fp12(AccumRounding::Stochastic { r: 13 }, false).with_seed(42);
    let engine: Arc<dyn GemmEngine> = Arc::new(MacGemm::new(cfg));
    let mut model = resnet::resnet20(&engine, 4, 10, 7);
    let path = ckpt_path("engine_meta.srmc");
    save_model(
        &path,
        &mut model,
        CheckpointMeta {
            arch: "resnet20-w4-c10".into(),
            engine: Some(cfg),
            numerics: None,
        },
    )
    .expect("save");

    let ckpt = read_checkpoint(&path).expect("read");
    let restored_cfg = ckpt.meta.engine.expect("engine meta present");
    let rebuilt: Arc<dyn GemmEngine> = Arc::new(MacGemm::new(restored_cfg));
    let mut restored = resnet::resnet20(&rebuilt, 4, 10, 7);
    ckpt.apply_to(&mut restored).expect("apply");

    let test_ds = data::synth_cifar10(20, 8, 9);
    let (x, _) = test_ds.batch(&[0, 3, 5]);
    assert_eq!(
        logits_bits(&mut model, &x),
        logits_bits(&mut restored, &x),
        "an engine rebuilt from checkpoint metadata must reproduce logits bitwise"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn checkpoint_captures_batchnorm_running_stats() {
    // Zero out a restored model's running stats first and verify the load
    // actually brings the trained statistics back (if visit_state were
    // skipped this test would fail while pure-weight tests still passed).
    let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
    let mut model = resnet::resnet20(&engine, 4, 10, 3);
    let train_ds = data::synth_cifar10(30, 8, 1);
    let test_ds = data::synth_cifar10(20, 8, 2);
    let tc = TrainConfig {
        epochs: 1,
        batch_size: 10,
        ..TrainConfig::default()
    };
    train(&mut model, &train_ds, &test_ds, &tc);

    let meta = CheckpointMeta {
        arch: "resnet20-w4-c10".into(),
        engine: None,
        numerics: None,
    };
    let ckpt = Checkpoint::capture(&mut model, meta);
    let stored_state: Vec<Vec<f32>> = ckpt.layers.iter().flat_map(|l| l.state.clone()).collect();
    assert!(
        stored_state.iter().flatten().any(|&v| v != 0.0 && v != 1.0),
        "trained running stats should have moved off their init values"
    );

    let mut restored = resnet::resnet20(&engine, 4, 10, 3);
    restored.visit_state(&mut |s| s.iter_mut().for_each(|v| *v = 0.0));
    ckpt.apply_to(&mut restored).expect("apply");
    let mut roundtripped: Vec<Vec<f32>> = Vec::new();
    restored.visit_state(&mut |s| roundtripped.push(s.clone()));
    assert_eq!(stored_state, roundtripped);
}

/// A faithful version-1 writer for back-compat testing: the v1 layout is
/// exactly the current layout minus the numerics field (v2) and the
/// train-state field (v3), so we take the current bytes of a policy-free,
/// state-free checkpoint, drop those two tag bytes, stamp version 1, and
/// re-checksum.
fn downgrade_to_v1(cur: &[u8], arch_len: usize, has_engine: bool) -> Vec<u8> {
    let mut body = cur[..cur.len() - 8].to_vec();
    // magic(4) + version(2) + flags(2) + len(4) + arch + engine record.
    let numerics_tag = 12 + arch_len + 1 + if has_engine { 16 } else { 0 };
    assert_eq!(body[numerics_tag], 0, "fixture must carry no numerics");
    assert_eq!(
        body[numerics_tag + 1],
        0,
        "fixture must carry no train state"
    );
    body.remove(numerics_tag + 1);
    body.remove(numerics_tag);
    body[4..6].copy_from_slice(&1u16.to_le_bytes());
    let checksum = srmac_io::fnv1a64(&body);
    body.extend_from_slice(&checksum.to_le_bytes());
    body
}

/// The v2 layout is the current one minus the train-state field.
fn downgrade_to_v2(cur: &[u8], arch_len: usize, has_engine: bool) -> Vec<u8> {
    let mut body = cur[..cur.len() - 8].to_vec();
    let numerics_tag = 12 + arch_len + 1 + if has_engine { 16 } else { 0 };
    let numerics_len = match body[numerics_tag] {
        0 => 1,
        _ => {
            let len =
                u32::from_le_bytes(body[numerics_tag + 1..numerics_tag + 5].try_into().unwrap())
                    as usize;
            1 + 4 + len
        }
    };
    let train_tag = numerics_tag + numerics_len;
    assert_eq!(body[train_tag], 0, "fixture must carry no train state");
    body.remove(train_tag);
    body[4..6].copy_from_slice(&2u16.to_le_bytes());
    let checksum = srmac_io::fnv1a64(&body);
    body.extend_from_slice(&checksum.to_le_bytes());
    body
}

#[test]
fn v2_stores_and_revalidates_the_numerics_policy() {
    let spec = "fwd=fp8_fp12_rn;bwd=fp8_fp12_sr13";
    let numerics = srmac_qgemm::numerics_from_spec(spec).expect("mixed spec");
    let mut model = resnet::resnet20_with(&numerics, 4, 10, 31);
    let path = ckpt_path("policy_v2.srmc");
    save_model(
        &path,
        &mut model,
        CheckpointMeta {
            arch: "resnet20-w4-c10".into(),
            engine: None,
            numerics: Some(spec.into()),
        },
    )
    .expect("save");

    // The policy survives the round trip and rebuilds the exact engines.
    let ckpt = read_checkpoint(&path).expect("read");
    assert_eq!(ckpt.meta.numerics.as_deref(), Some(spec));
    let rebuilt = srmac_qgemm::numerics_from_spec(ckpt.meta.numerics.as_deref().unwrap())
        .expect("stored spec resolves");
    for role in srmac_tensor::GemmRole::ALL {
        assert_eq!(
            rebuilt.engine(role).spec(),
            numerics.engine(role).spec(),
            "{role}: rebuilt engine must match the training engine exactly"
        );
    }
    let mut restored = resnet::resnet20_with(&rebuilt, 4, 10, 999);
    load_model(&path, &mut restored).expect("load");
    let (x, _) = data::synth_cifar10(4, 8, 7).batch(&[0, 1, 2, 3]);
    assert_eq!(logits_bits(&mut model, &x), logits_bits(&mut restored, &x));
    std::fs::remove_file(&path).ok();
}

#[test]
fn version_1_checkpoints_still_decode() {
    let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
    let mut model = resnet::resnet20(&engine, 4, 10, 13);
    let arch = "resnet20-w4-c10";
    let cfg = MacGemmConfig::fp8_fp12(AccumRounding::Stochastic { r: 13 }, false).with_seed(9);
    let v2 = Checkpoint::capture(
        &mut model,
        CheckpointMeta {
            arch: arch.into(),
            engine: Some(cfg),
            numerics: None,
        },
    )
    .encode();
    let v1 = downgrade_to_v1(&v2, arch.len(), true);

    let ckpt = Checkpoint::decode(&v1).expect("v1 decodes");
    assert_eq!(ckpt.meta.arch, arch);
    assert_eq!(ckpt.meta.numerics, None, "v1 carries no policy");
    assert!(ckpt.train.is_none(), "v1 carries no train state");
    let eng = ckpt.meta.engine.expect("v1 engine record");
    assert_eq!(eng.seed, 9);
    let mut restored = resnet::resnet20(&engine, 4, 10, 999);
    ckpt.apply_to(&mut restored).expect("apply");
    let (x, _) = data::synth_cifar10(2, 8, 3).batch(&[0, 1]);
    assert_eq!(logits_bits(&mut model, &x), logits_bits(&mut restored, &x));

    // v2 (numerics, no train state) decodes as well.
    let v2_bytes = downgrade_to_v2(&v2, arch.len(), true);
    let ckpt2 = Checkpoint::decode(&v2_bytes).expect("v2 decodes");
    assert_eq!(ckpt2.meta.arch, arch);
    assert!(ckpt2.train.is_none(), "v2 carries no train state");
    assert_eq!(srmac_io::wire_version(&v2_bytes).unwrap(), 2);

    // Versions beyond the writer's remain typed errors.
    let mut future = v2.clone();
    let body_len = future.len() - 8;
    future[4..6].copy_from_slice(&4u16.to_le_bytes());
    let checksum = srmac_io::fnv1a64(&future[..body_len]);
    future[body_len..].copy_from_slice(&checksum.to_le_bytes());
    assert!(matches!(
        Checkpoint::decode(&future),
        Err(srmac_io::CheckpointError::UnsupportedVersion(4))
    ));
}

#[test]
fn hostile_policy_specs_are_typed_errors_never_panics() {
    let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
    let mut model = resnet::resnet20(&engine, 4, 10, 17);
    let arch = "a";
    let good_spec = "fwd=f32;bwd=f32";
    let bytes = Checkpoint::capture(
        &mut model,
        CheckpointMeta {
            arch: arch.into(),
            engine: None,
            numerics: Some(good_spec.into()),
        },
    )
    .encode();

    // Corrupt the spec in place (same length, bad role key) and fix the
    // checksum: decoding must reject it as a typed policy error.
    let pos = bytes
        .windows(good_spec.len())
        .position(|w| w == good_spec.as_bytes())
        .expect("spec bytes present");
    let mut bad = bytes.clone();
    bad[pos] = b'q'; // "qwd=f32;bwd=f32"
    let body_len = bad.len() - 8;
    let checksum = srmac_io::fnv1a64(&bad[..body_len]);
    bad[body_len..].copy_from_slice(&checksum.to_le_bytes());
    assert!(matches!(
        Checkpoint::decode(&bad),
        Err(srmac_io::CheckpointError::BadPolicySpec { .. })
    ));

    // Same for a structurally valid policy whose atom is garbage.
    let mut bad_atom = bytes;
    bad_atom[pos + 4] = b'g'; // "fwd=g32;bwd=f32"
    let checksum = srmac_io::fnv1a64(&bad_atom[..body_len]);
    bad_atom[body_len..].copy_from_slice(&checksum.to_le_bytes());
    assert!(matches!(
        Checkpoint::decode(&bad_atom),
        Err(srmac_io::CheckpointError::BadPolicySpec { .. })
    ));
}

#[test]
fn save_model_rejects_bad_policy_specs_as_typed_errors() {
    // The fallible save path validates caller-supplied policy strings
    // up front (the panic inside `encode` is only the backstop for
    // direct misuse of the lower-level API, tested below).
    let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
    let mut model = resnet::resnet20(&engine, 4, 10, 23);
    let path = ckpt_path("never_written.srmc");
    let err = save_model(
        &path,
        &mut model,
        CheckpointMeta {
            arch: "a".into(),
            engine: None,
            numerics: Some("fwd=warp9;bwd=f32".into()),
        },
    )
    .expect_err("unresolvable spec");
    assert!(matches!(
        err,
        srmac_io::CheckpointError::BadPolicySpec { .. }
    ));
    assert!(!path.exists(), "nothing may be written on a rejected spec");
}

#[test]
#[should_panic(expected = "cannot serialize numerics spec")]
fn writer_refuses_unresolvable_policy_specs() {
    let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
    let mut model = resnet::resnet20(&engine, 4, 10, 19);
    let _ = Checkpoint::capture(
        &mut model,
        CheckpointMeta {
            arch: "a".into(),
            engine: None,
            numerics: Some("fwd=warp9;bwd=f32".into()),
        },
    )
    .encode();
}
