//! Checkpoint robustness property tests: arbitrary corruption of a valid
//! checkpoint — truncation anywhere, flipped bits anywhere (header,
//! records, checksum), wrong version, wrong magic, random garbage — must
//! come back as a typed [`CheckpointError`], never a panic, and never an
//! `Ok` carrying silently different state.

use std::sync::Arc;
use std::sync::OnceLock;

use proptest::prelude::*;
use srmac_io::{Checkpoint, CheckpointError, CheckpointMeta, FORMAT_VERSION, MAGIC};
use srmac_qgemm::{AccumRounding, MacGemmConfig};
use srmac_tensor::layers::{BatchNorm2d, Linear};
use srmac_tensor::{F32Engine, GemmEngine, Sequential, Tensor};

/// A valid reference checkpoint (built once; the corruption strategies
/// only need its bytes).
fn valid_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
        let mut m = Sequential::new();
        let w: Vec<f32> = (0..24).map(|i| (i as f32 * 0.37).sin()).collect();
        m.push(Linear::new(6, 4, Tensor::from_vec(w, &[4, 6]), engine));
        m.push(BatchNorm2d::new(4));
        Checkpoint::capture(
            &mut m,
            CheckpointMeta {
                arch: "prop-model".into(),
                engine: Some(MacGemmConfig::fp8_fp12(
                    AccumRounding::Stochastic { r: 13 },
                    false,
                )),
                numerics: None,
            },
        )
        .encode()
    })
}

/// Every single-bit flip breaks the checksum (or *is* the checksum, which
/// then disagrees with the content), so decode must return a typed error.
/// The only `Ok` a flip could ever produce would require an FNV-1a
/// collision between the mutated body and the mutated footer — and even
/// then the result would have to differ from the original, which we also
/// reject below.
fn assert_flip_detected(pos: usize, bit: u8) {
    let mut bytes = valid_bytes().to_vec();
    bytes[pos] ^= 1 << bit;
    match Checkpoint::decode(&bytes) {
        Err(_) => {}
        Ok(ckpt) => {
            // Astronomically unlikely, but the contract is "never silently
            // different": a surviving decode must round-trip to the
            // original bytes.
            assert_eq!(
                ckpt.encode(),
                valid_bytes(),
                "flip at byte {pos} bit {bit} decoded Ok with different content"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Truncation at any length: typed error, no panic.
    #[test]
    fn truncation_yields_typed_error(frac in 0u64..10_000) {
        let full = valid_bytes();
        let keep = (full.len() as u64 * frac / 10_000) as usize;
        prop_assume!(keep < full.len());
        let got = Checkpoint::decode(&full[..keep]);
        prop_assert!(
            matches!(
                got,
                Err(CheckpointError::Truncated { .. })
                    | Err(CheckpointError::ChecksumMismatch { .. })
            ),
            "truncation to {keep} bytes gave {got:?}"
        );
    }

    /// A flipped bit anywhere in the file is detected.
    #[test]
    fn bit_flips_are_detected(pos in 0u64..u64::MAX, bit in 0u8..8) {
        let pos = (pos % valid_bytes().len() as u64) as usize;
        assert_flip_detected(pos, bit);
    }

    /// Corrupting the trailing checksum specifically reports a checksum
    /// mismatch (the footer is validated before any record is parsed).
    #[test]
    fn checksum_corruption_reports_checksum_mismatch(delta in 1u64..u64::MAX) {
        let mut bytes = valid_bytes().to_vec();
        let n = bytes.len();
        let stored = u64::from_le_bytes(bytes[n - 8..].try_into().unwrap());
        bytes[n - 8..].copy_from_slice(&stored.wrapping_add(delta).to_le_bytes());
        prop_assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
    }

    /// Random garbage never panics; it errors (or, vacuously, would have
    /// to be a byte-perfect valid file, which random bytes are not).
    #[test]
    fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert!(Checkpoint::decode(&data).is_err());
    }
}

#[test]
fn wrong_version_is_rejected_as_unsupported() {
    let mut bytes = valid_bytes().to_vec();
    // Rewrite the version field and fix up the checksum so only the
    // version differs — the decoder must reject it on the version itself.
    bytes[4..6].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    let n = bytes.len();
    let sum = srmac_io::fnv1a64(&bytes[..n - 8]);
    bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
    assert!(matches!(
        Checkpoint::decode(&bytes),
        Err(CheckpointError::UnsupportedVersion(v)) if v == FORMAT_VERSION + 1
    ));
}

#[test]
fn wrong_magic_is_rejected_as_bad_magic() {
    let mut bytes = valid_bytes().to_vec();
    bytes[..4].copy_from_slice(b"NOPE");
    let n = bytes.len();
    let sum = srmac_io::fnv1a64(&bytes[..n - 8]);
    bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
    assert!(matches!(
        Checkpoint::decode(&bytes),
        Err(CheckpointError::BadMagic(m)) if &m == b"NOPE"
    ));
}

#[test]
fn hostile_length_fields_cannot_allocate_or_panic() {
    // Re-checksummed records with absurd counts/lengths: the decoder must
    // bound every allocation by the bytes present and error out.
    let base = valid_bytes();
    // The layer-count field sits right after the engine block. Find it by
    // re-encoding with a recognizable arch and compute offsets directly:
    // 4 magic + 2 version + 2 flags + 4 arch len.
    let arch_len = u32::from_le_bytes(base[8..12].try_into().unwrap()) as usize;
    let engine_tag_at = 12 + arch_len;
    assert_eq!(base[engine_tag_at], 1, "reference has engine meta");
    let layer_count_at = engine_tag_at + 1 + MacGemmConfig::WIRE_BYTES;
    for huge in [u32::MAX, 1 << 30, 65_535] {
        let mut bytes = base.to_vec();
        bytes[layer_count_at..layer_count_at + 4].copy_from_slice(&huge.to_le_bytes());
        let n = bytes.len();
        let sum = srmac_io::fnv1a64(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(
            Checkpoint::decode(&bytes).is_err(),
            "layer count {huge} must be rejected"
        );
    }
    // A tiny "valid-shaped" file claiming a gigantic string.
    let mut tiny = Vec::new();
    tiny.extend_from_slice(&MAGIC);
    tiny.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    tiny.extend_from_slice(&0u16.to_le_bytes());
    tiny.extend_from_slice(&u32::MAX.to_le_bytes()); // arch length
    let sum = srmac_io::fnv1a64(&tiny);
    tiny.extend_from_slice(&sum.to_le_bytes());
    assert!(matches!(
        Checkpoint::decode(&tiny),
        Err(CheckpointError::Truncated { .. })
    ));
}
