//! Checkpoint robustness property tests: arbitrary corruption of a valid
//! checkpoint — truncation anywhere, flipped bits anywhere (header,
//! records, checksum), wrong version, wrong magic, random garbage — must
//! come back as a typed [`CheckpointError`], never a panic, and never an
//! `Ok` carrying silently different state.

use std::sync::Arc;
use std::sync::OnceLock;

use proptest::prelude::*;
use srmac_io::{
    Checkpoint, CheckpointError, CheckpointMeta, HistoryRecord, TrainConfigRecord, TrainState,
    FORMAT_VERSION, MAGIC,
};
use srmac_qgemm::{AccumRounding, MacGemmConfig};
use srmac_tensor::layers::{BatchNorm2d, Linear};
use srmac_tensor::{F32Engine, GemmEngine, Sequential, Tensor};

fn reference_model() -> Sequential {
    let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
    let mut m = Sequential::new();
    let w: Vec<f32> = (0..24).map(|i| (i as f32 * 0.37).sin()).collect();
    m.push(Linear::new(6, 4, Tensor::from_vec(w, &[4, 6]), engine));
    m.push(BatchNorm2d::new(4));
    m
}

fn reference_meta() -> CheckpointMeta {
    CheckpointMeta {
        arch: "prop-model".into(),
        engine: Some(MacGemmConfig::fp8_fp12(
            AccumRounding::Stochastic { r: 13 },
            false,
        )),
        numerics: None,
    }
}

fn reference_train_state() -> TrainState {
    TrainState {
        epoch: 2,
        step: 5,
        rng_state: 0x1234_5678_9ABC_DEF0,
        scaler_scale: 1024.0,
        scaler_good_steps: 17,
        scaler_growth_interval: 2000,
        epoch_loss: 8.75,
        finite_batches: 5,
        config: TrainConfigRecord {
            epochs: 4,
            batch_size: 8,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 1e-4,
            init_loss_scale: 1024.0,
            seed: 0xC0FFEE,
            replicas: 1,
            grad_shards: 2,
            train_len: 64,
        },
        history: HistoryRecord {
            train_loss: vec![2.2, 2.0],
            test_acc: vec![12.5, 25.0],
            skipped_steps: 1,
            nonfinite_batches: 0,
            final_scale: 0.0,
            ckpt_save_failures: 0,
        },
        velocities: vec![vec![0.25; 24], vec![0.5; 4]],
    }
}

/// A valid reference checkpoint (built once; the corruption strategies
/// only need its bytes).
fn valid_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| Checkpoint::capture(&mut reference_model(), reference_meta()).encode())
}

/// A valid reference checkpoint **with a v3 train-state record**, so the
/// corruption sweeps also cover the resume path's bytes.
fn valid_bytes_train() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        Checkpoint::capture(&mut reference_model(), reference_meta())
            .with_train_state(reference_train_state())
            .encode()
    })
}

fn reference(with_train: bool) -> &'static [u8] {
    if with_train {
        valid_bytes_train()
    } else {
        valid_bytes()
    }
}

/// Every single-bit flip breaks the checksum (or *is* the checksum, which
/// then disagrees with the content), so decode must return a typed error.
/// The only `Ok` a flip could ever produce would require an FNV-1a
/// collision between the mutated body and the mutated footer — and even
/// then the result would have to differ from the original, which we also
/// reject below.
fn assert_flip_detected(with_train: bool, pos: usize, bit: u8) {
    let base = reference(with_train);
    let mut bytes = base.to_vec();
    bytes[pos] ^= 1 << bit;
    match Checkpoint::decode(&bytes) {
        Err(_) => {}
        Ok(ckpt) => {
            // Astronomically unlikely, but the contract is "never silently
            // different": a surviving decode must round-trip to the
            // original bytes.
            assert_eq!(
                ckpt.encode(),
                base,
                "flip at byte {pos} bit {bit} decoded Ok with different content"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Truncation at any length: typed error, no panic — with and without
    /// the v3 train-state record present.
    #[test]
    fn truncation_yields_typed_error(with_train in any::<bool>(), frac in 0u64..10_000) {
        let full = reference(with_train);
        let keep = (full.len() as u64 * frac / 10_000) as usize;
        prop_assume!(keep < full.len());
        let got = Checkpoint::decode(&full[..keep]);
        prop_assert!(
            matches!(
                got,
                Err(CheckpointError::Truncated { .. })
                    | Err(CheckpointError::ChecksumMismatch { .. })
            ),
            "truncation to {keep} bytes gave {got:?}"
        );
    }

    /// A flipped bit anywhere in the file is detected.
    #[test]
    fn bit_flips_are_detected(with_train in any::<bool>(), pos in 0u64..u64::MAX, bit in 0u8..8) {
        let pos = (pos % reference(with_train).len() as u64) as usize;
        assert_flip_detected(with_train, pos, bit);
    }

    /// Corrupting the trailing checksum specifically reports a checksum
    /// mismatch (the footer is validated before any record is parsed).
    #[test]
    fn checksum_corruption_reports_checksum_mismatch(with_train in any::<bool>(), delta in 1u64..u64::MAX) {
        let mut bytes = reference(with_train).to_vec();
        let n = bytes.len();
        let stored = u64::from_le_bytes(bytes[n - 8..].try_into().unwrap());
        bytes[n - 8..].copy_from_slice(&stored.wrapping_add(delta).to_le_bytes());
        prop_assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
    }

    /// Random garbage never panics; it errors (or, vacuously, would have
    /// to be a byte-perfect valid file, which random bytes are not).
    #[test]
    fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert!(Checkpoint::decode(&data).is_err());
    }
}

#[test]
fn wrong_version_is_rejected_as_unsupported() {
    let mut bytes = valid_bytes().to_vec();
    // Rewrite the version field and fix up the checksum so only the
    // version differs — the decoder must reject it on the version itself.
    bytes[4..6].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    let n = bytes.len();
    let sum = srmac_io::fnv1a64(&bytes[..n - 8]);
    bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
    assert!(matches!(
        Checkpoint::decode(&bytes),
        Err(CheckpointError::UnsupportedVersion(v)) if v == FORMAT_VERSION + 1
    ));
}

#[test]
fn wrong_magic_is_rejected_as_bad_magic() {
    let mut bytes = valid_bytes().to_vec();
    bytes[..4].copy_from_slice(b"NOPE");
    let n = bytes.len();
    let sum = srmac_io::fnv1a64(&bytes[..n - 8]);
    bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
    assert!(matches!(
        Checkpoint::decode(&bytes),
        Err(CheckpointError::BadMagic(m)) if &m == b"NOPE"
    ));
}

/// Offset of the train-state presence tag in the reference layout:
/// 4 magic + 2 version + 2 flags + 4 arch len + arch + engine tag +
/// engine record + numerics tag (0, no policy in the fixtures).
fn train_tag_offset(base: &[u8]) -> usize {
    let arch_len = u32::from_le_bytes(base[8..12].try_into().unwrap()) as usize;
    let engine_tag_at = 12 + arch_len;
    assert_eq!(base[engine_tag_at], 1, "reference has engine meta");
    let numerics_tag_at = engine_tag_at + 1 + MacGemmConfig::WIRE_BYTES;
    assert_eq!(base[numerics_tag_at], 0, "reference has no numerics policy");
    numerics_tag_at + 1
}

fn patch_u32_and_rechecksum(base: &[u8], at: usize, v: u32) -> Vec<u8> {
    let mut bytes = base.to_vec();
    bytes[at..at + 4].copy_from_slice(&v.to_le_bytes());
    let n = bytes.len();
    let sum = srmac_io::fnv1a64(&bytes[..n - 8]);
    bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
    bytes
}

#[test]
fn hostile_length_fields_cannot_allocate_or_panic() {
    // Re-checksummed records with absurd counts/lengths: the decoder must
    // bound every allocation by the bytes present and error out.
    let base = valid_bytes();
    // The layer-count field sits right after the (absent) train-state tag.
    let train_tag_at = train_tag_offset(base);
    assert_eq!(base[train_tag_at], 0, "reference carries no train state");
    let layer_count_at = train_tag_at + 1;
    for huge in [u32::MAX, 1 << 30, 65_535] {
        let bytes = patch_u32_and_rechecksum(base, layer_count_at, huge);
        assert!(
            Checkpoint::decode(&bytes).is_err(),
            "layer count {huge} must be rejected"
        );
    }
    // A tiny "valid-shaped" file claiming a gigantic string.
    let mut tiny = Vec::new();
    tiny.extend_from_slice(&MAGIC);
    tiny.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    tiny.extend_from_slice(&0u16.to_le_bytes());
    tiny.extend_from_slice(&u32::MAX.to_le_bytes()); // arch length
    let sum = srmac_io::fnv1a64(&tiny);
    tiny.extend_from_slice(&sum.to_le_bytes());
    assert!(matches!(
        Checkpoint::decode(&tiny),
        Err(CheckpointError::Truncated { .. })
    ));
}

#[test]
fn hostile_train_state_fields_are_typed_errors() {
    // Corrupt individual fields inside the v3 train-state record (and fix
    // the checksum so only that field is wrong): the decoder must reject
    // each one as a typed structural error, never panic or over-allocate.
    let base = valid_bytes_train();
    let rec = train_tag_offset(base);
    assert_eq!(base[rec], 1, "reference carries a train state");
    let rec = rec + 1; // first byte of the TrainState record
    let state = reference_train_state();
    let n_loss = state.history.train_loss.len();
    let n_acc = state.history.test_acc.len();
    // Field offsets inside the record (see train_state.rs wire order).
    let epoch_at = rec;
    let grad_shards_at = rec + 76;
    let loss_count_at = rec + 88;
    let acc_count_at = loss_count_at + 4 + 4 * n_loss;
    let vel_count_at = acc_count_at + 4 + 4 * n_acc + 8 + 8 + 4 + 8;
    let cases: [(usize, u32, &str); 6] = [
        (epoch_at, u32::MAX, "epoch cursor beyond configured epochs"),
        (grad_shards_at, 0, "unresolved grad_shards"),
        (loss_count_at, u32::MAX, "huge loss count"),
        (
            loss_count_at,
            (n_loss + 1) as u32,
            "loss/acc count mismatch",
        ),
        (acc_count_at, 1 << 30, "huge accuracy count"),
        (vel_count_at, u32::MAX, "huge velocity count"),
    ];
    for (at, v, what) in cases {
        let bytes = patch_u32_and_rechecksum(base, at, v);
        let got = Checkpoint::decode(&bytes);
        assert!(
            matches!(
                got,
                Err(CheckpointError::Malformed { .. }) | Err(CheckpointError::Truncated { .. })
            ),
            "{what}: expected a typed structural error, got {got:?}"
        );
    }
}

#[test]
fn train_state_roundtrips_through_the_container() {
    let ckpt = Checkpoint::decode(valid_bytes_train()).expect("decode");
    assert_eq!(ckpt.train.as_ref(), Some(&reference_train_state()));
    assert_eq!(ckpt.encode(), valid_bytes_train(), "re-encode is bitwise");
    // The train-free reference really has no record.
    let plain = Checkpoint::decode(valid_bytes()).expect("decode");
    assert!(plain.train.is_none());
}
