//! Fault-injected checkpoint storage: every failure a disk can throw at a
//! save — clean errors, torn writes, a crash halfway through — must leave
//! the rotation set recoverable, surface as a typed error, and never
//! litter partial files. Drives the real `save_model` byte path through
//! [`FailpointStorage`].

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use srmac_io::{
    read_checkpoint_with, recover_latest, save_model_with, save_rotating, slot_path,
    CheckpointError, CheckpointMeta, FailpointStorage, FaultKind, FaultOp, FsStorage, RetryPolicy,
};
use srmac_tensor::layers::Linear;
use srmac_tensor::{F32Engine, GemmEngine, Sequential, Tensor};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srmac_faults_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn model(tag: u64) -> Sequential {
    let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
    let mut m = Sequential::new();
    let w: Vec<f32> = (0..8).map(|i| (i as f32) * 0.125 - tag as f32).collect();
    m.push(Linear::new(4, 2, Tensor::from_vec(w, &[2, 4]), engine));
    m
}

fn meta(tag: u64) -> CheckpointMeta {
    CheckpointMeta {
        arch: format!("fault-{tag}"),
        ..Default::default()
    }
}

fn no_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 1,
        backoff: Duration::ZERO,
    }
}

fn dir_entries(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    names
}

#[test]
fn failed_save_model_write_leaves_no_temp_litter() {
    // The regression test for the historical save_model leak: a failed
    // *write* (not just a failed rename) must remove the partial temp.
    let dir = tmp_dir("save_leak");
    let path = dir.join("model.srmc");
    let storage = FailpointStorage::new(FsStorage);
    storage.fail_nth(FaultOp::Write, 0, FaultKind::Torn(16));
    let err = save_model_with(&storage, &path, &mut model(1), meta(1)).unwrap_err();
    assert!(matches!(err, CheckpointError::Io(_)));
    assert_eq!(
        dir_entries(&dir),
        Vec::<String>::new(),
        "a torn save must leave neither the target nor a .tmp behind"
    );
}

#[test]
fn failed_rename_leaves_no_temp_litter_and_keeps_the_old_file() {
    let dir = tmp_dir("rename_leak");
    let path = dir.join("model.srmc");
    save_model_with(&FsStorage, &path, &mut model(1), meta(1)).unwrap();
    let before = std::fs::read(&path).unwrap();
    let storage = FailpointStorage::new(FsStorage);
    storage.fail_nth(FaultOp::Rename, 0, FaultKind::Error);
    assert!(save_model_with(&storage, &path, &mut model(2), meta(2)).is_err());
    assert_eq!(dir_entries(&dir), vec!["model.srmc".to_string()]);
    assert_eq!(
        std::fs::read(&path).unwrap(),
        before,
        "the previous checkpoint must survive a failed replacement intact"
    );
}

#[test]
fn torn_write_never_exposes_a_partial_checkpoint() {
    let dir = tmp_dir("torn");
    let path = dir.join("model.srmc");
    save_model_with(&FsStorage, &path, &mut model(1), meta(1)).unwrap();
    for keep in [0, 1, 7, 64] {
        let storage = FailpointStorage::new(FsStorage);
        storage.fail_nth(FaultOp::Write, 0, FaultKind::Torn(keep));
        assert!(save_model_with(&storage, &path, &mut model(9), meta(9)).is_err());
        let ckpt = read_checkpoint_with(&FsStorage, &path).expect("head still valid");
        assert_eq!(ckpt.meta.arch, "fault-1", "old generation intact");
    }
}

#[test]
fn mid_write_crash_is_recoverable_from_the_rotation_set() {
    // A simulated process death halfway through writing the new head: the
    // "restarted process" (a fresh storage over the same directory) must
    // recover the previous generation via the rotation scan.
    let dir = tmp_dir("crash");
    let path = dir.join("ckpt.srmc");
    let gen1 = {
        let mut m = model(1);
        let bytes = srmac_io::Checkpoint::capture(&mut m, meta(1)).encode();
        save_rotating(&FsStorage, &path, &bytes, 3, no_retry()).unwrap();
        bytes
    };
    let storage = FailpointStorage::new(FsStorage);
    storage.fail_nth(FaultOp::Write, 0, FaultKind::Crash);
    let mut m2 = model(2);
    let bytes2 = srmac_io::Checkpoint::capture(&mut m2, meta(2)).encode();
    assert!(save_rotating(&storage, &path, &bytes2, 3, no_retry()).is_err());
    assert!(storage.crashed());

    // Restart: fresh storage, same directory. The crash happened while
    // writing the *temp* file, so the head (shifted gen1... actually the
    // shift moved gen1 to slot 1 and the head write died on the temp; the
    // head name is absent) — recovery must find gen1 in slot 1.
    let rec = recover_latest(&FsStorage, &path).expect("recoverable");
    assert_eq!(rec.checkpoint.encode(), gen1);
    assert!(rec.slot >= 1, "head was lost; an older generation serves");
}

#[test]
fn corrupt_head_falls_back_with_the_rejection_recorded() {
    let dir = tmp_dir("fallback");
    let path = dir.join("ckpt.srmc");
    let mut m = model(3);
    let bytes = srmac_io::Checkpoint::capture(&mut m, meta(3)).encode();
    save_rotating(&FsStorage, &path, &bytes, 3, no_retry()).unwrap();
    save_rotating(&FsStorage, &path, &bytes, 3, no_retry()).unwrap();
    // Corrupt the head in place.
    let mut bad = bytes.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x55;
    std::fs::write(&path, &bad).unwrap();
    let rec = recover_latest(&FsStorage, &path).expect("slot 1 valid");
    assert_eq!(rec.slot, 1);
    assert_eq!(rec.rejected.len(), 1);
    assert!(
        matches!(rec.rejected[0].1, CheckpointError::ChecksumMismatch { .. }),
        "the head rejection carries its typed decode error"
    );
    assert_eq!(rec.path, slot_path(&path, 1));
}

#[test]
fn unreadable_head_falls_back_too() {
    // An injected *read* error on the head (bad sector, not bad bytes)
    // must also fall through to the next generation.
    let dir = tmp_dir("read_fault");
    let path = dir.join("ckpt.srmc");
    let mut m = model(4);
    let bytes = srmac_io::Checkpoint::capture(&mut m, meta(4)).encode();
    save_rotating(&FsStorage, &path, &bytes, 3, no_retry()).unwrap();
    save_rotating(&FsStorage, &path, &bytes, 3, no_retry()).unwrap();
    let storage = FailpointStorage::new(FsStorage);
    storage.fail_nth(FaultOp::Read, 0, FaultKind::Error);
    let rec = recover_latest(&storage, &path).expect("slot 1 valid");
    assert_eq!(rec.slot, 1);
    assert!(matches!(rec.rejected[0].1, CheckpointError::Io(_)));
}

#[test]
fn retries_absorb_transient_faults_and_then_exhaust() {
    let dir = tmp_dir("retries");
    let path = dir.join("ckpt.srmc");
    let mut m = model(5);
    let bytes = srmac_io::Checkpoint::capture(&mut m, meta(5)).encode();

    // Two transient faults, three attempts: succeeds on the third.
    let storage = FailpointStorage::new(FsStorage);
    storage.fail_nth(FaultOp::Write, 0, FaultKind::Error);
    storage.fail_nth(FaultOp::Write, 1, FaultKind::Torn(8));
    let report = save_rotating(
        &storage,
        &path,
        &bytes,
        2,
        RetryPolicy {
            attempts: 3,
            backoff: Duration::ZERO,
        },
    )
    .expect("third attempt lands");
    assert_eq!(report.attempts, 3);
    assert_eq!(std::fs::read(&path).unwrap(), bytes);

    // Faults outnumbering the budget: typed error, set still consistent.
    let storage = FailpointStorage::new(FsStorage);
    for n in 0..3 {
        storage.fail_nth(FaultOp::Write, n, FaultKind::Error);
    }
    let err = save_rotating(
        &storage,
        &path,
        &bytes,
        2,
        RetryPolicy {
            attempts: 3,
            backoff: Duration::ZERO,
        },
    )
    .unwrap_err();
    assert!(matches!(err, CheckpointError::Io(_)));
    let rec = recover_latest(&FsStorage, &path).expect("previous generation survives");
    assert_eq!(rec.checkpoint.encode(), bytes);
}
