//! # srmac-rng: random bit sources for stochastic rounding
//!
//! The paper's MAC design is completed by "a r-bit pseudo-random number
//! generator (PRNG) that operates in parallel and asynchronously with the
//! multiplier ... based on a Galois linear feedback shift register (LFSR)"
//! (Sec. III). This crate models that block: [`GaloisLfsr`] is a
//! bit-faithful Galois LFSR with maximal-length taps for every width from
//! 4 to 64, and [`SplitMix64`] is a fast software generator used for
//! seeding, data generation and tests.
//!
//! Both implement [`RandomBits`], the interface the adder/MAC models and
//! the GEMM engine draw their rounding words from.
//!
//! # Example
//!
//! ```
//! use srmac_rng::{GaloisLfsr, RandomBits};
//!
//! let mut lfsr = GaloisLfsr::new(13, 0x1ABC);
//! let w1 = lfsr.next_bits(13);
//! let w2 = lfsr.next_bits(13);
//! assert!(w1 < 1 << 13 && w2 < 1 << 13);
//! assert_ne!((w1, w2), (0, 0)); // a nonzero-seeded LFSR never reaches 0
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

/// A source of uniformly distributed random words of a requested width.
pub trait RandomBits {
    /// Returns the next `n`-bit random word (`1 <= n <= 64`) in the low bits.
    fn next_bits(&mut self, n: u32) -> u64;
}

/// Build-invariant scalar transcendentals.
///
/// IEEE-754 pins `+ - * / sqrt` exactly, but `exp`/`ln`/`sin`/`cos` are
/// library approximations — and when the autovectorizer widens a loop over
/// them it may substitute the C library's SIMD variants (libmvec), whose
/// results differ from scalar libm by a few ULPs. That would make f32
/// training results (and therefore the golden-vector `History` tests)
/// depend on the build's target features. Every transcendental on a
/// deterministic data path must go through these `#[inline(never)]`
/// wrappers instead: an opaque scalar call the vectorizer cannot replace,
/// so the same seeds produce the same bits under `-C target-cpu=native`,
/// plain x86-64, or any feature matrix in between.
pub mod scalar_math {
    /// Scalar `exp` for `f32`.
    #[inline(never)]
    #[must_use]
    pub fn exp_f32(x: f32) -> f32 {
        x.exp()
    }

    /// Scalar `ln` for `f32`.
    #[inline(never)]
    #[must_use]
    pub fn ln_f32(x: f32) -> f32 {
        x.ln()
    }

    /// Scalar `ln` for `f64`.
    #[inline(never)]
    #[must_use]
    pub fn ln_f64(x: f64) -> f64 {
        x.ln()
    }

    /// Scalar `sin` for `f64`.
    #[inline(never)]
    #[must_use]
    pub fn sin_f64(x: f64) -> f64 {
        x.sin()
    }

    /// Scalar `cos` for `f64`.
    #[inline(never)]
    #[must_use]
    pub fn cos_f64(x: f64) -> f64 {
        x.cos()
    }
}

/// Maximal-length feedback polynomials (taps) for Galois LFSRs of width
/// 4..=64. Entry `w - 4` is the tap mask for width `w`: the XOR mask applied
/// when the shifted-out bit is 1. Source: standard tables of primitive
/// polynomials over GF(2) (Xilinx XAPP052 and successors).
const TAPS: [u64; 61] = [
    0x9,                // 4: x^4 + x^3 + 1
    0x12,               // 5
    0x21,               // 6
    0x41,               // 7
    0x8E,               // 8
    0x108,              // 9
    0x204,              // 10
    0x402,              // 11
    0x829,              // 12
    0x100D,             // 13
    0x2015,             // 14
    0x4001,             // 15
    0x8016,             // 16
    0x10004,            // 17
    0x20013,            // 18
    0x40013,            // 19
    0x80004,            // 20
    0x100002,           // 21
    0x200001,           // 22
    0x400010,           // 23
    0x80000D,           // 24
    0x1000004,          // 25
    0x2000023,          // 26
    0x4000013,          // 27
    0x8000004,          // 28
    0x10000002,         // 29
    0x20000029,         // 30
    0x40000004,         // 31
    0x80000057,         // 32
    0x100000029,        // 33
    0x200000073,        // 34
    0x400000002,        // 35
    0x80000003B,        // 36
    0x100000001F,       // 37
    0x2000000031,       // 38
    0x4000000008,       // 39
    0x800000001C,       // 40
    0x10000000004,      // 41
    0x2000000001F,      // 42
    0x4000000002C,      // 43
    0x80000000032,      // 44
    0x10000000000D,     // 45
    0x200000000097,     // 46
    0x400000000010,     // 47
    0x80000000005B,     // 48
    0x1000000000038,    // 49
    0x200000000000E,    // 50
    0x4000000000025,    // 51
    0x8000000000004,    // 52
    0x10000000000023,   // 53
    0x2000000000003E,   // 54
    0x40000000000023,   // 55
    0x8000000000004A,   // 56
    0x100000000000016,  // 57
    0x200000000000031,  // 58
    0x40000000000003D,  // 59
    0x800000000000001,  // 60
    0x1000000000000013, // 61
    0x2000000000000034, // 62
    0x4000000000000001, // 63
    0x800000000000000D, // 64
];

/// A Galois linear feedback shift register with maximal-length taps.
///
/// The register holds `width` bits and never reaches the all-zero state
/// from a nonzero seed; its sequence period is `2^width - 1`.
///
/// One hardware step produces one output bit (the LSB before the shift);
/// [`RandomBits::next_bits`] steps `n` times and packs the bits MSB-first,
/// mirroring a serial-to-parallel collection register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaloisLfsr {
    state: u64,
    width: u32,
    taps: u64,
}

impl GaloisLfsr {
    /// Creates an LFSR of the given width (4..=64), seeded with `seed`.
    ///
    /// A zero (or all-masked-zero) seed is replaced by a fixed nonzero
    /// constant, since the all-zero state is a fixed point.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `4..=64`.
    #[must_use]
    pub fn new(width: u32, seed: u64) -> Self {
        assert!((4..=64).contains(&width), "LFSR width must be in 4..=64");
        let m = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let mut state = seed & m;
        if state == 0 {
            state = 0x5A5A_5A5A_5A5A_5A5A & m;
        }
        if state == 0 {
            state = 1;
        }
        Self {
            state,
            width,
            taps: TAPS[(width - 4) as usize],
        }
    }

    /// The register width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The current register state.
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Advances the register one step, returning the output bit.
    pub fn step(&mut self) -> u64 {
        let out = self.state & 1;
        self.state >>= 1;
        if out == 1 {
            self.state ^= self.taps;
        }
        out
    }
}

impl RandomBits for GaloisLfsr {
    fn next_bits(&mut self, n: u32) -> u64 {
        assert!((1..=64).contains(&n), "can draw 1..=64 bits");
        let mut w = 0u64;
        for _ in 0..n {
            w = (w << 1) | self.step();
        }
        w
    }
}

/// The SplitMix64 state increment (Weyl constant, Steele et al.).
///
/// Public so that vectorized reimplementations of the stream (the AVX-512
/// MAC kernel in `srmac-qgemm`) stay pinned to the exact same sequence.
pub const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output finalizer: the stateless bijective mix applied to
/// the Weyl-sequence state. Shared by [`SplitMix64`] and [`SrLaneStreams`]
/// so both produce bit-identical words from the same seed.
#[inline]
#[must_use]
const fn splitmix_finalize(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SplitMix64: a tiny, high-quality software PRNG (Steele et al.), used for
/// seeding LFSRs, synthetic data generation and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[inline]
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The current generator state. `SplitMix64::new(state)` reconstructs
    /// a generator that continues the exact same word sequence — the hook
    /// checkpoint/resume paths use to persist and verify RNG positions.
    #[inline]
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Returns the next 64-bit word.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(SPLITMIX_GAMMA);
        splitmix_finalize(self.state)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * 2f64.powi(-53)
    }

    /// Returns a uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * 2f32.powi(-24)
    }

    /// Returns a standard normal sample (Box–Muller). Transcendentals go
    /// through [`scalar_math`] so the sample bits are build-invariant.
    pub fn next_normal(&mut self) -> f64 {
        let u1 = (self.next_f64()).max(1e-300);
        let u2 = self.next_f64();
        (-2.0 * scalar_math::ln_f64(u1)).sqrt() * scalar_math::cos_f64(std::f64::consts::TAU * u2)
    }

    /// Returns a uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        // Rejection-free multiply-shift; bias is negligible for n << 2^64.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

impl RandomBits for SplitMix64 {
    fn next_bits(&mut self, n: u32) -> u64 {
        assert!((1..=64).contains(&n), "can draw 1..=64 bits");
        self.next_u64() >> (64 - n)
    }
}

/// `L` independent SplitMix64-equivalent rounding-word streams advanced
/// together — the random-bit block generator behind the lane-batched MAC
/// kernel of `srmac-qgemm`.
///
/// Each lane reproduces, bit for bit, the word sequence of
/// `SplitMix64::new(seeds[lane])`: the SplitMix64 state walk is a Weyl
/// sequence (`state_n = seed + n * GAMMA`), so the `n`-th word is a pure
/// function of the seed and a counter. That removes the serial state
/// dependency a per-draw `next_u64` loop carries: a whole block of words
/// (across lanes *and* positions) is computed from independent counter
/// values, which the compiler can unroll and vectorize freely.
///
/// Two consumption shapes are offered:
///
/// - [`SrLaneStreams::draw`] computes the next word of every lane and
///   advances only the lanes the caller marks as consuming — the shape of
///   the GEMM inner loop, where a lane consumes a rounding word only for a
///   non-zero product (the SR determinism contract: one word per non-zero
///   product, in `k` order, per output element).
/// - [`SrLaneStreams::fill_block`] fills a `block[t][lane]` buffer in one
///   pass with every lane advancing — batch amortization for
///   always-consuming workloads (statistical tests, the golden rounder).
///
/// # Example
///
/// ```
/// use srmac_rng::{SplitMix64, SrLaneStreams};
///
/// let mut lanes = SrLaneStreams::new([7u64, 11]);
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(11);
/// // Lane 0 consumes both draws, lane 1 only the second.
/// let w0 = lanes.draw([true, false]);
/// let w1 = lanes.draw([true, true]);
/// assert_eq!([w0[0], w1[0]], [a.next_u64(), a.next_u64()]);
/// assert_eq!(w0[1], w1[1]); // an unconsumed word is offered again
/// assert_eq!(w1[1], b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrLaneStreams<const L: usize> {
    states: [u64; L],
}

impl<const L: usize> SrLaneStreams<L> {
    /// Creates the lane streams; lane `l` replays `SplitMix64::new(seeds[l])`.
    #[inline]
    #[must_use]
    pub fn new(seeds: [u64; L]) -> Self {
        Self { states: seeds }
    }

    /// Returns the next word of every lane and advances the lanes with
    /// `consume[lane]` set. A lane that does not consume is offered the
    /// same word on the next call — exactly the behaviour of calling
    /// `next_u64` only on consuming steps.
    #[inline]
    pub fn draw(&mut self, consume: [bool; L]) -> [u64; L] {
        let mut words = [0u64; L];
        for l in 0..L {
            let stepped = self.states[l].wrapping_add(SPLITMIX_GAMMA);
            words[l] = splitmix_finalize(stepped);
            // Branch-free commit: keep the old state on non-consuming lanes.
            let keep = (consume[l] as u64).wrapping_neg();
            self.states[l] = (stepped & keep) | (self.states[l] & !keep);
        }
        words
    }

    /// Fills `block[t][lane]` with the next `block.len()` words of every
    /// lane (all lanes advance). Each output is computed directly from
    /// `seed + (t + 1) * GAMMA` — no serial dependency between positions,
    /// so the whole block is one flat, vectorizable pass.
    pub fn fill_block(&mut self, block: &mut [[u64; L]]) {
        for (t, row) in block.iter_mut().enumerate() {
            let step = (t as u64 + 1).wrapping_mul(SPLITMIX_GAMMA);
            for (word, state) in row.iter_mut().zip(&self.states) {
                *word = splitmix_finalize(state.wrapping_add(step));
            }
        }
        let advance = (block.len() as u64).wrapping_mul(SPLITMIX_GAMMA);
        for state in &mut self.states {
            *state = state.wrapping_add(advance);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr_periods_are_maximal_for_small_widths() {
        for width in 4..=16u32 {
            let mut l = GaloisLfsr::new(width, 1);
            let start = l.state();
            let mut period = 0u64;
            loop {
                l.step();
                period += 1;
                if l.state() == start {
                    break;
                }
                assert!(period <= 1 << width, "width {width}: period too long");
            }
            assert_eq!(period, (1 << width) - 1, "width {width}");
        }
    }

    #[test]
    fn lfsr_never_hits_zero() {
        let mut l = GaloisLfsr::new(13, 12345);
        for _ in 0..100_000 {
            l.step();
            assert_ne!(l.state(), 0);
        }
    }

    #[test]
    fn lfsr_zero_seed_is_fixed_up() {
        let l = GaloisLfsr::new(8, 0);
        assert_ne!(l.state(), 0);
    }

    #[test]
    fn lfsr_bits_are_roughly_balanced() {
        // Over a full period the number of 1 output bits is 2^(w-1).
        let width = 12u32;
        let mut l = GaloisLfsr::new(width, 7);
        let mut ones = 0u64;
        for _ in 0..((1u64 << width) - 1) {
            ones += l.step();
        }
        assert_eq!(ones, 1 << (width - 1));
    }

    #[test]
    fn lfsr_words_cover_range_roughly_uniformly() {
        let mut l = GaloisLfsr::new(16, 0xACE1);
        let n = 64 * 1024;
        let mut buckets = [0u32; 16];
        for _ in 0..n {
            let w = l.next_bits(8);
            buckets[(w >> 4) as usize] += 1;
        }
        let expect = n as f64 / 16.0;
        for (i, &c) in buckets.iter().enumerate() {
            let dev = (f64::from(c) - expect).abs() / expect;
            assert!(dev < 0.1, "bucket {i}: count {c} deviates {dev:.3}");
        }
    }

    #[test]
    fn splitmix_next_below_in_range() {
        let mut g = SplitMix64::new(42);
        for _ in 0..10_000 {
            assert!(g.next_below(10) < 10);
        }
    }

    #[test]
    fn splitmix_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut g = SplitMix64::new(7);
            (0..16).map(|_| g.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut g = SplitMix64::new(7);
            (0..16).map(|_| g.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut g = SplitMix64::new(8);
            (0..16).map(|_| g.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn lane_streams_match_splitmix_when_always_consuming() {
        let seeds = [1u64, 0xDEAD_BEEF, 42, u64::MAX];
        let mut lanes = SrLaneStreams::new(seeds);
        let mut refs: Vec<SplitMix64> = seeds.iter().map(|&s| SplitMix64::new(s)).collect();
        for _ in 0..1000 {
            let words = lanes.draw([true; 4]);
            for (l, r) in refs.iter_mut().enumerate() {
                assert_eq!(words[l], r.next_u64());
            }
        }
    }

    #[test]
    fn lane_streams_masked_draws_match_conditional_consumption() {
        // A lane that consumes only on selected steps must see exactly the
        // words a scalar SplitMix64 would hand out on those steps — the SR
        // determinism contract of the GEMM inner loop.
        let seeds = [9u64, 10, 11];
        let mut lanes = SrLaneStreams::new(seeds);
        let mut refs: Vec<SplitMix64> = seeds.iter().map(|&s| SplitMix64::new(s)).collect();
        let mut pattern = SplitMix64::new(123);
        for _ in 0..2000 {
            let consume = [
                pattern.next_u64() & 1 == 1,
                pattern.next_u64() & 3 == 0,
                true,
            ];
            let words = lanes.draw(consume);
            for l in 0..3 {
                if consume[l] {
                    assert_eq!(words[l], refs[l].next_u64(), "lane {l}");
                }
            }
        }
    }

    #[test]
    fn lane_streams_fill_block_matches_draws() {
        let seeds = [3u64, 5];
        let mut blocked = SrLaneStreams::new(seeds);
        let mut stepped = SrLaneStreams::new(seeds);
        let mut block = [[0u64; 2]; 37];
        blocked.fill_block(&mut block);
        for row in &block {
            assert_eq!(*row, stepped.draw([true, true]));
        }
        // Both generators continue from the same position.
        assert_eq!(blocked.draw([true, true]), stepped.draw([true, true]));
    }

    #[test]
    fn normal_moments_sane() {
        let mut g = SplitMix64::new(99);
        let n = 100_000;
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = g.next_normal();
            s += x;
            s2 += x * x;
        }
        let mean = s / f64::from(n);
        let var = s2 / f64::from(n) - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
