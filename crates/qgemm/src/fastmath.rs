//! Fast fixed-format scalar kernels: a `u64` specialization of the golden
//! rounding/addition algorithms of `srmac-fp`, for the inner loops of the
//! GEMM emulation. Exhaustively verified against the golden implementation
//! (see the `fast_vs_golden` tests): same bits, always.

use srmac_fp::{mask, FpFormat};

/// Accumulation rounding mode of the fast kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccumRounding {
    /// IEEE round-to-nearest-even.
    Nearest,
    /// Stochastic rounding with `r` random bits per operation.
    Stochastic {
        /// Number of random bits.
        r: u32,
    },
}

impl AccumRounding {
    fn r(&self) -> u32 {
        match self {
            AccumRounding::Nearest => 2,
            AccumRounding::Stochastic { r } => *r,
        }
    }
}

/// Format-derived constants of the fast addition algebra: every field
/// width, mask, exponent bound and alignment width the scalar
/// [`FastAdder`] and the lane-batched `FastAdderBatch` (see `batch.rs`)
/// both work from. Extracting them into one shared spec keeps the two
/// kernels provably on the same algebra — the batch kernel is the scalar
/// algebra applied to `L` codes at once, not a reimplementation with its
/// own constants.
#[derive(Clone, Copy, Debug)]
pub(crate) struct AdderSpec {
    /// The accumulator format.
    pub fmt: FpFormat,
    /// Significand precision `p` (implicit bit included).
    pub p: u32,
    /// Stored significand width `p - 1`.
    pub mbits: u32,
    /// Exponent-field mask (at bit 0).
    pub emask: u64,
    /// Significand-field mask.
    pub mmask: u64,
    /// Magnitude mask: all encoding bits except the sign.
    pub magmask: u64,
    /// The encoding sign bit.
    pub signbit: u64,
    /// ULP exponent of the smallest quantum (`emin - (p - 1)`).
    pub qmin: i32,
    /// Minimum normal exponent.
    pub emin: i32,
    /// Maximum normal exponent.
    pub emax: i32,
    /// Exponent bias.
    pub bias: i32,
    /// Whether subnormals are honoured.
    pub sub: bool,
    /// Alignment width: operand significands are pre-shifted by `f` so
    /// every sticky/rounding bit of the sum is explicit.
    pub f: u32,
    /// Number of stochastic-rounding bits (2 under RN, for the guard +
    /// round positions).
    pub r: u32,
    /// Mask of the `r` rounding bits.
    pub rmask: u64,
}

impl AdderSpec {
    /// Whether this algebra fits the *narrow* (u32 lane word) kernel of
    /// `batch.rs`: the pre-shifted significand sum must stay below `2^32`
    /// (`p + f + 1` bits, so `p + f <= 31`), the exponent field must fit
    /// the narrow word's 13-bit field, and the raw encoding carried by
    /// special words its 16 bits. The paper's E6M5 accumulator fits at
    /// every supported `r` (SR13: `p + f = 6 + 23 = 29`); an E5M10
    /// accumulator at SR13 (`11 + 28 = 39`) does not and stays on the
    /// u64 kernel.
    pub(crate) fn fits_narrow(&self) -> bool {
        self.p + self.f <= 31 && self.emask <= 0x1FFF && self.fmt.bits() <= 16
    }

    /// Derives the constants, enforcing the fast-path envelope.
    ///
    /// # Panics
    ///
    /// Panics if the format or `r` exceeds the fast-path envelope.
    pub fn new(fmt: FpFormat, mode: AccumRounding) -> Self {
        let p = fmt.precision();
        let r = mode.r();
        assert!(p <= 12, "fast adder supports p <= 12");
        assert!(r <= 24, "fast adder supports r <= 24");
        if let AccumRounding::Stochastic { r } = mode {
            // r = 0 would make the special-value path (golden ops::add,
            // which requires 1..=64 random bits) panic mid-GEMM; reject it
            // at construction like the golden implementation does.
            assert!(r >= 1, "stochastic rounding needs at least 1 random bit");
        }
        let f = r.max(2) + p + 4;
        assert!(2 * p + r + 8 < 64, "fast path must fit u64");
        Self {
            fmt,
            p,
            mbits: fmt.man_bits(),
            emask: mask(fmt.exp_bits()),
            mmask: fmt.man_mask(),
            magmask: mask(fmt.bits() - 1),
            signbit: 1 << (fmt.bits() - 1),
            qmin: fmt.min_quantum(),
            emin: fmt.emin(),
            emax: fmt.emax(),
            bias: fmt.bias(),
            sub: fmt.subnormals(),
            f,
            r,
            rmask: mask(r),
        }
    }
}

/// A fixed-format floating-point adder specialized for narrow formats
/// (`p <= 12`, `E <= 8`, `r <= 24`), operating on encodings in `u64` words.
#[derive(Clone, Copy, Debug)]
pub struct FastAdder {
    spec: AdderSpec,
    mode: AccumRounding,
}

impl FastAdder {
    /// Creates the adder.
    ///
    /// # Panics
    ///
    /// Panics if the format or `r` exceeds the fast-path envelope.
    #[must_use]
    pub fn new(fmt: FpFormat, mode: AccumRounding) -> Self {
        Self {
            spec: AdderSpec::new(fmt, mode),
            mode,
        }
    }

    /// The shared algebra constants (also consumed by `FastAdderBatch`).
    pub(crate) fn spec(&self) -> &AdderSpec {
        &self.spec
    }

    /// The format this adder operates on.
    #[must_use]
    pub fn format(&self) -> FpFormat {
        self.spec.fmt
    }

    /// Adds two encodings with the rounding word `word` (ignored for RN).
    ///
    /// Bit-identical to `srmac_fp::ops::add` with the corresponding mode.
    #[inline]
    #[must_use]
    pub fn add(&self, a: u64, b: u64, word: u64) -> u64 {
        let spec = self.spec;
        let ea = (a >> spec.mbits) & spec.emask;
        let eb = (b >> spec.mbits) & spec.emask;
        if ea == spec.emask || eb == spec.emask {
            return self.add_special(a, b);
        }
        let ma = a & spec.mmask;
        let mb = b & spec.mmask;
        let sa = a & spec.signbit != 0;
        let sb = b & spec.signbit != 0;
        let a_zero = ea == 0 && (ma == 0 || !spec.sub);
        let b_zero = eb == 0 && (mb == 0 || !spec.sub);
        if a_zero || b_zero {
            if a_zero && b_zero {
                return if sa && sb { spec.signbit } else { 0 };
            }
            return if a_zero { b } else { a };
        }

        // ULP-anchored decode (branchless: `hid` is the implicit bit, zero
        // for subnormal encodings, and the subnormal exponent select is a
        // mask-blend — both compile to straight-line code).
        let dec = |e: u64, m: u64| -> (i32, u64) {
            let norm = (e != 0) as u64;
            let exp_norm = e as i32 - spec.bias - spec.mbits as i32;
            let exp = (spec.qmin & (norm as i32 - 1)) | (exp_norm & -(norm as i32));
            (exp, m | (norm << spec.mbits))
        };
        let (expa0, siga0) = dec(ea, ma);
        let (expb0, sigb0) = dec(eb, mb);

        // Magnitude order via the integer-compare trick (same format),
        // selected with explicit arithmetic blends: the comparison is
        // data-dependent and mispredicts constantly in the GEMM inner
        // loop, so no branch (and no compiler-chosen conditional-move
        // lottery) is left on this path.
        let amag = a & spec.magmask;
        let bmag = b & spec.magmask;
        let swap = bmag > amag;
        let sm = (swap as u64).wrapping_neg();
        let smi = -(swap as i32);
        let expa = expa0 ^ ((expa0 ^ expb0) & smi);
        let expb = expa0 ^ expb0 ^ expa;
        let siga = siga0 ^ ((siga0 ^ sigb0) & sm);
        let sigb = siga0 ^ sigb0 ^ siga;
        let na = (sa & !swap) | (sb & swap);
        let nb = sa ^ sb ^ na;
        if amag == bmag && na != nb {
            return 0; // exact cancellation -> +0
        }
        let d = (expa - expb) as u32;

        let x = siga << spec.f;
        let (y, sigma) = if d <= spec.f {
            (sigb << (spec.f - d), false)
        } else {
            let sh = d - spec.f;
            if sh >= 64 {
                (0, sigb != 0)
            } else {
                (sigb >> sh, sigb & mask(sh) != 0)
            }
        };

        // Branch-free effective subtraction (the operand signs are just as
        // data-dependent as the magnitude order):
        // `x - y - sigma == x + !y + (1 - sigma)` in two's complement. For
        // a subtraction the shifted-out tail (sigma) borrows one ULP and
        // leaves a trail of ones; for an addition it is plain sticky.
        let sub = na != nb;
        let subm = (sub as u64).wrapping_neg();
        let s = x
            .wrapping_add(y ^ subm)
            .wrapping_add(subm & (1 - u64::from(sigma)));
        let ones = sub && sigma;
        let extra_sticky = !sub && sigma;
        if s == 0 {
            return 0;
        }
        self.round_pack(na, expa - spec.f as i32, s, ones, extra_sticky, word)
    }

    /// Rounds `(-1)^neg * s * 2^exp` (with optional trailing ones / extra
    /// sticky) into the format. `u64` port of `FpFormat::round_finite`.
    #[inline]
    fn round_pack(
        &self,
        neg: bool,
        exp: i32,
        s: u64,
        ones: bool,
        extra_sticky: bool,
        word: u64,
    ) -> u64 {
        let spec = self.spec;
        let p = spec.p;
        let msb = 63 - s.leading_zeros() as i32;
        let qn = exp + msb - (p as i32 - 1);
        let mut q = if spec.sub { qn.max(spec.qmin) } else { qn };
        let drop = q - exp;

        let (mut kept, up) = if drop <= 0 {
            debug_assert!(!ones, "trailing ones cannot reach the exact path here");
            ((s << (-drop) as u32), false)
        } else {
            let dr = drop as u32;
            debug_assert!(dr < 64);
            let kept = s >> dr;
            let tail = s & mask(dr);
            let up = match self.mode {
                AccumRounding::Nearest => {
                    // Branch-free RN-even decision. The guard bit, the
                    // sticky disjunction and the kept-LSB tiebreak are all
                    // ~coin flips in the accumulation loop, and the
                    // short-circuiting `&&`/`||` chain this used to be
                    // compiled to a ladder of mispredicting branches —
                    // which made RN measurably *slower* than SR despite
                    // doing strictly less work. (`mask(0) == 0`, so the
                    // old `dr >= 2` gate on the sticky term is subsumed.)
                    let guard = (tail >> (dr - 1)) & 1;
                    let rest = u64::from(tail & mask(dr - 1) != 0)
                        | u64::from(ones)
                        | u64::from(extra_sticky);
                    guard & (rest | kept) == 1
                }
                AccumRounding::Stochastic { r } => {
                    let t = if dr >= r {
                        tail >> (dr - r)
                    } else {
                        (tail << (r - dr)) | if ones { mask(r - dr) } else { 0 }
                    };
                    t + (word & spec.rmask) >= 1 << r
                }
            };
            (kept, up)
        };
        // Branch-free round-up and carry renormalization: `up` is a
        // data-dependent coin flip under SR, and the carry (`kept` hitting
        // `1 << p` exactly) is its rare amplification — both mispredict
        // badly as branches in the accumulation loop.
        kept += u64::from(up);
        let carry = (kept >> p) as u32; // 1 iff kept overflowed to 1 << p
        kept >>= carry;
        q += carry as i32;
        let sbit = if neg { spec.signbit } else { 0 };
        if kept == 0 {
            return sbit;
        }
        if kept < 1 << (p - 1) {
            if !spec.sub {
                return sbit;
            }
            return sbit | kept;
        }
        let e = q + p as i32 - 1;
        if e > spec.emax {
            return sbit | (spec.emask << spec.mbits); // infinity
        }
        if e < spec.emin {
            return sbit; // flush (only without subnormals)
        }
        sbit | (((e + spec.bias) as u64) << spec.mbits) | (kept & spec.mmask)
    }

    #[cold]
    fn add_special(&self, a: u64, b: u64) -> u64 {
        let mode = match self.mode {
            AccumRounding::Nearest => srmac_fp::RoundMode::NearestEven,
            AccumRounding::Stochastic { r } => srmac_fp::RoundMode::Stochastic { r, word: 0 },
        };
        srmac_fp::ops::add(self.spec.fmt, a, b, mode)
    }
}

/// A fast, saturating `f32 -> small format` round-to-nearest quantizer.
///
/// Values beyond the largest finite target value clamp to it (the standard
/// FP8 training practice — dynamic loss scaling keeps ranges in check);
/// NaN propagates.
#[derive(Clone, Copy, Debug)]
pub struct FastQuantizer {
    fmt: FpFormat,
    p: u32,
    mbits: u32,
    mmask: u64,
    signbit: u64,
    qmin: i32,
    emin: i32,
    emax: i32,
    bias: i32,
    sub: bool,
    /// Fast normal-range path: enabled when the target's normal range sits
    /// inside the `f32` normal range.
    fast: bool,
    /// `f32` bit pattern of `2^emin` (smallest normal target magnitude).
    fast_lo: u32,
    /// `abs_bits >> fast_shift` of the largest finite target value.
    fast_hi_t: u64,
    /// Bits dropped from an `f32` significand at the target's precision.
    fast_shift: u32,
    /// Exponent-field rebias from `f32` to the target, pre-shifted.
    fast_rebias: u64,
    /// Whether [`FastQuantizer::quantize_block`] may take the 16-wide
    /// AVX-512 lane path (byte-sized target, fast path available, CPU
    /// support detected at construction).
    vect: bool,
}

impl FastQuantizer {
    /// Creates the quantizer.
    ///
    /// # Panics
    ///
    /// Panics for formats beyond the fast-path envelope (`p <= 12`).
    #[must_use]
    pub fn new(fmt: FpFormat) -> Self {
        assert!(fmt.precision() <= 12, "fast quantizer supports p <= 12");
        let p = fmt.precision();
        let fast = fmt.emin() >= -126 && fmt.emax() <= 127;
        let fast_shift = 23 - (p - 1);
        let (fast_lo, fast_hi_t) = if fast {
            let lo = ((fmt.emin() + 127) as u32) << 23;
            // Exact: the largest finite target value has p <= 12 < 24
            // significant bits and an in-range exponent.
            let hi = (fmt.decode_f64(fmt.max_finite_bits(false)) as f32).to_bits();
            (lo, u64::from(hi >> fast_shift))
        } else {
            (0, 0)
        };
        #[cfg(target_arch = "x86_64")]
        let vect = fast && fmt.bits() <= 8 && std::is_x86_feature_detected!("avx512f");
        #[cfg(not(target_arch = "x86_64"))]
        let vect = false;
        Self {
            fmt,
            p,
            mbits: fmt.man_bits(),
            mmask: fmt.man_mask(),
            signbit: 1 << (fmt.bits() - 1),
            qmin: fmt.min_quantum(),
            emin: fmt.emin(),
            emax: fmt.emax(),
            bias: fmt.bias(),
            sub: fmt.subnormals(),
            fast,
            fast_lo,
            fast_hi_t,
            fast_shift,
            fast_rebias: ((127 - fmt.bias()) as u64) << (p - 1),
            vect,
        }
    }

    /// The target format.
    #[must_use]
    pub fn format(&self) -> FpFormat {
        self.fmt
    }

    /// Quantizes one value (round-to-nearest-even, saturating).
    #[inline]
    #[must_use]
    pub fn quantize(&self, x: f32) -> u64 {
        // Fast path for strictly-normal, non-saturating results — the
        // overwhelmingly common case for activations and weights. With the
        // target quantum aligned inside the `f32` significand, exponent
        // and mantissa concatenate monotonically and RN-even reduces to
        // one add on the raw bit pattern (a mantissa carry increments the
        // exponent field natively). NaN/infinity bit patterns exceed
        // `fast_hi_t` and fall through, as do subnormal-range and
        // saturating magnitudes.
        let b = x.to_bits();
        if self.fast {
            let abs = b & 0x7FFF_FFFF;
            if abs >= self.fast_lo {
                let t = u64::from(abs >> self.fast_shift);
                let rem = abs & ((1u32 << self.fast_shift) - 1);
                let half = 1u32 << (self.fast_shift - 1);
                let t = t + u64::from(rem > half || (rem == half && t & 1 == 1));
                if t <= self.fast_hi_t {
                    let sbit = if b >> 31 == 1 { self.signbit } else { 0 };
                    return sbit | (t - self.fast_rebias);
                }
            }
        }
        self.quantize_slow(b)
    }

    /// Quantizes a whole slice into byte codes — [`FastQuantizer::quantize`]
    /// per element, bit-for-bit, but 16 lanes per instruction on AVX-512
    /// for the fast normal-range path (plus exact zeros). Lanes outside
    /// that envelope (subnormal range, saturation, NaN) divert to the
    /// scalar path individually.
    ///
    /// # Panics
    ///
    /// Panics if the slices' lengths differ or the format exceeds a byte.
    pub fn quantize_block(&self, xs: &[f32], out: &mut [u8]) {
        assert_eq!(xs.len(), out.len(), "quantize output length mismatch");
        assert!(
            self.fmt.bits() <= 8,
            "byte-code quantization needs <= 8 bits"
        );
        #[cfg(target_arch = "x86_64")]
        if self.vect {
            // SAFETY: `vect` is only set when `avx512f` was detected.
            #[allow(unsafe_code)]
            unsafe {
                self.quantize_block_z(xs, out);
            }
            return;
        }
        for (o, &x) in out.iter_mut().zip(xs) {
            *o = self.quantize(x) as u8;
        }
    }

    /// The AVX-512 lane path of [`FastQuantizer::quantize_block`]: the
    /// scalar fast path verbatim (truncate, RN-even increment, rebias),
    /// 16 values per iteration, with a zero-lane select and a per-lane
    /// scalar diversion for anything the fast envelope excludes.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    fn quantize_block_z(&self, xs: &[f32], out: &mut [u8]) {
        use std::arch::x86_64::*;
        let b32 = |v: u32| _mm512_set1_epi32(v as i32);
        let absmask = b32(0x7FFF_FFFF);
        let lo = b32(self.fast_lo);
        let hi_t = b32(self.fast_hi_t as u32);
        let half = b32(1 << (self.fast_shift - 1));
        let remmask = b32((1 << self.fast_shift) - 1);
        let rebias = b32(self.fast_rebias as u32);
        let signbit = b32(self.signbit as u32);
        let one = b32(1);
        let shift = _mm_cvtsi32_si128(self.fast_shift as i32);
        let sshift = _mm_cvtsi32_si128(32 - self.fmt.bits() as i32);
        let mut i = 0;
        while i + 16 <= xs.len() {
            // SAFETY: 16 in-bounds `f32`s load as one unaligned vector.
            #[allow(unsafe_code)]
            let b = unsafe { _mm512_loadu_si512(xs.as_ptr().add(i).cast()) };
            let abs = _mm512_and_si512(b, absmask);
            let t = _mm512_srl_epi32(abs, shift);
            let rem = _mm512_and_si512(abs, remmask);
            let kup = _mm512_cmpgt_epu32_mask(rem, half)
                | (_mm512_cmpeq_epu32_mask(rem, half) & _mm512_test_epi32_mask(t, one));
            let t = _mm512_mask_add_epi32(t, kup, t, one);
            let kfast = _mm512_cmpge_epu32_mask(abs, lo) & _mm512_cmple_epu32_mask(t, hi_t);
            let kzero = _mm512_testn_epi32_mask(abs, abs);
            let sbit = _mm512_and_si512(_mm512_srl_epi32(b, sshift), signbit);
            let code = _mm512_or_si512(sbit, _mm512_sub_epi32(t, rebias));
            let code = _mm512_mask_mov_epi32(code, kzero, sbit);
            // SAFETY: 16 in-bounds output bytes; `vpmovdb` narrows the
            // 16 lanes (codes fit a byte by the `bits <= 8` guard).
            #[allow(unsafe_code)]
            unsafe {
                _mm_storeu_si128(out.as_mut_ptr().add(i).cast(), _mm512_cvtepi32_epi8(code));
            }
            let mut kslow = !(kfast | kzero);
            while kslow != 0 {
                let l = kslow.trailing_zeros() as usize;
                out[i + l] = self.quantize(xs[i + l]) as u8;
                kslow &= kslow - 1;
            }
            i += 16;
        }
        for (o, &x) in out[i..].iter_mut().zip(&xs[i..]) {
            *o = self.quantize(x) as u8;
        }
    }

    /// The general path: subnormal and flush-to-zero range, saturation,
    /// NaN, and formats whose range exceeds `f32` normals.
    fn quantize_slow(&self, b: u32) -> u64 {
        let sbit = if b >> 31 == 1 { self.signbit } else { 0 };
        let abs = b & 0x7FFF_FFFF;
        if abs >= 0x7F80_0000 {
            if abs > 0x7F80_0000 {
                return self.fmt.nan_bits();
            }
            return sbit | self.fmt.max_finite_bits(false); // saturate infinity
        }
        if abs == 0 {
            return sbit;
        }
        let e = (abs >> 23) as i32;
        let m = u64::from(abs) & 0x7F_FFFF;
        let (sig, exp) = if e == 0 {
            (m, -149)
        } else {
            (m | 0x80_0000, e - 150)
        };

        // Round-to-nearest-even at the target quantum.
        let msb = 63 - sig.leading_zeros() as i32;
        let qn = exp + msb - (self.p as i32 - 1);
        let mut q = if self.sub { qn.max(self.qmin) } else { qn };
        let drop = q - exp;
        let mut kept = if drop <= 0 {
            if -drop >= 64 {
                0
            } else {
                sig << (-drop) as u32
            }
        } else if drop >= 64 {
            0
        } else {
            let dr = drop as u32;
            let kept = sig >> dr;
            let tail = sig & mask(dr);
            let guard = (tail >> (dr - 1)) & 1 == 1;
            let sticky = dr >= 2 && tail & mask(dr - 1) != 0;
            kept + u64::from(guard && (sticky || kept & 1 == 1))
        };
        if kept == 1 << self.p {
            kept >>= 1;
            q += 1;
        }
        if kept == 0 {
            return sbit;
        }
        if kept < 1 << (self.p - 1) {
            if !self.sub {
                return sbit;
            }
            return sbit | kept;
        }
        let e_res = q + self.p as i32 - 1;
        if e_res > self.emax {
            return sbit | self.fmt.max_finite_bits(false); // saturate
        }
        if e_res < self.emin {
            return sbit;
        }
        sbit | (((e_res + self.bias) as u64) << self.mbits) | (kept & self.mmask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srmac_fp::{ops, RoundMode};
    use srmac_rng::SplitMix64;

    #[test]
    fn fast_add_vs_golden_e6m5_exhaustive() {
        for sub in [true, false] {
            let fmt = FpFormat::e6m5().with_subnormals(sub);
            for (mode, words) in [
                (AccumRounding::Nearest, vec![0u64]),
                (AccumRounding::Stochastic { r: 9 }, vec![0u64, 0x0F3, 0x1FF]),
                (AccumRounding::Stochastic { r: 13 }, vec![0u64, 0x1ACE]),
            ] {
                let fast = FastAdder::new(fmt, mode);
                for a in fmt.iter_encodings() {
                    for b in fmt.iter_encodings() {
                        for &w in &words {
                            let gold_mode = match mode {
                                AccumRounding::Nearest => RoundMode::NearestEven,
                                AccumRounding::Stochastic { r } => {
                                    RoundMode::Stochastic { r, word: w }
                                }
                            };
                            let want = ops::add(fmt, a, b, gold_mode);
                            let got = fast.add(a, b, w);
                            // NaN payloads: both canonicalize.
                            assert_eq!(got, want, "{fmt} {mode:?}: {a:#x}+{b:#x} w={w:#x}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fast_add_vs_golden_wider_formats_random() {
        let mut rng = SplitMix64::new(42);
        for fmt in [
            FpFormat::e5m10(),
            FpFormat::e8m7(),
            FpFormat::e8m7().with_subnormals(false),
        ] {
            let r = fmt.precision() + 3;
            let fast = FastAdder::new(fmt, AccumRounding::Stochastic { r });
            for _ in 0..200_000 {
                let a = rng.next_u64() & fmt.bits_mask();
                let b = rng.next_u64() & fmt.bits_mask();
                let w = rng.next_u64() & mask(r);
                let want = ops::add(fmt, a, b, RoundMode::Stochastic { r, word: w });
                assert_eq!(fast.add(a, b, w), want, "{fmt}: {a:#x}+{b:#x} w={w:#x}");
            }
        }
    }

    #[test]
    fn fast_quantize_vs_golden_random_and_edges() {
        let mut rng = SplitMix64::new(77);
        for fmt in [
            FpFormat::e5m2(),
            FpFormat::e5m2().with_subnormals(false),
            FpFormat::e4m3(),
            FpFormat::e6m5(),
        ] {
            let q = FastQuantizer::new(fmt);
            let check = |x: f32| {
                let got = q.quantize(x);
                let gold = fmt.quantize_f32(x, RoundMode::NearestEven);
                let want = if fmt.is_inf(gold.bits) {
                    // The fast quantizer saturates instead of overflowing.
                    let neg = x < 0.0;
                    fmt.max_finite_bits(neg)
                } else {
                    gold.bits
                };
                if x.is_nan() {
                    assert!(fmt.is_nan(got));
                } else {
                    assert_eq!(got, want, "{fmt}: quantize({x})");
                }
            };
            for x in [
                0.0f32,
                -0.0,
                1.0,
                -1.0,
                0.1,
                -0.1,
                1e9,
                -1e9,
                1e-9,
                -1e-9,
                f32::NAN,
                f32::INFINITY,
                f32::NEG_INFINITY,
                f32::MIN_POSITIVE,
                6e-8,
            ] {
                check(x);
            }
            for _ in 0..300_000 {
                check(f32::from_bits(rng.next_u64() as u32));
            }
            // Dense coverage around the format's own grid.
            for bits in fmt.iter_encodings() {
                if fmt.is_nan(bits) || fmt.is_inf(bits) {
                    continue;
                }
                let v = fmt.decode_f64(bits) as f32;
                check(v);
                check(v * (1.0 + 1e-3));
                check(v * (1.0 - 1e-3));
            }
        }
    }
}
