//! The lane-batched MAC adder: [`FastAdder`]'s algebra applied to `L`
//! independent accumulation lanes at once, branch-free.
//!
//! # Why lanes, and why this is bit-exact
//!
//! The paper's MAC is a parallel datapath — one aligned add per product
//! per cycle — while the scalar emulation walks one add at a time through
//! a chain of data-dependent branches (operand swap, alignment, sticky,
//! round-up, carry) that mispredict constantly. This module restores the
//! parallel shape in software: `L` output columns of the same GEMM row
//! are accumulated side by side, every select expressed as SWAR mask
//! arithmetic (`(t & m) | (e & !m)` blends over `u64` lane words), so the
//! whole step is straight-line code the CPU can overlap across lanes.
//!
//! Vectorizing *across columns* never touches correctness: each output
//! element's adds stay in `k` order and its SR stream (position-seeded by
//! `(seed, row, column)`) is consumed identically — lanes only change
//! *when* independent elements are computed, never *what* each one
//! computes. The exhaustive `batch_vs_scalar` tests below pin this down
//! code-for-code against [`FastAdder`].
//!
//! # The decoded lane word
//!
//! Between adds a lane's accumulator never round-trips through the packed
//! encoding: it stays in a *decoded* `u64` word holding the ULP-anchored
//! significand and exponent the adder algebra actually works on —
//! re-encoding after one add and re-decoding at the next would be pure
//! overhead. The layout:
//!
//! ```text
//! bit 63      sign (1 = negative)
//! bit 62      special (infinity / NaN; the raw encoding lives in 16..32)
//! bit 61      draws (the packed encoding has non-zero magnitude, i.e.
//!             this value consumes an SR word as a product)
//! bits 32..48 exponent field: ULP exponent minus `qmin` (zero for
//!             subnormals and zeros)
//! bits 16..32 raw encoding (special words only; zero otherwise)
//! bits  0..16 ULP-anchored significand (implicit bit explicit)
//! ```
//!
//! The low 48 bits form a *magnitude key*: for canonical finite words,
//! unsigned comparison of keys is exactly magnitude comparison (the
//! exponent field sits above the significand), and a zero key means a
//! zero value. That makes the operand swap, the zero tests and the
//! alignment distance all plain integer arithmetic on one word.
//!
//! Special values (exponent field all ones) are rare in training — they
//! only appear on accumulator overflow or NaN inputs — and fall back to
//! the scalar adder per lane, preserving golden special semantics.
//!
//! # The narrow (u32) lane word
//!
//! When the adder algebra fits 32 bits (`AdderSpec::fits_narrow`: the
//! pre-shifted significand sum needs `p + f + 1 <= 32` bits — true for
//! the paper's E6M5 accumulator at every supported `r`), the same
//! algebra runs on *narrow* lane words, doubling SIMD width (8 lanes
//! per 256-bit register instead of 4) and halving the product-LUT
//! footprint (the 256 KiB [`crate::lut::PairLut`] vs the 512 KiB
//! [`DecodedLut`]):
//!
//! ```text
//! bit 31      sign            bit 30  special        bit 29  draws
//! bits 16..29 exponent field (13 bits)
//! bits  0..16 ULP-anchored significand, or the raw encoding verbatim
//!             for special words (formats of <= 16 bits only)
//! ```
//!
//! `mac_step32`/`add_core32` are a field-for-field transliteration of
//! the u64 kernel with every 16-bit field shift halved; the exhaustive
//! `narrow_*` tests pin them bit-for-bit against [`FastAdder`] exactly
//! as the wide tests do.

use srmac_fp::FpFormat;

use crate::fastmath::{AccumRounding, AdderSpec, FastAdder};
use crate::lut::ProductLut;

/// Sign bit of a decoded lane word.
pub const LANE_SIGN: u64 = 1 << 63;
/// Special marker (infinity/NaN) of a decoded lane word.
pub const LANE_SPECIAL: u64 = 1 << 62;
/// Draw marker: the encoded value has non-zero magnitude, so as a product
/// it consumes one SR rounding word (the zero-skip rule's complement).
pub const LANE_DRAWS: u64 = 1 << 61;
/// Magnitude-comparison key: exponent field + significand (+ the raw
/// encoding bits of special words, which never take part in comparisons
/// but must keep the key non-zero).
pub const LANE_KEY: u64 = (1 << 48) - 1;

const EF_SHIFT: u32 = 32;
const ENC_SHIFT: u32 = 16;

/// Sign bit of a *narrow* (u32) decoded lane word.
pub const LANE32_SIGN: u32 = 1 << 31;
/// Special marker of a narrow lane word (raw encoding in bits 0..16).
pub const LANE32_SPECIAL: u32 = 1 << 30;
/// Draw marker of a narrow lane word (see [`LANE_DRAWS`]).
pub const LANE32_DRAWS: u32 = 1 << 29;
/// Magnitude-comparison key of a narrow lane word.
pub const LANE32_KEY: u32 = (1 << 29) - 1;

const EF32_SHIFT: u32 = 16;

/// Branch-free select: `t` where `c`, else `e`.
#[inline(always)]
fn sel(c: bool, t: u64, e: u64) -> u64 {
    let m = (c as u64).wrapping_neg();
    (t & m) | (e & !m)
}

/// Branch-free select over narrow lane words.
#[inline(always)]
fn sel32(c: bool, t: u32, e: u32) -> u32 {
    let m = (c as u32).wrapping_neg();
    (t & m) | (e & !m)
}

/// A lane-batched fixed-format floating-point adder: the same algebra as
/// [`FastAdder`] (they share one `AdderSpec`), evaluated over `L`
/// decoded lane words at once with every select a SWAR mask blend.
///
/// The portable SWAR path below is the default on every architecture and
/// is written to auto-vectorize; the engine invokes it through
/// runtime-detected `#[target_feature]` wrappers (see `SimdTier` in
/// `engine.rs`), so stock builds get AVX2/AVX-512 codegen of this exact
/// code with no special compiler flags. An explicit `std::arch` AVX2
/// rendition of the same algebra lives in the `simd` module behind the
/// opt-in `arch-simd` feature; the exhaustive equivalence tests cover
/// whichever path is compiled in.
#[derive(Clone, Copy, Debug)]
pub struct FastAdderBatch {
    spec: AdderSpec,
    scalar: FastAdder,
    /// Stochastic (`true`) or round-to-nearest-even (`false`).
    sr: bool,
    /// `1 << (p - 1)`: smallest normalized significand.
    half: u64,
    /// Largest representable exponent field (`emax - (p - 1) - qmin`).
    ef_max: i64,
    /// Exponent field of an infinity encoding, pre-shifted.
    inf_exp: u64,
    /// Sign-bit position of the packed encoding.
    enc_sign_shift: u32,
}

impl FastAdderBatch {
    /// Creates the batch adder (same envelope as [`FastAdder::new`]).
    ///
    /// # Panics
    ///
    /// Panics if the format or `r` exceeds the fast-path envelope.
    #[must_use]
    pub fn new(fmt: FpFormat, mode: AccumRounding) -> Self {
        let scalar = FastAdder::new(fmt, mode);
        let spec = *scalar.spec();
        Self {
            spec,
            scalar,
            sr: matches!(mode, AccumRounding::Stochastic { .. }),
            half: 1 << (spec.p - 1),
            ef_max: i64::from(spec.emax) - i64::from(spec.p - 1) - i64::from(spec.qmin),
            inf_exp: spec.emask << spec.mbits,
            enc_sign_shift: fmt.bits() - 1,
        }
    }

    /// The format this adder operates on.
    #[must_use]
    pub fn format(&self) -> FpFormat {
        self.spec.fmt
    }

    /// Decodes a packed encoding into a lane word.
    ///
    /// Finite values become canonical decoded words; special encodings
    /// (exponent field all ones) are carried verbatim behind
    /// [`LANE_SPECIAL`]. With subnormals disabled, pseudo-subnormal
    /// encodings (`e == 0, m != 0`) decode — like everywhere else in the
    /// stack — to a zero word, though they keep their [`LANE_DRAWS`] bit
    /// (the scalar GEMM loop draws a rounding word for any non-zero
    /// *encoded* magnitude before discovering the value is zero).
    #[must_use]
    pub fn decode(&self, enc: u64) -> u64 {
        let spec = &self.spec;
        let e = (enc >> spec.mbits) & spec.emask;
        let m = enc & spec.mmask;
        let sign = (enc >> self.enc_sign_shift) & 1;
        let draws = sel(enc & spec.magmask != 0, LANE_DRAWS, 0);
        if e == spec.emask {
            return LANE_SPECIAL | draws | (enc << ENC_SHIFT);
        }
        if e == 0 && (m == 0 || !spec.sub) {
            return (sign << 63) | draws;
        }
        let norm = u64::from(e != 0);
        let sig = m | (norm << spec.mbits);
        // ULP exponent minus qmin: `e - 1` for normals (qmin = emin - mbits
        // and the bias arithmetic cancel), 0 for subnormals (e == 0).
        let ef = e.saturating_sub(1);
        (sign << 63) | draws | (ef << EF_SHIFT) | sig
    }

    /// Encodes a lane word back into the packed format. Inverse of
    /// [`FastAdderBatch::decode`] on canonical words; special words return
    /// their carried encoding verbatim.
    #[must_use]
    pub fn encode(&self, w: u64) -> u64 {
        let spec = &self.spec;
        if w & LANE_SPECIAL != 0 {
            return (w >> ENC_SHIFT) & srmac_fp::mask(spec.fmt.bits());
        }
        let sbit = (w >> 63) << self.enc_sign_shift;
        let sig = w & 0xFFFF;
        let ef = (w >> EF_SHIFT) & 0xFFFF;
        if sig < self.half {
            // Zero or subnormal: the exponent field of the encoding is 0.
            debug_assert!(ef == 0, "subnormal lane words sit at the qmin exponent");
            return sbit | sig;
        }
        sbit | ((ef + 1) << spec.mbits) | (sig & spec.mmask)
    }

    /// One MAC accumulation step over `L` lanes: `acc[l] += prod[l]` in
    /// the adder's rounding semantics, with the GEMM zero-skip rule
    /// applied per lane — a zero-magnitude product leaves its accumulator
    /// word (sign of zero included) completely untouched, exactly as the
    /// scalar loop's `is_zero_prod` skip does.
    ///
    /// `words[l]` is lane `l`'s SR rounding word (ignored under RN); the
    /// caller advances each lane's stream only when [`LANE_DRAWS`] is set
    /// on the product, which keeps the per-element SR streams identical
    /// to the scalar path.
    ///
    /// `inline(always)`: the caller's accumulation loop must keep `acc`
    /// in (vector) registers across `k` steps; an out-of-line call here
    /// forces a full spill/reload of every lane per step.
    #[inline(always)]
    pub fn mac_step<const L: usize>(&self, acc: &mut [u64; L], prods: &[u64; L], words: &[u64; L]) {
        let mut special = 0u64;
        for l in 0..L {
            special |= acc[l] | prods[l];
        }
        let mut res = [0u64; L];
        self.add_lanes(&mut res, acc, prods, words);
        if special & LANE_SPECIAL != 0 {
            self.fixup_specials(acc, prods, words, &mut res);
        }
        for l in 0..L {
            // Zero-skip: only non-zero-magnitude products commit.
            acc[l] = sel(prods[l] & LANE_KEY != 0, res[l], acc[l]);
        }
    }

    /// Runs [`FastAdderBatch::add_core`] over all `L` lanes — through the
    /// `std::arch` fast path where one is compiled in (see the `simd`
    /// module), through the portable SWAR code otherwise. Both paths are
    /// the same algebra; the exhaustive equivalence tests run against
    /// whichever is active in the current build.
    #[inline(always)]
    fn add_lanes<const L: usize>(
        &self,
        res: &mut [u64; L],
        acc: &[u64; L],
        prods: &[u64; L],
        words: &[u64; L],
    ) {
        #[cfg(all(feature = "arch-simd", target_arch = "x86_64", target_feature = "avx2"))]
        if L.is_multiple_of(4) {
            // SAFETY: the callee's only requirement is the `avx2` target
            // feature, which the `cfg` above guarantees is statically
            // enabled for this build (and therefore on every thread).
            #[allow(unsafe_code)]
            unsafe {
                self.add_lanes_avx2(res, acc, prods, words);
            }
            return;
        }
        for l in 0..L {
            res[l] = self.add_core(acc[l], prods[l], words[l]);
        }
    }

    /// Adds `L` pairs of packed encodings with their rounding words —
    /// the encoding-level API, bit-identical lane by lane to
    /// [`FastAdder::add`] (the equivalence the exhaustive tests assert).
    #[must_use]
    pub fn add<const L: usize>(&self, a: &[u64; L], b: &[u64; L], words: &[u64; L]) -> [u64; L] {
        let mut aw = [0u64; L];
        let mut bw = [0u64; L];
        for l in 0..L {
            aw[l] = self.decode(a[l]);
            bw[l] = self.decode(b[l]);
        }
        let mut res = [0u64; L];
        self.add_lanes(&mut res, &aw, &bw, words);
        let mut out = [0u64; L];
        for l in 0..L {
            out[l] = if (aw[l] | bw[l]) & LANE_SPECIAL != 0 {
                self.scalar.add(a[l], b[l], words[l])
            } else {
                self.encode(res[l])
            };
        }
        out
    }

    /// Scalar repair of the rare special lanes of a [`FastAdderBatch::mac_step`].
    #[cold]
    fn fixup_specials<const L: usize>(
        &self,
        acc: &[u64; L],
        prods: &[u64; L],
        words: &[u64; L],
        res: &mut [u64; L],
    ) {
        for l in 0..L {
            if (acc[l] | prods[l]) & LANE_SPECIAL != 0 {
                let enc = self
                    .scalar
                    .add(self.encode(acc[l]), self.encode(prods[l]), words[l]);
                res[l] = self.decode(enc);
            }
        }
    }

    /// The branch-free core: adds two *finite* decoded lane words under
    /// the adder's rounding mode. Special words must be handled by the
    /// caller (the result for them is garbage, never a panic). This is
    /// the exact algebra of [`FastAdder::add`] + `round_pack` with every
    /// branch replaced by a mask blend and every variable shift clamped.
    #[inline(always)]
    fn add_core(&self, aw: u64, bw: u64, word: u64) -> u64 {
        let spec = &self.spec;
        let f = u64::from(spec.f);
        let p = spec.p;

        // Operand swap on the magnitude key (ties keep `a`, matching the
        // scalar `bmag > amag` strict compare).
        let akey = aw & LANE_KEY;
        let bkey = bw & LANE_KEY;
        let sm = ((bkey > akey) as u64).wrapping_neg();
        let hi = aw ^ ((aw ^ bw) & sm);
        let lo = aw ^ bw ^ hi;
        let sign_hi = hi >> 63;
        let sign_lo = lo >> 63;
        let ef_hi = (hi >> EF_SHIFT) & 0xFFFF;
        let ef_lo = (lo >> EF_SHIFT) & 0xFFFF;
        let sig_hi = hi & 0xFFFF;
        let sig_lo = lo & 0xFFFF;

        // Alignment. `sig_lo << f >> d` with the shifted-out tail as the
        // sticky `sigma`; `d` clamps at 63, which is exact because the
        // pre-shifted significand has at most `p + f < 53` bits.
        let d = (ef_hi - ef_lo).min(63);
        let yb = sig_lo << f;
        let y = yb >> d;
        let sigma = u64::from(yb & ((1u64 << d) - 1) != 0);
        let x = sig_hi << f;

        // Branch-free effective subtraction (see `FastAdder::add`):
        // `x - y - sigma == x + !y + (1 - sigma)` in two's complement.
        let sub_eff = sign_hi ^ sign_lo;
        let subm = sub_eff.wrapping_neg();
        let s = x.wrapping_add(y ^ subm).wrapping_add(subm & (1 - sigma));
        let ones = sub_eff & sigma;
        let extra_sticky = (1 - sub_eff) & sigma;

        // Round `(-1)^sign_hi * s * 2^(q_hi - f)` into the format — the
        // `round_pack` algebra on exponent *fields* (qmin-relative), with
        // both the exact and the rounding path computed and blended.
        // `s | 1` keeps `leading_zeros` defined for the cancellation case
        // (selected to +0 below).
        let msb = 63 - i64::from((s | 1).leading_zeros());
        let drop0 = msb - i64::from(p - 1);
        let drop = if spec.sub {
            // The qmin clamp: never round below the subnormal quantum.
            drop0.max(f as i64 - ef_hi as i64)
        } else {
            drop0
        };

        // Exact path (drop <= 0): left-justify; no rounding.
        let shl = (-drop).max(0) as u32;
        let kept_e = s << shl;

        // Rounding path (drop >= 1): split kept/tail and decide the
        // round-up. Shift amounts are clamped so the unselected path
        // never overshifts.
        let dr = drop.clamp(1, 63) as u32;
        let kept_r = s >> dr;
        let tail = s & ((1u64 << dr) - 1);
        let up = if self.sr {
            // Scale the dropped tail to `r` bits; a borrowed trail of
            // ones (`ones`) fills the upshifted low bits.
            let r = spec.r;
            let rs_dn = dr.saturating_sub(r);
            let rs_up = r.saturating_sub(dr);
            let t_hi = tail >> rs_dn;
            let t_lo = (tail << rs_up) | (ones.wrapping_neg() & ((1u64 << rs_up) - 1));
            let t = sel(dr >= r, t_hi, t_lo);
            (t + (word & spec.rmask)) >> r
        } else {
            // RN-even, branch-free (the same fix as the scalar adder).
            let guard = (tail >> (dr - 1)) & 1;
            let rest = u64::from(tail & ((1u64 << (dr - 1)) - 1) != 0) | ones | extra_sticky;
            guard & (rest | kept_r) & 1
        };

        let is_round = drop > 0;
        let mut kept = sel(is_round, kept_r, kept_e) + sel(is_round, up, 0);
        let carry = kept >> p; // 1 iff kept reached 1 << p
        kept >>= carry;
        // Output exponent field: q - qmin = drop + ef_hi - f (+ carry).
        let ef_out = drop + ef_hi as i64 - f as i64 + carry as i64;

        // Assemble, then apply the packing special cases lowest-precedence
        // first so each later select overrides the ones before it.
        let zero_w = sign_hi << 63;
        let natural = zero_w | ((ef_out as u64) << EF_SHIFT) | kept;
        let inf_enc = (sign_hi << self.enc_sign_shift) | self.inf_exp;
        let inf_w = LANE_SPECIAL | LANE_DRAWS | (inf_enc << ENC_SHIFT);
        let mut w = natural;
        w = sel(ef_out < 0, zero_w, w); // below emin: flush (!sub only)
        w = sel(ef_out > self.ef_max, inf_w, w); // overflow -> infinity
        if !spec.sub {
            w = sel(kept < self.half, zero_w, w); // subnormal range: flush
        }
        w = sel(kept == 0, zero_w, w); // everything rounded away
        w = sel(s == 0, 0, w); // exact cancellation -> +0
        w = sel(bkey == 0, aw, w); // zero operands pass the other
        w = sel(akey == 0, bw, w); //   through unchanged...
        w = sel((akey | bkey) == 0, aw & bw & LANE_SIGN, w); // ...except -0 + -0
        w
    }
}

/// The narrow (u32 lane word) rendition of the kernel — same algebra,
/// half the word width, twice the lanes per vector register. Engaged by
/// the engine through [`crate::lut::PairLut`] when
/// [`FastAdderBatch::narrow_ok`] holds.
impl FastAdderBatch {
    /// Whether this adder's algebra fits the narrow lane word (see
    /// `AdderSpec::fits_narrow`). True for the paper's E6M5 accumulator
    /// under RN and every supported SR `r`; false e.g. for an E5M10
    /// accumulator at SR13, which stays on the u64 kernel.
    #[must_use]
    pub fn narrow_ok(&self) -> bool {
        self.spec.fits_narrow()
    }

    /// [`FastAdderBatch::decode`] into a narrow lane word.
    ///
    /// Callers must have checked [`FastAdderBatch::narrow_ok`]; the
    /// conversion is lossy otherwise (debug-asserted).
    #[must_use]
    pub fn decode32(&self, enc: u64) -> u32 {
        debug_assert!(self.narrow_ok(), "narrow decode outside the u32 envelope");
        Self::narrow_word(self.decode(enc))
    }

    /// Encodes a narrow lane word back into the packed format. Inverse
    /// of [`FastAdderBatch::decode32`] on canonical words.
    #[must_use]
    pub fn encode32(&self, w: u32) -> u64 {
        self.encode(Self::widen_word(w))
    }

    /// Narrows a wide lane word (field-for-field; the flag bits move
    /// from 63/62/61 to 31/30/29 and the exponent field from bit 32 to
    /// bit 16).
    fn narrow_word(w: u64) -> u32 {
        let flags = ((w >> 32) as u32) & (LANE32_SIGN | LANE32_SPECIAL | LANE32_DRAWS);
        let payload = if w & LANE_SPECIAL != 0 {
            // Specials carry the raw encoding in the low 16 bits, unshifted.
            ((w >> ENC_SHIFT) & 0xFFFF) as u32
        } else {
            let ef = ((w >> EF_SHIFT) & 0xFFFF) as u32;
            debug_assert!(ef <= 0x1FFF, "exponent field overflows the narrow word");
            (ef << EF32_SHIFT) | (w & 0xFFFF) as u32
        };
        flags | payload
    }

    /// Widens a narrow lane word; exact inverse of `narrow_word`.
    fn widen_word(w: u32) -> u64 {
        let flags = u64::from(w & (LANE32_SIGN | LANE32_SPECIAL | LANE32_DRAWS)) << 32;
        let payload = if w & LANE32_SPECIAL != 0 {
            u64::from(w & 0xFFFF) << ENC_SHIFT
        } else {
            let ef = u64::from((w >> EF32_SHIFT) & 0x1FFF);
            (ef << EF_SHIFT) | u64::from(w & 0xFFFF)
        };
        flags | payload
    }

    /// Narrow rendition of [`FastAdderBatch::mac_step`]: identical
    /// zero-skip, draw and special semantics, on u32 lane words.
    /// `words[l]` is the full SR word; only the low `r` bits matter, so
    /// truncating it into the narrow arithmetic is exact.
    #[inline(always)]
    pub fn mac_step32<const L: usize>(
        &self,
        acc: &mut [u32; L],
        prods: &[u32; L],
        words: &[u64; L],
    ) {
        let mut special = 0u32;
        for l in 0..L {
            special |= acc[l] | prods[l];
        }
        let mut res = [0u32; L];
        for l in 0..L {
            res[l] = self.add_core32(acc[l], prods[l], words[l] as u32);
        }
        if special & LANE32_SPECIAL != 0 {
            self.fixup_specials32(acc, prods, words, &mut res);
        }
        for l in 0..L {
            // Zero-skip: only non-zero-magnitude products commit.
            acc[l] = sel32(prods[l] & LANE32_KEY != 0, res[l], acc[l]);
        }
    }

    /// Encoding-level narrow add over `L` lanes — the test API mirroring
    /// [`FastAdderBatch::add`], bit-identical lane by lane to
    /// [`FastAdder::add`].
    #[must_use]
    pub fn add32<const L: usize>(&self, a: &[u64; L], b: &[u64; L], words: &[u64; L]) -> [u64; L] {
        let mut out = [0u64; L];
        for l in 0..L {
            let aw = self.decode32(a[l]);
            let bw = self.decode32(b[l]);
            out[l] = if (aw | bw) & LANE32_SPECIAL != 0 {
                self.scalar.add(a[l], b[l], words[l])
            } else {
                self.encode32(self.add_core32(aw, bw, words[l] as u32))
            };
        }
        out
    }

    /// Scalar repair of the rare special lanes of a narrow `mac_step32`.
    #[cold]
    fn fixup_specials32<const L: usize>(
        &self,
        acc: &[u32; L],
        prods: &[u32; L],
        words: &[u64; L],
        res: &mut [u32; L],
    ) {
        for l in 0..L {
            if (acc[l] | prods[l]) & LANE32_SPECIAL != 0 {
                let enc = self
                    .scalar
                    .add(self.encode32(acc[l]), self.encode32(prods[l]), words[l]);
                res[l] = self.decode32(enc);
            }
        }
    }

    /// [`FastAdderBatch::add_core`] on narrow words. Line-for-line the
    /// same algebra; shift clamps drop from 63 to 31, which is exact
    /// under the `fits_narrow` envelope (`p + f <= 31`, so pre-shifted
    /// significands never reach bit 31 and the sum never wraps).
    #[inline(always)]
    fn add_core32(&self, aw: u32, bw: u32, word: u32) -> u32 {
        let spec = &self.spec;
        let f = spec.f;
        let p = spec.p;

        let akey = aw & LANE32_KEY;
        let bkey = bw & LANE32_KEY;
        let sm = ((bkey > akey) as u32).wrapping_neg();
        let hi = aw ^ ((aw ^ bw) & sm);
        let lo = aw ^ bw ^ hi;
        let sign_hi = hi >> 31;
        let sign_lo = lo >> 31;
        let ef_hi = (hi >> EF32_SHIFT) & 0x1FFF;
        let ef_lo = (lo >> EF32_SHIFT) & 0x1FFF;
        let sig_hi = hi & 0xFFFF;
        let sig_lo = lo & 0xFFFF;

        // Alignment; the clamp at 31 is exact because `yb < 2^(p+f) <= 2^31`.
        let d = (ef_hi - ef_lo).min(31);
        let yb = sig_lo << f;
        let y = yb >> d;
        let sigma = u32::from(yb & ((1u32 << d) - 1) != 0);
        let x = sig_hi << f;

        // Branch-free effective subtraction; `x + y < 2^(p+f+1) <= 2^32`
        // never wraps on the addition side, and on the subtraction side
        // `x >= y + sigma` exactly as in the wide kernel.
        let sub_eff = sign_hi ^ sign_lo;
        let subm = sub_eff.wrapping_neg();
        let s = x.wrapping_add(y ^ subm).wrapping_add(subm & (1 - sigma));
        let ones = sub_eff & sigma;
        let extra_sticky = (1 - sub_eff) & sigma;

        let msb = 31 - (s | 1).leading_zeros() as i32;
        let drop0 = msb - (p - 1) as i32;
        let drop = if spec.sub {
            drop0.max(f as i32 - ef_hi as i32)
        } else {
            drop0
        };

        let shl = (-drop).max(0) as u32;
        let kept_e = s << shl;

        let dr = drop.clamp(1, 31) as u32;
        let kept_r = s >> dr;
        let tail = s & ((1u32 << dr) - 1);
        let up = if self.sr {
            let r = spec.r;
            let rs_dn = dr.saturating_sub(r);
            let rs_up = r.saturating_sub(dr);
            let t_hi = tail >> rs_dn;
            let t_lo = (tail << rs_up) | (ones.wrapping_neg() & ((1u32 << rs_up) - 1));
            let t = sel32(dr >= r, t_hi, t_lo);
            (t + (word & spec.rmask as u32)) >> r
        } else {
            let guard = (tail >> (dr - 1)) & 1;
            let rest = u32::from(tail & ((1u32 << (dr - 1)) - 1) != 0) | ones | extra_sticky;
            guard & (rest | kept_r) & 1
        };

        let is_round = drop > 0;
        let mut kept = sel32(is_round, kept_r, kept_e) + sel32(is_round, up, 0);
        let carry = kept >> p;
        kept >>= carry;
        let ef_out = drop + ef_hi as i32 - f as i32 + carry as i32;

        let zero_w = sign_hi << 31;
        let natural = zero_w | ((ef_out as u32 & 0x1FFF) << EF32_SHIFT) | kept;
        let inf_enc = (sign_hi << self.enc_sign_shift) | self.inf_exp as u32;
        let inf_w = LANE32_SPECIAL | LANE32_DRAWS | inf_enc;
        let mut w = natural;
        w = sel32(ef_out < 0, zero_w, w);
        w = sel32(i64::from(ef_out) > self.ef_max, inf_w, w);
        if !spec.sub {
            w = sel32(u64::from(kept) < self.half, zero_w, w);
        }
        w = sel32(kept == 0, zero_w, w);
        w = sel32(s == 0, 0, w);
        w = sel32(bkey == 0, aw, w);
        w = sel32(akey == 0, bw, w);
        w = sel32((akey | bkey) == 0, aw & bw & LANE32_SIGN, w);
        w
    }
}

/// The explicit AVX-512 rendition of the narrow kernel: 16 u32 lanes per
/// `zmm`, the full dot-product loop in one function so the accumulator
/// vector provably stays in a register across every `k` step (the
/// property the auto-vectorized array loops cannot guarantee — their
/// 64-lane state round-trips through the stack each step).
///
/// This *is* the default fast path on AVX-512 hardware: the engine's
/// runtime tier dispatch (`SimdTier::detect`) routes 64-wide panel
/// blocks here in chunks of 16 columns. Everything is a 1:1 translation
/// of [`FastAdderBatch::add_core32`] — same variable names, same
/// clamping, same select order — plus the draw/zero-skip/special
/// semantics of `mac_step32`, and the randomized cross-check in this
/// module's tests pins it lane-for-lane against those scalar-verified
/// kernels. Special lanes take the same `#[cold]` scalar fixup.
///
/// Masked compares/blends replace the SWAR `sel32` ladders; the one
/// pointer-based operation is the product gather, whose indices are
/// zero-extended bytes into the 65536-entry pair table (in-bounds by
/// construction).
#[cfg(target_arch = "x86_64")]
pub(crate) mod z16 {
    use std::arch::x86_64::*;

    use super::{
        FastAdderBatch, EF32_SHIFT, LANE32_DRAWS, LANE32_KEY, LANE32_SIGN, LANE32_SPECIAL,
    };
    use srmac_rng::SPLITMIX_GAMMA;

    /// Loop-invariant broadcast constants of one adder configuration.
    struct Consts {
        key: __m512i,
        special: __m512i,
        draws: __m512i,
        sign: __m512i,
        efmask: __m512i,
        sigmask: __m512i,
        zero: __m512i,
        one: __m512i,
        c32: __m512i,
        f: __m512i,
        p: __m512i,
        /// `32 - p`: folds the `31 - lzcnt - (p - 1)` normalization.
        c31mp: __m512i,
        r: __m512i,
        rmask: __m512i,
        /// `32 - r`: the right-shift that realigns the register-justified
        /// rounding tail (see the SR path in [`add_core`]).
        c32mr: __m512i,
        /// `1 << r`, for deriving the low sticky-fill mask by shift.
        rp1: __m512i,
        half: __m512i,
        efmax: __m512i,
        inf_base: __m512i,
        /// `31 - enc_sign_shift`: moves the sign bit from the lane MSB
        /// straight to its encoded position.
        iss: __m512i,
        /// The even dword indices of a `(lo, hi)` u64-lane vector pair:
        /// one `vpermt2v` gathers the low 32 bits of 16 finalized draws.
        evens: __m512i,
        /// Whether `sig << f` self-clears the exponent/flag bits
        /// (`f >= EF32_SHIFT`), letting the shift skip the sig mask.
        fsig: bool,
        sub: bool,
    }

    #[target_feature(
        enable = "avx512f",
        enable = "avx512bw",
        enable = "avx512dq",
        enable = "avx512vl",
        enable = "avx512cd"
    )]
    fn consts(batch: &FastAdderBatch) -> Consts {
        let spec = &batch.spec;
        let b32 = |v: u32| _mm512_set1_epi32(v as i32);
        Consts {
            key: b32(LANE32_KEY),
            special: b32(LANE32_SPECIAL),
            draws: b32(LANE32_DRAWS),
            sign: b32(LANE32_SIGN),
            efmask: b32(0x1FFF),
            sigmask: b32(0xFFFF),
            zero: _mm512_setzero_si512(),
            one: b32(1),
            c32: b32(32),
            f: b32(spec.f),
            p: b32(spec.p),
            c31mp: b32(32 - spec.p),
            r: b32(spec.r),
            rmask: b32(spec.rmask as u32),
            c32mr: b32(32 - spec.r),
            rp1: b32(1 << spec.r),
            half: b32(batch.half as u32),
            efmax: b32(batch.ef_max as u32),
            inf_base: b32(LANE32_SPECIAL | LANE32_DRAWS | batch.inf_exp as u32),
            iss: b32(31 - batch.enc_sign_shift),
            evens: _mm512_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30),
            fsig: spec.f >= EF32_SHIFT,
            sub: spec.sub,
        }
    }

    /// [`consts`] with every field a compile-time literal: the paper's
    /// headline E6M5 accumulator (RN `r = 2`, SR `r = 13`).
    ///
    /// This exists purely for register allocation: literal constants are
    /// folded into embedded-broadcast memory operands (`{1to16}`), so
    /// ~15 `zmm` registers that the generic body pins (or spills, once
    /// the interleaved chains join in) come free. [`is_e6m5`] guards
    /// every use by checking the runtime spec field-for-field — the
    /// literals are asserted, never assumed, and a mismatch falls back
    /// to the generic-constant body.
    #[target_feature(
        enable = "avx512f",
        enable = "avx512bw",
        enable = "avx512dq",
        enable = "avx512vl",
        enable = "avx512cd"
    )]
    fn consts_e6m5<const SR: bool, const SUB: bool>() -> Consts {
        let b32 = |v: u32| _mm512_set1_epi32(v as i32);
        let (f, r, rmask) = if SR { (23, 13, 0x1FFF) } else { (12, 2, 0x3) };
        Consts {
            key: b32(LANE32_KEY),
            special: b32(LANE32_SPECIAL),
            draws: b32(LANE32_DRAWS),
            sign: b32(LANE32_SIGN),
            efmask: b32(0x1FFF),
            sigmask: b32(0xFFFF),
            zero: _mm512_setzero_si512(),
            one: b32(1),
            c32: b32(32),
            f: b32(f),
            p: b32(6),
            c31mp: b32(32 - 6),
            r: b32(r),
            rmask: b32(rmask),
            c32mr: b32(32 - r),
            rp1: b32(1 << r),
            half: b32(32),
            efmax: b32(61),
            inf_base: b32(LANE32_SPECIAL | LANE32_DRAWS | 0x7E0),
            iss: b32(31 - 11),
            evens: _mm512_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30),
            fsig: f >= EF32_SHIFT,
            sub: SUB,
        }
    }

    /// Whether `batch` is exactly the algebra that the literals in
    /// `consts_e6m5::<SR, _>` describe; returns the subnormal flag when
    /// it is.
    fn is_e6m5<const SR: bool>(batch: &FastAdderBatch) -> Option<bool> {
        let spec = &batch.spec;
        let (f, r, rmask) = if SR { (23, 13, 0x1FFF) } else { (12, 2, 0x3) };
        (batch.sr == SR
            && spec.p == 6
            && spec.f == f
            && spec.r == r
            && spec.rmask == rmask
            && batch.half == 32
            && batch.ef_max == 61
            && batch.inf_exp == 0x7E0
            && batch.enc_sign_shift == 11)
            .then_some(spec.sub)
    }

    /// [`FastAdderBatch::add_core32`], 16 lanes per instruction. Every
    /// `sel32` becomes a masked move, every data-dependent shift a
    /// `vps{l,r}lvd`, the normalization `leading_zeros` a `vplzcntd`.
    #[inline]
    #[target_feature(
        enable = "avx512f",
        enable = "avx512bw",
        enable = "avx512dq",
        enable = "avx512vl",
        enable = "avx512cd"
    )]
    #[allow(clippy::similar_names)]
    fn add_core<const SR: bool>(c: &Consts, aw: __m512i, bw: __m512i, word: __m512i) -> __m512i {
        let akey = _mm512_and_si512(aw, c.key);
        let bkey = _mm512_and_si512(bw, c.key);
        let kswap = _mm512_cmpgt_epu32_mask(bkey, akey);
        let hi = _mm512_mask_blend_epi32(kswap, aw, bw);
        let lo = _mm512_mask_blend_epi32(kswap, bw, aw);
        let ef_hi = _mm512_and_si512(_mm512_srli_epi32::<16>(hi), c.efmask);
        let ef_lo = _mm512_and_si512(_mm512_srli_epi32::<16>(lo), c.efmask);
        // When `f >= 16` the sig shift self-clears the exponent and flag
        // bits, so the sig mask is folded into it.
        let x = if c.fsig {
            _mm512_sllv_epi32(hi, c.f)
        } else {
            _mm512_sllv_epi32(_mm512_and_si512(hi, c.sigmask), c.f)
        };
        let yb = if c.fsig {
            _mm512_sllv_epi32(lo, c.f)
        } else {
            _mm512_sllv_epi32(_mm512_and_si512(lo, c.sigmask), c.f)
        };

        // Alignment. `d` is unclamped: `vpsrlvd`/`vpsllvd` already yield 0
        // for counts >= 32, which is exactly the all-bits-shifted-out case
        // the scalar kernel's clamp emulates. The sticky bit falls out of
        // a round trip: bits were lost iff `(y << d) != yb`.
        let d = _mm512_sub_epi32(ef_hi, ef_lo);
        let y = _mm512_srlv_epi32(yb, d);
        let ksig = _mm512_cmpneq_epu32_mask(_mm512_sllv_epi32(y, d), yb);

        // Branch-free effective subtraction: `subm` is the all-ones lane
        // mask of differing signs, the `+1` two's-complement correction
        // lands only where no sticky bit was lost.
        let xhl = _mm512_xor_si512(hi, lo);
        let ksub = _mm512_test_epi32_mask(xhl, c.sign);
        let subm = _mm512_srai_epi32::<31>(xhl);
        let t0 = _mm512_add_epi32(x, _mm512_xor_si512(y, subm));
        let s = _mm512_mask_add_epi32(t0, !ksig & ksub, t0, c.one);
        let kones = ksub & ksig;

        // Normalization and the qmin clamp (`31 - lzcnt - (p - 1)` folds
        // to one subtraction from the `c31mp = 32 - p` constant).
        let drop0 = _mm512_sub_epi32(c.c31mp, _mm512_lzcnt_epi32(_mm512_or_si512(s, c.one)));
        let drop = if c.sub {
            _mm512_max_epi32(drop0, _mm512_sub_epi32(c.f, ef_hi))
        } else {
            drop0
        };

        // Exact path.
        let shl = _mm512_max_epi32(_mm512_sub_epi32(c.zero, drop), c.zero);
        let kept_e = _mm512_sllv_epi32(s, shl);

        // Rounding path. `drop <= 31 - (p - 1)` and (subnormal clamp)
        // `f <= 27`, so `dr` needs no upper clamp.
        let dr = _mm512_max_epi32(drop, c.one);
        let kept_r = _mm512_srlv_epi32(s, dr);
        let up = if SR {
            // Align the tail at the `r`-bit draw in one shift pair:
            // `s << (32 - dr)` top-justifies exactly the `dr` tail bits
            // (no mask needed), and `>> (32 - r)` lands them at the draw,
            // covering both `tail >> (dr - r)` and `tail << (r - dr)`.
            // Subtracted sticky ones fill the low `r - dr` bits only when
            // the tail was up-shifted.
            let t1 = _mm512_srlv_epi32(_mm512_sllv_epi32(s, _mm512_sub_epi32(c.c32, dr)), c.c32mr);
            let kfill = kones & _mm512_cmplt_epu32_mask(dr, c.r);
            let fill = _mm512_sub_epi32(_mm512_srlv_epi32(c.rp1, dr), c.one);
            let t = _mm512_mask_or_epi32(t1, kfill, t1, fill);
            _mm512_srlv_epi32(_mm512_add_epi32(t, _mm512_and_si512(word, c.rmask)), c.r)
        } else {
            let drm1 = _mm512_sub_epi32(dr, c.one);
            let guard = _mm512_and_si512(_mm512_srlv_epi32(s, drm1), c.one);
            let m2 = _mm512_sub_epi32(_mm512_sllv_epi32(c.one, drm1), c.one);
            // Sticky union: bits below the guard, or any alignment loss
            // (`ones | extra_sticky` in the scalar kernel is just sigma).
            let ksticky = _mm512_test_epi32_mask(s, m2) | ksig;
            let rok = _mm512_or_si512(_mm512_maskz_mov_epi32(ksticky, c.one), kept_r);
            _mm512_and_si512(guard, rok)
        };

        let kround = _mm512_cmpgt_epi32_mask(drop, c.zero);
        let mut kept = _mm512_mask_add_epi32(kept_e, kround, kept_r, up);
        let carry = _mm512_srlv_epi32(kept, c.p);
        kept = _mm512_srlv_epi32(kept, carry);
        let ef_out = _mm512_add_epi32(_mm512_add_epi32(drop, _mm512_sub_epi32(ef_hi, c.f)), carry);

        // Assemble, lowest-precedence first (same select order as the
        // scalar kernel). `ef_out` is left unmasked in `natural`: every
        // lane where it strays outside `0..=ef_max` is overwritten by the
        // selects directly below.
        let zero_w = _mm512_and_si512(hi, c.sign);
        let natural = _mm512_or_si512(
            _mm512_or_si512(zero_w, _mm512_slli_epi32::<16>(ef_out)),
            kept,
        );
        let inf_w = _mm512_or_si512(c.inf_base, _mm512_srlv_epi32(zero_w, c.iss));
        let mut w = natural;
        w = _mm512_mask_mov_epi32(w, _mm512_cmplt_epi32_mask(ef_out, c.zero), zero_w);
        w = _mm512_mask_mov_epi32(w, _mm512_cmpgt_epi32_mask(ef_out, c.efmax), inf_w);
        // `kept == 0` implies `kept < half`, so one select covers both
        // flush conditions in flush-to-zero mode.
        if c.sub {
            w = _mm512_mask_mov_epi32(w, _mm512_testn_epi32_mask(kept, kept), zero_w);
        } else {
            w = _mm512_mask_mov_epi32(w, _mm512_cmplt_epu32_mask(kept, c.half), zero_w);
        }
        w = _mm512_mask_mov_epi32(w, _mm512_testn_epi32_mask(s, s), c.zero);
        let kb0 = _mm512_testn_epi32_mask(bkey, bkey);
        w = _mm512_mask_mov_epi32(w, kb0, aw);
        let ka0 = _mm512_testn_epi32_mask(akey, akey);
        w = _mm512_mask_mov_epi32(w, ka0, bw);
        w = _mm512_mask_mov_epi32(
            w,
            ka0 & kb0,
            _mm512_and_si512(_mm512_and_si512(aw, bw), c.sign),
        );
        w
    }

    /// `splitmix_finalize` over 8 u64 lanes.
    #[inline]
    #[target_feature(enable = "avx512f", enable = "avx512dq")]
    fn finalize(z: __m512i) -> __m512i {
        let c1 = _mm512_set1_epi64(0xBF58_476D_1CE4_E5B9_u64 as i64);
        let c2 = _mm512_set1_epi64(0x94D0_49BB_1331_11EB_u64 as i64);
        let z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64::<30>(z)), c1);
        let z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64::<27>(z)), c2);
        _mm512_xor_si512(z, _mm512_srli_epi64::<31>(z))
    }

    /// Scalar repair of the rare special lanes of one step — identical
    /// semantics to [`FastAdderBatch::fixup_specials32`].
    #[cold]
    #[target_feature(
        enable = "avx512f",
        enable = "avx512bw",
        enable = "avx512dq",
        enable = "avx512vl",
        enable = "avx512cd"
    )]
    fn fixup(
        batch: &FastAdderBatch,
        kspec: __mmask16,
        acc: __m512i,
        prods: __m512i,
        words: __m512i,
        res: __m512i,
    ) -> __m512i {
        let (av, pv, wv, mut rv) = (to_u32s(acc), to_u32s(prods), to_u32s(words), to_u32s(res));
        for l in 0..16 {
            if kspec & (1 << l) != 0 {
                // Only the low `r` bits of the rounding word matter, so
                // the u32-truncated word is the word (r <= 27).
                let enc = batch.scalar.add(
                    batch.encode32(av[l]),
                    batch.encode32(pv[l]),
                    u64::from(wv[l]),
                );
                rv[l] = batch.decode32(enc);
            }
        }
        from_u32s(rv)
    }

    #[inline]
    #[target_feature(enable = "avx512f")]
    fn to_u32s(v: __m512i) -> [u32; 16] {
        let mut out = [0u32; 16];
        // SAFETY: `out` is exactly 64 bytes; unaligned store is allowed.
        #[allow(unsafe_code)]
        unsafe {
            _mm512_storeu_si512(out.as_mut_ptr().cast(), v);
        }
        out
    }

    #[inline]
    #[target_feature(enable = "avx512f")]
    fn from_u32s(a: [u32; 16]) -> __m512i {
        // SAFETY: `a` is exactly 64 bytes and outlives the load.
        #[allow(unsafe_code)]
        unsafe {
            _mm512_loadu_si512(a.as_ptr().cast())
        }
    }

    #[inline]
    #[target_feature(enable = "avx512f")]
    fn from_u64s(a: [u64; 8]) -> __m512i {
        // SAFETY: `a` is exactly 64 bytes and outlives the load.
        #[allow(unsafe_code)]
        unsafe {
            _mm512_loadu_si512(a.as_ptr().cast())
        }
    }

    /// One 16-column narrow dot product: columns `lane0 .. lane0 + 16`
    /// of a lane-interleaved panel block with row stride `stride`,
    /// accumulated over the compacted A entries `(ids, cods)`. Returns
    /// the final decoded narrow accumulator words (encode with
    /// [`FastAdderBatch::encode32`]).
    ///
    /// Bit-identical to 16 scalar dot products: per-lane draws advance
    /// exactly as [`srmac_rng::SrLaneStreams::draw`] (`seeds[l]` replays
    /// `SplitMix64::new(seeds[l])`), adds run in `k` order through
    /// [`add_core`], special lanes divert to the scalar adder, and
    /// zero-magnitude products neither touch the accumulator nor consume
    /// a draw.
    ///
    /// Callers discharge the `#[target_feature]` obligation: the CPU must
    /// support AVX-512 F/BW/DQ/VL/CD (the engine checks via
    /// `SimdTier::detect` before routing here).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(
        enable = "avx512f",
        enable = "avx512bw",
        enable = "avx512dq",
        enable = "avx512vl",
        enable = "avx512cd"
    )]
    pub(crate) fn dot16_narrow<const SR: bool>(
        batch: &FastAdderBatch,
        table: &[u32; 1 << 16],
        ids: &[u32],
        cods: &[u8],
        pan: &[u8],
        stride: usize,
        lane0: usize,
        seeds: &[u64; 16],
    ) -> [u32; 16] {
        let c = consts(batch);
        let gamma = _mm512_set1_epi64(SPLITMIX_GAMMA as i64);
        let mut st_lo = from_u64s(seeds[..8].try_into().expect("8 seeds")); // PANIC-OK: seeds is exactly 16 lanes; [..8] is 8.
        let mut st_hi = from_u64s(seeds[8..].try_into().expect("8 seeds")); // PANIC-OK: and [8..] is the other 8.
        let mut acc = _mm512_setzero_si512();
        for (&ci, &ca) in ids.iter().zip(cods) {
            let base = ci as usize * stride + lane0;
            let bc: [u8; 16] = pan[base..base + 16].try_into().expect("panel chunk"); // PANIC-OK: base + 16 <= panel len by the packer's row stride.
                                                                                      // SAFETY: the indices are zero-extended bytes (< 256) into a
                                                                                      // 256-entry row of the 65536-entry table selected by `ca`.
            #[allow(unsafe_code)]
            let prods = unsafe {
                let idx = _mm512_cvtepu8_epi32(_mm_loadu_si128(bc.as_ptr().cast()));
                let row = table.as_ptr().add(usize::from(ca) << 8);
                _mm512_i32gather_epi32::<4>(idx, row.cast::<i32>())
            };
            let words = if SR {
                let kconsume = _mm512_test_epi32_mask(prods, c.draws);
                let sl = _mm512_add_epi64(st_lo, gamma);
                let sh = _mm512_add_epi64(st_hi, gamma);
                let wl = _mm512_cvtepi64_epi32(finalize(sl));
                let wh = _mm512_cvtepi64_epi32(finalize(sh));
                st_lo = _mm512_mask_mov_epi64(st_lo, kconsume as __mmask8, sl);
                st_hi = _mm512_mask_mov_epi64(st_hi, (kconsume >> 8) as __mmask8, sh);
                _mm512_inserti64x4::<1>(_mm512_castsi256_si512(wl), wh)
            } else {
                c.zero
            };
            // The step: add, rare scalar special repair, zero-skip.
            let kspec = _mm512_test_epi32_mask(_mm512_or_si512(acc, prods), c.special);
            let mut res = add_core::<SR>(&c, acc, prods, words);
            if kspec != 0 {
                res = fixup(batch, kspec, acc, prods, words, res);
            }
            let kkey = _mm512_test_epi32_mask(prods, c.key);
            acc = _mm512_mask_mov_epi32(acc, kkey, res);
        }
        to_u32s(acc)
    }

    /// One 16-lane chain step: gather the pre-decoded products for the
    /// chain's columns, draw rounding words (SR only, masked commit so
    /// non-consuming lanes re-offer the word), run [`add_core`], repair
    /// rare special lanes through the scalar adder, and commit under the
    /// zero-skip mask.
    ///
    /// A macro rather than a helper fn so the interleaved kernels unroll
    /// over *named locals*: a `for q in 0..N` loop over `[__m512i; N]`
    /// arrays is left rolled by the compiler and round-trips every chain
    /// through the stack at each `k` step.
    macro_rules! chain_step {
        ($sr:expr, $c:expr, $batch:expr, $gamma:expr, $bc:expr, $row:expr,
         $acc:ident, $slo:ident, $shi:ident, $q:literal) => {{
            // SAFETY: the indices are zero-extended bytes (< 256) into a
            // 256-entry row of the 65536-entry table.
            #[allow(unsafe_code)]
            let prods = unsafe {
                let idx = _mm512_cvtepu8_epi32(_mm_loadu_si128($bc[$q * 16..].as_ptr().cast()));
                _mm512_i32gather_epi32::<4>(idx, $row.cast::<i32>())
            };
            let words = if $sr {
                let kconsume = _mm512_test_epi32_mask(prods, $c.draws);
                let sl = _mm512_add_epi64($slo, $gamma);
                let sh = _mm512_add_epi64($shi, $gamma);
                let w = _mm512_permutex2var_epi32(finalize(sl), $c.evens, finalize(sh));
                // Dense blocks consume on every lane; the masked re-offer
                // commit is only paid when some product was zero.
                if kconsume == 0xFFFF {
                    $slo = sl;
                    $shi = sh;
                } else {
                    $slo = _mm512_mask_mov_epi64($slo, kconsume as __mmask8, sl);
                    $shi = _mm512_mask_mov_epi64($shi, (kconsume >> 8) as __mmask8, sh);
                }
                w
            } else {
                $c.zero
            };
            let kspec = _mm512_test_epi32_mask(_mm512_or_si512($acc, prods), $c.special);
            let mut res = add_core::<$sr>(&$c, $acc, prods, words);
            if kspec != 0 {
                res = fixup($batch, kspec, $acc, prods, words, res);
            }
            let kkey = _mm512_test_epi32_mask(prods, $c.key);
            $acc = if kkey == 0xFFFF {
                res
            } else {
                _mm512_mask_mov_epi32($acc, kkey, res)
            };
        }};
    }

    /// The full interleaved dot-product body — a macro (not a fn) so it
    /// expands textually into each instantiation: a function boundary
    /// here would pass `Consts` by reference and un-fold the literal
    /// constants that `consts_e6m5` exists to provide.
    macro_rules! dot_body {
        ($sr:expr, $c:expr, $batch:expr, $table:expr, $ids:expr, $cods:expr, $pan:expr,
         $stride:expr, $lane0:expr, $seeds:expr, $w:literal,
         [$(($acc:ident, $slo:ident, $shi:ident, $q:literal)),+]) => {{
            let c = $c;
            let gamma = _mm512_set1_epi64(SPLITMIX_GAMMA as i64);
            let seed8 =
                |q: usize| from_u64s($seeds[q * 8..q * 8 + 8].try_into().expect("8 seeds")); // PANIC-OK: q indexes whole 8-lane groups of the seed array.
            $(
                let mut $slo = seed8(2 * $q);
                let mut $shi = seed8(2 * $q + 1);
                let mut $acc = _mm512_setzero_si512();
            )+
            for (&ci, &ca) in $ids.iter().zip($cods) {
                let base = ci as usize * $stride + $lane0;
                let bc: &[u8; $w] = $pan[base..base + $w].try_into().expect("panel block"); // PANIC-OK: base + $w <= panel len by the packer's row stride.
                let row = $table.as_ptr().wrapping_add(usize::from(ca) << 8);
                $(chain_step!($sr, c, $batch, gamma, bc, row, $acc, $slo, $shi, $q);)+
            }
            let mut out = [0u32; $w];
            $(out[$q * 16..$q * 16 + 16].copy_from_slice(&to_u32s($acc));)+
            out
        }};
    }

    /// A full 64-column panel block in one `k` pass: four interleaved
    /// 16-lane chains, bit-identical to four [`dot16_narrow`] calls at
    /// `lane0 + 0/16/32/48`.
    ///
    /// Interleaving is the point: one 16-lane chain is a serial
    /// `add_core` dependency per `k` step, so a lone chain is bound by
    /// its latency. Four independent accumulator chains in the same loop
    /// body give the out-of-order core ~4x the exploitable parallelism,
    /// and the per-step scalars (`ci`, `ca`, the LUT row pointer) are
    /// computed once instead of four times.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(
        enable = "avx512f",
        enable = "avx512bw",
        enable = "avx512dq",
        enable = "avx512vl",
        enable = "avx512cd"
    )]
    pub(crate) fn dot64_narrow<const SR: bool>(
        batch: &FastAdderBatch,
        table: &[u32; 1 << 16],
        ids: &[u32],
        cods: &[u8],
        pan: &[u8],
        stride: usize,
        lane0: usize,
        seeds: &[u64; 64],
    ) -> [u32; 64] {
        match is_e6m5::<SR>(batch) {
            Some(true) => {
                dot64_e6m5::<SR, true>(batch, table, ids, cods, pan, stride, lane0, seeds)
            }
            Some(false) => {
                dot64_e6m5::<SR, false>(batch, table, ids, cods, pan, stride, lane0, seeds)
            }
            None => {
                let c = consts(batch);
                dot_body!(
                    SR,
                    c,
                    batch,
                    table,
                    ids,
                    cods,
                    pan,
                    stride,
                    lane0,
                    seeds,
                    64,
                    [
                        (a0, s0, s1, 0),
                        (a1, s2, s3, 1),
                        (a2, s4, s5, 2),
                        (a3, s6, s7, 3)
                    ]
                )
            }
        }
    }

    /// The literal-constant E6M5 instantiation of [`dot64_narrow`] (a
    /// single `dot64_body` call site, so the body inlines and every
    /// `Consts` field constant-folds).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(
        enable = "avx512f",
        enable = "avx512bw",
        enable = "avx512dq",
        enable = "avx512vl",
        enable = "avx512cd"
    )]
    fn dot64_e6m5<const SR: bool, const SUB: bool>(
        batch: &FastAdderBatch,
        table: &[u32; 1 << 16],
        ids: &[u32],
        cods: &[u8],
        pan: &[u8],
        stride: usize,
        lane0: usize,
        seeds: &[u64; 64],
    ) -> [u32; 64] {
        let c = consts_e6m5::<SR, SUB>();
        dot_body!(
            SR,
            c,
            batch,
            table,
            ids,
            cods,
            pan,
            stride,
            lane0,
            seeds,
            64,
            [
                (a0, s0, s1, 0),
                (a1, s2, s3, 1),
                (a2, s4, s5, 2),
                (a3, s6, s7, 3)
            ]
        )
    }

    /// Two interleaved 16-lane chains: columns `lane0 .. lane0 + 32`.
    /// Bit-identical to two [`dot16_narrow`] calls at `lane0 + 0/16`.
    /// The half-width sibling of [`dot64_narrow`]: lower register
    /// pressure at half the per-call amortization, for 32-wide callers
    /// and A/B comparison of interleave depth.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(
        enable = "avx512f",
        enable = "avx512bw",
        enable = "avx512dq",
        enable = "avx512vl",
        enable = "avx512cd"
    )]
    pub(crate) fn dot32_narrow<const SR: bool>(
        batch: &FastAdderBatch,
        table: &[u32; 1 << 16],
        ids: &[u32],
        cods: &[u8],
        pan: &[u8],
        stride: usize,
        lane0: usize,
        seeds: &[u64; 32],
    ) -> [u32; 32] {
        match is_e6m5::<SR>(batch) {
            Some(true) => {
                dot32_e6m5::<SR, true>(batch, table, ids, cods, pan, stride, lane0, seeds)
            }
            Some(false) => {
                dot32_e6m5::<SR, false>(batch, table, ids, cods, pan, stride, lane0, seeds)
            }
            None => {
                let c = consts(batch);
                dot_body!(
                    SR,
                    c,
                    batch,
                    table,
                    ids,
                    cods,
                    pan,
                    stride,
                    lane0,
                    seeds,
                    32,
                    [(a0, s0, s1, 0), (a1, s2, s3, 1)]
                )
            }
        }
    }

    /// The literal-constant E6M5 instantiation of [`dot32_narrow`].
    #[allow(clippy::too_many_arguments)]
    #[target_feature(
        enable = "avx512f",
        enable = "avx512bw",
        enable = "avx512dq",
        enable = "avx512vl",
        enable = "avx512cd"
    )]
    fn dot32_e6m5<const SR: bool, const SUB: bool>(
        batch: &FastAdderBatch,
        table: &[u32; 1 << 16],
        ids: &[u32],
        cods: &[u8],
        pan: &[u8],
        stride: usize,
        lane0: usize,
        seeds: &[u64; 32],
    ) -> [u32; 32] {
        let c = consts_e6m5::<SR, SUB>();
        dot_body!(
            SR,
            c,
            batch,
            table,
            ids,
            cods,
            pan,
            stride,
            lane0,
            seeds,
            32,
            [(a0, s0, s1, 0), (a1, s2, s3, 1)]
        )
    }
}

/// The explicit `std::arch` lane kernel: the algebra of
/// [`FastAdderBatch::add_core`], four lanes per `__m256i`, expressed with
/// AVX2 intrinsics. Compiled in only behind the opt-in `arch-simd` cargo
/// feature and a statically enabled `avx2` target feature (e.g. the CI
/// feature-matrix job's `-C target-feature=+avx2`). It is *not* the
/// default fast path: measured on current compilers, LLVM auto-vectorizes
/// the portable SWAR code at least as well (and with AVX-512 considerably
/// better), because autovectorization keeps the lane state in vector
/// registers across the whole accumulation loop while this kernel's lane
/// arrays round-trip at each step. It stays in-tree, exhaustively
/// verified, as the explicit-datapath reference for the SWAR algebra and
/// as a guard should autovectorization regress. On `aarch64` the portable
/// SWAR path (NEON-autovectorized) is likewise the default.
///
/// Everything here is a 1:1 translation of `add_core` — same variable
/// names, same clamping, same select order — and the exhaustive
/// `batch_vs_scalar` tests run against this path whenever it is compiled
/// in. Intrinsic calls are safe because the target feature is statically
/// enabled; lane I/O goes through value-based `set`/`extract` intrinsics
/// (no pointer casts), which the compiler folds into plain vector loads
/// and stores.
#[cfg(all(feature = "arch-simd", target_arch = "x86_64", target_feature = "avx2"))]
mod simd {
    use std::arch::x86_64::*;

    use super::{FastAdderBatch, LANE_DRAWS, LANE_KEY, LANE_SIGN, LANE_SPECIAL};

    /// `t` where the 64-bit mask lane is all-ones, else `e` (blendv keys
    /// off each byte's top bit, which a 64-bit compare mask saturates).
    #[inline]
    #[target_feature(enable = "avx2")]
    fn sel(m: __m256i, t: __m256i, e: __m256i) -> __m256i {
        _mm256_blendv_epi8(e, t, m)
    }

    /// Signed 64-bit `max(v, 0)` (`cmpgt` is exact at 0: the mask is off
    /// for `v == 0`, and `max(0, 0) = 0` either way).
    #[inline]
    #[target_feature(enable = "avx2")]
    fn relu64(v: __m256i) -> __m256i {
        _mm256_and_si256(v, _mm256_cmpgt_epi64(v, _mm256_setzero_si256()))
    }

    /// `(1 << v) - 1` for per-lane shift counts `0 <= v <= 63`.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn low_mask(v: __m256i) -> __m256i {
        _mm256_sub_epi64(
            _mm256_sllv_epi64(_mm256_set1_epi64x(1), v),
            _mm256_set1_epi64x(1),
        )
    }

    /// `floor(log2(s))` per lane for `1 <= s < 2^53`, via the exact
    /// u64 -> f64 conversion trick (split at bit 32, two magic-constant
    /// doubles) and exponent-field extraction.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn msb53(s: __m256i) -> __m256i {
        let hi = _mm256_or_si256(
            _mm256_srli_epi64::<32>(s),
            _mm256_set1_epi64x(0x4530_0000_0000_0000),
        );
        let lo = _mm256_or_si256(
            _mm256_and_si256(s, _mm256_set1_epi64x(0xFFFF_FFFF)),
            _mm256_set1_epi64x(0x4330_0000_0000_0000),
        );
        // (hi_double - (2^84 + 2^52)) + lo_double == s, exactly, below 2^53.
        let magic = _mm256_castsi256_pd(_mm256_set1_epi64x(0x4530_0000_0010_0000));
        let dbl = _mm256_add_pd(
            _mm256_sub_pd(_mm256_castsi256_pd(hi), magic),
            _mm256_castsi256_pd(lo),
        );
        _mm256_sub_epi64(
            _mm256_srli_epi64::<52>(_mm256_castpd_si256(dbl)),
            _mm256_set1_epi64x(1023),
        )
    }

    impl FastAdderBatch {
        /// Four [`FastAdderBatch::add_core`] lanes per step over `L`
        /// (`L % 4 == 0`) lanes.
        #[inline]
        #[target_feature(enable = "avx2")]
        pub(super) fn add_lanes_avx2<const L: usize>(
            &self,
            res: &mut [u64; L],
            acc: &[u64; L],
            prods: &[u64; L],
            words: &[u64; L],
        ) {
            for c in (0..L).step_by(4) {
                let load = |a: &[u64; L]| {
                    _mm256_set_epi64x(
                        a[c + 3] as i64,
                        a[c + 2] as i64,
                        a[c + 1] as i64,
                        a[c] as i64,
                    )
                };
                let out = self.add4(load(acc), load(prods), load(words));
                res[c] = _mm256_extract_epi64::<0>(out) as u64;
                res[c + 1] = _mm256_extract_epi64::<1>(out) as u64;
                res[c + 2] = _mm256_extract_epi64::<2>(out) as u64;
                res[c + 3] = _mm256_extract_epi64::<3>(out) as u64;
            }
        }

        /// Four finite decoded lanes at once; see `add_core` for the
        /// algebra and the per-line invariants.
        #[inline]
        #[target_feature(enable = "avx2")]
        fn add4(&self, aw: __m256i, bw: __m256i, word: __m256i) -> __m256i {
            let spec = &self.spec;
            let zero = _mm256_setzero_si256();
            let one = _mm256_set1_epi64x(1);
            let f = _mm256_set1_epi64x(i64::from(spec.f));
            let low16 = _mm256_set1_epi64x(0xFFFF);

            // Operand swap on the magnitude key (keys are < 2^48, so the
            // signed compare is an unsigned one).
            let keym = _mm256_set1_epi64x(LANE_KEY as i64);
            let akey = _mm256_and_si256(aw, keym);
            let bkey = _mm256_and_si256(bw, keym);
            let swap = _mm256_cmpgt_epi64(bkey, akey);
            let hi = sel(swap, bw, aw);
            let lo = sel(swap, aw, bw);
            let sign_hi = _mm256_srli_epi64::<63>(hi);
            let sign_lo = _mm256_srli_epi64::<63>(lo);
            let ef_hi = _mm256_and_si256(_mm256_srli_epi64::<32>(hi), low16);
            let ef_lo = _mm256_and_si256(_mm256_srli_epi64::<32>(lo), low16);
            let sig_hi = _mm256_and_si256(hi, low16);
            let sig_lo = _mm256_and_si256(lo, low16);

            // Alignment.
            let c63 = _mm256_set1_epi64x(63);
            let d0 = _mm256_sub_epi64(ef_hi, ef_lo);
            let d = sel(_mm256_cmpgt_epi64(d0, c63), c63, d0);
            let yb = _mm256_sllv_epi64(sig_lo, f);
            let y = _mm256_srlv_epi64(yb, d);
            let sigma_m = _mm256_cmpgt_epi64(
                zero,
                _mm256_sub_epi64(zero, _mm256_and_si256(yb, low_mask(d))),
            );
            let sigma = _mm256_srli_epi64::<63>(sigma_m);
            let x = _mm256_sllv_epi64(sig_hi, f);

            // Branch-free effective subtraction.
            let sub_eff = _mm256_xor_si256(sign_hi, sign_lo);
            let subm = _mm256_sub_epi64(zero, sub_eff);
            let s = _mm256_add_epi64(
                _mm256_add_epi64(x, _mm256_xor_si256(y, subm)),
                _mm256_and_si256(subm, _mm256_sub_epi64(one, sigma)),
            );
            let ones = _mm256_and_si256(sub_eff, sigma);
            let extra_sticky = _mm256_and_si256(_mm256_xor_si256(sub_eff, one), sigma);

            // Round: exponent, drop, exact and rounding paths.
            let msb = msb53(_mm256_or_si256(s, one));
            let pm1 = _mm256_set1_epi64x(i64::from(spec.p - 1));
            let drop0 = _mm256_sub_epi64(msb, pm1);
            let drop = if spec.sub {
                let drop_min = _mm256_sub_epi64(f, ef_hi);
                sel(_mm256_cmpgt_epi64(drop0, drop_min), drop0, drop_min)
            } else {
                drop0
            };
            let shl = relu64(_mm256_sub_epi64(zero, drop));
            let kept_e = _mm256_sllv_epi64(s, shl);
            let dr0 = sel(_mm256_cmpgt_epi64(one, drop), one, drop);
            let dr = sel(_mm256_cmpgt_epi64(dr0, c63), c63, dr0);
            let kept_r = _mm256_srlv_epi64(s, dr);
            let tail = _mm256_and_si256(s, low_mask(dr));
            let up = if self.sr {
                let r = _mm256_set1_epi64x(i64::from(spec.r));
                let rs_dn = relu64(_mm256_sub_epi64(dr, r));
                let rs_up = relu64(_mm256_sub_epi64(r, dr));
                let t_hi = _mm256_srlv_epi64(tail, rs_dn);
                let fill = _mm256_and_si256(_mm256_sub_epi64(zero, ones), low_mask(rs_up));
                let t_lo = _mm256_or_si256(_mm256_sllv_epi64(tail, rs_up), fill);
                let t = sel(_mm256_cmpgt_epi64(dr, _mm256_sub_epi64(r, one)), t_hi, t_lo);
                let rmask = _mm256_set1_epi64x(spec.rmask as i64);
                _mm256_srlv_epi64(_mm256_add_epi64(t, _mm256_and_si256(word, rmask)), r)
            } else {
                let drm1 = _mm256_sub_epi64(dr, one);
                let guard = _mm256_and_si256(_mm256_srlv_epi64(tail, drm1), one);
                let rest_nz = _mm256_and_si256(tail, low_mask(drm1));
                let rest_m = _mm256_cmpgt_epi64(zero, _mm256_sub_epi64(zero, rest_nz));
                let rest = _mm256_or_si256(
                    _mm256_or_si256(_mm256_srli_epi64::<63>(rest_m), ones),
                    extra_sticky,
                );
                _mm256_and_si256(_mm256_and_si256(guard, _mm256_or_si256(rest, kept_r)), one)
            };
            let is_round = _mm256_cmpgt_epi64(drop, zero);
            let kept0 = _mm256_add_epi64(
                sel(is_round, kept_r, kept_e),
                _mm256_and_si256(up, is_round),
            );
            let p = _mm256_set1_epi64x(i64::from(spec.p));
            let carry = _mm256_srlv_epi64(kept0, p);
            let kept = _mm256_srlv_epi64(kept0, carry);
            let ef_out =
                _mm256_add_epi64(_mm256_add_epi64(_mm256_sub_epi64(drop, f), ef_hi), carry);

            // Assemble and apply the packing special cases, lowest
            // precedence first (same order as add_core).
            let zero_w = _mm256_slli_epi64::<63>(sign_hi);
            let natural = _mm256_or_si256(
                _mm256_or_si256(zero_w, _mm256_slli_epi64::<32>(ef_out)),
                kept,
            );
            let inf_enc = _mm256_or_si256(
                _mm256_sllv_epi64(sign_hi, _mm256_set1_epi64x(i64::from(self.enc_sign_shift))),
                _mm256_set1_epi64x(self.inf_exp as i64),
            );
            let inf_w = _mm256_or_si256(
                _mm256_slli_epi64::<16>(inf_enc),
                _mm256_set1_epi64x((LANE_SPECIAL | LANE_DRAWS) as i64),
            );
            let mut w = natural;
            w = sel(_mm256_cmpgt_epi64(zero, ef_out), zero_w, w);
            w = sel(
                _mm256_cmpgt_epi64(ef_out, _mm256_set1_epi64x(self.ef_max)),
                inf_w,
                w,
            );
            if !spec.sub {
                let half = _mm256_set1_epi64x(self.half as i64);
                w = sel(_mm256_cmpgt_epi64(half, kept), zero_w, w);
            }
            w = sel(_mm256_cmpeq_epi64(kept, zero), zero_w, w);
            w = sel(_mm256_cmpeq_epi64(s, zero), zero, w);
            let b_zero = _mm256_cmpeq_epi64(bkey, zero);
            let a_zero = _mm256_cmpeq_epi64(akey, zero);
            w = sel(b_zero, aw, w);
            w = sel(a_zero, bw, w);
            let sign = _mm256_set1_epi64x(LANE_SIGN as i64);
            let both_zero_w = _mm256_and_si256(_mm256_and_si256(aw, bw), sign);
            w = sel(_mm256_and_si256(a_zero, b_zero), both_zero_w, w);
            w
        }
    }
}

/// The decoded-form product table: [`ProductLut`]'s 256 x 256 code plane
/// with every product stored as a decoded lane word, so the batched inner
/// loop loads operands ready for [`FastAdderBatch::mac_step`] — no
/// per-step field extraction at all.
#[derive(Clone)]
pub struct DecodedLut {
    table: Box<[u64; 1 << 16]>,
}

impl std::fmt::Debug for DecodedLut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodedLut").finish_non_exhaustive()
    }
}

impl DecodedLut {
    /// Decodes every entry of `lut` with `batch` (which must share the
    /// LUT's output format).
    ///
    /// # Panics
    ///
    /// Panics if the formats disagree.
    #[must_use]
    pub fn build(lut: &ProductLut, batch: &FastAdderBatch) -> Self {
        assert_eq!(
            lut.output_format(),
            batch.format(),
            "decoded LUT must share the adder's format"
        );
        let table: Vec<u64> = (0..1usize << 16)
            .map(|i| batch.decode(u64::from(lut.product((i >> 8) as u8, i as u8))))
            .collect();
        Self {
            table: table.into_boxed_slice().try_into().expect("table is 65536"), // PANIC-OK: the collect above produced exactly 65536 entries.
        }
    }

    /// The 256-entry decoded product row for left code `ca`.
    #[inline]
    #[must_use]
    pub fn row(&self, ca: u8) -> &[u64; 256] {
        let start = (ca as usize) << 8;
        self.table[start..start + 256]
            .try_into()
            .expect("row is 256") // PANIC-OK: start + 256 <= 65536 for any u8 row index.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::PairLut;
    use srmac_fp::mask;
    use srmac_rng::{SplitMix64, SrLaneStreams};

    /// Exhaustive code-for-code equivalence with the scalar adder over the
    /// full operand plane of the paper's accumulator format, both
    /// subnormal settings, RN and SR at several word values — the
    /// load-bearing guarantee that lane batching changes performance and
    /// nothing else.
    #[test]
    fn batch_add_vs_scalar_e6m5_exhaustive() {
        for sub in [true, false] {
            let fmt = FpFormat::e6m5().with_subnormals(sub);
            for (mode, words) in [
                (AccumRounding::Nearest, vec![0u64]),
                (AccumRounding::Stochastic { r: 9 }, vec![0u64, 0x0F3, 0x1FF]),
                (AccumRounding::Stochastic { r: 13 }, vec![0u64, 0x1ACE]),
            ] {
                let scalar = FastAdder::new(fmt, mode);
                let batch = FastAdderBatch::new(fmt, mode);
                let all: Vec<u64> = fmt.iter_encodings().collect();
                for a in fmt.iter_encodings() {
                    for &w in &words {
                        // Sweep b across lanes, 8 at a time.
                        for chunk in all.chunks(8) {
                            let mut bs = [0u64; 8];
                            bs[..chunk.len()].copy_from_slice(chunk);
                            let got = batch.add(&[a; 8], &bs, &[w; 8]);
                            for (l, &b) in chunk.iter().enumerate() {
                                let want = scalar.add(a, b, w);
                                assert_eq!(
                                    got[l], want,
                                    "{fmt} {mode:?}: {a:#x}+{b:#x} w={w:#x} lane {l}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn batch_add_vs_scalar_wider_formats_random() {
        let mut rng = SplitMix64::new(4242);
        for fmt in [
            FpFormat::e5m10(),
            FpFormat::e4m3(),
            FpFormat::e8m7(),
            FpFormat::e8m7().with_subnormals(false),
        ] {
            let r = fmt.precision() + 3;
            let mode = AccumRounding::Stochastic { r };
            let scalar = FastAdder::new(fmt, mode);
            let batch = FastAdderBatch::new(fmt, mode);
            for _ in 0..60_000 {
                let mut a = [0u64; 8];
                let mut b = [0u64; 8];
                let mut w = [0u64; 8];
                for l in 0..8 {
                    a[l] = rng.next_u64() & fmt.bits_mask();
                    b[l] = rng.next_u64() & fmt.bits_mask();
                    w[l] = rng.next_u64() & mask(r);
                }
                let got = batch.add(&a, &b, &w);
                for l in 0..8 {
                    assert_eq!(
                        got[l],
                        scalar.add(a[l], b[l], w[l]),
                        "{fmt}: {:#x}+{:#x} w={:#x}",
                        a[l],
                        b[l],
                        w[l]
                    );
                }
            }
        }
    }

    #[test]
    fn decode_encode_roundtrip_all_encodings() {
        for sub in [true, false] {
            let fmt = FpFormat::e6m5().with_subnormals(sub);
            let batch = FastAdderBatch::new(fmt, AccumRounding::Nearest);
            for enc in fmt.iter_encodings() {
                let w = batch.decode(enc);
                let pseudo_subnormal = !sub && fmt.is_zero(enc) && enc & fmt.man_mask() != 0;
                if pseudo_subnormal {
                    // Canonicalized to a (draw-consuming) zero, like every
                    // other consumer of such encodings in the stack.
                    assert_eq!(w & LANE_KEY, 0, "{enc:#x} decodes to a zero key");
                    assert_ne!(w & LANE_DRAWS, 0, "{enc:#x} still consumes a word");
                } else {
                    assert_eq!(batch.encode(w), enc, "roundtrip of {enc:#x} (sub={sub})");
                }
                // The draws bit mirrors the scalar loop's zero-skip rule.
                assert_eq!(
                    w & LANE_DRAWS != 0,
                    enc & mask(fmt.bits() - 1) != 0,
                    "{enc:#x} draws"
                );
            }
        }
    }

    #[test]
    fn mac_step_skips_zero_products_verbatim() {
        let fmt = FpFormat::e6m5();
        let batch = FastAdderBatch::new(fmt, AccumRounding::Stochastic { r: 13 });
        // A negative-zero accumulator must survive a +0 product untouched
        // (the scalar loop never even calls the adder for it).
        let neg_zero = batch.decode(fmt.zero_bits(true));
        let one = batch.decode(fmt.quantize_f32(1.0, srmac_fp::RoundMode::NearestEven).bits);
        let mut acc = [neg_zero, one, 0u64, one];
        let before = acc;
        let zero = batch.decode(fmt.zero_bits(false));
        batch.mac_step(&mut acc, &[zero; 4], &[0u64; 4]);
        assert_eq!(acc, before);
        // A non-zero product in one lane commits only that lane.
        batch.mac_step(&mut acc, &[zero, one, zero, zero], &[0u64; 4]);
        assert_eq!([acc[0], acc[2], acc[3]], [before[0], before[2], before[3]]);
        assert_eq!(batch.encode(acc[1]), {
            let scalar = FastAdder::new(fmt, AccumRounding::Stochastic { r: 13 });
            scalar.add(batch.encode(one), batch.encode(one), 0)
        });
    }

    #[test]
    fn special_lanes_fall_back_to_golden_semantics() {
        let fmt = FpFormat::e6m5();
        let mode = AccumRounding::Stochastic { r: 13 };
        let batch = FastAdderBatch::new(fmt, mode);
        let scalar = FastAdder::new(fmt, mode);
        let inf = fmt.inf_bits(false);
        let ninf = fmt.inf_bits(true);
        let nan = fmt.nan_bits();
        let one = fmt.quantize_f32(1.0, srmac_fp::RoundMode::NearestEven).bits;
        for (a, b) in [
            (inf, one),
            (one, inf),
            (inf, ninf),
            (nan, one),
            (one, nan),
            (inf, inf),
        ] {
            let got = batch.add(&[a; 2], &[b; 2], &[0x123; 2]);
            let want = scalar.add(a, b, 0x123);
            assert_eq!(got, [want; 2], "{a:#x}+{b:#x}");
        }
        // And through mac_step: an accumulator that overflowed to infinity
        // stays on the golden special path for the rest of the dot product.
        let big = fmt.max_finite_bits(false);
        let mut acc = [batch.decode(big)];
        let prod = batch.decode(big);
        batch.mac_step(&mut acc, &[prod], &[0]);
        assert_eq!(batch.encode(acc[0]), scalar.add(big, big, 0));
        let after_inf = batch.encode(acc[0]);
        batch.mac_step(&mut acc, &[batch.decode(one)], &[0]);
        assert_eq!(batch.encode(acc[0]), scalar.add(after_inf, one, 0));
    }

    /// The narrow kernel's counterpart of the exhaustive wide test: the
    /// u32 algebra must be bit-identical to the scalar adder over the
    /// whole E6M5 operand plane, both subnormal settings, RN and SR.
    #[test]
    fn narrow_add_vs_scalar_e6m5_exhaustive() {
        for sub in [true, false] {
            let fmt = FpFormat::e6m5().with_subnormals(sub);
            for (mode, words) in [
                (AccumRounding::Nearest, vec![0u64]),
                (AccumRounding::Stochastic { r: 9 }, vec![0u64, 0x0F3, 0x1FF]),
                (AccumRounding::Stochastic { r: 13 }, vec![0u64, 0x1ACE]),
            ] {
                let scalar = FastAdder::new(fmt, mode);
                let batch = FastAdderBatch::new(fmt, mode);
                assert!(batch.narrow_ok(), "{fmt} {mode:?} fits the narrow word");
                let all: Vec<u64> = fmt.iter_encodings().collect();
                for a in fmt.iter_encodings() {
                    for &w in &words {
                        for chunk in all.chunks(8) {
                            let mut bs = [0u64; 8];
                            bs[..chunk.len()].copy_from_slice(chunk);
                            let got = batch.add32(&[a; 8], &bs, &[w; 8]);
                            for (l, &b) in chunk.iter().enumerate() {
                                let want = scalar.add(a, b, w);
                                assert_eq!(
                                    got[l], want,
                                    "{fmt} {mode:?}: {a:#x}+{b:#x} w={w:#x} lane {l}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// A second narrow-capable format (E8M7 at SR11: p + f = 8 + 23 = 31,
    /// exactly at the envelope edge), random-sampled against the scalar
    /// adder to cover exponent fields wider than E6M5's.
    #[test]
    fn narrow_add_vs_scalar_e8m7_random() {
        let mut rng = SplitMix64::new(777);
        for fmt in [FpFormat::e8m7(), FpFormat::e8m7().with_subnormals(false)] {
            let mode = AccumRounding::Stochastic { r: 11 };
            let scalar = FastAdder::new(fmt, mode);
            let batch = FastAdderBatch::new(fmt, mode);
            assert!(batch.narrow_ok());
            for _ in 0..60_000 {
                let mut a = [0u64; 8];
                let mut b = [0u64; 8];
                let mut w = [0u64; 8];
                for l in 0..8 {
                    a[l] = rng.next_u64() & fmt.bits_mask();
                    b[l] = rng.next_u64() & fmt.bits_mask();
                    w[l] = rng.next_u64() & mask(11);
                }
                let got = batch.add32(&a, &b, &w);
                for l in 0..8 {
                    assert_eq!(
                        got[l],
                        scalar.add(a[l], b[l], w[l]),
                        "{fmt}: {:#x}+{:#x} w={:#x}",
                        a[l],
                        b[l],
                        w[l]
                    );
                }
            }
        }
    }

    #[test]
    fn narrow_gate_matches_the_envelope() {
        // The paper's accumulator fits up to r = 15 (p + f = 6 + 25 = 31,
        // the envelope edge)...
        for mode in [
            AccumRounding::Nearest,
            AccumRounding::Stochastic { r: 13 },
            AccumRounding::Stochastic { r: 15 },
        ] {
            assert!(FastAdderBatch::new(FpFormat::e6m5(), mode).narrow_ok());
        }
        // ...but not beyond (r = 16 -> p + f = 32), and a p=11
        // accumulator at SR13 (p + f = 39) does not either.
        let r16 = FastAdderBatch::new(FpFormat::e6m5(), AccumRounding::Stochastic { r: 16 });
        assert!(!r16.narrow_ok());
        let wide = FastAdderBatch::new(FpFormat::e5m10(), AccumRounding::Stochastic { r: 13 });
        assert!(!wide.narrow_ok());
    }

    /// Narrow words are a faithful re-coding of wide words: decode32 is
    /// narrow(decode), widening inverts narrowing, and flags line up.
    #[test]
    fn narrow_word_roundtrips_and_mirrors_wide_flags() {
        for sub in [true, false] {
            let fmt = FpFormat::e6m5().with_subnormals(sub);
            let batch = FastAdderBatch::new(fmt, AccumRounding::Stochastic { r: 13 });
            for enc in fmt.iter_encodings() {
                let wide = batch.decode(enc);
                let narrow = batch.decode32(enc);
                assert_eq!(FastAdderBatch::widen_word(narrow), wide, "{enc:#x}");
                assert_eq!(batch.encode32(narrow), batch.encode(wide), "{enc:#x}");
                assert_eq!(
                    narrow & LANE32_DRAWS != 0,
                    wide & LANE_DRAWS != 0,
                    "{enc:#x} draws"
                );
                assert_eq!(
                    narrow & LANE32_KEY == 0,
                    wide & LANE_KEY == 0,
                    "{enc:#x} zero key"
                );
            }
        }
    }

    #[test]
    fn mac_step32_skips_zero_products_verbatim() {
        let fmt = FpFormat::e6m5();
        let batch = FastAdderBatch::new(fmt, AccumRounding::Stochastic { r: 13 });
        let neg_zero = batch.decode32(fmt.zero_bits(true));
        let one = batch.decode32(fmt.quantize_f32(1.0, srmac_fp::RoundMode::NearestEven).bits);
        let mut acc = [neg_zero, one, 0u32, one];
        let before = acc;
        let zero = batch.decode32(fmt.zero_bits(false));
        batch.mac_step32(&mut acc, &[zero; 4], &[0u64; 4]);
        assert_eq!(acc, before);
        batch.mac_step32(&mut acc, &[zero, one, zero, zero], &[0u64; 4]);
        assert_eq!([acc[0], acc[2], acc[3]], [before[0], before[2], before[3]]);
        assert_eq!(batch.encode32(acc[1]), {
            let scalar = FastAdder::new(fmt, AccumRounding::Stochastic { r: 13 });
            scalar.add(batch.encode32(one), batch.encode32(one), 0)
        });
    }

    #[test]
    fn narrow_special_lanes_fall_back_to_golden_semantics() {
        let fmt = FpFormat::e6m5();
        let mode = AccumRounding::Stochastic { r: 13 };
        let batch = FastAdderBatch::new(fmt, mode);
        let scalar = FastAdder::new(fmt, mode);
        let big = fmt.max_finite_bits(false);
        let one = fmt.quantize_f32(1.0, srmac_fp::RoundMode::NearestEven).bits;
        // Overflow to infinity inside mac_step32, then keep accumulating:
        // golden special semantics all the way through.
        let mut acc = [batch.decode32(big)];
        batch.mac_step32(&mut acc, &[batch.decode32(big)], &[0]);
        assert_eq!(batch.encode32(acc[0]), scalar.add(big, big, 0));
        let after_inf = batch.encode32(acc[0]);
        batch.mac_step32(&mut acc, &[batch.decode32(one)], &[0]);
        assert_eq!(batch.encode32(acc[0]), scalar.add(after_inf, one, 0));
    }

    #[test]
    fn decoded_lut_entries_match_decode_of_products() {
        let fin = FpFormat::e5m2();
        let fout = FpFormat::e6m5();
        let lut = ProductLut::build(fin, fout);
        let batch = FastAdderBatch::new(fout, AccumRounding::Nearest);
        let dlut = DecodedLut::build(&lut, &batch);
        for a in 0..=255u8 {
            let row = dlut.row(a);
            for b in 0..=255u8 {
                assert_eq!(row[b as usize], batch.decode(u64::from(lut.product(a, b))));
            }
        }
    }

    /// The AVX-512 16-lane dot kernel against a reference loop of the
    /// (scalar-verified) `mac_step32` + `SrLaneStreams` machinery: random
    /// compacted-A streams and panel bytes over the full e5m2 code plane —
    /// zeros (zero-skip + no draw), NaN/Inf codes (the `#[cold]` scalar
    /// fixup), both halves of a 32-wide panel block, RN and SR13.
    #[test]
    #[cfg(target_arch = "x86_64")]
    fn z16_dot_matches_scalar_mac_loop() {
        if !(is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx512bw")
            && is_x86_feature_detected!("avx512dq")
            && is_x86_feature_detected!("avx512vl")
            && is_x86_feature_detected!("avx512cd"))
        {
            eprintln!("skipping z16 equivalence test: no AVX-512 at runtime");
            return;
        }
        let lut = ProductLut::build(FpFormat::e5m2(), FpFormat::e6m5());
        let mut rng = SplitMix64::new(0xD0716);
        for mode in [AccumRounding::Nearest, AccumRounding::Stochastic { r: 13 }] {
            let sr = matches!(mode, AccumRounding::Stochastic { .. });
            let batch = FastAdderBatch::new(FpFormat::e6m5(), mode);
            let plut = PairLut::build(&lut, &batch).expect("e6m5 fits the narrow envelope");
            for case in 0..160 {
                let stride = [16usize, 32, 64][case % 3];
                let lane0 = (case / 3 % (stride / 16)) * 16;
                let rows = 1 + (rng.next_u64() % 48) as usize;
                let pan: Vec<u8> = (0..rows * stride).map(|_| rng.next_u64() as u8).collect();
                // Compacted A: ascending ids, codes across the whole
                // plane — specials included every few steps.
                let mut ids = Vec::new();
                let mut cods = Vec::new();
                let mut ci = 0usize;
                while ci < rows {
                    ids.push(ci as u32);
                    cods.push(if rng.next_u64().is_multiple_of(11) {
                        [0x7D, 0x7C, 0x00][(rng.next_u64() % 3) as usize]
                    } else {
                        rng.next_u64() as u8
                    });
                    ci += 1 + (rng.next_u64() % 3) as usize;
                }
                let seeds: [u64; 16] = std::array::from_fn(|_| rng.next_u64());

                // Reference: the scalar-verified narrow step machinery.
                let mut streams = SrLaneStreams::new(seeds);
                let mut acc = [0u32; 16];
                for (&id, &ca) in ids.iter().zip(&cods) {
                    let row = plut.row(ca);
                    let prods: [u32; 16] = std::array::from_fn(|l| {
                        row[pan[id as usize * stride + lane0 + l] as usize]
                    });
                    let words = if sr {
                        streams.draw(std::array::from_fn(|l| prods[l] & LANE32_DRAWS != 0))
                    } else {
                        [0u64; 16]
                    };
                    batch.mac_step32(&mut acc, &prods, &words);
                }

                // SAFETY: AVX-512 F/BW/DQ/VL/CD verified at runtime above.
                #[allow(unsafe_code)]
                let got = unsafe {
                    if sr {
                        z16::dot16_narrow::<true>(
                            &batch,
                            plut.table(),
                            &ids,
                            &cods,
                            &pan,
                            stride,
                            lane0,
                            &seeds,
                        )
                    } else {
                        z16::dot16_narrow::<false>(
                            &batch,
                            plut.table(),
                            &ids,
                            &cods,
                            &pan,
                            stride,
                            lane0,
                            &seeds,
                        )
                    }
                };
                for l in 0..16 {
                    assert_eq!(
                        got[l], acc[l],
                        "{mode:?} case {case}: lane {l} (stride {stride}, lane0 {lane0})"
                    );
                }

                // The interleaved 64-wide kernel == four 16-wide calls
                // (themselves pinned to the scalar loop above).
                if stride == 64 {
                    let seeds64: [u64; 64] = std::array::from_fn(|_| rng.next_u64());
                    // SAFETY: AVX-512 F/BW/DQ/VL/CD verified at runtime above.
                    #[allow(unsafe_code)]
                    unsafe {
                        let (wide, quads) = if sr {
                            (
                                z16::dot64_narrow::<true>(
                                    &batch,
                                    plut.table(),
                                    &ids,
                                    &cods,
                                    &pan,
                                    64,
                                    0,
                                    &seeds64,
                                ),
                                std::array::from_fn::<_, 4, _>(|q| {
                                    z16::dot16_narrow::<true>(
                                        &batch,
                                        plut.table(),
                                        &ids,
                                        &cods,
                                        &pan,
                                        64,
                                        q * 16,
                                        seeds64[q * 16..q * 16 + 16].try_into().unwrap(),
                                    )
                                }),
                            )
                        } else {
                            (
                                z16::dot64_narrow::<false>(
                                    &batch,
                                    plut.table(),
                                    &ids,
                                    &cods,
                                    &pan,
                                    64,
                                    0,
                                    &seeds64,
                                ),
                                std::array::from_fn::<_, 4, _>(|q| {
                                    z16::dot16_narrow::<false>(
                                        &batch,
                                        plut.table(),
                                        &ids,
                                        &cods,
                                        &pan,
                                        64,
                                        q * 16,
                                        seeds64[q * 16..q * 16 + 16].try_into().unwrap(),
                                    )
                                }),
                            )
                        };
                        for q in 0..4 {
                            assert_eq!(
                                wide[q * 16..q * 16 + 16],
                                quads[q],
                                "{mode:?} case {case}: 64-wide chain {q}"
                            );
                        }
                    }
                }

                // Likewise the 32-wide kernel == two 16-wide calls.
                if stride == 32 {
                    let seeds32: [u64; 32] = std::array::from_fn(|_| rng.next_u64());
                    // SAFETY: AVX-512 F/BW/DQ/VL/CD verified at runtime above.
                    #[allow(unsafe_code)]
                    unsafe {
                        let (wide, pairs) = if sr {
                            (
                                z16::dot32_narrow::<true>(
                                    &batch,
                                    plut.table(),
                                    &ids,
                                    &cods,
                                    &pan,
                                    32,
                                    0,
                                    &seeds32,
                                ),
                                std::array::from_fn::<_, 2, _>(|q| {
                                    z16::dot16_narrow::<true>(
                                        &batch,
                                        plut.table(),
                                        &ids,
                                        &cods,
                                        &pan,
                                        32,
                                        q * 16,
                                        seeds32[q * 16..q * 16 + 16].try_into().unwrap(),
                                    )
                                }),
                            )
                        } else {
                            (
                                z16::dot32_narrow::<false>(
                                    &batch,
                                    plut.table(),
                                    &ids,
                                    &cods,
                                    &pan,
                                    32,
                                    0,
                                    &seeds32,
                                ),
                                std::array::from_fn::<_, 2, _>(|q| {
                                    z16::dot16_narrow::<false>(
                                        &batch,
                                        plut.table(),
                                        &ids,
                                        &cods,
                                        &pan,
                                        32,
                                        q * 16,
                                        seeds32[q * 16..q * 16 + 16].try_into().unwrap(),
                                    )
                                }),
                            )
                        };
                        for q in 0..2 {
                            assert_eq!(
                                wide[q * 16..q * 16 + 16],
                                pairs[q],
                                "{mode:?} case {case}: 32-wide chain {q}"
                            );
                        }
                    }
                }
            }
        }
    }
}
