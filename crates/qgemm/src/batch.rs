//! The lane-batched MAC adder: [`FastAdder`]'s algebra applied to `L`
//! independent accumulation lanes at once, branch-free.
//!
//! # Why lanes, and why this is bit-exact
//!
//! The paper's MAC is a parallel datapath — one aligned add per product
//! per cycle — while the scalar emulation walks one add at a time through
//! a chain of data-dependent branches (operand swap, alignment, sticky,
//! round-up, carry) that mispredict constantly. This module restores the
//! parallel shape in software: `L` output columns of the same GEMM row
//! are accumulated side by side, every select expressed as SWAR mask
//! arithmetic (`(t & m) | (e & !m)` blends over `u64` lane words), so the
//! whole step is straight-line code the CPU can overlap across lanes.
//!
//! Vectorizing *across columns* never touches correctness: each output
//! element's adds stay in `k` order and its SR stream (position-seeded by
//! `(seed, row, column)`) is consumed identically — lanes only change
//! *when* independent elements are computed, never *what* each one
//! computes. The exhaustive `batch_vs_scalar` tests below pin this down
//! code-for-code against [`FastAdder`].
//!
//! # The decoded lane word
//!
//! Between adds a lane's accumulator never round-trips through the packed
//! encoding: it stays in a *decoded* `u64` word holding the ULP-anchored
//! significand and exponent the adder algebra actually works on —
//! re-encoding after one add and re-decoding at the next would be pure
//! overhead. The layout:
//!
//! ```text
//! bit 63      sign (1 = negative)
//! bit 62      special (infinity / NaN; the raw encoding lives in 16..32)
//! bit 61      draws (the packed encoding has non-zero magnitude, i.e.
//!             this value consumes an SR word as a product)
//! bits 32..48 exponent field: ULP exponent minus `qmin` (zero for
//!             subnormals and zeros)
//! bits 16..32 raw encoding (special words only; zero otherwise)
//! bits  0..16 ULP-anchored significand (implicit bit explicit)
//! ```
//!
//! The low 48 bits form a *magnitude key*: for canonical finite words,
//! unsigned comparison of keys is exactly magnitude comparison (the
//! exponent field sits above the significand), and a zero key means a
//! zero value. That makes the operand swap, the zero tests and the
//! alignment distance all plain integer arithmetic on one word.
//!
//! Special values (exponent field all ones) are rare in training — they
//! only appear on accumulator overflow or NaN inputs — and fall back to
//! the scalar adder per lane, preserving golden special semantics.

use srmac_fp::FpFormat;

use crate::fastmath::{AccumRounding, AdderSpec, FastAdder};
use crate::lut::ProductLut;

/// Sign bit of a decoded lane word.
pub const LANE_SIGN: u64 = 1 << 63;
/// Special marker (infinity/NaN) of a decoded lane word.
pub const LANE_SPECIAL: u64 = 1 << 62;
/// Draw marker: the encoded value has non-zero magnitude, so as a product
/// it consumes one SR rounding word (the zero-skip rule's complement).
pub const LANE_DRAWS: u64 = 1 << 61;
/// Magnitude-comparison key: exponent field + significand (+ the raw
/// encoding bits of special words, which never take part in comparisons
/// but must keep the key non-zero).
pub const LANE_KEY: u64 = (1 << 48) - 1;

const EF_SHIFT: u32 = 32;
const ENC_SHIFT: u32 = 16;

/// Branch-free select: `t` where `c`, else `e`.
#[inline(always)]
fn sel(c: bool, t: u64, e: u64) -> u64 {
    let m = (c as u64).wrapping_neg();
    (t & m) | (e & !m)
}

/// A lane-batched fixed-format floating-point adder: the same algebra as
/// [`FastAdder`] (they share one `AdderSpec`), evaluated over `L`
/// decoded lane words at once with every select a SWAR mask blend.
///
/// The portable SWAR path below is the default on every architecture and
/// is written to auto-vectorize; the engine invokes it through
/// runtime-detected `#[target_feature]` wrappers (see `SimdTier` in
/// `engine.rs`), so stock builds get AVX2/AVX-512 codegen of this exact
/// code with no special compiler flags. An explicit `std::arch` AVX2
/// rendition of the same algebra lives in the `simd` module behind the
/// opt-in `arch-simd` feature; the exhaustive equivalence tests cover
/// whichever path is compiled in.
#[derive(Clone, Copy, Debug)]
pub struct FastAdderBatch {
    spec: AdderSpec,
    scalar: FastAdder,
    /// Stochastic (`true`) or round-to-nearest-even (`false`).
    sr: bool,
    /// `1 << (p - 1)`: smallest normalized significand.
    half: u64,
    /// Largest representable exponent field (`emax - (p - 1) - qmin`).
    ef_max: i64,
    /// Exponent field of an infinity encoding, pre-shifted.
    inf_exp: u64,
    /// Sign-bit position of the packed encoding.
    enc_sign_shift: u32,
}

impl FastAdderBatch {
    /// Creates the batch adder (same envelope as [`FastAdder::new`]).
    ///
    /// # Panics
    ///
    /// Panics if the format or `r` exceeds the fast-path envelope.
    #[must_use]
    pub fn new(fmt: FpFormat, mode: AccumRounding) -> Self {
        let scalar = FastAdder::new(fmt, mode);
        let spec = *scalar.spec();
        Self {
            spec,
            scalar,
            sr: matches!(mode, AccumRounding::Stochastic { .. }),
            half: 1 << (spec.p - 1),
            ef_max: i64::from(spec.emax) - i64::from(spec.p - 1) - i64::from(spec.qmin),
            inf_exp: spec.emask << spec.mbits,
            enc_sign_shift: fmt.bits() - 1,
        }
    }

    /// The format this adder operates on.
    #[must_use]
    pub fn format(&self) -> FpFormat {
        self.spec.fmt
    }

    /// Decodes a packed encoding into a lane word.
    ///
    /// Finite values become canonical decoded words; special encodings
    /// (exponent field all ones) are carried verbatim behind
    /// [`LANE_SPECIAL`]. With subnormals disabled, pseudo-subnormal
    /// encodings (`e == 0, m != 0`) decode — like everywhere else in the
    /// stack — to a zero word, though they keep their [`LANE_DRAWS`] bit
    /// (the scalar GEMM loop draws a rounding word for any non-zero
    /// *encoded* magnitude before discovering the value is zero).
    #[must_use]
    pub fn decode(&self, enc: u64) -> u64 {
        let spec = &self.spec;
        let e = (enc >> spec.mbits) & spec.emask;
        let m = enc & spec.mmask;
        let sign = (enc >> self.enc_sign_shift) & 1;
        let draws = sel(enc & spec.magmask != 0, LANE_DRAWS, 0);
        if e == spec.emask {
            return LANE_SPECIAL | draws | (enc << ENC_SHIFT);
        }
        if e == 0 && (m == 0 || !spec.sub) {
            return (sign << 63) | draws;
        }
        let norm = u64::from(e != 0);
        let sig = m | (norm << spec.mbits);
        // ULP exponent minus qmin: `e - 1` for normals (qmin = emin - mbits
        // and the bias arithmetic cancel), 0 for subnormals (e == 0).
        let ef = e.saturating_sub(1);
        (sign << 63) | draws | (ef << EF_SHIFT) | sig
    }

    /// Encodes a lane word back into the packed format. Inverse of
    /// [`FastAdderBatch::decode`] on canonical words; special words return
    /// their carried encoding verbatim.
    #[must_use]
    pub fn encode(&self, w: u64) -> u64 {
        let spec = &self.spec;
        if w & LANE_SPECIAL != 0 {
            return (w >> ENC_SHIFT) & srmac_fp::mask(spec.fmt.bits());
        }
        let sbit = (w >> 63) << self.enc_sign_shift;
        let sig = w & 0xFFFF;
        let ef = (w >> EF_SHIFT) & 0xFFFF;
        if sig < self.half {
            // Zero or subnormal: the exponent field of the encoding is 0.
            debug_assert!(ef == 0, "subnormal lane words sit at the qmin exponent");
            return sbit | sig;
        }
        sbit | ((ef + 1) << spec.mbits) | (sig & spec.mmask)
    }

    /// One MAC accumulation step over `L` lanes: `acc[l] += prod[l]` in
    /// the adder's rounding semantics, with the GEMM zero-skip rule
    /// applied per lane — a zero-magnitude product leaves its accumulator
    /// word (sign of zero included) completely untouched, exactly as the
    /// scalar loop's `is_zero_prod` skip does.
    ///
    /// `words[l]` is lane `l`'s SR rounding word (ignored under RN); the
    /// caller advances each lane's stream only when [`LANE_DRAWS`] is set
    /// on the product, which keeps the per-element SR streams identical
    /// to the scalar path.
    ///
    /// `inline(always)`: the caller's accumulation loop must keep `acc`
    /// in (vector) registers across `k` steps; an out-of-line call here
    /// forces a full spill/reload of every lane per step.
    #[inline(always)]
    pub fn mac_step<const L: usize>(&self, acc: &mut [u64; L], prods: &[u64; L], words: &[u64; L]) {
        let mut special = 0u64;
        for l in 0..L {
            special |= acc[l] | prods[l];
        }
        let mut res = [0u64; L];
        self.add_lanes(&mut res, acc, prods, words);
        if special & LANE_SPECIAL != 0 {
            self.fixup_specials(acc, prods, words, &mut res);
        }
        for l in 0..L {
            // Zero-skip: only non-zero-magnitude products commit.
            acc[l] = sel(prods[l] & LANE_KEY != 0, res[l], acc[l]);
        }
    }

    /// Runs [`FastAdderBatch::add_core`] over all `L` lanes — through the
    /// `std::arch` fast path where one is compiled in (see the `simd`
    /// module), through the portable SWAR code otherwise. Both paths are
    /// the same algebra; the exhaustive equivalence tests run against
    /// whichever is active in the current build.
    #[inline(always)]
    fn add_lanes<const L: usize>(
        &self,
        res: &mut [u64; L],
        acc: &[u64; L],
        prods: &[u64; L],
        words: &[u64; L],
    ) {
        #[cfg(all(feature = "arch-simd", target_arch = "x86_64", target_feature = "avx2"))]
        if L.is_multiple_of(4) {
            // SAFETY: the callee's only requirement is the `avx2` target
            // feature, which the `cfg` above guarantees is statically
            // enabled for this build (and therefore on every thread).
            #[allow(unsafe_code)]
            unsafe {
                self.add_lanes_avx2(res, acc, prods, words);
            }
            return;
        }
        for l in 0..L {
            res[l] = self.add_core(acc[l], prods[l], words[l]);
        }
    }

    /// Adds `L` pairs of packed encodings with their rounding words —
    /// the encoding-level API, bit-identical lane by lane to
    /// [`FastAdder::add`] (the equivalence the exhaustive tests assert).
    #[must_use]
    pub fn add<const L: usize>(&self, a: &[u64; L], b: &[u64; L], words: &[u64; L]) -> [u64; L] {
        let mut aw = [0u64; L];
        let mut bw = [0u64; L];
        for l in 0..L {
            aw[l] = self.decode(a[l]);
            bw[l] = self.decode(b[l]);
        }
        let mut res = [0u64; L];
        self.add_lanes(&mut res, &aw, &bw, words);
        let mut out = [0u64; L];
        for l in 0..L {
            out[l] = if (aw[l] | bw[l]) & LANE_SPECIAL != 0 {
                self.scalar.add(a[l], b[l], words[l])
            } else {
                self.encode(res[l])
            };
        }
        out
    }

    /// Scalar repair of the rare special lanes of a [`FastAdderBatch::mac_step`].
    #[cold]
    fn fixup_specials<const L: usize>(
        &self,
        acc: &[u64; L],
        prods: &[u64; L],
        words: &[u64; L],
        res: &mut [u64; L],
    ) {
        for l in 0..L {
            if (acc[l] | prods[l]) & LANE_SPECIAL != 0 {
                let enc = self
                    .scalar
                    .add(self.encode(acc[l]), self.encode(prods[l]), words[l]);
                res[l] = self.decode(enc);
            }
        }
    }

    /// The branch-free core: adds two *finite* decoded lane words under
    /// the adder's rounding mode. Special words must be handled by the
    /// caller (the result for them is garbage, never a panic). This is
    /// the exact algebra of [`FastAdder::add`] + `round_pack` with every
    /// branch replaced by a mask blend and every variable shift clamped.
    #[inline(always)]
    fn add_core(&self, aw: u64, bw: u64, word: u64) -> u64 {
        let spec = &self.spec;
        let f = u64::from(spec.f);
        let p = spec.p;

        // Operand swap on the magnitude key (ties keep `a`, matching the
        // scalar `bmag > amag` strict compare).
        let akey = aw & LANE_KEY;
        let bkey = bw & LANE_KEY;
        let sm = ((bkey > akey) as u64).wrapping_neg();
        let hi = aw ^ ((aw ^ bw) & sm);
        let lo = aw ^ bw ^ hi;
        let sign_hi = hi >> 63;
        let sign_lo = lo >> 63;
        let ef_hi = (hi >> EF_SHIFT) & 0xFFFF;
        let ef_lo = (lo >> EF_SHIFT) & 0xFFFF;
        let sig_hi = hi & 0xFFFF;
        let sig_lo = lo & 0xFFFF;

        // Alignment. `sig_lo << f >> d` with the shifted-out tail as the
        // sticky `sigma`; `d` clamps at 63, which is exact because the
        // pre-shifted significand has at most `p + f < 53` bits.
        let d = (ef_hi - ef_lo).min(63);
        let yb = sig_lo << f;
        let y = yb >> d;
        let sigma = u64::from(yb & ((1u64 << d) - 1) != 0);
        let x = sig_hi << f;

        // Branch-free effective subtraction (see `FastAdder::add`):
        // `x - y - sigma == x + !y + (1 - sigma)` in two's complement.
        let sub_eff = sign_hi ^ sign_lo;
        let subm = sub_eff.wrapping_neg();
        let s = x.wrapping_add(y ^ subm).wrapping_add(subm & (1 - sigma));
        let ones = sub_eff & sigma;
        let extra_sticky = (1 - sub_eff) & sigma;

        // Round `(-1)^sign_hi * s * 2^(q_hi - f)` into the format — the
        // `round_pack` algebra on exponent *fields* (qmin-relative), with
        // both the exact and the rounding path computed and blended.
        // `s | 1` keeps `leading_zeros` defined for the cancellation case
        // (selected to +0 below).
        let msb = 63 - i64::from((s | 1).leading_zeros());
        let drop0 = msb - i64::from(p - 1);
        let drop = if spec.sub {
            // The qmin clamp: never round below the subnormal quantum.
            drop0.max(f as i64 - ef_hi as i64)
        } else {
            drop0
        };

        // Exact path (drop <= 0): left-justify; no rounding.
        let shl = (-drop).max(0) as u32;
        let kept_e = s << shl;

        // Rounding path (drop >= 1): split kept/tail and decide the
        // round-up. Shift amounts are clamped so the unselected path
        // never overshifts.
        let dr = drop.clamp(1, 63) as u32;
        let kept_r = s >> dr;
        let tail = s & ((1u64 << dr) - 1);
        let up = if self.sr {
            // Scale the dropped tail to `r` bits; a borrowed trail of
            // ones (`ones`) fills the upshifted low bits.
            let r = spec.r;
            let rs_dn = dr.saturating_sub(r);
            let rs_up = r.saturating_sub(dr);
            let t_hi = tail >> rs_dn;
            let t_lo = (tail << rs_up) | (ones.wrapping_neg() & ((1u64 << rs_up) - 1));
            let t = sel(dr >= r, t_hi, t_lo);
            (t + (word & spec.rmask)) >> r
        } else {
            // RN-even, branch-free (the same fix as the scalar adder).
            let guard = (tail >> (dr - 1)) & 1;
            let rest = u64::from(tail & ((1u64 << (dr - 1)) - 1) != 0) | ones | extra_sticky;
            guard & (rest | kept_r) & 1
        };

        let is_round = drop > 0;
        let mut kept = sel(is_round, kept_r, kept_e) + sel(is_round, up, 0);
        let carry = kept >> p; // 1 iff kept reached 1 << p
        kept >>= carry;
        // Output exponent field: q - qmin = drop + ef_hi - f (+ carry).
        let ef_out = drop + ef_hi as i64 - f as i64 + carry as i64;

        // Assemble, then apply the packing special cases lowest-precedence
        // first so each later select overrides the ones before it.
        let zero_w = sign_hi << 63;
        let natural = zero_w | ((ef_out as u64) << EF_SHIFT) | kept;
        let inf_enc = (sign_hi << self.enc_sign_shift) | self.inf_exp;
        let inf_w = LANE_SPECIAL | LANE_DRAWS | (inf_enc << ENC_SHIFT);
        let mut w = natural;
        w = sel(ef_out < 0, zero_w, w); // below emin: flush (!sub only)
        w = sel(ef_out > self.ef_max, inf_w, w); // overflow -> infinity
        if !spec.sub {
            w = sel(kept < self.half, zero_w, w); // subnormal range: flush
        }
        w = sel(kept == 0, zero_w, w); // everything rounded away
        w = sel(s == 0, 0, w); // exact cancellation -> +0
        w = sel(bkey == 0, aw, w); // zero operands pass the other
        w = sel(akey == 0, bw, w); //   through unchanged...
        w = sel((akey | bkey) == 0, aw & bw & LANE_SIGN, w); // ...except -0 + -0
        w
    }
}

/// The explicit `std::arch` lane kernel: the algebra of
/// [`FastAdderBatch::add_core`], four lanes per `__m256i`, expressed with
/// AVX2 intrinsics. Compiled in only behind the opt-in `arch-simd` cargo
/// feature and a statically enabled `avx2` target feature (e.g. the CI
/// feature-matrix job's `-C target-feature=+avx2`). It is *not* the
/// default fast path: measured on current compilers, LLVM auto-vectorizes
/// the portable SWAR code at least as well (and with AVX-512 considerably
/// better), because autovectorization keeps the lane state in vector
/// registers across the whole accumulation loop while this kernel's lane
/// arrays round-trip at each step. It stays in-tree, exhaustively
/// verified, as the explicit-datapath reference for the SWAR algebra and
/// as a guard should autovectorization regress. On `aarch64` the portable
/// SWAR path (NEON-autovectorized) is likewise the default.
///
/// Everything here is a 1:1 translation of `add_core` — same variable
/// names, same clamping, same select order — and the exhaustive
/// `batch_vs_scalar` tests run against this path whenever it is compiled
/// in. Intrinsic calls are safe because the target feature is statically
/// enabled; lane I/O goes through value-based `set`/`extract` intrinsics
/// (no pointer casts), which the compiler folds into plain vector loads
/// and stores.
#[cfg(all(feature = "arch-simd", target_arch = "x86_64", target_feature = "avx2"))]
mod simd {
    use std::arch::x86_64::*;

    use super::{FastAdderBatch, LANE_DRAWS, LANE_KEY, LANE_SIGN, LANE_SPECIAL};

    /// `t` where the 64-bit mask lane is all-ones, else `e` (blendv keys
    /// off each byte's top bit, which a 64-bit compare mask saturates).
    #[inline]
    #[target_feature(enable = "avx2")]
    fn sel(m: __m256i, t: __m256i, e: __m256i) -> __m256i {
        _mm256_blendv_epi8(e, t, m)
    }

    /// Signed 64-bit `max(v, 0)` (`cmpgt` is exact at 0: the mask is off
    /// for `v == 0`, and `max(0, 0) = 0` either way).
    #[inline]
    #[target_feature(enable = "avx2")]
    fn relu64(v: __m256i) -> __m256i {
        _mm256_and_si256(v, _mm256_cmpgt_epi64(v, _mm256_setzero_si256()))
    }

    /// `(1 << v) - 1` for per-lane shift counts `0 <= v <= 63`.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn low_mask(v: __m256i) -> __m256i {
        _mm256_sub_epi64(
            _mm256_sllv_epi64(_mm256_set1_epi64x(1), v),
            _mm256_set1_epi64x(1),
        )
    }

    /// `floor(log2(s))` per lane for `1 <= s < 2^53`, via the exact
    /// u64 -> f64 conversion trick (split at bit 32, two magic-constant
    /// doubles) and exponent-field extraction.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn msb53(s: __m256i) -> __m256i {
        let hi = _mm256_or_si256(
            _mm256_srli_epi64::<32>(s),
            _mm256_set1_epi64x(0x4530_0000_0000_0000),
        );
        let lo = _mm256_or_si256(
            _mm256_and_si256(s, _mm256_set1_epi64x(0xFFFF_FFFF)),
            _mm256_set1_epi64x(0x4330_0000_0000_0000),
        );
        // (hi_double - (2^84 + 2^52)) + lo_double == s, exactly, below 2^53.
        let magic = _mm256_castsi256_pd(_mm256_set1_epi64x(0x4530_0000_0010_0000));
        let dbl = _mm256_add_pd(
            _mm256_sub_pd(_mm256_castsi256_pd(hi), magic),
            _mm256_castsi256_pd(lo),
        );
        _mm256_sub_epi64(
            _mm256_srli_epi64::<52>(_mm256_castpd_si256(dbl)),
            _mm256_set1_epi64x(1023),
        )
    }

    impl FastAdderBatch {
        /// Four [`FastAdderBatch::add_core`] lanes per step over `L`
        /// (`L % 4 == 0`) lanes.
        #[inline]
        #[target_feature(enable = "avx2")]
        pub(super) fn add_lanes_avx2<const L: usize>(
            &self,
            res: &mut [u64; L],
            acc: &[u64; L],
            prods: &[u64; L],
            words: &[u64; L],
        ) {
            for c in (0..L).step_by(4) {
                let load = |a: &[u64; L]| {
                    _mm256_set_epi64x(
                        a[c + 3] as i64,
                        a[c + 2] as i64,
                        a[c + 1] as i64,
                        a[c] as i64,
                    )
                };
                let out = self.add4(load(acc), load(prods), load(words));
                res[c] = _mm256_extract_epi64::<0>(out) as u64;
                res[c + 1] = _mm256_extract_epi64::<1>(out) as u64;
                res[c + 2] = _mm256_extract_epi64::<2>(out) as u64;
                res[c + 3] = _mm256_extract_epi64::<3>(out) as u64;
            }
        }

        /// Four finite decoded lanes at once; see `add_core` for the
        /// algebra and the per-line invariants.
        #[inline]
        #[target_feature(enable = "avx2")]
        fn add4(&self, aw: __m256i, bw: __m256i, word: __m256i) -> __m256i {
            let spec = &self.spec;
            let zero = _mm256_setzero_si256();
            let one = _mm256_set1_epi64x(1);
            let f = _mm256_set1_epi64x(i64::from(spec.f));
            let low16 = _mm256_set1_epi64x(0xFFFF);

            // Operand swap on the magnitude key (keys are < 2^48, so the
            // signed compare is an unsigned one).
            let keym = _mm256_set1_epi64x(LANE_KEY as i64);
            let akey = _mm256_and_si256(aw, keym);
            let bkey = _mm256_and_si256(bw, keym);
            let swap = _mm256_cmpgt_epi64(bkey, akey);
            let hi = sel(swap, bw, aw);
            let lo = sel(swap, aw, bw);
            let sign_hi = _mm256_srli_epi64::<63>(hi);
            let sign_lo = _mm256_srli_epi64::<63>(lo);
            let ef_hi = _mm256_and_si256(_mm256_srli_epi64::<32>(hi), low16);
            let ef_lo = _mm256_and_si256(_mm256_srli_epi64::<32>(lo), low16);
            let sig_hi = _mm256_and_si256(hi, low16);
            let sig_lo = _mm256_and_si256(lo, low16);

            // Alignment.
            let c63 = _mm256_set1_epi64x(63);
            let d0 = _mm256_sub_epi64(ef_hi, ef_lo);
            let d = sel(_mm256_cmpgt_epi64(d0, c63), c63, d0);
            let yb = _mm256_sllv_epi64(sig_lo, f);
            let y = _mm256_srlv_epi64(yb, d);
            let sigma_m = _mm256_cmpgt_epi64(
                zero,
                _mm256_sub_epi64(zero, _mm256_and_si256(yb, low_mask(d))),
            );
            let sigma = _mm256_srli_epi64::<63>(sigma_m);
            let x = _mm256_sllv_epi64(sig_hi, f);

            // Branch-free effective subtraction.
            let sub_eff = _mm256_xor_si256(sign_hi, sign_lo);
            let subm = _mm256_sub_epi64(zero, sub_eff);
            let s = _mm256_add_epi64(
                _mm256_add_epi64(x, _mm256_xor_si256(y, subm)),
                _mm256_and_si256(subm, _mm256_sub_epi64(one, sigma)),
            );
            let ones = _mm256_and_si256(sub_eff, sigma);
            let extra_sticky = _mm256_and_si256(_mm256_xor_si256(sub_eff, one), sigma);

            // Round: exponent, drop, exact and rounding paths.
            let msb = msb53(_mm256_or_si256(s, one));
            let pm1 = _mm256_set1_epi64x(i64::from(spec.p - 1));
            let drop0 = _mm256_sub_epi64(msb, pm1);
            let drop = if spec.sub {
                let drop_min = _mm256_sub_epi64(f, ef_hi);
                sel(_mm256_cmpgt_epi64(drop0, drop_min), drop0, drop_min)
            } else {
                drop0
            };
            let shl = relu64(_mm256_sub_epi64(zero, drop));
            let kept_e = _mm256_sllv_epi64(s, shl);
            let dr0 = sel(_mm256_cmpgt_epi64(one, drop), one, drop);
            let dr = sel(_mm256_cmpgt_epi64(dr0, c63), c63, dr0);
            let kept_r = _mm256_srlv_epi64(s, dr);
            let tail = _mm256_and_si256(s, low_mask(dr));
            let up = if self.sr {
                let r = _mm256_set1_epi64x(i64::from(spec.r));
                let rs_dn = relu64(_mm256_sub_epi64(dr, r));
                let rs_up = relu64(_mm256_sub_epi64(r, dr));
                let t_hi = _mm256_srlv_epi64(tail, rs_dn);
                let fill = _mm256_and_si256(_mm256_sub_epi64(zero, ones), low_mask(rs_up));
                let t_lo = _mm256_or_si256(_mm256_sllv_epi64(tail, rs_up), fill);
                let t = sel(_mm256_cmpgt_epi64(dr, _mm256_sub_epi64(r, one)), t_hi, t_lo);
                let rmask = _mm256_set1_epi64x(spec.rmask as i64);
                _mm256_srlv_epi64(_mm256_add_epi64(t, _mm256_and_si256(word, rmask)), r)
            } else {
                let drm1 = _mm256_sub_epi64(dr, one);
                let guard = _mm256_and_si256(_mm256_srlv_epi64(tail, drm1), one);
                let rest_nz = _mm256_and_si256(tail, low_mask(drm1));
                let rest_m = _mm256_cmpgt_epi64(zero, _mm256_sub_epi64(zero, rest_nz));
                let rest = _mm256_or_si256(
                    _mm256_or_si256(_mm256_srli_epi64::<63>(rest_m), ones),
                    extra_sticky,
                );
                _mm256_and_si256(_mm256_and_si256(guard, _mm256_or_si256(rest, kept_r)), one)
            };
            let is_round = _mm256_cmpgt_epi64(drop, zero);
            let kept0 = _mm256_add_epi64(
                sel(is_round, kept_r, kept_e),
                _mm256_and_si256(up, is_round),
            );
            let p = _mm256_set1_epi64x(i64::from(spec.p));
            let carry = _mm256_srlv_epi64(kept0, p);
            let kept = _mm256_srlv_epi64(kept0, carry);
            let ef_out =
                _mm256_add_epi64(_mm256_add_epi64(_mm256_sub_epi64(drop, f), ef_hi), carry);

            // Assemble and apply the packing special cases, lowest
            // precedence first (same order as add_core).
            let zero_w = _mm256_slli_epi64::<63>(sign_hi);
            let natural = _mm256_or_si256(
                _mm256_or_si256(zero_w, _mm256_slli_epi64::<32>(ef_out)),
                kept,
            );
            let inf_enc = _mm256_or_si256(
                _mm256_sllv_epi64(sign_hi, _mm256_set1_epi64x(i64::from(self.enc_sign_shift))),
                _mm256_set1_epi64x(self.inf_exp as i64),
            );
            let inf_w = _mm256_or_si256(
                _mm256_slli_epi64::<16>(inf_enc),
                _mm256_set1_epi64x((LANE_SPECIAL | LANE_DRAWS) as i64),
            );
            let mut w = natural;
            w = sel(_mm256_cmpgt_epi64(zero, ef_out), zero_w, w);
            w = sel(
                _mm256_cmpgt_epi64(ef_out, _mm256_set1_epi64x(self.ef_max)),
                inf_w,
                w,
            );
            if !spec.sub {
                let half = _mm256_set1_epi64x(self.half as i64);
                w = sel(_mm256_cmpgt_epi64(half, kept), zero_w, w);
            }
            w = sel(_mm256_cmpeq_epi64(kept, zero), zero_w, w);
            w = sel(_mm256_cmpeq_epi64(s, zero), zero, w);
            let b_zero = _mm256_cmpeq_epi64(bkey, zero);
            let a_zero = _mm256_cmpeq_epi64(akey, zero);
            w = sel(b_zero, aw, w);
            w = sel(a_zero, bw, w);
            let sign = _mm256_set1_epi64x(LANE_SIGN as i64);
            let both_zero_w = _mm256_and_si256(_mm256_and_si256(aw, bw), sign);
            w = sel(_mm256_and_si256(a_zero, b_zero), both_zero_w, w);
            w
        }
    }
}

/// The decoded-form product table: [`ProductLut`]'s 256 x 256 code plane
/// with every product stored as a decoded lane word, so the batched inner
/// loop loads operands ready for [`FastAdderBatch::mac_step`] — no
/// per-step field extraction at all.
#[derive(Clone)]
pub struct DecodedLut {
    table: Box<[u64; 1 << 16]>,
}

impl std::fmt::Debug for DecodedLut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodedLut").finish_non_exhaustive()
    }
}

impl DecodedLut {
    /// Decodes every entry of `lut` with `batch` (which must share the
    /// LUT's output format).
    ///
    /// # Panics
    ///
    /// Panics if the formats disagree.
    #[must_use]
    pub fn build(lut: &ProductLut, batch: &FastAdderBatch) -> Self {
        assert_eq!(
            lut.output_format(),
            batch.format(),
            "decoded LUT must share the adder's format"
        );
        let table: Vec<u64> = (0..1usize << 16)
            .map(|i| batch.decode(u64::from(lut.product((i >> 8) as u8, i as u8))))
            .collect();
        Self {
            table: table.into_boxed_slice().try_into().expect("table is 65536"),
        }
    }

    /// The 256-entry decoded product row for left code `ca`.
    #[inline]
    #[must_use]
    pub fn row(&self, ca: u8) -> &[u64; 256] {
        let start = (ca as usize) << 8;
        self.table[start..start + 256]
            .try_into()
            .expect("row is 256")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srmac_fp::mask;
    use srmac_rng::SplitMix64;

    /// Exhaustive code-for-code equivalence with the scalar adder over the
    /// full operand plane of the paper's accumulator format, both
    /// subnormal settings, RN and SR at several word values — the
    /// load-bearing guarantee that lane batching changes performance and
    /// nothing else.
    #[test]
    fn batch_add_vs_scalar_e6m5_exhaustive() {
        for sub in [true, false] {
            let fmt = FpFormat::e6m5().with_subnormals(sub);
            for (mode, words) in [
                (AccumRounding::Nearest, vec![0u64]),
                (AccumRounding::Stochastic { r: 9 }, vec![0u64, 0x0F3, 0x1FF]),
                (AccumRounding::Stochastic { r: 13 }, vec![0u64, 0x1ACE]),
            ] {
                let scalar = FastAdder::new(fmt, mode);
                let batch = FastAdderBatch::new(fmt, mode);
                let all: Vec<u64> = fmt.iter_encodings().collect();
                for a in fmt.iter_encodings() {
                    for &w in &words {
                        // Sweep b across lanes, 8 at a time.
                        for chunk in all.chunks(8) {
                            let mut bs = [0u64; 8];
                            bs[..chunk.len()].copy_from_slice(chunk);
                            let got = batch.add(&[a; 8], &bs, &[w; 8]);
                            for (l, &b) in chunk.iter().enumerate() {
                                let want = scalar.add(a, b, w);
                                assert_eq!(
                                    got[l], want,
                                    "{fmt} {mode:?}: {a:#x}+{b:#x} w={w:#x} lane {l}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn batch_add_vs_scalar_wider_formats_random() {
        let mut rng = SplitMix64::new(4242);
        for fmt in [
            FpFormat::e5m10(),
            FpFormat::e4m3(),
            FpFormat::e8m7(),
            FpFormat::e8m7().with_subnormals(false),
        ] {
            let r = fmt.precision() + 3;
            let mode = AccumRounding::Stochastic { r };
            let scalar = FastAdder::new(fmt, mode);
            let batch = FastAdderBatch::new(fmt, mode);
            for _ in 0..60_000 {
                let mut a = [0u64; 8];
                let mut b = [0u64; 8];
                let mut w = [0u64; 8];
                for l in 0..8 {
                    a[l] = rng.next_u64() & fmt.bits_mask();
                    b[l] = rng.next_u64() & fmt.bits_mask();
                    w[l] = rng.next_u64() & mask(r);
                }
                let got = batch.add(&a, &b, &w);
                for l in 0..8 {
                    assert_eq!(
                        got[l],
                        scalar.add(a[l], b[l], w[l]),
                        "{fmt}: {:#x}+{:#x} w={:#x}",
                        a[l],
                        b[l],
                        w[l]
                    );
                }
            }
        }
    }

    #[test]
    fn decode_encode_roundtrip_all_encodings() {
        for sub in [true, false] {
            let fmt = FpFormat::e6m5().with_subnormals(sub);
            let batch = FastAdderBatch::new(fmt, AccumRounding::Nearest);
            for enc in fmt.iter_encodings() {
                let w = batch.decode(enc);
                let pseudo_subnormal = !sub && fmt.is_zero(enc) && enc & fmt.man_mask() != 0;
                if pseudo_subnormal {
                    // Canonicalized to a (draw-consuming) zero, like every
                    // other consumer of such encodings in the stack.
                    assert_eq!(w & LANE_KEY, 0, "{enc:#x} decodes to a zero key");
                    assert_ne!(w & LANE_DRAWS, 0, "{enc:#x} still consumes a word");
                } else {
                    assert_eq!(batch.encode(w), enc, "roundtrip of {enc:#x} (sub={sub})");
                }
                // The draws bit mirrors the scalar loop's zero-skip rule.
                assert_eq!(
                    w & LANE_DRAWS != 0,
                    enc & mask(fmt.bits() - 1) != 0,
                    "{enc:#x} draws"
                );
            }
        }
    }

    #[test]
    fn mac_step_skips_zero_products_verbatim() {
        let fmt = FpFormat::e6m5();
        let batch = FastAdderBatch::new(fmt, AccumRounding::Stochastic { r: 13 });
        // A negative-zero accumulator must survive a +0 product untouched
        // (the scalar loop never even calls the adder for it).
        let neg_zero = batch.decode(fmt.zero_bits(true));
        let one = batch.decode(fmt.quantize_f32(1.0, srmac_fp::RoundMode::NearestEven).bits);
        let mut acc = [neg_zero, one, 0u64, one];
        let before = acc;
        let zero = batch.decode(fmt.zero_bits(false));
        batch.mac_step(&mut acc, &[zero; 4], &[0u64; 4]);
        assert_eq!(acc, before);
        // A non-zero product in one lane commits only that lane.
        batch.mac_step(&mut acc, &[zero, one, zero, zero], &[0u64; 4]);
        assert_eq!([acc[0], acc[2], acc[3]], [before[0], before[2], before[3]]);
        assert_eq!(batch.encode(acc[1]), {
            let scalar = FastAdder::new(fmt, AccumRounding::Stochastic { r: 13 });
            scalar.add(batch.encode(one), batch.encode(one), 0)
        });
    }

    #[test]
    fn special_lanes_fall_back_to_golden_semantics() {
        let fmt = FpFormat::e6m5();
        let mode = AccumRounding::Stochastic { r: 13 };
        let batch = FastAdderBatch::new(fmt, mode);
        let scalar = FastAdder::new(fmt, mode);
        let inf = fmt.inf_bits(false);
        let ninf = fmt.inf_bits(true);
        let nan = fmt.nan_bits();
        let one = fmt.quantize_f32(1.0, srmac_fp::RoundMode::NearestEven).bits;
        for (a, b) in [
            (inf, one),
            (one, inf),
            (inf, ninf),
            (nan, one),
            (one, nan),
            (inf, inf),
        ] {
            let got = batch.add(&[a; 2], &[b; 2], &[0x123; 2]);
            let want = scalar.add(a, b, 0x123);
            assert_eq!(got, [want; 2], "{a:#x}+{b:#x}");
        }
        // And through mac_step: an accumulator that overflowed to infinity
        // stays on the golden special path for the rest of the dot product.
        let big = fmt.max_finite_bits(false);
        let mut acc = [batch.decode(big)];
        let prod = batch.decode(big);
        batch.mac_step(&mut acc, &[prod], &[0]);
        assert_eq!(batch.encode(acc[0]), scalar.add(big, big, 0));
        let after_inf = batch.encode(acc[0]);
        batch.mac_step(&mut acc, &[batch.decode(one)], &[0]);
        assert_eq!(batch.encode(acc[0]), scalar.add(after_inf, one, 0));
    }

    #[test]
    fn decoded_lut_entries_match_decode_of_products() {
        let fin = FpFormat::e5m2();
        let fout = FpFormat::e6m5();
        let lut = ProductLut::build(fin, fout);
        let batch = FastAdderBatch::new(fout, AccumRounding::Nearest);
        let dlut = DecodedLut::build(&lut, &batch);
        for a in 0..=255u8 {
            let row = dlut.row(a);
            for b in 0..=255u8 {
                assert_eq!(row[b as usize], batch.decode(u64::from(lut.product(a, b))));
            }
        }
    }
}
