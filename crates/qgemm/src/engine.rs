//! The low-precision GEMM engine: FP8-quantized operands, exact products,
//! and bit-exact low-precision accumulation with RN or stochastic rounding —
//! the software equivalent of tiling the paper's MAC units over a matrix
//! multiplication, and the Rust counterpart of its "PyTorch software-based
//! bit-accurate emulation flow ... custom CUDA kernels" (Sec. IV).
//!
//! # Pack/plan lifecycle
//!
//! [`MacGemm`] implements the prepared-operand pipeline of
//! [`GemmEngine`]: [`GemmEngine::pack_a`] quantizes a matrix to row-major
//! FP8 codes, [`GemmEngine::pack_b`] quantizes *and* materializes the
//! column-major transpose (so every dot product reads both operands
//! contiguously), and [`GemmEngine::gemm_packed`] runs only the
//! accumulation loops. The one-shot [`GemmEngine::gemm`] is the trait's
//! default composition of the three. Packing depends only on the operand
//! values and the multiplier format — never on the accumulator format,
//! rounding mode, seed or thread count — so a packed weight can be reused
//! across forward, backward and evaluation products, and even across
//! engines that share a multiplier format.
//!
//! # Determinism contract
//!
//! Every output element draws its stochastic-rounding words from a
//! `SplitMix64` stream seeded by `(engine seed, row, column)`; the stream
//! advances once per non-zero product in `k` order. Results are therefore
//! a pure function of `(values, config.seed)` — independent of packing,
//! chunking, the worker-pool size and call order.

use std::ops::Range;
use std::sync::{Arc, Mutex, OnceLock};

use srmac_fp::FpFormat;
use srmac_rng::{SplitMix64, SrLaneStreams};
use srmac_runtime::Runtime;
use srmac_tensor::{GemmEngine, PackSide, PackedOperand};

#[cfg(target_arch = "x86_64")]
use crate::batch::z16;
use crate::batch::{DecodedLut, FastAdderBatch, LANE32_DRAWS, LANE_DRAWS};
use crate::fastmath::{AccumRounding, FastAdder, FastQuantizer};
use crate::lut::{PairLut, ProductLut};

/// Default lane width of the batched compacted accumulation loop: the
/// number of output columns [`FastAdderBatch`] advances per step. The
/// per-element accumulation chain is serial in `k`, so wall-clock is
/// bounded by chain *latency* unless enough independent column chains are
/// in flight to cover it — 64 lanes (sixteen 4-wide vector chains under
/// AVX2, eight 8-wide under AVX-512) measure fastest on current cores,
/// with a cascade down to 8-lane blocks and a scalar tail for narrow
/// outputs. [`MacGemm::with_lane_width`] narrows it for equivalence
/// testing and benchmarking.
const LANES: usize = 64;

/// Cache-blocking tile sizes of the tiled execution path.
///
/// The output matrix is cut into a fixed grid of `row_tile x col_tile`
/// rectangles for multi-core dispatch (one pool job per rectangle), and
/// inside each rectangle the loop walks `col_tile` columns at a time
/// across all of the rectangle's rows, so one lane-interleaved B panel
/// slice (`col_tile * k` bytes) is reused across every row before the
/// next slice is touched. The grid is a pure function of the shape and
/// the tile sizes — never of the thread count — which together with the
/// per-output-element accumulation order (unchanged) and position-seeded
/// SR streams keeps results bitwise identical for every tile/thread
/// combination.
///
/// `col_tile` must be a multiple of the 64-lane block width so tile
/// boundaries never split a lane block. Defaults come from
/// [`TileConfig::auto`], derived with `probe_tune kernel`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileConfig {
    /// Output rows per dispatch rectangle.
    pub row_tile: usize,
    /// Output columns per dispatch rectangle and per in-job column tile
    /// (multiple of 64).
    pub col_tile: usize,
}

impl TileConfig {
    /// The tuned defaults (see `probe_tune kernel`): 32 rows keeps ~8
    /// dispatch rectangles per core on training shapes, 512 columns
    /// bounds the active B panel slice at `512 * k` bytes — L2-resident
    /// alongside the 256 KiB pair LUT for every ResNet-20 shape.
    #[must_use]
    pub fn auto() -> Self {
        Self {
            row_tile: 32,
            col_tile: 512,
        }
    }
}

impl Default for TileConfig {
    fn default() -> Self {
        Self::auto()
    }
}

/// Vector-ISA tier of the batched accumulation loop, detected at engine
/// construction. The kernel *code* is identical at every tier — the same
/// portable SWAR lane algebra — but the annotated wrappers let LLVM
/// auto-vectorize it with the detected extensions. Function-level
/// `#[target_feature]` (rather than workspace-wide `-C` flags) confines
/// the widened vectorizer to this integer-only, exhaustively bit-verified
/// kernel; see the workspace `Cargo.toml` note on why the flags must not
/// be global.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SimdTier {
    /// Baseline codegen (any architecture; NEON on `aarch64` is part of
    /// the baseline there).
    Portable,
    /// AVX2: 4 lanes per `ymm` register.
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// AVX-512 (F/BW/DQ/VL/CD): 8 lanes per `zmm` register, masked
    /// selects, and — load-bearing for the adder's normalization step —
    /// `vplzcnt` vector leading-zero counts.
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

impl SimdTier {
    fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512bw")
                && std::arch::is_x86_feature_detected!("avx512dq")
                && std::arch::is_x86_feature_detected!("avx512vl")
                && std::arch::is_x86_feature_detected!("avx512cd")
            {
                return SimdTier::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdTier::Avx2;
            }
        }
        SimdTier::Portable
    }
}

/// Configuration of a [`MacGemm`] engine.
#[derive(Clone, Copy, Debug)]
pub struct MacGemmConfig {
    /// Multiplier input format (quantization target for both operands).
    pub mul_fmt: FpFormat,
    /// Accumulator format.
    pub acc_fmt: FpFormat,
    /// Accumulation rounding.
    pub rounding: AccumRounding,
    /// Base seed for the per-dot-product random streams.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl MacGemmConfig {
    /// The paper's reference MAC: E5M2 multipliers, E6M5 accumulation.
    #[must_use]
    pub fn fp8_fp12(rounding: AccumRounding, subnormals: bool) -> Self {
        Self {
            mul_fmt: FpFormat::e5m2().with_subnormals(subnormals),
            acc_fmt: FpFormat::e6m5().with_subnormals(subnormals),
            rounding,
            seed: 0x5EED,
            threads: srmac_tensor::available_threads(),
        }
    }

    /// FP8 multipliers with a chosen accumulator format (e.g. E5M10 for the
    /// paper's "RN W/ Sub FP16" rows).
    #[must_use]
    pub fn fp8_acc(acc_fmt: FpFormat, rounding: AccumRounding, subnormals: bool) -> Self {
        Self {
            mul_fmt: FpFormat::e5m2().with_subnormals(subnormals),
            acc_fmt,
            rounding,
            seed: 0x5EED,
            threads: srmac_tensor::available_threads(),
        }
    }

    /// Replaces the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Serializes the numerically relevant configuration into a fixed-size
    /// little-endian record (the checkpoint metadata hook of `srmac-io`).
    ///
    /// The thread count is deliberately excluded: results are bitwise
    /// thread-invariant, and a checkpoint written on one machine must not
    /// pin the pool size of another. [`MacGemmConfig::from_wire`] restores
    /// the machine default.
    ///
    /// # Panics
    ///
    /// Panics if the configuration lies outside the [`MacGemm`] engine
    /// envelope (see [`MacGemmConfig::from_wire`]) — such a config could
    /// not have built an engine, and silently serializing it would write
    /// a checkpoint [`MacGemmConfig::from_wire`] must reject.
    #[must_use]
    pub fn to_wire(&self) -> [u8; Self::WIRE_BYTES] {
        Self::check_envelope(self.mul_fmt, self.acc_fmt, self.rounding)
            .unwrap_or_else(|e| panic!("cannot serialize a config the engine rejects: {e}"));
        let mut w = [0u8; Self::WIRE_BYTES];
        w[0] = self.mul_fmt.exp_bits() as u8;
        w[1] = self.mul_fmt.man_bits() as u8;
        w[2] = u8::from(self.mul_fmt.subnormals());
        w[3] = self.acc_fmt.exp_bits() as u8;
        w[4] = self.acc_fmt.man_bits() as u8;
        w[5] = u8::from(self.acc_fmt.subnormals());
        let (tag, r) = match self.rounding {
            AccumRounding::Nearest => (0u8, 0u8),
            // Envelope-checked above: r fits u8 losslessly.
            AccumRounding::Stochastic { r } => (1, u8::try_from(r).expect("r <= 24")), // PANIC-OK: envelope-checked above — r fits u8 losslessly.
        };
        w[6] = tag;
        w[7] = r;
        w[8..16].copy_from_slice(&self.seed.to_le_bytes());
        w
    }

    /// Validates this configuration against the engine envelope without
    /// building anything — the typed-error twin of the asserts in
    /// [`MacGemm::with_runtime`], used by the wire codec and the spec
    /// registry so no decodable checkpoint or parseable spec can panic
    /// the engine build.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigWireError`] when the formats or SR bit count lie
    /// outside the envelope.
    pub fn validate(&self) -> Result<(), ConfigWireError> {
        Self::check_envelope(self.mul_fmt, self.acc_fmt, self.rounding)
    }

    /// The fast-path envelope [`MacGemm::with_runtime`] (via
    /// [`ProductLut`], [`FastAdder`]) enforces with asserts; the wire
    /// codec enforces it with typed errors on both directions so no
    /// decodable checkpoint can panic the engine rebuild.
    fn check_envelope(
        mul_fmt: FpFormat,
        acc_fmt: FpFormat,
        rounding: AccumRounding,
    ) -> Result<(), ConfigWireError> {
        if mul_fmt.bits() > 8 {
            return Err(ConfigWireError::OutsideEngineEnvelope(
                "multiplier format wider than 8 bits",
            ));
        }
        if acc_fmt.bits() > 16 || acc_fmt.precision() > 12 {
            return Err(ConfigWireError::OutsideEngineEnvelope(
                "accumulator format wider than 16 bits / precision above 12",
            ));
        }
        if let AccumRounding::Stochastic { r } = rounding {
            if !(1..=24).contains(&r) {
                return Err(ConfigWireError::BadSrBits(r.min(255) as u8));
            }
        }
        Ok(())
    }

    /// Decodes a [`MacGemmConfig::to_wire`] record, validating every field
    /// (an untrusted checkpoint must produce a typed error, never a panic
    /// or a silently nonsensical engine).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigWireError`] on invalid formats, an unknown rounding
    /// tag, or an out-of-range SR bit count.
    pub fn from_wire(w: &[u8; Self::WIRE_BYTES]) -> Result<Self, ConfigWireError> {
        let fmt = |exp: u8, man: u8, sub: u8| -> Result<FpFormat, ConfigWireError> {
            if sub > 1 {
                return Err(ConfigWireError::BadFlag(sub));
            }
            FpFormat::new(u32::from(exp), u32::from(man))
                .map(|f| f.with_subnormals(sub == 1))
                .map_err(|_| ConfigWireError::BadFormat {
                    exp_bits: exp,
                    man_bits: man,
                })
        };
        let mul_fmt = fmt(w[0], w[1], w[2])?;
        let acc_fmt = fmt(w[3], w[4], w[5])?;
        let rounding = match w[6] {
            0 => AccumRounding::Nearest,
            1 => AccumRounding::Stochastic { r: u32::from(w[7]) },
            tag => return Err(ConfigWireError::BadRoundingTag(tag)),
        };
        Self::check_envelope(mul_fmt, acc_fmt, rounding)?;
        Ok(Self {
            mul_fmt,
            acc_fmt,
            rounding,
            seed: u64::from_le_bytes(w[8..16].try_into().expect("8-byte slice")), // PANIC-OK: w[8..16] is exactly 8 bytes.
            threads: srmac_tensor::available_threads(),
        })
    }
}

impl MacGemmConfig {
    /// Size in bytes of the [`MacGemmConfig::to_wire`] record.
    pub const WIRE_BYTES: usize = 16;

    /// The seed of the named constructors ([`MacGemmConfig::fp8_fp12`],
    /// [`MacGemmConfig::fp8_acc`]); spec strings omit the `seed…` token
    /// at this value (see the `spec` module).
    pub const DEFAULT_SEED: u64 = 0x5EED;
}

/// Error decoding a [`MacGemmConfig`] wire record (see
/// [`MacGemmConfig::from_wire`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigWireError {
    /// A floating-point format field is outside the supported range.
    BadFormat {
        /// Stored exponent width.
        exp_bits: u8,
        /// Stored significand width.
        man_bits: u8,
    },
    /// A boolean flag byte was neither 0 nor 1.
    BadFlag(u8),
    /// The rounding tag byte was neither 0 (RN) nor 1 (SR).
    BadRoundingTag(u8),
    /// The SR random-bit count is outside the fast-adder envelope (1..=24).
    BadSrBits(u8),
    /// The formats are individually valid but outside the envelope the
    /// `MacGemm` engine can actually build (`MacGemm::new` would panic).
    OutsideEngineEnvelope(&'static str),
}

impl std::fmt::Display for ConfigWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigWireError::BadFormat { exp_bits, man_bits } => {
                write!(f, "invalid floating-point format E{exp_bits}M{man_bits}")
            }
            ConfigWireError::BadFlag(b) => write!(f, "boolean flag byte must be 0 or 1, got {b}"),
            ConfigWireError::BadRoundingTag(t) => write!(f, "unknown rounding tag {t}"),
            ConfigWireError::BadSrBits(r) => write!(f, "SR bit count {r} outside 1..=24"),
            ConfigWireError::OutsideEngineEnvelope(what) => {
                write!(f, "outside the MacGemm engine envelope: {what}")
            }
        }
    }
}

impl std::error::Error for ConfigWireError {}

/// The shareable inner accumulation kernel: everything a worker needs to
/// compute output rows from packed codes. Lives behind an `Arc` so pool
/// jobs (which must be `'static`) can hold it without copying tables.
#[derive(Clone, Debug)]
struct MacKernel {
    lut: ProductLut,
    adder: FastAdder,
    /// The lane-batched adder driving the compacted hot path.
    batch: FastAdderBatch,
    /// Products pre-decoded into lane words (see `batch.rs`).
    dlut: DecodedLut,
    /// Products pre-decoded into *narrow* lane words (256 KiB) — the
    /// hot-path table whenever the accumulator algebra fits u32 words
    /// (`None` otherwise; the wide `dlut` then serves the panel loop).
    plut: Option<PairLut>,
    /// Cache-blocking tile sizes of the panel loop and the dispatch grid.
    tiles: TileConfig,
    decode: Vec<f32>,
    /// Accumulator-format magnitude mask (all bits except the sign).
    acc_mag_mask: u64,
    rounding: AccumRounding,
    seed: u64,
    /// Column-lane width of the compacted path.
    lanes: usize,
    /// Detected vector-ISA tier of the batched loop.
    tier: SimdTier,
}

impl MacKernel {
    /// The zero-product skip rule shared by every accumulation loop — the
    /// load-bearing invariant that makes CSR compaction bit-exact: adding
    /// `(+/-)0` never changes a (non-negative-zero) accumulator and never
    /// consumes a rounding word.
    #[inline]
    fn is_zero_prod(&self, p: u16) -> bool {
        u64::from(p) & self.acc_mag_mask == 0
    }

    /// One full dot product in MAC semantics.
    fn dot(&self, a: &[u8], b_colmajor: &[u8], rng: &mut SplitMix64) -> u16 {
        let mut acc: u64 = 0;
        match self.rounding {
            AccumRounding::Nearest => {
                for (&ca, &cb) in a.iter().zip(b_colmajor) {
                    let p = self.lut.product(ca, cb);
                    if !self.is_zero_prod(p) {
                        acc = self.adder.add(acc, u64::from(p), 0);
                    }
                }
            }
            AccumRounding::Stochastic { .. } => {
                for (&ca, &cb) in a.iter().zip(b_colmajor) {
                    let p = self.lut.product(ca, cb);
                    if !self.is_zero_prod(p) {
                        acc = self.adder.add(acc, u64::from(p), rng.next_u64());
                    }
                }
            }
        }
        acc as u16
    }

    /// One dot product over a compacted (zero-free) A row: `ids`/`cods`
    /// hold the k-indices and codes of the row's non-zero-magnitude
    /// entries, in ascending k order. Bit-identical to [`MacKernel::dot`]
    /// whenever B holds no NaN codes: products against a zero-magnitude A
    /// code are exactly `+/-0` then, so the dense loop would skip them
    /// without drawing a rounding word — exactly what skipping the entry
    /// outright does.
    fn dot_compact(&self, ids: &[u32], cods: &[u8], bcol: &[u8], rng: &mut SplitMix64) -> u16 {
        let mut acc: u64 = 0;
        match self.rounding {
            AccumRounding::Nearest => {
                for (&ci, &ca) in ids.iter().zip(cods) {
                    let p = self.lut.product(ca, bcol[ci as usize]);
                    if !self.is_zero_prod(p) {
                        acc = self.adder.add(acc, u64::from(p), 0);
                    }
                }
            }
            AccumRounding::Stochastic { .. } => {
                for (&ci, &ca) in ids.iter().zip(cods) {
                    let p = self.lut.product(ca, bcol[ci as usize]);
                    if !self.is_zero_prod(p) {
                        acc = self.adder.add(acc, u64::from(p), rng.next_u64());
                    }
                }
            }
        }
        acc as u16
    }

    /// Computes output rows `row0 .. row0 + rows` into `block` (rows x n).
    /// SR streams are seeded at row `row_base + i` — the row's position in
    /// the logical full batch when the engine is a row-offset derivation
    /// (see [`GemmEngine::with_row_base`]); 0 otherwise.
    #[allow(clippy::too_many_arguments)]
    fn compute_rows(
        &self,
        acode: &[u8],
        bcode_t: &[u8],
        k: usize,
        n: usize,
        row0: usize,
        row_base: usize,
        block: &mut [f32],
    ) {
        for (ri, out_row) in block.chunks_mut(n).enumerate() {
            let i = row0 + ri;
            let arow = &acode[i * k..(i + 1) * k];
            for (j, o) in out_row.iter_mut().enumerate() {
                let mut rng = SplitMix64::new(mix_seed(self.seed, row_base + i, j));
                let acc = self.dot(arow, &bcode_t[j * k..(j + 1) * k], &mut rng);
                *o = self.decode[acc as usize];
            }
        }
    }

    /// `L` compacted dot products (columns `j .. j + L` of one output row)
    /// advanced in lock-step through the lane-batched [`FastAdderBatch`].
    /// Each lane's adds stay in `k` order and its SR stream is consumed
    /// exactly as in [`MacKernel::dot_compact`] (one word per product with
    /// non-zero encoded magnitude), so results are bit-identical to `L`
    /// scalar dot products — the lanes only buy instruction-level
    /// parallelism. Accumulators live in decoded lane-word form across the
    /// whole loop and are packed once at the end.
    #[inline(always)]
    fn dotn_compact_batch<const L: usize, const SR: bool>(
        &self,
        ids: &[u32],
        cods: &[u8],
        bcols: [&[u8]; L],
        streams: &mut SrLaneStreams<L>,
    ) -> [u16; L] {
        let batch = &self.batch;
        let mut acc = [0u64; L];
        for (&ci, &ca) in ids.iter().zip(cods) {
            let row = self.dlut.row(ca);
            let mut prods = [0u64; L];
            for l in 0..L {
                prods[l] = row[usize::from(bcols[l][ci as usize])];
            }
            let words = if SR {
                let mut consume = [false; L];
                for l in 0..L {
                    consume[l] = prods[l] & LANE_DRAWS != 0;
                }
                streams.draw(consume)
            } else {
                [0u64; L]
            };
            batch.mac_step(&mut acc, &prods, &words);
        }
        std::array::from_fn(|l| batch.encode(acc[l]) as u16)
    }

    /// [`MacKernel::dotn_compact_batch`] over a lane-interleaved B panel
    /// block (`pan[ci * L + l]` is column `l`'s code at k-index `ci`):
    /// one contiguous `L`-byte load per k-step instead of `L` strided
    /// column touches. Same adds, same streams — bit-identical.
    #[inline(always)]
    fn dotn_panel_wide<const L: usize, const SR: bool>(
        &self,
        ids: &[u32],
        cods: &[u8],
        pan: &[u8],
        streams: &mut SrLaneStreams<L>,
    ) -> [u16; L] {
        let batch = &self.batch;
        let mut acc = [0u64; L];
        for (&ci, &ca) in ids.iter().zip(cods) {
            let row = self.dlut.row(ca);
            let base = ci as usize * L;
            let bc: &[u8; L] = pan[base..base + L].try_into().expect("panel block"); // PANIC-OK: base + L <= panel len by the packer's row stride.
            let mut prods = [0u64; L];
            for l in 0..L {
                prods[l] = row[usize::from(bc[l])];
            }
            let words = if SR {
                let mut consume = [false; L];
                for l in 0..L {
                    consume[l] = prods[l] & LANE_DRAWS != 0;
                }
                streams.draw(consume)
            } else {
                [0u64; L]
            };
            batch.mac_step(&mut acc, &prods, &words);
        }
        std::array::from_fn(|l| batch.encode(acc[l]) as u16)
    }

    /// The narrow-word panel loop: products come pre-decoded as u32 lane
    /// words from the [`PairLut`] and accumulate through `mac_step32` —
    /// half the word width, the same algebra, bit-identical results (the
    /// exhaustive suites in `batch.rs` pin the kernels against each
    /// other via the scalar adder).
    #[inline(always)]
    fn dotn_panel_narrow<const L: usize, const SR: bool>(
        &self,
        plut: &PairLut,
        ids: &[u32],
        cods: &[u8],
        pan: &[u8],
        streams: &mut SrLaneStreams<L>,
    ) -> [u16; L] {
        let batch = &self.batch;
        let mut acc = [0u32; L];
        for (&ci, &ca) in ids.iter().zip(cods) {
            let row = plut.row(ca);
            let base = ci as usize * L;
            let bc: &[u8; L] = pan[base..base + L].try_into().expect("panel block"); // PANIC-OK: same stride bound as the dense path.
            let mut prods = [0u32; L];
            for l in 0..L {
                prods[l] = row[usize::from(bc[l])];
            }
            let words = if SR {
                let mut consume = [false; L];
                for l in 0..L {
                    consume[l] = prods[l] & LANE32_DRAWS != 0;
                }
                streams.draw(consume)
            } else {
                [0u64; L]
            };
            batch.mac_step32(&mut acc, &prods, &words);
        }
        std::array::from_fn(|l| batch.encode32(acc[l]) as u16)
    }

    /// One `L`-wide panel block of output row `i`, columns
    /// `base .. base + L`, through the narrow loop when the pair LUT is
    /// engaged and the wide loop otherwise. `out` is the block's slice of
    /// the output row.
    ///
    /// Under the AVX-512 tier the narrow loop runs through the explicit
    /// `z16` kernel (16 u32 lanes per `zmm`, accumulators
    /// register-resident across the whole `k` loop); elsewhere it is the
    /// portable SWAR loop above, auto-vectorized.
    #[inline(always)]
    fn panel_block<const L: usize>(
        &self,
        ids: &[u32],
        cods: &[u8],
        pan: &[u8],
        i: usize,
        base: usize,
        out: &mut [f32],
    ) {
        let sr = !matches!(self.rounding, AccumRounding::Nearest);
        if let Some(plut) = &self.plut {
            #[cfg(target_arch = "x86_64")]
            if self.tier == SimdTier::Avx512 && L.is_multiple_of(16) {
                if L.is_multiple_of(64) {
                    let mut l0 = 0;
                    while l0 < L {
                        let seeds: [u64; 64] =
                            std::array::from_fn(|l| mix_seed(self.seed, i, base + l0 + l));
                        // SAFETY: `SimdTier::detect` verified every feature
                        // the z16 kernel enables.
                        #[allow(unsafe_code)]
                        let accs = unsafe {
                            if sr {
                                z16::dot64_narrow::<true>(
                                    &self.batch,
                                    plut.table(),
                                    ids,
                                    cods,
                                    pan,
                                    L,
                                    l0,
                                    &seeds,
                                )
                            } else {
                                z16::dot64_narrow::<false>(
                                    &self.batch,
                                    plut.table(),
                                    ids,
                                    cods,
                                    pan,
                                    L,
                                    l0,
                                    &seeds,
                                )
                            }
                        };
                        for (lane, &a) in accs.iter().enumerate() {
                            out[l0 + lane] = self.decode[self.batch.encode32(a) as usize];
                        }
                        l0 += 64;
                    }
                    return;
                }
                if L.is_multiple_of(32) {
                    let mut l0 = 0;
                    while l0 < L {
                        let seeds: [u64; 32] =
                            std::array::from_fn(|l| mix_seed(self.seed, i, base + l0 + l));
                        // SAFETY: `SimdTier::detect` verified every feature
                        // the z16 kernel enables.
                        #[allow(unsafe_code)]
                        let accs = unsafe {
                            if sr {
                                z16::dot32_narrow::<true>(
                                    &self.batch,
                                    plut.table(),
                                    ids,
                                    cods,
                                    pan,
                                    L,
                                    l0,
                                    &seeds,
                                )
                            } else {
                                z16::dot32_narrow::<false>(
                                    &self.batch,
                                    plut.table(),
                                    ids,
                                    cods,
                                    pan,
                                    L,
                                    l0,
                                    &seeds,
                                )
                            }
                        };
                        for (lane, &a) in accs.iter().enumerate() {
                            out[l0 + lane] = self.decode[self.batch.encode32(a) as usize];
                        }
                        l0 += 32;
                    }
                    return;
                }
                let mut l0 = 0;
                while l0 < L {
                    let seeds: [u64; 16] =
                        std::array::from_fn(|l| mix_seed(self.seed, i, base + l0 + l));
                    // SAFETY: `SimdTier::detect` verified every feature
                    // the z16 kernel enables.
                    #[allow(unsafe_code)]
                    let accs = unsafe {
                        if sr {
                            z16::dot16_narrow::<true>(
                                &self.batch,
                                plut.table(),
                                ids,
                                cods,
                                pan,
                                L,
                                l0,
                                &seeds,
                            )
                        } else {
                            z16::dot16_narrow::<false>(
                                &self.batch,
                                plut.table(),
                                ids,
                                cods,
                                pan,
                                L,
                                l0,
                                &seeds,
                            )
                        }
                    };
                    for (lane, &a) in accs.iter().enumerate() {
                        out[l0 + lane] = self.decode[self.batch.encode32(a) as usize];
                    }
                    l0 += 16;
                }
                return;
            }
            let mut streams =
                SrLaneStreams::new(std::array::from_fn(|l| mix_seed(self.seed, i, base + l)));
            let accs = if sr {
                self.dotn_panel_narrow::<L, true>(plut, ids, cods, pan, &mut streams)
            } else {
                self.dotn_panel_narrow::<L, false>(plut, ids, cods, pan, &mut streams)
            };
            for (lane, &a) in accs.iter().enumerate() {
                out[lane] = self.decode[a as usize];
            }
            return;
        }
        let mut streams =
            SrLaneStreams::new(std::array::from_fn(|l| mix_seed(self.seed, i, base + l)));
        let accs = if sr {
            self.dotn_panel_wide::<L, true>(ids, cods, pan, &mut streams)
        } else {
            self.dotn_panel_wide::<L, false>(ids, cods, pan, &mut streams)
        };
        for (lane, &a) in accs.iter().enumerate() {
            out[lane] = self.decode[a as usize];
        }
    }

    /// Runs lane blocks of width `L` over columns `*j .. cols.end` of one
    /// output row, gathering from column-major `bcode_t` and advancing
    /// `j` past every complete block (the legacy, non-panel loop kept for
    /// explicit lane widths below 64).
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn lane_blocks<const L: usize>(
        &self,
        ids: &[u32],
        cods: &[u8],
        bcode_t: &[u8],
        k: usize,
        cols: &Range<usize>,
        i: usize,
        j: &mut usize,
        out_row: &mut [f32],
    ) {
        let sr = !matches!(self.rounding, AccumRounding::Nearest);
        while *j + L <= cols.end {
            let base = *j;
            let bcols: [&[u8]; L] =
                std::array::from_fn(|l| &bcode_t[(base + l) * k..(base + l + 1) * k]);
            let mut streams =
                SrLaneStreams::new(std::array::from_fn(|l| mix_seed(self.seed, i, base + l)));
            let accs = if sr {
                self.dotn_compact_batch::<L, true>(ids, cods, bcols, &mut streams)
            } else {
                self.dotn_compact_batch::<L, false>(ids, cods, bcols, &mut streams)
            };
            for (lane, &a) in accs.iter().enumerate() {
                out_row[base - cols.start + lane] = self.decode[a as usize];
            }
            *j += L;
        }
    }

    /// Compacted-A rectangle kernel (requires a NaN-free B operand; see
    /// [`MacKernel::dot_compact`]): fills output rows `rows` x columns
    /// `cols` into `block` (row-major, stride `cols.len()`). Bit-identical
    /// to the scalar path for every lane width, tile shape and column
    /// range — the tiling only reorders *which independent element* is
    /// computed when. Dispatches once onto the detected [`SimdTier`]'s
    /// codegen of the (identical) loop body.
    #[allow(clippy::too_many_arguments)] // internal dispatch seam: shape + operand views
    fn compute_rect_compact(
        &self,
        compact: &CompactA,
        bcode_t: &[u8],
        panel: &[u8],
        k: usize,
        n: usize,
        row_base: usize,
        rows: Range<usize>,
        cols: Range<usize>,
        block: &mut [f32],
    ) {
        match self.tier {
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx512 => {
                // SAFETY: `SimdTier::detect` verified at runtime that this
                // CPU has every feature the callee enables.
                #[allow(unsafe_code)]
                unsafe {
                    self.compute_rect_compact_avx512(
                        compact, bcode_t, panel, k, n, row_base, rows, cols, block,
                    );
                }
            }
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => {
                // SAFETY: as above — `avx2` was detected at runtime.
                #[allow(unsafe_code)]
                unsafe {
                    self.compute_rect_compact_avx2(
                        compact, bcode_t, panel, k, n, row_base, rows, cols, block,
                    );
                }
            }
            SimdTier::Portable => {
                self.compute_rect_compact_body(
                    compact, bcode_t, panel, k, n, row_base, rows, cols, block,
                );
            }
        }
    }

    /// AVX-512 codegen of the compacted loop: same source, vectorized by
    /// the compiler with 8-lane `zmm` arithmetic and masked selects.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(
        enable = "avx512f",
        enable = "avx512bw",
        enable = "avx512dq",
        enable = "avx512vl",
        enable = "avx512cd",
        enable = "avx2"
    )]
    #[allow(clippy::too_many_arguments)]
    fn compute_rect_compact_avx512(
        &self,
        compact: &CompactA,
        bcode_t: &[u8],
        panel: &[u8],
        k: usize,
        n: usize,
        row_base: usize,
        rows: Range<usize>,
        cols: Range<usize>,
        block: &mut [f32],
    ) {
        self.compute_rect_compact_body(compact, bcode_t, panel, k, n, row_base, rows, cols, block);
    }

    /// AVX2 codegen of the compacted loop (4-lane `ymm` arithmetic).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    fn compute_rect_compact_avx2(
        &self,
        compact: &CompactA,
        bcode_t: &[u8],
        panel: &[u8],
        k: usize,
        n: usize,
        row_base: usize,
        rows: Range<usize>,
        cols: Range<usize>,
        block: &mut [f32],
    ) {
        self.compute_rect_compact_body(compact, bcode_t, panel, k, n, row_base, rows, cols, block);
    }

    /// The tier-independent rectangle body (inlined into each tier wrapper
    /// so every tier gets its own codegen of the whole lane pipeline).
    ///
    /// At the production lane width (64) with a panel available, this is
    /// the tiled loop: column tiles of `self.tiles.col_tile` outermost,
    /// the rectangle's rows next, lane blocks innermost — every row of
    /// the rectangle reuses one `col_tile * k`-byte panel slice before
    /// the loop moves on. Panel regions (64-wide blocks, then 8-wide
    /// blocks, then a scalar tail from `bcode_t`) partition the columns;
    /// tile and dispatch boundaries are 64-aligned, so they never split
    /// a block. Explicit narrower lane widths take the legacy gather
    /// loop over `bcode_t`, which keeps the equivalence suites
    /// exercising both layouts against each other.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn compute_rect_compact_body(
        &self,
        compact: &CompactA,
        bcode_t: &[u8],
        panel: &[u8],
        k: usize,
        n: usize,
        row_base: usize,
        rows: Range<usize>,
        cols: Range<usize>,
        block: &mut [f32],
    ) {
        let w = cols.len();
        let row_of = |i: usize| {
            let (s, e) = (compact.row_ptr[i] as usize, compact.row_ptr[i + 1] as usize);
            (&compact.idx[s..e], &compact.code[s..e])
        };
        // Operand data indexes at the local row `i`; SR streams seed at the
        // full-batch row `si = row_base + i` (`lane_blocks`/`panel_block`
        // take the row index for seeding only).
        if self.lanes != LANES || panel.is_empty() {
            for (ri, out_row) in block.chunks_mut(w).enumerate() {
                let i = rows.start + ri;
                let si = row_base + i;
                let (ids, cods) = row_of(i);
                let mut j = cols.start;
                match self.lanes {
                    64 => {
                        self.lane_blocks::<64>(ids, cods, bcode_t, k, &cols, si, &mut j, out_row);
                        self.lane_blocks::<8>(ids, cods, bcode_t, k, &cols, si, &mut j, out_row);
                    }
                    32 => {
                        self.lane_blocks::<32>(ids, cods, bcode_t, k, &cols, si, &mut j, out_row);
                        self.lane_blocks::<8>(ids, cods, bcode_t, k, &cols, si, &mut j, out_row);
                    }
                    16 => {
                        self.lane_blocks::<16>(ids, cods, bcode_t, k, &cols, si, &mut j, out_row);
                        self.lane_blocks::<8>(ids, cods, bcode_t, k, &cols, si, &mut j, out_row);
                    }
                    8 => self.lane_blocks::<8>(ids, cods, bcode_t, k, &cols, si, &mut j, out_row),
                    4 => self.lane_blocks::<4>(ids, cods, bcode_t, k, &cols, si, &mut j, out_row),
                    _ => {}
                }
                while j < cols.end {
                    let mut rng = SplitMix64::new(mix_seed(self.seed, si, j));
                    let acc = self.dot_compact(ids, cods, &bcode_t[j * k..(j + 1) * k], &mut rng);
                    out_row[j - cols.start] = self.decode[acc as usize];
                    j += 1;
                }
            }
            return;
        }
        // The tiled panel loop. Column-region boundaries of the panel:
        // 64-wide blocks cover [0, n64), 8-wide blocks [n64, n8), and the
        // scalar tail [n8, n) reads column-major codes directly.
        let n64 = n - n % 64;
        let n8 = n64 + ((n - n64) & !7usize);
        let ct = self.tiles.col_tile.max(64);
        let mut c0 = cols.start;
        while c0 < cols.end {
            let c1 = cols.end.min(c0 + ct);
            for (ri, out_row) in block.chunks_mut(w).enumerate() {
                let i = rows.start + ri;
                let si = row_base + i;
                let (ids, cods) = row_of(i);
                let mut j = c0;
                let lim64 = c1.min(n64);
                while j + 64 <= lim64 {
                    let pan = &panel[j * k..(j + 64) * k];
                    let o = j - cols.start;
                    self.panel_block::<64>(ids, cods, pan, si, j, &mut out_row[o..o + 64]);
                    j += 64;
                }
                let lim8 = c1.min(n8);
                while j >= n64 && j + 8 <= lim8 {
                    let off = n64 * k + (j - n64) * k;
                    let pan = &panel[off..off + 8 * k];
                    let o = j - cols.start;
                    self.panel_block::<8>(ids, cods, pan, si, j, &mut out_row[o..o + 8]);
                    j += 8;
                }
                while j < c1 {
                    let mut rng = SplitMix64::new(mix_seed(self.seed, si, j));
                    let acc = self.dot_compact(ids, cods, &bcode_t[j * k..(j + 1) * k], &mut rng);
                    out_row[j - cols.start] = self.decode[acc as usize];
                    j += 1;
                }
            }
            c0 = c1;
        }
    }

    /// Dense rectangle kernel — the NaN-fallback counterpart of
    /// [`MacKernel::compute_rect_compact`] (scalar dots, golden special
    /// semantics).
    #[allow(clippy::too_many_arguments)]
    fn compute_rect_dense(
        &self,
        acode: &[u8],
        bcode_t: &[u8],
        k: usize,
        row_base: usize,
        rows: Range<usize>,
        cols: Range<usize>,
        block: &mut [f32],
    ) {
        let w = cols.len();
        for (ri, out_row) in block.chunks_mut(w).enumerate() {
            let i = rows.start + ri;
            let arow = &acode[i * k..(i + 1) * k];
            for (jo, o) in out_row.iter_mut().enumerate() {
                let j = cols.start + jo;
                let mut rng = SplitMix64::new(mix_seed(self.seed, row_base + i, j));
                let acc = self.dot(arow, &bcode_t[j * k..(j + 1) * k], &mut rng);
                *o = self.decode[acc as usize];
            }
        }
    }
}

/// CSR-style compaction of a row-major code matrix: per row, the k-indices
/// and codes of the non-zero-magnitude entries. Post-ReLU activations and
/// im2row padding make left operands substantially sparse in practice, and
/// skipping zero entries is exact (their products are `+/-0`, which the
/// accumulation loop ignores without consuming randomness).
#[derive(Debug)]
struct CompactA {
    row_ptr: Vec<u32>,
    idx: Vec<u32>,
    code: Vec<u8>,
}

/// [`PackedOperand`] payload for the A side: the zero-skipping compaction,
/// plus dense row-major codes materialized lazily — only the NaN-in-B
/// fallback ever reads them, so the hot path never builds or stores them.
#[derive(Debug)]
struct MacPackedA {
    compact: Arc<CompactA>,
    dense: OnceLock<Arc<Vec<u8>>>,
    cols: usize,
    zero_code: u8,
    fingerprint: u64,
}

impl MacPackedA {
    /// Dense row-major codes rebuilt from the compaction, with every
    /// zero-magnitude entry as `+0`. Bit-exact for the dense fallback: a
    /// zero-magnitude A code only ever produces `+/-0` (skipped without
    /// consuming a rounding word, sign irrelevant) or, against a NaN in B,
    /// the canonical NaN — identical for `+0` and `-0`. (B cannot hold
    /// infinities: the quantizer saturates them to the largest finite
    /// value.)
    fn dense_codes(&self) -> &Arc<Vec<u8>> {
        self.dense.get_or_init(|| {
            let rows = self.compact.row_ptr.len() - 1;
            let mut codes = vec![self.zero_code; rows * self.cols];
            for r in 0..rows {
                let (s, e) = (
                    self.compact.row_ptr[r] as usize,
                    self.compact.row_ptr[r + 1] as usize,
                );
                for (&c, &cd) in self.compact.idx[s..e].iter().zip(&self.compact.code[s..e]) {
                    codes[r * self.cols + c as usize] = cd;
                }
            }
            Arc::new(codes)
        })
    }
}

/// [`PackedOperand`] payload for the B side: column-major codes, the
/// lane-interleaved panel rebuilt from them, and whether any code is a
/// NaN (which forces the dense A path to keep `0 * NaN = NaN`
/// propagation bit-exact).
#[derive(Debug)]
struct MacPackedB {
    codes_t: Arc<Vec<u8>>,
    /// Lane-interleaved panel of the full-width column blocks (see
    /// [`build_panel`]); the column-major `codes_t` still serves the
    /// scalar tail, the dense fallback and narrower lane widths.
    panel: Arc<Vec<u8>>,
    has_nan: bool,
    fingerprint: u64,
}

/// Builds the lane-interleaved B panel from column-major `k x n` codes:
///
/// - bytes `[0, n64 * k)`: 64-wide column blocks; block `b` (columns
///   `64b .. 64b + 64`) stores code `(ci, l)` at `b*64*k + ci*64 + l`,
///   so a k-step loads its 64 operand codes as one contiguous line;
/// - bytes `[n64 * k, n8 * k)`: 8-wide blocks covering the next
///   `(n - n64) & !7` columns, laid out the same way at stride 8;
/// - the ragged tail (`n - n8 < 8` columns) has no panel entry — the
///   scalar loop reads `codes_t` directly.
///
/// `n64 = n - n % 64`. Tile and dispatch boundaries are multiples of 64,
/// so no block ever straddles a job boundary.
fn build_panel(codes_t: &[u8], k: usize, n: usize) -> Vec<u8> {
    let n64 = n - n % 64;
    let n8 = n64 + ((n - n64) & !7usize);
    let mut panel = vec![0u8; n8 * k];
    let mut interleave = |dst0: usize, col0: usize, width: usize| {
        for l in 0..width {
            let col = &codes_t[(col0 + l) * k..(col0 + l + 1) * k];
            for (ci, &cd) in col.iter().enumerate() {
                panel[dst0 + ci * width + l] = cd;
            }
        }
    };
    for b in 0..n64 / 64 {
        interleave(b * 64 * k, b * 64, 64);
    }
    for t in 0..(n8 - n64) / 8 {
        interleave(n64 * k + t * 8 * k, n64 + t * 8, 8);
    }
    panel
}

/// The A-side execution plan of one product: compacted when B is NaN-free
/// (the fast path), dense otherwise.
#[derive(Clone, Debug)]
enum AWork {
    Dense(Arc<Vec<u8>>),
    Compact(Arc<CompactA>),
}

impl AWork {
    #[allow(clippy::too_many_arguments)]
    fn compute_rect(
        &self,
        kernel: &MacKernel,
        bcode_t: &[u8],
        panel: &[u8],
        k: usize,
        n: usize,
        row_base: usize,
        rows: Range<usize>,
        cols: Range<usize>,
        block: &mut [f32],
    ) {
        match self {
            AWork::Dense(codes) => {
                kernel.compute_rect_dense(codes, bcode_t, k, row_base, rows, cols, block);
            }
            AWork::Compact(compact) => {
                kernel.compute_rect_compact(
                    compact, bcode_t, panel, k, n, row_base, rows, cols, block,
                );
            }
        }
    }
}

/// A [`GemmEngine`] where every scalar operation is a bit-exact MAC-unit
/// step: operands quantize to FP8 (RN, saturating), products are exact, and
/// the accumulator is a low-precision float updated with RN or SR — in the
/// sequential `k` order a hardware MAC would see.
///
/// Rounding words come from counter-seeded `SplitMix64` streams, one per
/// output element, making results independent of the thread partition.
/// (Hardware uses the Galois LFSR of `srmac-rng`; both are uniform sources,
/// and the LFSR-driven `MacUnit` is verified separately.)
///
/// Dispatch runs on a shared parallel [`Runtime`] (`srmac-runtime`):
/// by default the engine builds its own runtime sized to
/// `config.threads`, but [`MacGemm::with_runtime`] lets it share one pool
/// with the rest of the stack.
#[derive(Debug)]
pub struct MacGemm {
    config: MacGemmConfig,
    quant: FastQuantizer,
    zero_code: u8,
    kernel: Arc<MacKernel>,
    runtime: Arc<Runtime>,
    /// Recycled byte buffers for the code-transposition scratch of
    /// [`MacGemm::gemm_scoped`] and the `_into` quantization helpers —
    /// steady-state reference-path calls allocate nothing.
    codes_scratch: Mutex<Vec<Vec<u8>>>,
    /// SR streams seed at output row `row_base + i` instead of `i`: 0 for
    /// ordinary engines, the first-row offset for the derived engines of
    /// [`GemmEngine::with_row_base`] (data-parallel sub-batches drawing
    /// their full-batch streams).
    row_base: usize,
}

impl MacGemm {
    /// Builds the engine (precomputes product and decode tables). At the
    /// default thread count the engine dispatches on the process-wide
    /// [`Runtime::global`] — one worker pool shared with the tensor
    /// layers' data movement, never a second oversubscribing pool; an
    /// explicit non-default `config.threads` gets a private runtime of
    /// that size (results are bitwise identical either way).
    ///
    /// # Panics
    ///
    /// Panics if the formats exceed the fast-path envelope (multiplier
    /// format wider than 8 bits, accumulator wider than 16).
    #[must_use]
    pub fn new(config: MacGemmConfig) -> Self {
        let runtime = if config.threads == srmac_runtime::available_threads() {
            Arc::clone(Runtime::global())
        } else {
            Arc::new(Runtime::new(config.threads))
        };
        Self::with_runtime(config, runtime)
    }

    /// Builds the engine on an existing shared [`Runtime`] (the pool size
    /// of `runtime` supersedes `config.threads` for dispatch). Results are
    /// bitwise identical for every runtime size.
    ///
    /// # Panics
    ///
    /// Panics if the formats exceed the fast-path envelope (multiplier
    /// format wider than 8 bits, accumulator wider than 16).
    #[must_use]
    pub fn with_runtime(config: MacGemmConfig, runtime: Arc<Runtime>) -> Self {
        let lut = ProductLut::build(config.mul_fmt, config.acc_fmt);
        let quant = FastQuantizer::new(config.mul_fmt);
        let adder = FastAdder::new(config.acc_fmt, config.rounding);
        let batch = FastAdderBatch::new(config.acc_fmt, config.rounding);
        let dlut = DecodedLut::build(&lut, &batch);
        let decode: Vec<f32> = (0..1u64 << config.acc_fmt.bits())
            .map(|bits| config.acc_fmt.decode_f64(bits) as f32)
            .collect();
        let zero_code = config.mul_fmt.zero_bits(false) as u8;
        let plut = PairLut::build(&lut, &batch);
        let kernel = Arc::new(MacKernel {
            lut,
            adder,
            batch,
            dlut,
            plut,
            tiles: TileConfig::auto(),
            decode,
            acc_mag_mask: !(1 << (config.acc_fmt.bits() - 1))
                & srmac_fp::mask(config.acc_fmt.bits()),
            rounding: config.rounding,
            seed: config.seed,
            lanes: LANES,
            tier: SimdTier::detect(),
        });
        Self {
            config,
            quant,
            zero_code,
            kernel,
            runtime,
            codes_scratch: Mutex::new(Vec::new()),
            row_base: 0,
        }
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &MacGemmConfig {
        &self.config
    }

    /// Sets the column-lane width of the batched compacted path
    /// (default `LANES` = 64; widths above 8 cascade down to 8-lane blocks
    /// before the scalar tail). Results are bitwise identical at every
    /// width — the knob exists for equivalence tests and benchmarks, not
    /// for tuning correctness.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not 1, 4, 8, 16, 32 or 64.
    #[must_use]
    pub fn with_lane_width(mut self, lanes: usize) -> Self {
        assert!(
            matches!(lanes, 1 | 4 | 8 | 16 | 32 | 64),
            "lane width must be 1, 4, 8, 16, 32 or 64"
        );
        Arc::make_mut(&mut self.kernel).lanes = lanes;
        self
    }

    /// Sets the cache-blocking tile sizes of the tiled execution path
    /// (default [`TileConfig::auto`]). Results are bitwise identical for
    /// every tile shape — the knob trades locality against dispatch
    /// granularity, never bits.
    ///
    /// # Panics
    ///
    /// Panics if `row_tile` is 0 or `col_tile` is not a positive
    /// multiple of 64 (tile boundaries must never split a lane block).
    #[must_use]
    pub fn with_tiles(mut self, tiles: TileConfig) -> Self {
        assert!(tiles.row_tile >= 1, "row_tile must be at least 1");
        assert!(
            tiles.col_tile >= 64 && tiles.col_tile.is_multiple_of(64),
            "col_tile must be a positive multiple of 64"
        );
        Arc::make_mut(&mut self.kernel).tiles = tiles;
        self
    }

    /// The engine's tile configuration.
    #[must_use]
    pub fn tiles(&self) -> TileConfig {
        self.kernel.tiles
    }

    /// Enables or disables the narrow product-pair LUT (enabled by
    /// default whenever the accumulator algebra fits u32 lane words;
    /// see [`crate::lut::PairLut`]). Results are bitwise identical
    /// either way — the knob exists for equivalence tests and perf
    /// probes.
    #[must_use]
    pub fn with_pair_lut(mut self, enabled: bool) -> Self {
        let kernel = Arc::make_mut(&mut self.kernel);
        kernel.plut = if enabled {
            PairLut::build(&kernel.lut, &kernel.batch)
        } else {
            None
        };
        self
    }

    /// Whether the narrow product-pair LUT is engaged.
    #[must_use]
    pub fn pair_lut_active(&self) -> bool {
        self.kernel.plut.is_some()
    }

    /// Quantizes a slice to multiplier-format codes.
    #[must_use]
    pub fn quantize_codes(&self, xs: &[f32]) -> Vec<u8> {
        let mut out = self.take_codes_buf();
        self.quantize_codes_into(xs, &mut out);
        out
    }

    /// [`MacGemm::quantize_codes`] into a caller-owned buffer (cleared
    /// and refilled) — the workspace-reuse variant for paths that
    /// quantize repeatedly.
    pub fn quantize_codes_into(&self, xs: &[f32], out: &mut Vec<u8>) {
        out.clear();
        out.resize(xs.len(), 0);
        self.quant.quantize_block(xs, out);
    }

    /// Pops a recycled byte buffer (or a fresh empty one).
    fn take_codes_buf(&self) -> Vec<u8> {
        self.codes_scratch
            .lock()
            .expect("codes scratch poisoned") // PANIC-OK: a poisoned stash means a worker already panicked — propagate the abort.
            .pop()
            .unwrap_or_default()
    }

    /// Returns a byte buffer to the bounded free list.
    fn recycle_codes_buf(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut stash = self.codes_scratch.lock().expect("codes scratch poisoned"); // PANIC-OK: same poisoning policy.
        if stash.len() < 8 {
            stash.push(buf);
        }
    }

    /// One full dot product in MAC semantics (exposed for tests and the
    /// stagnation study): returns the final accumulator encoding.
    #[must_use]
    pub fn dot_codes(&self, a: &[u8], b_colmajor: &[u8], rng: &mut SplitMix64) -> u16 {
        self.kernel.dot(a, b_colmajor, rng)
    }

    /// The multiplier-format fingerprint packed operands carry: engines
    /// sharing it produce (and accept) identical codes.
    fn fingerprint(&self) -> u64 {
        let f = self.config.mul_fmt;
        (u64::from(f.exp_bits()) << 9) | (u64::from(f.man_bits()) << 1) | u64::from(f.subnormals())
    }

    fn unpack_a<'p>(&self, p: &'p PackedOperand, rows: usize, cols: usize) -> &'p MacPackedA {
        assert_eq!(p.side(), PackSide::A, "operand packed for the wrong side");
        assert_eq!(
            (p.rows(), p.cols()),
            (rows, cols),
            "packed operand shape mismatch"
        );
        let payload = p
            .payload::<MacPackedA>()
            .expect("operand was not packed by a MacGemm engine"); // PANIC-OK: documented contract — operands must come from this engine's pack_a/pack_b.
        assert_eq!(
            payload.fingerprint,
            self.fingerprint(),
            "operand was packed for a different multiplier format"
        );
        payload
    }

    fn unpack_b<'p>(&self, p: &'p PackedOperand, rows: usize, cols: usize) -> &'p MacPackedB {
        assert_eq!(p.side(), PackSide::B, "operand packed for the wrong side");
        assert_eq!(
            (p.rows(), p.cols()),
            (rows, cols),
            "packed operand shape mismatch"
        );
        let payload = p
            .payload::<MacPackedB>()
            .expect("operand was not packed by a MacGemm engine"); // PANIC-OK: same pack-type contract.
        assert_eq!(
            payload.fingerprint,
            self.fingerprint(),
            "operand was packed for a different multiplier format"
        );
        payload
    }

    #[allow(clippy::too_many_arguments)] // internal dispatch seam: shape + operand views
    fn gemm_codes(
        &self,
        m: usize,
        k: usize,
        n: usize,
        awork: &AWork,
        bcode_t: &Arc<Vec<u8>>,
        panel: &Arc<Vec<u8>>,
        out: &mut [f32],
    ) {
        // Small products are cheaper than a pool round-trip: collapse the
        // grid to a single job (below ~32k MAC steps), which
        // `parallel_fill_blocks` then runs inline on the caller.
        let (row_tile, col_tile) = if m * k * n < 32 * 1024 {
            (m.max(1), n.max(64))
        } else {
            (self.kernel.tiles.row_tile, self.kernel.tiles.col_tile)
        };
        let kernel = Arc::clone(&self.kernel);
        let awork = awork.clone();
        let bcode_t = Arc::clone(bcode_t);
        let panel = Arc::clone(panel);
        let row_base = self.row_base;
        self.runtime.parallel_fill_blocks(
            m,
            n,
            row_tile,
            col_tile,
            out,
            move |rows, cols, block| {
                awork.compute_rect(&kernel, &bcode_t, &panel, k, n, row_base, rows, cols, block);
            },
        );
    }

    /// One-shot GEMM through per-call `std::thread::scope` spawning — the
    /// pre-pool reference path, kept for the pooled-vs-scoped benchmark and
    /// as an equivalence oracle in tests. Results are bitwise identical to
    /// [`GemmEngine::gemm`].
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with `m * k`, `k * n`, `m * n`.
    pub fn gemm_scoped(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        assert_eq!(a.len(), m * k, "A must be m x k");
        assert_eq!(b.len(), k * n, "B must be k x n");
        assert_eq!(out.len(), m * n, "out must be m x n");
        let mut acode = self.take_codes_buf();
        self.quantize_codes_into(a, &mut acode);
        let mut bcode = self.take_codes_buf();
        self.quantize_codes_into(b, &mut bcode);
        let mut bcode_t = self.take_codes_buf();
        self.transpose_codes_into(&bcode, k, n, &mut bcode_t);
        let threads = if m * n * k < 32 * 1024 {
            1
        } else {
            self.config.threads.max(1)
        };
        let chunk = m.div_ceil(threads).max(1);
        // DETERMINISM-OK: fixed row partition into disjoint chunks — bitwise thread-invariant.
        std::thread::scope(|scope| {
            for (ci, out_chunk) in out.chunks_mut(chunk * n).enumerate() {
                let acode = &acode;
                let bcode_t = &bcode_t;
                let kernel = &self.kernel;
                let row_base = self.row_base;
                // DETERMINISM-OK: same fixed partition.
                scope.spawn(move || {
                    kernel.compute_rows(acode, bcode_t, k, n, ci * chunk, row_base, out_chunk);
                });
            }
        });
        self.recycle_codes_buf(acode);
        self.recycle_codes_buf(bcode);
        self.recycle_codes_buf(bcode_t);
    }

    /// Transposes row-major `rows x cols` codes into column-major order,
    /// into a caller-owned buffer (cleared and refilled).
    fn transpose_codes_into(&self, codes: &[u8], rows: usize, cols: usize, out: &mut Vec<u8>) {
        out.clear();
        out.resize(rows * cols, self.zero_code);
        for l in 0..rows {
            for j in 0..cols {
                out[j * rows + l] = codes[l * cols + j];
            }
        }
    }
}

/// Mixes the base seed with an output coordinate into a stream seed.
fn mix_seed(seed: u64, i: usize, j: usize) -> u64 {
    let mut z = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((j as u64) << 32);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

impl GemmEngine for MacGemm {
    fn pack_a(&self, rows: usize, cols: usize, a: &[f32]) -> PackedOperand {
        assert_eq!(a.len(), rows * cols, "A must be rows x cols");
        // Block-quantize into reusable scratch, then CSR-compact the
        // non-zero-magnitude entries; dense codes are only materialized if
        // a NaN-carrying B ever asks for them (see
        // [`MacPackedA::dense_codes`]).
        let mag_mask = srmac_fp::mask(self.config.mul_fmt.bits() - 1) as u8;
        let mut codes = self.take_codes_buf();
        codes.resize(a.len(), 0);
        self.quant.quantize_block(a, &mut codes);
        let mut row_ptr = Vec::with_capacity(rows + 1);
        row_ptr.push(0u32);
        let mut idx = Vec::with_capacity(a.len());
        let mut code = Vec::with_capacity(a.len());
        for row in codes.chunks(cols.max(1)) {
            for (c, &cd) in row.iter().enumerate() {
                if cd & mag_mask != 0 {
                    idx.push(c as u32);
                    code.push(cd);
                }
            }
            // PANIC-OK: compacted operands are bounded far below u32::MAX entries.
            row_ptr.push(u32::try_from(idx.len()).expect("operand too large to compact"));
        }
        self.recycle_codes_buf(codes);
        let payload = MacPackedA {
            compact: Arc::new(CompactA { row_ptr, idx, code }),
            dense: OnceLock::new(),
            cols,
            zero_code: self.zero_code,
            fingerprint: self.fingerprint(),
        };
        PackedOperand::new(PackSide::A, rows, cols, Box::new(payload))
    }

    fn pack_b(&self, rows: usize, cols: usize, b: &[f32]) -> PackedOperand {
        assert_eq!(b.len(), rows * cols, "B must be rows x cols");
        // Block-quantize into reusable scratch (16 values per instruction
        // on AVX-512), then scatter to column-major slots with NaN
        // detection inlined on the code (a NaN is any magnitude above
        // infinity's).
        let fmt = self.config.mul_fmt;
        let mag_mask = srmac_fp::mask(fmt.bits() - 1) as u8;
        let inf_mag = (fmt.inf_bits(false) & srmac_fp::mask(fmt.bits() - 1)) as u8;
        let mut codes = self.take_codes_buf();
        codes.resize(b.len(), 0);
        self.quant.quantize_block(b, &mut codes);
        let mut codes_t = vec![self.zero_code; rows * cols];
        let mut has_nan = false;
        for (l, row) in codes.chunks(cols.max(1)).enumerate() {
            for (j, &cd) in row.iter().enumerate() {
                has_nan |= (cd & mag_mask) > inf_mag;
                codes_t[j * rows + l] = cd;
            }
        }
        self.recycle_codes_buf(codes);
        let panel = build_panel(&codes_t, rows, cols);
        let payload = MacPackedB {
            codes_t: Arc::new(codes_t),
            panel: Arc::new(panel),
            has_nan,
            fingerprint: self.fingerprint(),
        };
        PackedOperand::new(PackSide::B, rows, cols, Box::new(payload))
    }

    fn gemm_packed(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &PackedOperand,
        b: &PackedOperand,
        out: &mut [f32],
    ) {
        assert_eq!(out.len(), m * n, "out must be m x n");
        let a = self.unpack_a(a, m, k);
        let b = self.unpack_b(b, k, n);
        let awork = if b.has_nan {
            AWork::Dense(Arc::clone(a.dense_codes()))
        } else {
            AWork::Compact(Arc::clone(&a.compact))
        };
        let bcode_t = Arc::clone(&b.codes_t);
        let panel = Arc::clone(&b.panel);
        self.gemm_codes(m, k, n, &awork, &bcode_t, &panel, out);
    }

    // The spec atom of this configuration (`spec` module grammar), with
    // the seed always explicit: the registry folds role ids only into
    // *default* seeds, so an atom carrying its exact seed rebuilds
    // identical numerics in any position of any policy.
    fn spec(&self) -> Option<String> {
        let mut atom = self.config.to_string();
        if self.config.seed == MacGemmConfig::DEFAULT_SEED {
            atom.push_str(&format!("_seed{:x}", self.config.seed));
        }
        Some(atom)
    }

    // SR accumulation streams are seeded per output coordinate, so a
    // sample's rows depend on its batch position — the one engine family
    // that must opt out of the serving determinism contract.
    fn position_invariant(&self) -> bool {
        matches!(self.config.rounding, AccumRounding::Nearest)
    }

    // The derived engine shares the kernel (LUTs, adders — behind one
    // `Arc`) and the runtime; only the stream row origin differs, so row
    // `i` of its output is bit-identical to row `first_row + i` of the
    // base engine's output over the same operand rows. Offsets compose:
    // deriving from a derived engine adds the bases. Packed operands
    // carry no position state and transfer freely between base and
    // derived engines.
    fn with_row_base(&self, first_row: usize) -> Option<Arc<dyn GemmEngine>> {
        if first_row == 0 || self.position_invariant() {
            return None;
        }
        Some(Arc::new(Self {
            config: self.config,
            quant: FastQuantizer::new(self.config.mul_fmt),
            zero_code: self.zero_code,
            kernel: Arc::clone(&self.kernel),
            runtime: Arc::clone(&self.runtime),
            codes_scratch: Mutex::new(Vec::new()),
            row_base: self.row_base + first_row,
        }))
    }

    fn name(&self) -> String {
        let c = &self.config;
        let rnd = match c.rounding {
            AccumRounding::Nearest => "RN".to_owned(),
            AccumRounding::Stochastic { r } => format!("SR r={r}"),
        };
        format!(
            "MAC E{}M{} x E{}M{} acc E{}M{} {} {}",
            c.mul_fmt.exp_bits(),
            c.mul_fmt.man_bits(),
            c.mul_fmt.exp_bits(),
            c.mul_fmt.man_bits(),
            c.acc_fmt.exp_bits(),
            c.acc_fmt.man_bits(),
            rnd,
            if c.acc_fmt.subnormals() {
                "W/ Sub"
            } else {
                "W/O Sub"
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srmac_core::{MacConfig, MacUnit, RoundingDesign};
    use srmac_tensor::{F32Engine, GemmEngine};

    fn rand_vec(n: usize, seed: u64, scale: f32) -> Vec<f32> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| (rng.next_f64() as f32 - 0.5) * scale)
            .collect()
    }

    #[test]
    fn rn_gemm_matches_mac_unit_loop() {
        // The engine under RN must agree exactly with driving the RTL-level
        // MacUnit element by element (no randomness involved).
        let cfg = MacGemmConfig::fp8_fp12(AccumRounding::Nearest, true).with_threads(2);
        let engine = MacGemm::new(cfg);
        let (m, k, n) = (5, 23, 4);
        let a = rand_vec(m * k, 1, 4.0);
        let b = rand_vec(k * n, 2, 4.0);
        let mut out = vec![0.0f32; m * n];
        engine.gemm(m, k, n, &a, &b, &mut out);

        let mut mac = MacUnit::new(MacConfig::fp8_fp12(RoundingDesign::Nearest, true)).unwrap();
        let fp8 = FpFormat::e5m2();
        for i in 0..m {
            for j in 0..n {
                mac.reset();
                for l in 0..k {
                    let qa = fp8.quantize_f32(a[i * k + l], srmac_fp::RoundMode::NearestEven);
                    let qb = fp8.quantize_f32(b[l * n + j], srmac_fp::RoundMode::NearestEven);
                    mac.mac(qa.bits, qb.bits);
                }
                assert_eq!(out[i * n + j], mac.acc_f64() as f32, "element ({i},{j})");
            }
        }
    }

    #[test]
    fn gemm_is_thread_invariant_and_deterministic() {
        let (m, k, n) = (17, 64, 9);
        let a = rand_vec(m * k, 3, 2.0);
        let b = rand_vec(k * n, 4, 2.0);
        let mut outs = Vec::new();
        for threads in [1usize, 2, 4] {
            let cfg = MacGemmConfig::fp8_fp12(AccumRounding::Stochastic { r: 13 }, false)
                .with_threads(threads);
            let engine = MacGemm::new(cfg);
            let mut out = vec![0.0f32; m * n];
            engine.gemm(m, k, n, &a, &b, &mut out);
            outs.push(out);
        }
        assert_eq!(outs[0], outs[1], "1 vs 2 threads");
        assert_eq!(outs[0], outs[2], "1 vs 4 threads");
    }

    #[test]
    fn packed_gemm_is_bitwise_identical_and_reusable() {
        // Same values through the one-shot, packed (reused twice), and
        // scoped-reference paths must agree bit for bit, under both RN and
        // SR, with and without the worker pool.
        let (m, k, n) = (23, 65, 11);
        let a = rand_vec(m * k, 31, 2.0);
        let b = rand_vec(k * n, 32, 2.0);
        for rounding in [AccumRounding::Nearest, AccumRounding::Stochastic { r: 13 }] {
            for threads in [1usize, 4] {
                let cfg = MacGemmConfig::fp8_fp12(rounding, false).with_threads(threads);
                let engine = MacGemm::new(cfg);
                let mut one_shot = vec![0.0f32; m * n];
                engine.gemm(m, k, n, &a, &b, &mut one_shot);

                let mut scoped = vec![0.0f32; m * n];
                engine.gemm_scoped(m, k, n, &a, &b, &mut scoped);
                assert_eq!(one_shot, scoped, "{rounding:?} t={threads}: scoped");

                let pa = engine.pack_a(m, k, &a);
                let pb = engine.pack_b(k, n, &b);
                for trial in 0..2 {
                    let mut packed = vec![0.0f32; m * n];
                    engine.gemm_packed(m, k, n, &pa, &pb, &mut packed);
                    assert_eq!(
                        one_shot, packed,
                        "{rounding:?} t={threads} reuse {trial}: packed"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_operands_transfer_between_same_format_engines() {
        // Packing depends only on the multiplier format: codes packed by an
        // RN engine feed an SR engine with the same mul_fmt.
        let (m, k, n) = (4, 40, 3);
        let a = rand_vec(m * k, 41, 1.0);
        let b = rand_vec(k * n, 42, 1.0);
        let packer = MacGemm::new(MacGemmConfig::fp8_fp12(AccumRounding::Nearest, false));
        let runner = MacGemm::new(MacGemmConfig::fp8_fp12(
            AccumRounding::Stochastic { r: 13 },
            false,
        ));
        let pa = packer.pack_a(m, k, &a);
        let pb = packer.pack_b(k, n, &b);
        let mut via_transfer = vec![0.0f32; m * n];
        runner.gemm_packed(m, k, n, &pa, &pb, &mut via_transfer);
        let mut direct = vec![0.0f32; m * n];
        runner.gemm(m, k, n, &a, &b, &mut direct);
        assert_eq!(via_transfer, direct);
    }

    #[test]
    #[should_panic(expected = "different multiplier format")]
    fn packed_operand_format_mismatch_panics() {
        let with_sub = MacGemm::new(MacGemmConfig::fp8_fp12(AccumRounding::Nearest, true));
        let without_sub = MacGemm::new(MacGemmConfig::fp8_fp12(AccumRounding::Nearest, false));
        let pa = with_sub.pack_a(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let pb = with_sub.pack_b(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let mut out = vec![0.0f32; 4];
        without_sub.gemm_packed(2, 2, 2, &pa, &pb, &mut out);
    }

    #[test]
    fn sparse_and_nan_inputs_match_the_dense_reference() {
        // The compacted A path must be bitwise identical to the dense
        // scoped reference on heavily sparse inputs (ReLU-style zeros drawn
        // into A), and a NaN in B must force the exact dense semantics
        // (0 * NaN = NaN reaches the accumulator).
        let (m, k, n) = (9, 48, 6);
        let mut rng = SplitMix64::new(91);
        let mut a = rand_vec(m * k, 92, 2.0);
        for v in a.iter_mut() {
            if rng.next_f64() < 0.6 {
                // Mix positive and negative zeros: the lazily rebuilt dense
                // codes canonicalize skipped entries to +0, which must not
                // change any result (see MacPackedA::dense_codes).
                *v = if rng.next_f64() < 0.5 { 0.0 } else { -0.0 };
            }
        }
        for rounding in [AccumRounding::Nearest, AccumRounding::Stochastic { r: 13 }] {
            for subnormals in [true, false] {
                let engine = MacGemm::new(MacGemmConfig::fp8_fp12(rounding, subnormals));
                for nan_in_b in [false, true] {
                    let mut b = rand_vec(k * n, 93, 2.0);
                    if nan_in_b {
                        b[k * n / 2] = f32::NAN;
                    }
                    let mut reference = vec![0.0f32; m * n];
                    engine.gemm_scoped(m, k, n, &a, &b, &mut reference);
                    let mut packed = vec![0.0f32; m * n];
                    let (pa, pb) = (engine.pack_a(m, k, &a), engine.pack_b(k, n, &b));
                    engine.gemm_packed(m, k, n, &pa, &pb, &mut packed);
                    let same = reference
                        .iter()
                        .zip(&packed)
                        .all(|(x, y)| x.to_bits() == y.to_bits());
                    assert!(
                        same,
                        "{rounding:?} sub={subnormals} nan_in_b={nan_in_b}: \
                         {reference:?} vs {packed:?}"
                    );
                    if nan_in_b {
                        assert!(
                            packed.iter().any(|v| v.is_nan()),
                            "a NaN code must propagate into some output"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sr_gemm_is_unbiased_against_f32() {
        // Mean over seeds of the SR GEMM approaches the f32 GEMM of the
        // quantized inputs (SR is unbiased; RN at E6M5 is not for long k).
        let (m, k, n) = (2, 256, 2);
        let a = rand_vec(m * k, 5, 0.5);
        let b = rand_vec(k * n, 6, 0.5);

        // Reference: f32 accumulation of the quantized products.
        let probe = MacGemm::new(MacGemmConfig::fp8_fp12(AccumRounding::Nearest, true));
        let ac = probe.quantize_codes(&a);
        let bc = probe.quantize_codes(&b);
        let fp8 = FpFormat::e5m2();
        let mut reference = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                for l in 0..k {
                    reference[i * n + j] += fp8.decode_f64(u64::from(ac[i * k + l]))
                        * fp8.decode_f64(u64::from(bc[l * n + j]));
                }
            }
        }

        let trials = 48;
        let mut mean = vec![0.0f64; m * n];
        for t in 0..trials {
            let cfg = MacGemmConfig::fp8_fp12(AccumRounding::Stochastic { r: 13 }, true)
                .with_seed(9000 + t);
            let engine = MacGemm::new(cfg);
            let mut out = vec![0.0f32; m * n];
            engine.gemm(m, k, n, &a, &b, &mut out);
            for (acc, &v) in mean.iter_mut().zip(&out) {
                *acc += f64::from(v) / f64::from(trials as u32);
            }
        }
        for (i, (&mu, &want)) in mean.iter().zip(&reference).enumerate() {
            let tol = want.abs().max(1.0) * 0.05;
            assert!(
                (mu - want).abs() < tol,
                "element {i}: SR mean {mu} vs f32 {want}"
            );
        }
    }

    #[test]
    fn wide_accumulator_approaches_f32_engine() {
        // With an E5M10 accumulator and RN, results should be very close to
        // (though not bitwise equal to) the f32 engine on quantized inputs.
        let (m, k, n) = (4, 32, 4);
        let a = rand_vec(m * k, 7, 1.0);
        let b = rand_vec(k * n, 8, 1.0);
        let engine = MacGemm::new(MacGemmConfig::fp8_acc(
            FpFormat::e5m10(),
            AccumRounding::Nearest,
            true,
        ));
        let mut out = vec![0.0f32; m * n];
        engine.gemm(m, k, n, &a, &b, &mut out);

        // f32 on the same quantized values.
        let ac: Vec<f32> = engine
            .quantize_codes(&a)
            .iter()
            .map(|&c| FpFormat::e5m2().decode_f64(u64::from(c)) as f32)
            .collect();
        let bc: Vec<f32> = engine
            .quantize_codes(&b)
            .iter()
            .map(|&c| FpFormat::e5m2().decode_f64(u64::from(c)) as f32)
            .collect();
        let mut want = vec![0.0f32; m * n];
        F32Engine::new(1).gemm(m, k, n, &ac, &bc, &mut want);
        for (got, want) in out.iter().zip(&want) {
            assert!(
                (got - want).abs() <= want.abs() * 0.01 + 1e-3,
                "{got} vs {want}"
            );
        }
    }

    #[test]
    fn config_wire_roundtrip_and_rejects_garbage() {
        for cfg in [
            MacGemmConfig::fp8_fp12(AccumRounding::Stochastic { r: 13 }, false).with_seed(77),
            MacGemmConfig::fp8_fp12(AccumRounding::Nearest, true),
            MacGemmConfig::fp8_acc(FpFormat::e5m10(), AccumRounding::Stochastic { r: 9 }, true),
        ] {
            let back = MacGemmConfig::from_wire(&cfg.to_wire()).expect("round trip");
            assert_eq!(back.mul_fmt, cfg.mul_fmt);
            assert_eq!(back.acc_fmt, cfg.acc_fmt);
            assert_eq!(back.rounding, cfg.rounding);
            assert_eq!(back.seed, cfg.seed);
            // Threads are machine state, not checkpoint state.
            assert!(back.threads >= 1);
        }
        let good = MacGemmConfig::fp8_fp12(AccumRounding::Stochastic { r: 13 }, false).to_wire();
        for (byte, value, want) in [
            (
                0usize,
                0u8,
                ConfigWireError::BadFormat {
                    exp_bits: 0,
                    man_bits: 2,
                },
            ),
            (2, 7, ConfigWireError::BadFlag(7)),
            (6, 9, ConfigWireError::BadRoundingTag(9)),
            (7, 60, ConfigWireError::BadSrBits(60)),
            (7, 0, ConfigWireError::BadSrBits(0)),
        ] {
            let mut w = good;
            w[byte] = value;
            assert_eq!(MacGemmConfig::from_wire(&w).unwrap_err(), want);
        }
        // Individually valid formats outside the engine envelope must be
        // typed errors too — `MacGemm::new` would panic on them, and the
        // loader contract is "no decodable checkpoint panics the rebuild".
        for (byte, value) in [(1usize, 10u8), (4, 23)] {
            let mut w = good;
            w[byte] = value;
            assert!(matches!(
                MacGemmConfig::from_wire(&w).unwrap_err(),
                ConfigWireError::OutsideEngineEnvelope(_)
            ));
        }
    }

    #[test]
    #[should_panic(expected = "cannot serialize a config the engine rejects")]
    fn to_wire_rejects_configs_the_engine_cannot_build() {
        // MacGemmConfig's fields are public, so an out-of-envelope config
        // is constructible; serializing it must fail loudly rather than
        // write a checkpoint from_wire would refuse to load.
        let cfg = MacGemmConfig {
            mul_fmt: FpFormat::e5m10(),
            ..MacGemmConfig::fp8_fp12(AccumRounding::Nearest, true)
        };
        let _ = cfg.to_wire();
    }

    #[test]
    fn zero_product_skip_preserves_semantics() {
        // A GEMM whose inputs include zeros must equal the unskipped MAC
        // reference; covered by rn_gemm_matches_mac_unit_loop's machinery
        // with explicit zero rows here.
        let cfg = MacGemmConfig::fp8_fp12(AccumRounding::Nearest, true);
        let engine = MacGemm::new(cfg);
        let (m, k, n) = (2, 8, 2);
        let mut a = vec![0.0f32; m * k];
        a[3] = 1.5;
        a[9] = -2.0;
        let b = vec![0.25f32; k * n];
        let mut out = vec![0.0f32; m * n];
        engine.gemm(m, k, n, &a, &b, &mut out);
        assert_eq!(out, vec![0.375, 0.375, -0.5, -0.5]);
    }
}
