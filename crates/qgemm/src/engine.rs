//! The low-precision GEMM engine: FP8-quantized operands, exact products,
//! and bit-exact low-precision accumulation with RN or stochastic rounding —
//! the software equivalent of tiling the paper's MAC units over a matrix
//! multiplication, and the Rust counterpart of its "PyTorch software-based
//! bit-accurate emulation flow ... custom CUDA kernels" (Sec. IV).
//!
//! # Pack/plan lifecycle
//!
//! [`MacGemm`] implements the prepared-operand pipeline of
//! [`GemmEngine`]: [`GemmEngine::pack_a`] quantizes a matrix to row-major
//! FP8 codes, [`GemmEngine::pack_b`] quantizes *and* materializes the
//! column-major transpose (so every dot product reads both operands
//! contiguously), and [`GemmEngine::gemm_packed`] runs only the
//! accumulation loops. The one-shot [`GemmEngine::gemm`] is the trait's
//! default composition of the three. Packing depends only on the operand
//! values and the multiplier format — never on the accumulator format,
//! rounding mode, seed or thread count — so a packed weight can be reused
//! across forward, backward and evaluation products, and even across
//! engines that share a multiplier format.
//!
//! # Determinism contract
//!
//! Every output element draws its stochastic-rounding words from a
//! `SplitMix64` stream seeded by `(engine seed, row, column)`; the stream
//! advances once per non-zero product in `k` order. Results are therefore
//! a pure function of `(values, config.seed)` — independent of packing,
//! chunking, the worker-pool size and call order.

use std::sync::{Arc, OnceLock};

use srmac_fp::FpFormat;
use srmac_rng::{SplitMix64, SrLaneStreams};
use srmac_runtime::Runtime;
use srmac_tensor::{GemmEngine, PackSide, PackedOperand};

use crate::batch::{DecodedLut, FastAdderBatch, LANE_DRAWS};
use crate::fastmath::{AccumRounding, FastAdder, FastQuantizer};
use crate::lut::ProductLut;

/// Default lane width of the batched compacted accumulation loop: the
/// number of output columns [`FastAdderBatch`] advances per step. The
/// per-element accumulation chain is serial in `k`, so wall-clock is
/// bounded by chain *latency* unless enough independent column chains are
/// in flight to cover it — 64 lanes (sixteen 4-wide vector chains under
/// AVX2, eight 8-wide under AVX-512) measure fastest on current cores,
/// with a cascade down to 8-lane blocks and a scalar tail for narrow
/// outputs. [`MacGemm::with_lane_width`] narrows it for equivalence
/// testing and benchmarking.
const LANES: usize = 64;

/// Vector-ISA tier of the batched accumulation loop, detected at engine
/// construction. The kernel *code* is identical at every tier — the same
/// portable SWAR lane algebra — but the annotated wrappers let LLVM
/// auto-vectorize it with the detected extensions. Function-level
/// `#[target_feature]` (rather than workspace-wide `-C` flags) confines
/// the widened vectorizer to this integer-only, exhaustively bit-verified
/// kernel; see the workspace `Cargo.toml` note on why the flags must not
/// be global.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SimdTier {
    /// Baseline codegen (any architecture; NEON on `aarch64` is part of
    /// the baseline there).
    Portable,
    /// AVX2: 4 lanes per `ymm` register.
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// AVX-512 (F/BW/DQ/VL): 8 lanes per `zmm` register, masked selects.
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

impl SimdTier {
    fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512bw")
                && std::arch::is_x86_feature_detected!("avx512dq")
                && std::arch::is_x86_feature_detected!("avx512vl")
            {
                return SimdTier::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdTier::Avx2;
            }
        }
        SimdTier::Portable
    }
}

/// Configuration of a [`MacGemm`] engine.
#[derive(Clone, Copy, Debug)]
pub struct MacGemmConfig {
    /// Multiplier input format (quantization target for both operands).
    pub mul_fmt: FpFormat,
    /// Accumulator format.
    pub acc_fmt: FpFormat,
    /// Accumulation rounding.
    pub rounding: AccumRounding,
    /// Base seed for the per-dot-product random streams.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl MacGemmConfig {
    /// The paper's reference MAC: E5M2 multipliers, E6M5 accumulation.
    #[must_use]
    pub fn fp8_fp12(rounding: AccumRounding, subnormals: bool) -> Self {
        Self {
            mul_fmt: FpFormat::e5m2().with_subnormals(subnormals),
            acc_fmt: FpFormat::e6m5().with_subnormals(subnormals),
            rounding,
            seed: 0x5EED,
            threads: srmac_tensor::available_threads(),
        }
    }

    /// FP8 multipliers with a chosen accumulator format (e.g. E5M10 for the
    /// paper's "RN W/ Sub FP16" rows).
    #[must_use]
    pub fn fp8_acc(acc_fmt: FpFormat, rounding: AccumRounding, subnormals: bool) -> Self {
        Self {
            mul_fmt: FpFormat::e5m2().with_subnormals(subnormals),
            acc_fmt,
            rounding,
            seed: 0x5EED,
            threads: srmac_tensor::available_threads(),
        }
    }

    /// Replaces the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Serializes the numerically relevant configuration into a fixed-size
    /// little-endian record (the checkpoint metadata hook of `srmac-io`).
    ///
    /// The thread count is deliberately excluded: results are bitwise
    /// thread-invariant, and a checkpoint written on one machine must not
    /// pin the pool size of another. [`MacGemmConfig::from_wire`] restores
    /// the machine default.
    ///
    /// # Panics
    ///
    /// Panics if the configuration lies outside the [`MacGemm`] engine
    /// envelope (see [`MacGemmConfig::from_wire`]) — such a config could
    /// not have built an engine, and silently serializing it would write
    /// a checkpoint [`MacGemmConfig::from_wire`] must reject.
    #[must_use]
    pub fn to_wire(&self) -> [u8; Self::WIRE_BYTES] {
        Self::check_envelope(self.mul_fmt, self.acc_fmt, self.rounding)
            .unwrap_or_else(|e| panic!("cannot serialize a config the engine rejects: {e}"));
        let mut w = [0u8; Self::WIRE_BYTES];
        w[0] = self.mul_fmt.exp_bits() as u8;
        w[1] = self.mul_fmt.man_bits() as u8;
        w[2] = u8::from(self.mul_fmt.subnormals());
        w[3] = self.acc_fmt.exp_bits() as u8;
        w[4] = self.acc_fmt.man_bits() as u8;
        w[5] = u8::from(self.acc_fmt.subnormals());
        let (tag, r) = match self.rounding {
            AccumRounding::Nearest => (0u8, 0u8),
            // Envelope-checked above: r fits u8 losslessly.
            AccumRounding::Stochastic { r } => (1, u8::try_from(r).expect("r <= 24")),
        };
        w[6] = tag;
        w[7] = r;
        w[8..16].copy_from_slice(&self.seed.to_le_bytes());
        w
    }

    /// Validates this configuration against the engine envelope without
    /// building anything — the typed-error twin of the asserts in
    /// [`MacGemm::with_runtime`], used by the wire codec and the spec
    /// registry so no decodable checkpoint or parseable spec can panic
    /// the engine build.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigWireError`] when the formats or SR bit count lie
    /// outside the envelope.
    pub fn validate(&self) -> Result<(), ConfigWireError> {
        Self::check_envelope(self.mul_fmt, self.acc_fmt, self.rounding)
    }

    /// The fast-path envelope [`MacGemm::with_runtime`] (via
    /// [`ProductLut`], [`FastAdder`]) enforces with asserts; the wire
    /// codec enforces it with typed errors on both directions so no
    /// decodable checkpoint can panic the engine rebuild.
    fn check_envelope(
        mul_fmt: FpFormat,
        acc_fmt: FpFormat,
        rounding: AccumRounding,
    ) -> Result<(), ConfigWireError> {
        if mul_fmt.bits() > 8 {
            return Err(ConfigWireError::OutsideEngineEnvelope(
                "multiplier format wider than 8 bits",
            ));
        }
        if acc_fmt.bits() > 16 || acc_fmt.precision() > 12 {
            return Err(ConfigWireError::OutsideEngineEnvelope(
                "accumulator format wider than 16 bits / precision above 12",
            ));
        }
        if let AccumRounding::Stochastic { r } = rounding {
            if !(1..=24).contains(&r) {
                return Err(ConfigWireError::BadSrBits(r.min(255) as u8));
            }
        }
        Ok(())
    }

    /// Decodes a [`MacGemmConfig::to_wire`] record, validating every field
    /// (an untrusted checkpoint must produce a typed error, never a panic
    /// or a silently nonsensical engine).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigWireError`] on invalid formats, an unknown rounding
    /// tag, or an out-of-range SR bit count.
    pub fn from_wire(w: &[u8; Self::WIRE_BYTES]) -> Result<Self, ConfigWireError> {
        let fmt = |exp: u8, man: u8, sub: u8| -> Result<FpFormat, ConfigWireError> {
            if sub > 1 {
                return Err(ConfigWireError::BadFlag(sub));
            }
            FpFormat::new(u32::from(exp), u32::from(man))
                .map(|f| f.with_subnormals(sub == 1))
                .map_err(|_| ConfigWireError::BadFormat {
                    exp_bits: exp,
                    man_bits: man,
                })
        };
        let mul_fmt = fmt(w[0], w[1], w[2])?;
        let acc_fmt = fmt(w[3], w[4], w[5])?;
        let rounding = match w[6] {
            0 => AccumRounding::Nearest,
            1 => AccumRounding::Stochastic { r: u32::from(w[7]) },
            tag => return Err(ConfigWireError::BadRoundingTag(tag)),
        };
        Self::check_envelope(mul_fmt, acc_fmt, rounding)?;
        Ok(Self {
            mul_fmt,
            acc_fmt,
            rounding,
            seed: u64::from_le_bytes(w[8..16].try_into().expect("8-byte slice")),
            threads: srmac_tensor::available_threads(),
        })
    }
}

impl MacGemmConfig {
    /// Size in bytes of the [`MacGemmConfig::to_wire`] record.
    pub const WIRE_BYTES: usize = 16;

    /// The seed of the named constructors ([`MacGemmConfig::fp8_fp12`],
    /// [`MacGemmConfig::fp8_acc`]); spec strings omit the `seed…` token
    /// at this value (see the `spec` module).
    pub const DEFAULT_SEED: u64 = 0x5EED;
}

/// Error decoding a [`MacGemmConfig`] wire record (see
/// [`MacGemmConfig::from_wire`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigWireError {
    /// A floating-point format field is outside the supported range.
    BadFormat {
        /// Stored exponent width.
        exp_bits: u8,
        /// Stored significand width.
        man_bits: u8,
    },
    /// A boolean flag byte was neither 0 nor 1.
    BadFlag(u8),
    /// The rounding tag byte was neither 0 (RN) nor 1 (SR).
    BadRoundingTag(u8),
    /// The SR random-bit count is outside the fast-adder envelope (1..=24).
    BadSrBits(u8),
    /// The formats are individually valid but outside the envelope the
    /// `MacGemm` engine can actually build (`MacGemm::new` would panic).
    OutsideEngineEnvelope(&'static str),
}

impl std::fmt::Display for ConfigWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigWireError::BadFormat { exp_bits, man_bits } => {
                write!(f, "invalid floating-point format E{exp_bits}M{man_bits}")
            }
            ConfigWireError::BadFlag(b) => write!(f, "boolean flag byte must be 0 or 1, got {b}"),
            ConfigWireError::BadRoundingTag(t) => write!(f, "unknown rounding tag {t}"),
            ConfigWireError::BadSrBits(r) => write!(f, "SR bit count {r} outside 1..=24"),
            ConfigWireError::OutsideEngineEnvelope(what) => {
                write!(f, "outside the MacGemm engine envelope: {what}")
            }
        }
    }
}

impl std::error::Error for ConfigWireError {}

/// The shareable inner accumulation kernel: everything a worker needs to
/// compute output rows from packed codes. Lives behind an `Arc` so pool
/// jobs (which must be `'static`) can hold it without copying tables.
#[derive(Clone, Debug)]
struct MacKernel {
    lut: ProductLut,
    adder: FastAdder,
    /// The lane-batched adder driving the compacted hot path.
    batch: FastAdderBatch,
    /// Products pre-decoded into lane words (see `batch.rs`).
    dlut: DecodedLut,
    decode: Vec<f32>,
    /// Accumulator-format magnitude mask (all bits except the sign).
    acc_mag_mask: u64,
    rounding: AccumRounding,
    seed: u64,
    /// Column-lane width of the compacted path.
    lanes: usize,
    /// Detected vector-ISA tier of the batched loop.
    tier: SimdTier,
}

impl MacKernel {
    /// The zero-product skip rule shared by every accumulation loop — the
    /// load-bearing invariant that makes CSR compaction bit-exact: adding
    /// `(+/-)0` never changes a (non-negative-zero) accumulator and never
    /// consumes a rounding word.
    #[inline]
    fn is_zero_prod(&self, p: u16) -> bool {
        u64::from(p) & self.acc_mag_mask == 0
    }

    /// One full dot product in MAC semantics.
    fn dot(&self, a: &[u8], b_colmajor: &[u8], rng: &mut SplitMix64) -> u16 {
        let mut acc: u64 = 0;
        match self.rounding {
            AccumRounding::Nearest => {
                for (&ca, &cb) in a.iter().zip(b_colmajor) {
                    let p = self.lut.product(ca, cb);
                    if !self.is_zero_prod(p) {
                        acc = self.adder.add(acc, u64::from(p), 0);
                    }
                }
            }
            AccumRounding::Stochastic { .. } => {
                for (&ca, &cb) in a.iter().zip(b_colmajor) {
                    let p = self.lut.product(ca, cb);
                    if !self.is_zero_prod(p) {
                        acc = self.adder.add(acc, u64::from(p), rng.next_u64());
                    }
                }
            }
        }
        acc as u16
    }

    /// One dot product over a compacted (zero-free) A row: `ids`/`cods`
    /// hold the k-indices and codes of the row's non-zero-magnitude
    /// entries, in ascending k order. Bit-identical to [`MacKernel::dot`]
    /// whenever B holds no NaN codes: products against a zero-magnitude A
    /// code are exactly `+/-0` then, so the dense loop would skip them
    /// without drawing a rounding word — exactly what skipping the entry
    /// outright does.
    fn dot_compact(&self, ids: &[u32], cods: &[u8], bcol: &[u8], rng: &mut SplitMix64) -> u16 {
        let mut acc: u64 = 0;
        match self.rounding {
            AccumRounding::Nearest => {
                for (&ci, &ca) in ids.iter().zip(cods) {
                    let p = self.lut.product(ca, bcol[ci as usize]);
                    if !self.is_zero_prod(p) {
                        acc = self.adder.add(acc, u64::from(p), 0);
                    }
                }
            }
            AccumRounding::Stochastic { .. } => {
                for (&ci, &ca) in ids.iter().zip(cods) {
                    let p = self.lut.product(ca, bcol[ci as usize]);
                    if !self.is_zero_prod(p) {
                        acc = self.adder.add(acc, u64::from(p), rng.next_u64());
                    }
                }
            }
        }
        acc as u16
    }

    /// Computes output rows `row0 .. row0 + rows` into `block` (rows x n).
    fn compute_rows(
        &self,
        acode: &[u8],
        bcode_t: &[u8],
        k: usize,
        n: usize,
        row0: usize,
        block: &mut [f32],
    ) {
        for (ri, out_row) in block.chunks_mut(n).enumerate() {
            let i = row0 + ri;
            let arow = &acode[i * k..(i + 1) * k];
            for (j, o) in out_row.iter_mut().enumerate() {
                let mut rng = SplitMix64::new(mix_seed(self.seed, i, j));
                let acc = self.dot(arow, &bcode_t[j * k..(j + 1) * k], &mut rng);
                *o = self.decode[acc as usize];
            }
        }
    }

    /// `L` compacted dot products (columns `j .. j + L` of one output row)
    /// advanced in lock-step through the lane-batched [`FastAdderBatch`].
    /// Each lane's adds stay in `k` order and its SR stream is consumed
    /// exactly as in [`MacKernel::dot_compact`] (one word per product with
    /// non-zero encoded magnitude), so results are bit-identical to `L`
    /// scalar dot products — the lanes only buy instruction-level
    /// parallelism. Accumulators live in decoded lane-word form across the
    /// whole loop and are packed once at the end.
    #[inline(always)]
    fn dotn_compact_batch<const L: usize, const SR: bool>(
        &self,
        ids: &[u32],
        cods: &[u8],
        bcols: [&[u8]; L],
        streams: &mut SrLaneStreams<L>,
    ) -> [u16; L] {
        let batch = &self.batch;
        let mut acc = [0u64; L];
        for (&ci, &ca) in ids.iter().zip(cods) {
            let row = self.dlut.row(ca);
            let mut prods = [0u64; L];
            for l in 0..L {
                prods[l] = row[usize::from(bcols[l][ci as usize])];
            }
            let words = if SR {
                let mut consume = [false; L];
                for l in 0..L {
                    consume[l] = prods[l] & LANE_DRAWS != 0;
                }
                streams.draw(consume)
            } else {
                [0u64; L]
            };
            batch.mac_step(&mut acc, &prods, &words);
        }
        std::array::from_fn(|l| batch.encode(acc[l]) as u16)
    }

    /// Runs lane blocks of width `L` over the columns of one output row,
    /// advancing `j` past every complete block.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn lane_blocks<const L: usize>(
        &self,
        ids: &[u32],
        cods: &[u8],
        bcode_t: &[u8],
        k: usize,
        n: usize,
        i: usize,
        j: &mut usize,
        out_row: &mut [f32],
    ) {
        let sr = !matches!(self.rounding, AccumRounding::Nearest);
        while *j + (L - 1) < n {
            let base = *j;
            let bcols: [&[u8]; L] =
                std::array::from_fn(|l| &bcode_t[(base + l) * k..(base + l + 1) * k]);
            let mut streams =
                SrLaneStreams::new(std::array::from_fn(|l| mix_seed(self.seed, i, base + l)));
            let accs = if sr {
                self.dotn_compact_batch::<L, true>(ids, cods, bcols, &mut streams)
            } else {
                self.dotn_compact_batch::<L, false>(ids, cods, bcols, &mut streams)
            };
            for (lane, &a) in accs.iter().enumerate() {
                out_row[base + lane] = self.decode[a as usize];
            }
            *j += L;
        }
    }

    /// Compacted-A variant of [`MacKernel::compute_rows`] (requires a
    /// NaN-free B operand; see [`MacKernel::dot_compact`]). Columns are
    /// processed in lane-batched groups of `self.lanes`, with the scalar
    /// adder covering the ragged tail (`n % lanes` columns) — bit-identical
    /// to the scalar path for every lane width. Dispatches once onto the
    /// detected [`SimdTier`]'s codegen of the (identical) loop body.
    fn compute_rows_compact(
        &self,
        compact: &CompactA,
        bcode_t: &[u8],
        k: usize,
        n: usize,
        row0: usize,
        block: &mut [f32],
    ) {
        match self.tier {
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx512 => {
                // SAFETY: `SimdTier::detect` verified at runtime that this
                // CPU has every feature the callee enables.
                #[allow(unsafe_code)]
                unsafe {
                    self.compute_rows_compact_avx512(compact, bcode_t, k, n, row0, block);
                }
            }
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => {
                // SAFETY: as above — `avx2` was detected at runtime.
                #[allow(unsafe_code)]
                unsafe {
                    self.compute_rows_compact_avx2(compact, bcode_t, k, n, row0, block);
                }
            }
            SimdTier::Portable => {
                self.compute_rows_compact_body(compact, bcode_t, k, n, row0, block);
            }
        }
    }

    /// AVX-512 codegen of the compacted loop: same source, vectorized by
    /// the compiler with 8-lane `zmm` arithmetic and masked selects.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(
        enable = "avx512f",
        enable = "avx512bw",
        enable = "avx512dq",
        enable = "avx512vl",
        enable = "avx2"
    )]
    fn compute_rows_compact_avx512(
        &self,
        compact: &CompactA,
        bcode_t: &[u8],
        k: usize,
        n: usize,
        row0: usize,
        block: &mut [f32],
    ) {
        self.compute_rows_compact_body(compact, bcode_t, k, n, row0, block);
    }

    /// AVX2 codegen of the compacted loop (4-lane `ymm` arithmetic).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    fn compute_rows_compact_avx2(
        &self,
        compact: &CompactA,
        bcode_t: &[u8],
        k: usize,
        n: usize,
        row0: usize,
        block: &mut [f32],
    ) {
        self.compute_rows_compact_body(compact, bcode_t, k, n, row0, block);
    }

    /// The tier-independent loop body (inlined into each tier wrapper so
    /// every tier gets its own codegen of the whole lane pipeline).
    #[inline(always)]
    fn compute_rows_compact_body(
        &self,
        compact: &CompactA,
        bcode_t: &[u8],
        k: usize,
        n: usize,
        row0: usize,
        block: &mut [f32],
    ) {
        for (ri, out_row) in block.chunks_mut(n).enumerate() {
            let i = row0 + ri;
            let (s, e) = (compact.row_ptr[i] as usize, compact.row_ptr[i + 1] as usize);
            let ids = &compact.idx[s..e];
            let cods = &compact.code[s..e];
            let mut j = 0usize;
            match self.lanes {
                64 => {
                    self.lane_blocks::<64>(ids, cods, bcode_t, k, n, i, &mut j, out_row);
                    self.lane_blocks::<8>(ids, cods, bcode_t, k, n, i, &mut j, out_row);
                }
                32 => {
                    self.lane_blocks::<32>(ids, cods, bcode_t, k, n, i, &mut j, out_row);
                    self.lane_blocks::<8>(ids, cods, bcode_t, k, n, i, &mut j, out_row);
                }
                16 => {
                    self.lane_blocks::<16>(ids, cods, bcode_t, k, n, i, &mut j, out_row);
                    self.lane_blocks::<8>(ids, cods, bcode_t, k, n, i, &mut j, out_row);
                }
                8 => self.lane_blocks::<8>(ids, cods, bcode_t, k, n, i, &mut j, out_row),
                4 => self.lane_blocks::<4>(ids, cods, bcode_t, k, n, i, &mut j, out_row),
                _ => {}
            }
            while j < n {
                let mut rng = SplitMix64::new(mix_seed(self.seed, i, j));
                let acc = self.dot_compact(ids, cods, &bcode_t[j * k..(j + 1) * k], &mut rng);
                out_row[j] = self.decode[acc as usize];
                j += 1;
            }
        }
    }
}

/// CSR-style compaction of a row-major code matrix: per row, the k-indices
/// and codes of the non-zero-magnitude entries. Post-ReLU activations and
/// im2row padding make left operands substantially sparse in practice, and
/// skipping zero entries is exact (their products are `+/-0`, which the
/// accumulation loop ignores without consuming randomness).
#[derive(Debug)]
struct CompactA {
    row_ptr: Vec<u32>,
    idx: Vec<u32>,
    code: Vec<u8>,
}

/// [`PackedOperand`] payload for the A side: the zero-skipping compaction,
/// plus dense row-major codes materialized lazily — only the NaN-in-B
/// fallback ever reads them, so the hot path never builds or stores them.
#[derive(Debug)]
struct MacPackedA {
    compact: Arc<CompactA>,
    dense: OnceLock<Arc<Vec<u8>>>,
    cols: usize,
    zero_code: u8,
    fingerprint: u64,
}

impl MacPackedA {
    /// Dense row-major codes rebuilt from the compaction, with every
    /// zero-magnitude entry as `+0`. Bit-exact for the dense fallback: a
    /// zero-magnitude A code only ever produces `+/-0` (skipped without
    /// consuming a rounding word, sign irrelevant) or, against a NaN in B,
    /// the canonical NaN — identical for `+0` and `-0`. (B cannot hold
    /// infinities: the quantizer saturates them to the largest finite
    /// value.)
    fn dense_codes(&self) -> &Arc<Vec<u8>> {
        self.dense.get_or_init(|| {
            let rows = self.compact.row_ptr.len() - 1;
            let mut codes = vec![self.zero_code; rows * self.cols];
            for r in 0..rows {
                let (s, e) = (
                    self.compact.row_ptr[r] as usize,
                    self.compact.row_ptr[r + 1] as usize,
                );
                for (&c, &cd) in self.compact.idx[s..e].iter().zip(&self.compact.code[s..e]) {
                    codes[r * self.cols + c as usize] = cd;
                }
            }
            Arc::new(codes)
        })
    }
}

/// [`PackedOperand`] payload for the B side: column-major codes and
/// whether any of them is a NaN (which forces the dense A path to keep
/// `0 * NaN = NaN` propagation bit-exact).
#[derive(Debug)]
struct MacPackedB {
    codes_t: Arc<Vec<u8>>,
    has_nan: bool,
    fingerprint: u64,
}

/// The A-side execution plan of one product: compacted when B is NaN-free
/// (the fast path), dense otherwise.
#[derive(Clone, Debug)]
enum AWork {
    Dense(Arc<Vec<u8>>),
    Compact(Arc<CompactA>),
}

impl AWork {
    fn compute_rows(
        &self,
        kernel: &MacKernel,
        bcode_t: &[u8],
        k: usize,
        n: usize,
        row0: usize,
        block: &mut [f32],
    ) {
        match self {
            AWork::Dense(codes) => kernel.compute_rows(codes, bcode_t, k, n, row0, block),
            AWork::Compact(compact) => {
                kernel.compute_rows_compact(compact, bcode_t, k, n, row0, block);
            }
        }
    }
}

/// A [`GemmEngine`] where every scalar operation is a bit-exact MAC-unit
/// step: operands quantize to FP8 (RN, saturating), products are exact, and
/// the accumulator is a low-precision float updated with RN or SR — in the
/// sequential `k` order a hardware MAC would see.
///
/// Rounding words come from counter-seeded `SplitMix64` streams, one per
/// output element, making results independent of the thread partition.
/// (Hardware uses the Galois LFSR of `srmac-rng`; both are uniform sources,
/// and the LFSR-driven `MacUnit` is verified separately.)
///
/// Dispatch runs on a shared parallel [`Runtime`] (`srmac-runtime`):
/// by default the engine builds its own runtime sized to
/// `config.threads`, but [`MacGemm::with_runtime`] lets it share one pool
/// with the rest of the stack.
#[derive(Debug)]
pub struct MacGemm {
    config: MacGemmConfig,
    quant: FastQuantizer,
    zero_code: u8,
    kernel: Arc<MacKernel>,
    runtime: Arc<Runtime>,
}

impl MacGemm {
    /// Builds the engine (precomputes product and decode tables). At the
    /// default thread count the engine dispatches on the process-wide
    /// [`Runtime::global`] — one worker pool shared with the tensor
    /// layers' data movement, never a second oversubscribing pool; an
    /// explicit non-default `config.threads` gets a private runtime of
    /// that size (results are bitwise identical either way).
    ///
    /// # Panics
    ///
    /// Panics if the formats exceed the fast-path envelope (multiplier
    /// format wider than 8 bits, accumulator wider than 16).
    #[must_use]
    pub fn new(config: MacGemmConfig) -> Self {
        let runtime = if config.threads == srmac_runtime::available_threads() {
            Arc::clone(Runtime::global())
        } else {
            Arc::new(Runtime::new(config.threads))
        };
        Self::with_runtime(config, runtime)
    }

    /// Builds the engine on an existing shared [`Runtime`] (the pool size
    /// of `runtime` supersedes `config.threads` for dispatch). Results are
    /// bitwise identical for every runtime size.
    ///
    /// # Panics
    ///
    /// Panics if the formats exceed the fast-path envelope (multiplier
    /// format wider than 8 bits, accumulator wider than 16).
    #[must_use]
    pub fn with_runtime(config: MacGemmConfig, runtime: Arc<Runtime>) -> Self {
        let lut = ProductLut::build(config.mul_fmt, config.acc_fmt);
        let quant = FastQuantizer::new(config.mul_fmt);
        let adder = FastAdder::new(config.acc_fmt, config.rounding);
        let batch = FastAdderBatch::new(config.acc_fmt, config.rounding);
        let dlut = DecodedLut::build(&lut, &batch);
        let decode: Vec<f32> = (0..1u64 << config.acc_fmt.bits())
            .map(|bits| config.acc_fmt.decode_f64(bits) as f32)
            .collect();
        let zero_code = config.mul_fmt.zero_bits(false) as u8;
        let kernel = Arc::new(MacKernel {
            lut,
            adder,
            batch,
            dlut,
            decode,
            acc_mag_mask: !(1 << (config.acc_fmt.bits() - 1))
                & srmac_fp::mask(config.acc_fmt.bits()),
            rounding: config.rounding,
            seed: config.seed,
            lanes: LANES,
            tier: SimdTier::detect(),
        });
        Self {
            config,
            quant,
            zero_code,
            kernel,
            runtime,
        }
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &MacGemmConfig {
        &self.config
    }

    /// Sets the column-lane width of the batched compacted path
    /// (default `LANES` = 64; widths above 8 cascade down to 8-lane blocks
    /// before the scalar tail). Results are bitwise identical at every
    /// width — the knob exists for equivalence tests and benchmarks, not
    /// for tuning correctness.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not 1, 4, 8, 16, 32 or 64.
    #[must_use]
    pub fn with_lane_width(mut self, lanes: usize) -> Self {
        assert!(
            matches!(lanes, 1 | 4 | 8 | 16 | 32 | 64),
            "lane width must be 1, 4, 8, 16, 32 or 64"
        );
        Arc::make_mut(&mut self.kernel).lanes = lanes;
        self
    }

    /// Quantizes a slice to multiplier-format codes.
    #[must_use]
    pub fn quantize_codes(&self, xs: &[f32]) -> Vec<u8> {
        xs.iter().map(|&x| self.quant.quantize(x) as u8).collect()
    }

    /// One full dot product in MAC semantics (exposed for tests and the
    /// stagnation study): returns the final accumulator encoding.
    #[must_use]
    pub fn dot_codes(&self, a: &[u8], b_colmajor: &[u8], rng: &mut SplitMix64) -> u16 {
        self.kernel.dot(a, b_colmajor, rng)
    }

    /// The multiplier-format fingerprint packed operands carry: engines
    /// sharing it produce (and accept) identical codes.
    fn fingerprint(&self) -> u64 {
        let f = self.config.mul_fmt;
        (u64::from(f.exp_bits()) << 9) | (u64::from(f.man_bits()) << 1) | u64::from(f.subnormals())
    }

    fn unpack_a<'p>(&self, p: &'p PackedOperand, rows: usize, cols: usize) -> &'p MacPackedA {
        assert_eq!(p.side(), PackSide::A, "operand packed for the wrong side");
        assert_eq!(
            (p.rows(), p.cols()),
            (rows, cols),
            "packed operand shape mismatch"
        );
        let payload = p
            .payload::<MacPackedA>()
            .expect("operand was not packed by a MacGemm engine");
        assert_eq!(
            payload.fingerprint,
            self.fingerprint(),
            "operand was packed for a different multiplier format"
        );
        payload
    }

    fn unpack_b<'p>(&self, p: &'p PackedOperand, rows: usize, cols: usize) -> &'p MacPackedB {
        assert_eq!(p.side(), PackSide::B, "operand packed for the wrong side");
        assert_eq!(
            (p.rows(), p.cols()),
            (rows, cols),
            "packed operand shape mismatch"
        );
        let payload = p
            .payload::<MacPackedB>()
            .expect("operand was not packed by a MacGemm engine");
        assert_eq!(
            payload.fingerprint,
            self.fingerprint(),
            "operand was packed for a different multiplier format"
        );
        payload
    }

    fn gemm_codes(
        &self,
        m: usize,
        k: usize,
        n: usize,
        awork: &AWork,
        bcode_t: &Arc<Vec<u8>>,
        out: &mut [f32],
    ) {
        // Keep each chunk at least as large as the old small-product
        // threshold (~32k MAC steps): below it the work is cheaper than a
        // pool round-trip, and `parallel_fill` then runs inline.
        let grain = (32 * 1024 / (k * n).max(1)).max(1);
        let kernel = Arc::clone(&self.kernel);
        let awork = awork.clone();
        let bcode_t = Arc::clone(bcode_t);
        self.runtime
            .parallel_fill(m, n, grain, out, move |rows, block| {
                awork.compute_rows(&kernel, &bcode_t, k, n, rows.start, block);
            });
    }

    /// One-shot GEMM through per-call `std::thread::scope` spawning — the
    /// pre-pool reference path, kept for the pooled-vs-scoped benchmark and
    /// as an equivalence oracle in tests. Results are bitwise identical to
    /// [`GemmEngine::gemm`].
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with `m * k`, `k * n`, `m * n`.
    pub fn gemm_scoped(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        assert_eq!(a.len(), m * k, "A must be m x k");
        assert_eq!(b.len(), k * n, "B must be k x n");
        assert_eq!(out.len(), m * n, "out must be m x n");
        let acode = self.quantize_codes(a);
        let bcode_t = self.transpose_codes(&self.quantize_codes(b), k, n);
        let threads = if m * n * k < 32 * 1024 {
            1
        } else {
            self.config.threads.max(1)
        };
        let chunk = m.div_ceil(threads).max(1);
        std::thread::scope(|scope| {
            for (ci, out_chunk) in out.chunks_mut(chunk * n).enumerate() {
                let acode = &acode;
                let bcode_t = &bcode_t;
                let kernel = &self.kernel;
                scope.spawn(move || {
                    kernel.compute_rows(acode, bcode_t, k, n, ci * chunk, out_chunk);
                });
            }
        });
    }

    /// Transposes row-major `rows x cols` codes into column-major order.
    fn transpose_codes(&self, codes: &[u8], rows: usize, cols: usize) -> Vec<u8> {
        let mut t = vec![self.zero_code; rows * cols];
        for l in 0..rows {
            for j in 0..cols {
                t[j * rows + l] = codes[l * cols + j];
            }
        }
        t
    }
}

/// Mixes the base seed with an output coordinate into a stream seed.
fn mix_seed(seed: u64, i: usize, j: usize) -> u64 {
    let mut z = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((j as u64) << 32);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

impl GemmEngine for MacGemm {
    fn pack_a(&self, rows: usize, cols: usize, a: &[f32]) -> PackedOperand {
        assert_eq!(a.len(), rows * cols, "A must be rows x cols");
        // Quantize and CSR-compact the non-zero-magnitude entries in one
        // pass (packing left operands is per-call work on the hot path);
        // dense codes are only materialized if a NaN-carrying B ever asks
        // for them (see [`MacPackedA::dense_codes`]).
        let mag_mask = srmac_fp::mask(self.config.mul_fmt.bits() - 1) as u8;
        let mut row_ptr = Vec::with_capacity(rows + 1);
        row_ptr.push(0u32);
        let mut idx = Vec::with_capacity(a.len());
        let mut code = Vec::with_capacity(a.len());
        for row in a.chunks(cols.max(1)) {
            for (c, &x) in row.iter().enumerate() {
                let cd = self.quant.quantize(x) as u8;
                if cd & mag_mask != 0 {
                    idx.push(c as u32);
                    code.push(cd);
                }
            }
            row_ptr.push(u32::try_from(idx.len()).expect("operand too large to compact"));
        }
        let payload = MacPackedA {
            compact: Arc::new(CompactA { row_ptr, idx, code }),
            dense: OnceLock::new(),
            cols,
            zero_code: self.zero_code,
            fingerprint: self.fingerprint(),
        };
        PackedOperand::new(PackSide::A, rows, cols, Box::new(payload))
    }

    fn pack_b(&self, rows: usize, cols: usize, b: &[f32]) -> PackedOperand {
        assert_eq!(b.len(), rows * cols, "B must be rows x cols");
        let codes = self.quantize_codes(b);
        let fmt = self.config.mul_fmt;
        let has_nan = codes.iter().any(|&c| fmt.is_nan(u64::from(c)));
        let codes_t = self.transpose_codes(&codes, rows, cols);
        let payload = MacPackedB {
            codes_t: Arc::new(codes_t),
            has_nan,
            fingerprint: self.fingerprint(),
        };
        PackedOperand::new(PackSide::B, rows, cols, Box::new(payload))
    }

    fn gemm_packed(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &PackedOperand,
        b: &PackedOperand,
        out: &mut [f32],
    ) {
        assert_eq!(out.len(), m * n, "out must be m x n");
        let a = self.unpack_a(a, m, k);
        let b = self.unpack_b(b, k, n);
        let awork = if b.has_nan {
            AWork::Dense(Arc::clone(a.dense_codes()))
        } else {
            AWork::Compact(Arc::clone(&a.compact))
        };
        let bcode_t = Arc::clone(&b.codes_t);
        self.gemm_codes(m, k, n, &awork, &bcode_t, out);
    }

    // The spec atom of this configuration (`spec` module grammar), with
    // the seed always explicit: the registry folds role ids only into
    // *default* seeds, so an atom carrying its exact seed rebuilds
    // identical numerics in any position of any policy.
    fn spec(&self) -> Option<String> {
        let mut atom = self.config.to_string();
        if self.config.seed == MacGemmConfig::DEFAULT_SEED {
            atom.push_str(&format!("_seed{:x}", self.config.seed));
        }
        Some(atom)
    }

    // SR accumulation streams are seeded per output coordinate, so a
    // sample's rows depend on its batch position — the one engine family
    // that must opt out of the serving determinism contract.
    fn position_invariant(&self) -> bool {
        matches!(self.config.rounding, AccumRounding::Nearest)
    }

    fn name(&self) -> String {
        let c = &self.config;
        let rnd = match c.rounding {
            AccumRounding::Nearest => "RN".to_owned(),
            AccumRounding::Stochastic { r } => format!("SR r={r}"),
        };
        format!(
            "MAC E{}M{} x E{}M{} acc E{}M{} {} {}",
            c.mul_fmt.exp_bits(),
            c.mul_fmt.man_bits(),
            c.mul_fmt.exp_bits(),
            c.mul_fmt.man_bits(),
            c.acc_fmt.exp_bits(),
            c.acc_fmt.man_bits(),
            rnd,
            if c.acc_fmt.subnormals() {
                "W/ Sub"
            } else {
                "W/O Sub"
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srmac_core::{MacConfig, MacUnit, RoundingDesign};
    use srmac_tensor::{F32Engine, GemmEngine};

    fn rand_vec(n: usize, seed: u64, scale: f32) -> Vec<f32> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| (rng.next_f64() as f32 - 0.5) * scale)
            .collect()
    }

    #[test]
    fn rn_gemm_matches_mac_unit_loop() {
        // The engine under RN must agree exactly with driving the RTL-level
        // MacUnit element by element (no randomness involved).
        let cfg = MacGemmConfig::fp8_fp12(AccumRounding::Nearest, true).with_threads(2);
        let engine = MacGemm::new(cfg);
        let (m, k, n) = (5, 23, 4);
        let a = rand_vec(m * k, 1, 4.0);
        let b = rand_vec(k * n, 2, 4.0);
        let mut out = vec![0.0f32; m * n];
        engine.gemm(m, k, n, &a, &b, &mut out);

        let mut mac = MacUnit::new(MacConfig::fp8_fp12(RoundingDesign::Nearest, true)).unwrap();
        let fp8 = FpFormat::e5m2();
        for i in 0..m {
            for j in 0..n {
                mac.reset();
                for l in 0..k {
                    let qa = fp8.quantize_f32(a[i * k + l], srmac_fp::RoundMode::NearestEven);
                    let qb = fp8.quantize_f32(b[l * n + j], srmac_fp::RoundMode::NearestEven);
                    mac.mac(qa.bits, qb.bits);
                }
                assert_eq!(out[i * n + j], mac.acc_f64() as f32, "element ({i},{j})");
            }
        }
    }

    #[test]
    fn gemm_is_thread_invariant_and_deterministic() {
        let (m, k, n) = (17, 64, 9);
        let a = rand_vec(m * k, 3, 2.0);
        let b = rand_vec(k * n, 4, 2.0);
        let mut outs = Vec::new();
        for threads in [1usize, 2, 4] {
            let cfg = MacGemmConfig::fp8_fp12(AccumRounding::Stochastic { r: 13 }, false)
                .with_threads(threads);
            let engine = MacGemm::new(cfg);
            let mut out = vec![0.0f32; m * n];
            engine.gemm(m, k, n, &a, &b, &mut out);
            outs.push(out);
        }
        assert_eq!(outs[0], outs[1], "1 vs 2 threads");
        assert_eq!(outs[0], outs[2], "1 vs 4 threads");
    }

    #[test]
    fn packed_gemm_is_bitwise_identical_and_reusable() {
        // Same values through the one-shot, packed (reused twice), and
        // scoped-reference paths must agree bit for bit, under both RN and
        // SR, with and without the worker pool.
        let (m, k, n) = (23, 65, 11);
        let a = rand_vec(m * k, 31, 2.0);
        let b = rand_vec(k * n, 32, 2.0);
        for rounding in [AccumRounding::Nearest, AccumRounding::Stochastic { r: 13 }] {
            for threads in [1usize, 4] {
                let cfg = MacGemmConfig::fp8_fp12(rounding, false).with_threads(threads);
                let engine = MacGemm::new(cfg);
                let mut one_shot = vec![0.0f32; m * n];
                engine.gemm(m, k, n, &a, &b, &mut one_shot);

                let mut scoped = vec![0.0f32; m * n];
                engine.gemm_scoped(m, k, n, &a, &b, &mut scoped);
                assert_eq!(one_shot, scoped, "{rounding:?} t={threads}: scoped");

                let pa = engine.pack_a(m, k, &a);
                let pb = engine.pack_b(k, n, &b);
                for trial in 0..2 {
                    let mut packed = vec![0.0f32; m * n];
                    engine.gemm_packed(m, k, n, &pa, &pb, &mut packed);
                    assert_eq!(
                        one_shot, packed,
                        "{rounding:?} t={threads} reuse {trial}: packed"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_operands_transfer_between_same_format_engines() {
        // Packing depends only on the multiplier format: codes packed by an
        // RN engine feed an SR engine with the same mul_fmt.
        let (m, k, n) = (4, 40, 3);
        let a = rand_vec(m * k, 41, 1.0);
        let b = rand_vec(k * n, 42, 1.0);
        let packer = MacGemm::new(MacGemmConfig::fp8_fp12(AccumRounding::Nearest, false));
        let runner = MacGemm::new(MacGemmConfig::fp8_fp12(
            AccumRounding::Stochastic { r: 13 },
            false,
        ));
        let pa = packer.pack_a(m, k, &a);
        let pb = packer.pack_b(k, n, &b);
        let mut via_transfer = vec![0.0f32; m * n];
        runner.gemm_packed(m, k, n, &pa, &pb, &mut via_transfer);
        let mut direct = vec![0.0f32; m * n];
        runner.gemm(m, k, n, &a, &b, &mut direct);
        assert_eq!(via_transfer, direct);
    }

    #[test]
    #[should_panic(expected = "different multiplier format")]
    fn packed_operand_format_mismatch_panics() {
        let with_sub = MacGemm::new(MacGemmConfig::fp8_fp12(AccumRounding::Nearest, true));
        let without_sub = MacGemm::new(MacGemmConfig::fp8_fp12(AccumRounding::Nearest, false));
        let pa = with_sub.pack_a(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let pb = with_sub.pack_b(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let mut out = vec![0.0f32; 4];
        without_sub.gemm_packed(2, 2, 2, &pa, &pb, &mut out);
    }

    #[test]
    fn sparse_and_nan_inputs_match_the_dense_reference() {
        // The compacted A path must be bitwise identical to the dense
        // scoped reference on heavily sparse inputs (ReLU-style zeros drawn
        // into A), and a NaN in B must force the exact dense semantics
        // (0 * NaN = NaN reaches the accumulator).
        let (m, k, n) = (9, 48, 6);
        let mut rng = SplitMix64::new(91);
        let mut a = rand_vec(m * k, 92, 2.0);
        for v in a.iter_mut() {
            if rng.next_f64() < 0.6 {
                // Mix positive and negative zeros: the lazily rebuilt dense
                // codes canonicalize skipped entries to +0, which must not
                // change any result (see MacPackedA::dense_codes).
                *v = if rng.next_f64() < 0.5 { 0.0 } else { -0.0 };
            }
        }
        for rounding in [AccumRounding::Nearest, AccumRounding::Stochastic { r: 13 }] {
            for subnormals in [true, false] {
                let engine = MacGemm::new(MacGemmConfig::fp8_fp12(rounding, subnormals));
                for nan_in_b in [false, true] {
                    let mut b = rand_vec(k * n, 93, 2.0);
                    if nan_in_b {
                        b[k * n / 2] = f32::NAN;
                    }
                    let mut reference = vec![0.0f32; m * n];
                    engine.gemm_scoped(m, k, n, &a, &b, &mut reference);
                    let mut packed = vec![0.0f32; m * n];
                    let (pa, pb) = (engine.pack_a(m, k, &a), engine.pack_b(k, n, &b));
                    engine.gemm_packed(m, k, n, &pa, &pb, &mut packed);
                    let same = reference
                        .iter()
                        .zip(&packed)
                        .all(|(x, y)| x.to_bits() == y.to_bits());
                    assert!(
                        same,
                        "{rounding:?} sub={subnormals} nan_in_b={nan_in_b}: \
                         {reference:?} vs {packed:?}"
                    );
                    if nan_in_b {
                        assert!(
                            packed.iter().any(|v| v.is_nan()),
                            "a NaN code must propagate into some output"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sr_gemm_is_unbiased_against_f32() {
        // Mean over seeds of the SR GEMM approaches the f32 GEMM of the
        // quantized inputs (SR is unbiased; RN at E6M5 is not for long k).
        let (m, k, n) = (2, 256, 2);
        let a = rand_vec(m * k, 5, 0.5);
        let b = rand_vec(k * n, 6, 0.5);

        // Reference: f32 accumulation of the quantized products.
        let probe = MacGemm::new(MacGemmConfig::fp8_fp12(AccumRounding::Nearest, true));
        let ac = probe.quantize_codes(&a);
        let bc = probe.quantize_codes(&b);
        let fp8 = FpFormat::e5m2();
        let mut reference = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                for l in 0..k {
                    reference[i * n + j] += fp8.decode_f64(u64::from(ac[i * k + l]))
                        * fp8.decode_f64(u64::from(bc[l * n + j]));
                }
            }
        }

        let trials = 48;
        let mut mean = vec![0.0f64; m * n];
        for t in 0..trials {
            let cfg = MacGemmConfig::fp8_fp12(AccumRounding::Stochastic { r: 13 }, true)
                .with_seed(9000 + t);
            let engine = MacGemm::new(cfg);
            let mut out = vec![0.0f32; m * n];
            engine.gemm(m, k, n, &a, &b, &mut out);
            for (acc, &v) in mean.iter_mut().zip(&out) {
                *acc += f64::from(v) / f64::from(trials as u32);
            }
        }
        for (i, (&mu, &want)) in mean.iter().zip(&reference).enumerate() {
            let tol = want.abs().max(1.0) * 0.05;
            assert!(
                (mu - want).abs() < tol,
                "element {i}: SR mean {mu} vs f32 {want}"
            );
        }
    }

    #[test]
    fn wide_accumulator_approaches_f32_engine() {
        // With an E5M10 accumulator and RN, results should be very close to
        // (though not bitwise equal to) the f32 engine on quantized inputs.
        let (m, k, n) = (4, 32, 4);
        let a = rand_vec(m * k, 7, 1.0);
        let b = rand_vec(k * n, 8, 1.0);
        let engine = MacGemm::new(MacGemmConfig::fp8_acc(
            FpFormat::e5m10(),
            AccumRounding::Nearest,
            true,
        ));
        let mut out = vec![0.0f32; m * n];
        engine.gemm(m, k, n, &a, &b, &mut out);

        // f32 on the same quantized values.
        let ac: Vec<f32> = engine
            .quantize_codes(&a)
            .iter()
            .map(|&c| FpFormat::e5m2().decode_f64(u64::from(c)) as f32)
            .collect();
        let bc: Vec<f32> = engine
            .quantize_codes(&b)
            .iter()
            .map(|&c| FpFormat::e5m2().decode_f64(u64::from(c)) as f32)
            .collect();
        let mut want = vec![0.0f32; m * n];
        F32Engine::new(1).gemm(m, k, n, &ac, &bc, &mut want);
        for (got, want) in out.iter().zip(&want) {
            assert!(
                (got - want).abs() <= want.abs() * 0.01 + 1e-3,
                "{got} vs {want}"
            );
        }
    }

    #[test]
    fn config_wire_roundtrip_and_rejects_garbage() {
        for cfg in [
            MacGemmConfig::fp8_fp12(AccumRounding::Stochastic { r: 13 }, false).with_seed(77),
            MacGemmConfig::fp8_fp12(AccumRounding::Nearest, true),
            MacGemmConfig::fp8_acc(FpFormat::e5m10(), AccumRounding::Stochastic { r: 9 }, true),
        ] {
            let back = MacGemmConfig::from_wire(&cfg.to_wire()).expect("round trip");
            assert_eq!(back.mul_fmt, cfg.mul_fmt);
            assert_eq!(back.acc_fmt, cfg.acc_fmt);
            assert_eq!(back.rounding, cfg.rounding);
            assert_eq!(back.seed, cfg.seed);
            // Threads are machine state, not checkpoint state.
            assert!(back.threads >= 1);
        }
        let good = MacGemmConfig::fp8_fp12(AccumRounding::Stochastic { r: 13 }, false).to_wire();
        for (byte, value, want) in [
            (
                0usize,
                0u8,
                ConfigWireError::BadFormat {
                    exp_bits: 0,
                    man_bits: 2,
                },
            ),
            (2, 7, ConfigWireError::BadFlag(7)),
            (6, 9, ConfigWireError::BadRoundingTag(9)),
            (7, 60, ConfigWireError::BadSrBits(60)),
            (7, 0, ConfigWireError::BadSrBits(0)),
        ] {
            let mut w = good;
            w[byte] = value;
            assert_eq!(MacGemmConfig::from_wire(&w).unwrap_err(), want);
        }
        // Individually valid formats outside the engine envelope must be
        // typed errors too — `MacGemm::new` would panic on them, and the
        // loader contract is "no decodable checkpoint panics the rebuild".
        for (byte, value) in [(1usize, 10u8), (4, 23)] {
            let mut w = good;
            w[byte] = value;
            assert!(matches!(
                MacGemmConfig::from_wire(&w).unwrap_err(),
                ConfigWireError::OutsideEngineEnvelope(_)
            ));
        }
    }

    #[test]
    #[should_panic(expected = "cannot serialize a config the engine rejects")]
    fn to_wire_rejects_configs_the_engine_cannot_build() {
        // MacGemmConfig's fields are public, so an out-of-envelope config
        // is constructible; serializing it must fail loudly rather than
        // write a checkpoint from_wire would refuse to load.
        let cfg = MacGemmConfig {
            mul_fmt: FpFormat::e5m10(),
            ..MacGemmConfig::fp8_fp12(AccumRounding::Nearest, true)
        };
        let _ = cfg.to_wire();
    }

    #[test]
    fn zero_product_skip_preserves_semantics() {
        // A GEMM whose inputs include zeros must equal the unskipped MAC
        // reference; covered by rn_gemm_matches_mac_unit_loop's machinery
        // with explicit zero rows here.
        let cfg = MacGemmConfig::fp8_fp12(AccumRounding::Nearest, true);
        let engine = MacGemm::new(cfg);
        let (m, k, n) = (2, 8, 2);
        let mut a = vec![0.0f32; m * k];
        a[3] = 1.5;
        a[9] = -2.0;
        let b = vec![0.25f32; k * n];
        let mut out = vec![0.0f32; m * n];
        engine.gemm(m, k, n, &a, &b, &mut out);
        assert_eq!(out, vec![0.375, 0.375, -0.5, -0.5]);
    }
}
