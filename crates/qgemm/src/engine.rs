//! The low-precision GEMM engine: FP8-quantized operands, exact products,
//! and bit-exact low-precision accumulation with RN or stochastic rounding —
//! the software equivalent of tiling the paper's MAC units over a matrix
//! multiplication, and the Rust counterpart of its "PyTorch software-based
//! bit-accurate emulation flow ... custom CUDA kernels" (Sec. IV).

use srmac_fp::FpFormat;
use srmac_rng::SplitMix64;
use srmac_tensor::GemmEngine;

use crate::fastmath::{AccumRounding, FastAdder, FastQuantizer};
use crate::lut::ProductLut;

/// Configuration of a [`MacGemm`] engine.
#[derive(Clone, Copy, Debug)]
pub struct MacGemmConfig {
    /// Multiplier input format (quantization target for both operands).
    pub mul_fmt: FpFormat,
    /// Accumulator format.
    pub acc_fmt: FpFormat,
    /// Accumulation rounding.
    pub rounding: AccumRounding,
    /// Base seed for the per-dot-product random streams.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl MacGemmConfig {
    /// The paper's reference MAC: E5M2 multipliers, E6M5 accumulation.
    #[must_use]
    pub fn fp8_fp12(rounding: AccumRounding, subnormals: bool) -> Self {
        Self {
            mul_fmt: FpFormat::e5m2().with_subnormals(subnormals),
            acc_fmt: FpFormat::e6m5().with_subnormals(subnormals),
            rounding,
            seed: 0x5EED,
            threads: srmac_tensor::available_threads(),
        }
    }

    /// FP8 multipliers with a chosen accumulator format (e.g. E5M10 for the
    /// paper's "RN W/ Sub FP16" rows).
    #[must_use]
    pub fn fp8_acc(acc_fmt: FpFormat, rounding: AccumRounding, subnormals: bool) -> Self {
        Self {
            mul_fmt: FpFormat::e5m2().with_subnormals(subnormals),
            acc_fmt,
            rounding,
            seed: 0x5EED,
            threads: srmac_tensor::available_threads(),
        }
    }

    /// Replaces the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// A [`GemmEngine`] where every scalar operation is a bit-exact MAC-unit
/// step: operands quantize to FP8 (RN, saturating), products are exact, and
/// the accumulator is a low-precision float updated with RN or SR — in the
/// sequential `k` order a hardware MAC would see.
///
/// Rounding words come from counter-seeded `SplitMix64` streams, one per
/// output element, making results independent of the thread partition.
/// (Hardware uses the Galois LFSR of `srmac-rng`; both are uniform sources,
/// and the LFSR-driven `MacUnit` is verified separately.)
#[derive(Debug)]
pub struct MacGemm {
    config: MacGemmConfig,
    lut: ProductLut,
    quant: FastQuantizer,
    adder: FastAdder,
    decode: Vec<f32>,
    zero_code: u8,
}

impl MacGemm {
    /// Builds the engine (precomputes product and decode tables).
    ///
    /// # Panics
    ///
    /// Panics if the formats exceed the fast-path envelope (multiplier
    /// format wider than 8 bits, accumulator wider than 16).
    #[must_use]
    pub fn new(config: MacGemmConfig) -> Self {
        let lut = ProductLut::build(config.mul_fmt, config.acc_fmt);
        let quant = FastQuantizer::new(config.mul_fmt);
        let adder = FastAdder::new(config.acc_fmt, config.rounding);
        let decode: Vec<f32> = (0..1u64 << config.acc_fmt.bits())
            .map(|bits| config.acc_fmt.decode_f64(bits) as f32)
            .collect();
        let zero_code = config.mul_fmt.zero_bits(false) as u8;
        Self { config, lut, quant, adder, decode, zero_code }
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &MacGemmConfig {
        &self.config
    }

    /// Quantizes a slice to multiplier-format codes.
    #[must_use]
    pub fn quantize_codes(&self, xs: &[f32]) -> Vec<u8> {
        xs.iter().map(|&x| self.quant.quantize(x) as u8).collect()
    }

    /// One full dot product in MAC semantics (exposed for tests and the
    /// stagnation study): returns the final accumulator encoding.
    #[must_use]
    pub fn dot_codes(&self, a: &[u8], b_colmajor: &[u8], rng: &mut SplitMix64) -> u16 {
        let mut acc: u64 = 0;
        let is_zero_prod = |p: u16| -> bool {
            // Adding (+/-)0 never changes a (non-negative-zero) accumulator.
            u64::from(p) & !(1 << (self.config.acc_fmt.bits() - 1))
                == 0
        };
        match self.config.rounding {
            AccumRounding::Nearest => {
                for (&ca, &cb) in a.iter().zip(b_colmajor) {
                    let p = self.lut.product(ca, cb);
                    if !is_zero_prod(p) {
                        acc = self.adder.add(acc, u64::from(p), 0);
                    }
                }
            }
            AccumRounding::Stochastic { .. } => {
                for (&ca, &cb) in a.iter().zip(b_colmajor) {
                    let p = self.lut.product(ca, cb);
                    if !is_zero_prod(p) {
                        acc = self.adder.add(acc, u64::from(p), rng.next_u64());
                    }
                }
            }
        }
        acc as u16
    }
}

/// Mixes the base seed with an output coordinate into a stream seed.
fn mix_seed(seed: u64, i: usize, j: usize) -> u64 {
    let mut z = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((j as u64) << 32);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

impl GemmEngine for MacGemm {
    fn gemm(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        assert_eq!(a.len(), m * k, "A must be m x k");
        assert_eq!(b.len(), k * n, "B must be k x n");
        assert_eq!(out.len(), m * n, "out must be m x n");

        let acode = self.quantize_codes(a);
        // B transposed to column-major so each dot product is contiguous.
        let bcode_t = {
            let bc = self.quantize_codes(b);
            let mut t = vec![self.zero_code; n * k];
            for l in 0..k {
                for j in 0..n {
                    t[j * k + l] = bc[l * n + j];
                }
            }
            t
        };

        let threads = if m * n * k < 32 * 1024 { 1 } else { self.config.threads.max(1) };
        let chunk = m.div_ceil(threads).max(1);
        std::thread::scope(|scope| {
            for (ci, out_chunk) in out.chunks_mut(chunk * n).enumerate() {
                let acode = &acode;
                let bcode_t = &bcode_t;
                scope.spawn(move || {
                    let row0 = ci * chunk;
                    for (ri, out_row) in out_chunk.chunks_mut(n).enumerate() {
                        let i = row0 + ri;
                        let arow = &acode[i * k..(i + 1) * k];
                        for (j, o) in out_row.iter_mut().enumerate() {
                            let mut rng = SplitMix64::new(mix_seed(self.config.seed, i, j));
                            let acc = self.dot_codes(arow, &bcode_t[j * k..(j + 1) * k], &mut rng);
                            *o = self.decode[acc as usize];
                        }
                    }
                });
            }
        });
    }

    fn name(&self) -> String {
        let c = &self.config;
        let rnd = match c.rounding {
            AccumRounding::Nearest => "RN".to_owned(),
            AccumRounding::Stochastic { r } => format!("SR r={r}"),
        };
        format!(
            "MAC E{}M{} x E{}M{} acc E{}M{} {} {}",
            c.mul_fmt.exp_bits(),
            c.mul_fmt.man_bits(),
            c.mul_fmt.exp_bits(),
            c.mul_fmt.man_bits(),
            c.acc_fmt.exp_bits(),
            c.acc_fmt.man_bits(),
            rnd,
            if c.acc_fmt.subnormals() { "W/ Sub" } else { "W/O Sub" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srmac_core::{MacConfig, MacUnit, RoundingDesign};
    use srmac_tensor::{F32Engine, GemmEngine};

    fn rand_vec(n: usize, seed: u64, scale: f32) -> Vec<f32> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| (rng.next_f64() as f32 - 0.5) * scale).collect()
    }

    #[test]
    fn rn_gemm_matches_mac_unit_loop() {
        // The engine under RN must agree exactly with driving the RTL-level
        // MacUnit element by element (no randomness involved).
        let cfg = MacGemmConfig::fp8_fp12(AccumRounding::Nearest, true).with_threads(2);
        let engine = MacGemm::new(cfg);
        let (m, k, n) = (5, 23, 4);
        let a = rand_vec(m * k, 1, 4.0);
        let b = rand_vec(k * n, 2, 4.0);
        let mut out = vec![0.0f32; m * n];
        engine.gemm(m, k, n, &a, &b, &mut out);

        let mut mac = MacUnit::new(MacConfig::fp8_fp12(RoundingDesign::Nearest, true)).unwrap();
        let fp8 = FpFormat::e5m2();
        for i in 0..m {
            for j in 0..n {
                mac.reset();
                for l in 0..k {
                    let qa = fp8.quantize_f32(a[i * k + l], srmac_fp::RoundMode::NearestEven);
                    let qb = fp8.quantize_f32(b[l * n + j], srmac_fp::RoundMode::NearestEven);
                    mac.mac(qa.bits, qb.bits);
                }
                assert_eq!(
                    out[i * n + j],
                    mac.acc_f64() as f32,
                    "element ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn gemm_is_thread_invariant_and_deterministic() {
        let (m, k, n) = (17, 64, 9);
        let a = rand_vec(m * k, 3, 2.0);
        let b = rand_vec(k * n, 4, 2.0);
        let mut outs = Vec::new();
        for threads in [1usize, 2, 4] {
            let cfg = MacGemmConfig::fp8_fp12(AccumRounding::Stochastic { r: 13 }, false)
                .with_threads(threads);
            let engine = MacGemm::new(cfg);
            let mut out = vec![0.0f32; m * n];
            engine.gemm(m, k, n, &a, &b, &mut out);
            outs.push(out);
        }
        assert_eq!(outs[0], outs[1], "1 vs 2 threads");
        assert_eq!(outs[0], outs[2], "1 vs 4 threads");
    }

    #[test]
    fn sr_gemm_is_unbiased_against_f32() {
        // Mean over seeds of the SR GEMM approaches the f32 GEMM of the
        // quantized inputs (SR is unbiased; RN at E6M5 is not for long k).
        let (m, k, n) = (2, 256, 2);
        let a = rand_vec(m * k, 5, 0.5);
        let b = rand_vec(k * n, 6, 0.5);

        // Reference: f32 accumulation of the quantized products.
        let probe = MacGemm::new(MacGemmConfig::fp8_fp12(AccumRounding::Nearest, true));
        let ac = probe.quantize_codes(&a);
        let bc = probe.quantize_codes(&b);
        let fp8 = FpFormat::e5m2();
        let mut reference = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                for l in 0..k {
                    reference[i * n + j] += fp8.decode_f64(u64::from(ac[i * k + l]))
                        * fp8.decode_f64(u64::from(bc[l * n + j]));
                }
            }
        }

        let trials = 48;
        let mut mean = vec![0.0f64; m * n];
        for t in 0..trials {
            let cfg = MacGemmConfig::fp8_fp12(AccumRounding::Stochastic { r: 13 }, true)
                .with_seed(9000 + t);
            let engine = MacGemm::new(cfg);
            let mut out = vec![0.0f32; m * n];
            engine.gemm(m, k, n, &a, &b, &mut out);
            for (acc, &v) in mean.iter_mut().zip(&out) {
                *acc += f64::from(v) / f64::from(trials as u32);
            }
        }
        for (i, (&mu, &want)) in mean.iter().zip(&reference).enumerate() {
            let tol = want.abs().max(1.0) * 0.05;
            assert!(
                (mu - want).abs() < tol,
                "element {i}: SR mean {mu} vs f32 {want}"
            );
        }
    }

    #[test]
    fn wide_accumulator_approaches_f32_engine() {
        // With an E5M10 accumulator and RN, results should be very close to
        // (though not bitwise equal to) the f32 engine on quantized inputs.
        let (m, k, n) = (4, 32, 4);
        let a = rand_vec(m * k, 7, 1.0);
        let b = rand_vec(k * n, 8, 1.0);
        let engine = MacGemm::new(MacGemmConfig::fp8_acc(
            FpFormat::e5m10(),
            AccumRounding::Nearest,
            true,
        ));
        let mut out = vec![0.0f32; m * n];
        engine.gemm(m, k, n, &a, &b, &mut out);

        // f32 on the same quantized values.
        let ac: Vec<f32> = engine
            .quantize_codes(&a)
            .iter()
            .map(|&c| FpFormat::e5m2().decode_f64(u64::from(c)) as f32)
            .collect();
        let bc: Vec<f32> = engine
            .quantize_codes(&b)
            .iter()
            .map(|&c| FpFormat::e5m2().decode_f64(u64::from(c)) as f32)
            .collect();
        let mut want = vec![0.0f32; m * n];
        F32Engine::new(1).gemm(m, k, n, &ac, &bc, &mut want);
        for (got, want) in out.iter().zip(&want) {
            assert!(
                (got - want).abs() <= want.abs() * 0.01 + 1e-3,
                "{got} vs {want}"
            );
        }
    }

    #[test]
    fn zero_product_skip_preserves_semantics() {
        // A GEMM whose inputs include zeros must equal the unskipped MAC
        // reference; covered by rn_gemm_matches_mac_unit_loop's machinery
        // with explicit zero rows here.
        let cfg = MacGemmConfig::fp8_fp12(AccumRounding::Nearest, true);
        let engine = MacGemm::new(cfg);
        let (m, k, n) = (2, 8, 2);
        let mut a = vec![0.0f32; m * k];
        a[3] = 1.5;
        a[9] = -2.0;
        let b = vec![0.25f32; k * n];
        let mut out = vec![0.0f32; m * n];
        engine.gemm(m, k, n, &a, &b, &mut out);
        assert_eq!(out, vec![0.375, 0.375, -0.5, -0.5]);
    }
}
