//! Precomputed product tables: FP8 x FP8 -> accumulator-format encodings,
//! built once per engine from the RTL-verified exact multiplier.

use srmac_core::ExactMultiplier;
use srmac_fp::{ops, FpFormat, RoundMode};

/// A dense product lookup table for 8-bit-or-smaller multiplier formats.
///
/// The table is always the full 256 x 256 code plane (inputs are masked to
/// the format during construction), so [`ProductLut::product`] indexes a
/// fixed-size array with a provably in-range `u8`-derived index — the
/// bounds check vanishes from the GEMM inner loop.
#[derive(Debug, Clone)]
pub struct ProductLut {
    fmt_in: FpFormat,
    fmt_out: FpFormat,
    table: Box<[u16; 1 << 16]>,
}

impl ProductLut {
    /// Builds the table. Products are exact when the output format is wide
    /// enough (the paper's configuration); otherwise they are rounded RN
    /// once, which is what a fused multiplier-rounding stage would produce.
    ///
    /// # Panics
    ///
    /// Panics if the input format is wider than 8 bits or the output format
    /// wider than 16.
    #[must_use]
    pub fn build(fmt_in: FpFormat, fmt_out: FpFormat) -> Self {
        assert!(
            fmt_in.bits() <= 8,
            "LUT input format must be at most 8 bits"
        );
        assert!(
            fmt_out.bits() <= 16,
            "LUT output format must be at most 16 bits"
        );
        let code_mask = (1u64 << fmt_in.bits()) - 1;
        let mut table = vec![0u16; 1 << 16];
        let mult = ExactMultiplier::new(fmt_in, fmt_out).ok();
        for a in 0..256u64 {
            for b in 0..256u64 {
                // Out-of-format high bits are masked off, so every index a
                // `u8` pair can form holds the product of valid codes.
                let (am, bm) = (a & code_mask, b & code_mask);
                table[((a as usize) << 8) | b as usize] = match &mult {
                    Some(m) => m.multiply(am, bm) as u16,
                    None => ops::mul(fmt_in, fmt_out, am, bm, RoundMode::NearestEven) as u16,
                };
            }
        }
        Self {
            fmt_in,
            fmt_out,
            table: table.into_boxed_slice().try_into().expect("table is 65536"),
        }
    }

    /// The multiplier input format.
    #[must_use]
    pub fn input_format(&self) -> FpFormat {
        self.fmt_in
    }

    /// The product format.
    #[must_use]
    pub fn output_format(&self) -> FpFormat {
        self.fmt_out
    }

    /// Looks up the product of two input-format encodings.
    #[inline]
    #[must_use]
    pub fn product(&self, a: u8, b: u8) -> u16 {
        self.table[((a as usize) << 8) | b as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut_matches_multiplier_exhaustively() {
        let fin = FpFormat::e5m2();
        let fout = FpFormat::e6m5();
        let lut = ProductLut::build(fin, fout);
        let m = ExactMultiplier::new(fin, fout).unwrap();
        for a in 0..=255u16 {
            for b in 0..=255u16 {
                assert_eq!(
                    u64::from(lut.product(a as u8, b as u8)),
                    m.multiply(u64::from(a), u64::from(b))
                );
            }
        }
    }

    #[test]
    fn lut_rounds_when_output_is_narrow() {
        // E5M2 products into FP16 (E5M10): representable except for deep
        // underflow; the table must match the golden RN multiplication.
        let fin = FpFormat::e5m2();
        let fout = FpFormat::e5m10();
        let lut = ProductLut::build(fin, fout);
        for a in 0..=255u16 {
            for b in 0..=255u16 {
                let want = ops::mul(
                    fin,
                    fout,
                    u64::from(a),
                    u64::from(b),
                    RoundMode::NearestEven,
                );
                assert_eq!(u64::from(lut.product(a as u8, b as u8)), want);
            }
        }
    }
}
