//! Precomputed product tables: FP8 x FP8 -> accumulator-format encodings,
//! built once per engine from the RTL-verified exact multiplier.

use srmac_core::ExactMultiplier;
use srmac_fp::{ops, FpFormat, RoundMode};

use crate::batch::FastAdderBatch;

/// A dense product lookup table for 8-bit-or-smaller multiplier formats.
///
/// The table is always the full 256 x 256 code plane (inputs are masked to
/// the format during construction), so [`ProductLut::product`] indexes a
/// fixed-size array with a provably in-range `u8`-derived index — the
/// bounds check vanishes from the GEMM inner loop.
#[derive(Debug, Clone)]
pub struct ProductLut {
    fmt_in: FpFormat,
    fmt_out: FpFormat,
    table: Box<[u16; 1 << 16]>,
}

impl ProductLut {
    /// Builds the table. Products are exact when the output format is wide
    /// enough (the paper's configuration); otherwise they are rounded RN
    /// once, which is what a fused multiplier-rounding stage would produce.
    ///
    /// # Panics
    ///
    /// Panics if the input format is wider than 8 bits or the output format
    /// wider than 16.
    #[must_use]
    pub fn build(fmt_in: FpFormat, fmt_out: FpFormat) -> Self {
        assert!(
            fmt_in.bits() <= 8,
            "LUT input format must be at most 8 bits"
        );
        assert!(
            fmt_out.bits() <= 16,
            "LUT output format must be at most 16 bits"
        );
        let code_mask = (1u64 << fmt_in.bits()) - 1;
        let mut table = vec![0u16; 1 << 16];
        let mult = ExactMultiplier::new(fmt_in, fmt_out).ok();
        for a in 0..256u64 {
            for b in 0..256u64 {
                // Out-of-format high bits are masked off, so every index a
                // `u8` pair can form holds the product of valid codes.
                let (am, bm) = (a & code_mask, b & code_mask);
                table[((a as usize) << 8) | b as usize] = match &mult {
                    Some(m) => m.multiply(am, bm) as u16,
                    None => ops::mul(fmt_in, fmt_out, am, bm, RoundMode::NearestEven) as u16,
                };
            }
        }
        Self {
            fmt_in,
            fmt_out,
            table: table.into_boxed_slice().try_into().expect("table is 65536"), // PANIC-OK: the collect above produced exactly 65536 entries.
        }
    }

    /// The multiplier input format.
    #[must_use]
    pub fn input_format(&self) -> FpFormat {
        self.fmt_in
    }

    /// The product format.
    #[must_use]
    pub fn output_format(&self) -> FpFormat {
        self.fmt_out
    }

    /// Looks up the product of two input-format encodings.
    #[inline]
    #[must_use]
    pub fn product(&self, a: u8, b: u8) -> u16 {
        self.table[((a as usize) << 8) | b as usize]
    }
}

/// The product-pair decode LUT: the 256 x 256 code plane with every
/// product stored as a pre-decoded *narrow* (u32) lane word, so the
/// tiled inner loop loads operands ready for
/// [`FastAdderBatch::mac_step32`] with no per-element decode at all.
///
/// At 256 KiB it is half the footprint of the wide
/// [`crate::batch::DecodedLut`], which together with the column-tiled B
/// panel (see `engine.rs`) keeps the whole working set of the hot loop
/// L2-resident. Construction is gated on the narrow-word envelope:
/// [`PairLut::build`] returns `None` when the adder's algebra does not
/// fit u32 lane words, and the engine falls back to the wide path.
#[derive(Clone)]
pub struct PairLut {
    table: Box<[u32; 1 << 16]>,
}

impl std::fmt::Debug for PairLut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairLut").finish_non_exhaustive()
    }
}

impl PairLut {
    /// Decodes every entry of `lut` into a narrow lane word, or `None`
    /// when the adder's algebra exceeds the narrow envelope
    /// ([`FastAdderBatch::narrow_ok`]).
    ///
    /// # Panics
    ///
    /// Panics if the LUT's output format and the adder's format disagree.
    #[must_use]
    pub fn build(lut: &ProductLut, batch: &FastAdderBatch) -> Option<Self> {
        assert_eq!(
            lut.output_format(),
            batch.format(),
            "pair LUT must share the adder's format"
        );
        if !batch.narrow_ok() {
            return None;
        }
        let table: Vec<u32> = (0..1usize << 16)
            .map(|i| batch.decode32(u64::from(lut.product((i >> 8) as u8, i as u8))))
            .collect();
        Some(Self {
            table: table.into_boxed_slice().try_into().expect("table is 65536"), // PANIC-OK: same 65536-entry construction.
        })
    }

    /// The full 256 x 256 table, indexed `(ca << 8) | cb` — the raw form
    /// the vector gather kernel addresses directly.
    #[inline]
    #[must_use]
    pub(crate) fn table(&self) -> &[u32; 1 << 16] {
        &self.table
    }

    /// The 256-entry narrow decoded product row for left code `ca`.
    #[inline]
    #[must_use]
    pub fn row(&self, ca: u8) -> &[u32; 256] {
        let start = (ca as usize) << 8;
        self.table[start..start + 256]
            .try_into()
            .expect("row is 256") // PANIC-OK: start + 256 <= 65536 for any u8 row index.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fastmath::AccumRounding;

    #[test]
    fn pair_lut_entries_match_narrow_decode_of_products() {
        let fin = FpFormat::e5m2();
        let fout = FpFormat::e6m5();
        let lut = ProductLut::build(fin, fout);
        for mode in [AccumRounding::Nearest, AccumRounding::Stochastic { r: 13 }] {
            let batch = FastAdderBatch::new(fout, mode);
            let plut = PairLut::build(&lut, &batch).expect("e6m5 fits the narrow envelope");
            for a in 0..=255u8 {
                let row = plut.row(a);
                for b in 0..=255u8 {
                    let enc = u64::from(lut.product(a, b));
                    assert_eq!(row[b as usize], batch.decode32(enc), "{a:#x}*{b:#x}");
                    // And the narrow word is faithful: re-encoding gives
                    // back the product encoding.
                    assert_eq!(batch.encode32(row[b as usize]), enc, "{a:#x}*{b:#x}");
                }
            }
        }
    }

    #[test]
    fn pair_lut_is_gated_by_the_narrow_envelope() {
        // E5M10 at SR13 needs p + f = 11 + 28 bits: over the u32 budget,
        // so the narrow LUT must refuse and the engine stays wide.
        let fout = FpFormat::e5m10();
        let lut = ProductLut::build(FpFormat::e5m2(), fout);
        let batch = FastAdderBatch::new(fout, AccumRounding::Stochastic { r: 13 });
        assert!(!batch.narrow_ok());
        assert!(PairLut::build(&lut, &batch).is_none());
    }

    #[test]
    fn lut_matches_multiplier_exhaustively() {
        let fin = FpFormat::e5m2();
        let fout = FpFormat::e6m5();
        let lut = ProductLut::build(fin, fout);
        let m = ExactMultiplier::new(fin, fout).unwrap();
        for a in 0..=255u16 {
            for b in 0..=255u16 {
                assert_eq!(
                    u64::from(lut.product(a as u8, b as u8)),
                    m.multiply(u64::from(a), u64::from(b))
                );
            }
        }
    }

    #[test]
    fn lut_rounds_when_output_is_narrow() {
        // E5M2 products into FP16 (E5M10): representable except for deep
        // underflow; the table must match the golden RN multiplication.
        let fin = FpFormat::e5m2();
        let fout = FpFormat::e5m10();
        let lut = ProductLut::build(fin, fout);
        for a in 0..=255u16 {
            for b in 0..=255u16 {
                let want = ops::mul(
                    fin,
                    fout,
                    u64::from(a),
                    u64::from(b),
                    RoundMode::NearestEven,
                );
                assert_eq!(u64::from(lut.product(a as u8, b as u8)), want);
            }
        }
    }
}
