//! # srmac-qgemm: bit-exact low-precision GEMM
//!
//! The Rust counterpart of the paper's "software-based bit-accurate
//! emulation flow" (Sec. IV): a [`MacGemm`] engine that performs every
//! matrix multiplication of the training stack exactly as an array of the
//! paper's MAC units would — operands quantized to FP8 (E5M2, round to
//! nearest, saturating), products exact in the accumulator format, and the
//! accumulator updated sequentially with round-to-nearest or stochastic
//! rounding at a chosen number of random bits `r`.
//!
//! The scalar kernels ([`FastAdder`], [`FastQuantizer`]) are `u64`
//! specializations of the golden arithmetic in `srmac-fp`, verified
//! bit-for-bit against it (exhaustively for the paper's E6M5 accumulator);
//! under round-to-nearest the whole engine is verified element-by-element
//! against the RTL-level `srmac_core::MacUnit`.
//!
//! # Example
//!
//! ```
//! use srmac_qgemm::{AccumRounding, MacGemm, MacGemmConfig};
//! use srmac_tensor::GemmEngine;
//!
//! // The paper's best configuration: E6M5 accumulator, SR, r = 13, no
//! // subnormals.
//! let engine = MacGemm::new(MacGemmConfig::fp8_fp12(
//!     AccumRounding::Stochastic { r: 13 },
//!     false,
//! ));
//! let (a, b) = ([1.0f32, 2.0, 3.0, 4.0], [0.5f32, -1.0, 0.25, 2.0]);
//! let mut out = [0.0f32; 4];
//! engine.gemm(2, 2, 2, &a, &b, &mut out);
//! assert_eq!(out[0], 1.0); // 1.0*0.5 + 2.0*0.25
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod engine;
mod fastmath;
mod lut;

pub use engine::{MacGemm, MacGemmConfig};
pub use fastmath::{AccumRounding, FastAdder, FastQuantizer};
pub use lut::ProductLut;
