//! # srmac-qgemm: bit-exact low-precision GEMM
//!
//! The Rust counterpart of the paper's "software-based bit-accurate
//! emulation flow" (Sec. IV): a [`MacGemm`] engine that performs every
//! matrix multiplication of the training stack exactly as an array of the
//! paper's MAC units would — operands quantized to FP8 (E5M2, round to
//! nearest, saturating), products exact in the accumulator format, and the
//! accumulator updated sequentially with round-to-nearest or stochastic
//! rounding at a chosen number of random bits `r`.
//!
//! The scalar kernels ([`FastAdder`], [`FastQuantizer`]) are `u64`
//! specializations of the golden arithmetic in `srmac-fp`, verified
//! bit-for-bit against it (exhaustively for the paper's E6M5 accumulator);
//! under round-to-nearest the whole engine is verified element-by-element
//! against the RTL-level `srmac_core::MacUnit`.
//!
//! # The pack/plan lifecycle
//!
//! A `MacGemm` product has two phases, exposed separately through the
//! [`srmac_tensor::GemmEngine`] trait:
//!
//! 1. **Pack** (`pack_a` / `pack_b`): quantize the `f32` operand to
//!    multiplier-format codes — and, for the B side, materialize the
//!    column-major transpose so each dot product walks both operands
//!    contiguously. Packing is a pure function of the operand values and
//!    the *multiplier* format alone; the accumulator format, rounding
//!    mode, seed and thread count play no part. A packed operand is
//!    therefore reusable across any number of products and even across
//!    engines that share a multiplier format (e.g. an RN and an SR engine
//!    evaluating the same quantized weights).
//! 2. **Plan/execute** (`gemm_packed`): run only the bit-exact
//!    accumulation loops over the prepared codes, dispatched through the
//!    shared parallel runtime (`srmac-runtime`) — the same persistent
//!    worker pool that drives the tensor layer's im2row/col2im/scatter
//!    data movement ([`MacGemm::with_runtime`] shares one pool across the
//!    whole stack). The one-shot `gemm` is the trait's default
//!    composition — pack on the fly, then execute.
//!
//! The training layers in `srmac-tensor` exploit this split by caching
//! their weights' packed forms between optimizer steps: one weight pack
//! per step serves the forward product, the data-gradient product and any
//! number of evaluation batches.
//!
//! # The RN/SR determinism contract
//!
//! Every output element `(i, j)` owns a counter-seeded `SplitMix64`
//! stream derived from `(config.seed, i, j)`; the stream advances once per
//! non-zero product, in `k` order. Consequently results are a pure
//! function of the operand *values* and the engine configuration —
//! independent of how operands were packed, how rows were chunked, how
//! many runtime workers ran, and of any previous calls. RN ignores the
//! streams entirely. This is what makes experiment tables reproducible
//! and `gemm`/`gemm_packed`/[`MacGemm::gemm_scoped`] bitwise
//! interchangeable, and it is one instance of the runtime-wide contract
//! (`srmac_runtime`): parallel dispatch never splits an output element
//! across workers and never reorders a reduction, so thread count changes
//! wall-clock time, never bits.
//!
//! # Lane-batched accumulation (the SWAR/SIMD hot path)
//!
//! The compacted accumulation loop advances `L` output **columns** of one
//! output row per step through [`FastAdderBatch`] (default `L = 64`, in
//! cascaded blocks with a scalar tail for `n % L` columns). Each lane is
//! one element's accumulator, carried in a *decoded* `u64` lane word
//! (sign / ULP exponent / significand as plain fields — see `batch.rs`),
//! fed with pre-decoded products from a 512 KiB [`DecodedLut`], and
//! updated by the scalar adder's exact algebra with every branch replaced
//! by SWAR mask arithmetic. The branch-free body auto-vectorizes;
//! runtime-detected `#[target_feature]` wrappers give it AVX2/AVX-512
//! codegen without any workspace-wide compiler flags, and an explicit
//! `std::arch` rendition exists behind the opt-in `arch-simd` feature.
//!
//! Column-lane batching preserves the determinism contract *by
//! construction*: SR streams are position-seeded per output element, so
//! computing eight elements side by side reorders nothing **within** any
//! element — its adds stay in `k` order and its stream (an
//! [`srmac_rng::SrLaneStreams`] lane, bit-equal to the scalar
//! `SplitMix64` stream) is consumed on exactly the same products. Lane
//! width is therefore invisible in the bits: `L` = 1, 4, 8, 16, 32 and 64
//! produce identical output (asserted in `tests/lane_batch.rs`, with the
//! operand-level exhaustive equivalence in `batch.rs`), and the golden
//! training histories did not move when the default width changed.
//!
//! # The tiled, fused execution pipeline
//!
//! On top of the lane-batched adder, `gemm_packed` executes a
//! cache-blocked tile grid ([`TileConfig`], runtime-tunable through
//! [`MacGemm::with_tiles`]): the output plane is cut into
//! `row_tile x col_tile` rectangles, each rectangle walks one
//! column-major B-panel slice to completion before the next slice is
//! touched, and the rectangles are the units handed to the shared
//! worker pool for multi-core dispatch. The grid is a pure function of
//! the shape and the tile sizes — never of the thread count — and no
//! rectangle splits an output element, so every tile/thread combination
//! is bitwise identical (asserted across shapes in
//! `tests/tiled_kernel.rs`).
//!
//! Two fusions keep the per-call constant work off the measured path:
//!
//! * **Quantize+pack fusion** — `pack_a`/`pack_b` quantize straight
//!   into recycled workspace buffers (a vectorized block quantizer under
//!   AVX-512) and compact/transpose from there; the one-shot `gemm`
//!   allocates nothing per call beyond its packed outputs.
//! * **Product-pair decode LUT** — when the accumulator algebra fits the
//!   *narrow* u32 lane word (`ef_max + p + 2 <= 29` with the `LANE32_*`
//!   layout, true for the paper's E6M5 family), a 256 KiB [`PairLut`]
//!   maps each `(code_a, code_b)` pair directly to the pre-decoded
//!   product word, and the inner loop runs a fully vectorized
//!   AVX-512 chain over u32 lanes — no per-step decode, no u64
//!   widening. Formats outside the envelope (or
//!   [`MacGemm::with_pair_lut`]`(false)`) fall back to the wide u64
//!   path; both paths are bit-identical by construction and by test.
//!
//! # Example
//!
//! ```
//! use srmac_qgemm::{AccumRounding, MacGemm, MacGemmConfig};
//! use srmac_tensor::GemmEngine;
//!
//! // The paper's best configuration: E6M5 accumulator, SR, r = 13, no
//! // subnormals.
//! let engine = MacGemm::new(MacGemmConfig::fp8_fp12(
//!     AccumRounding::Stochastic { r: 13 },
//!     false,
//! ));
//! let (a, b) = ([1.0f32, 2.0, 3.0, 4.0], [0.5f32, -1.0, 0.25, 2.0]);
//!
//! // One-shot and prepared-operand paths are bitwise identical.
//! let mut out = [0.0f32; 4];
//! engine.gemm(2, 2, 2, &a, &b, &mut out);
//! assert_eq!(out[0], 1.0); // 1.0*0.5 + 2.0*0.25
//!
//! let (pa, pb) = (engine.pack_a(2, 2, &a), engine.pack_b(2, 2, &b));
//! let mut packed = [0.0f32; 4];
//! engine.gemm_packed(2, 2, 2, &pa, &pb, &mut packed);
//! assert_eq!(out, packed);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// `deny` rather than the workspace-usual `forbid`: the sanctioned
// exceptions are the `#[target_feature]` kernel dispatches — the
// runtime-detected SIMD-tier calls in `engine.rs` (guarded by
// `is_x86_feature_detected!`) and the statically-`cfg`-guarded `std::arch`
// path in `batch.rs`. In both, the `unsafe` discharges exactly one
// obligation (the CPU has the enabled features), proven one line above.
// Everything else in this crate remains unsafe-free, and new `unsafe`
// must justify itself the same way.
#![deny(unsafe_code)]

mod batch;
mod engine;
mod fastmath;
mod lut;
pub mod spec;

pub use batch::{
    DecodedLut, FastAdderBatch, LANE32_DRAWS, LANE32_KEY, LANE32_SIGN, LANE32_SPECIAL, LANE_DRAWS,
    LANE_KEY, LANE_SIGN, LANE_SPECIAL,
};
pub use engine::{ConfigWireError, MacGemm, MacGemmConfig, TileConfig};
pub use fastmath::{AccumRounding, FastAdder, FastQuantizer};
pub use lut::{PairLut, ProductLut};
pub use spec::{
    engine_from_spec, numerics_from_spec, register_engine_specs, EngineSpecError, ParsedMacSpec,
};
// The worker pool moved into the shared `srmac-runtime` crate; re-exported
// here (with the runtime itself) for continuity and convenience.
pub use srmac_runtime::{Runtime, WorkerPool};
