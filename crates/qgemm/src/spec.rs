//! The named-spec registry: text names for GEMM engine configurations.
//!
//! A spec *atom* names one engine — `"f32"` (handled by `srmac-tensor`'s
//! built-in resolver) or a [`MacGemmConfig`] in the grammar below — and a
//! policy spec combines atoms per GEMM role (see
//! [`srmac_tensor::numerics`]). One string therefore describes a whole
//! mixed-precision experiment, in an example, a bench table, or a
//! checkpoint.
//!
//! # MAC atom grammar
//!
//! Underscore-separated tokens, in this order:
//!
//! | position | tokens | meaning |
//! |---|---|---|
//! | 1 | `fp8` \| `eXmY` | multiplier format (`fp8` = E5M2) |
//! | 2 | `fp12` \| `fp16` \| `bf16` \| `eXmY` | accumulator format (`fp12` = E6M5, `fp16` = E5M10, `bf16` = E8M7) |
//! | 3 | `rn` \| `srN` | accumulation rounding (`srN` = stochastic with `N` random bits, 1..=24) |
//! | 4 (optional) | `sub` \| `msub` \| `asub` | subnormal support: both formats, multiplier only, accumulator only (default: neither) |
//! | 5 (optional) | `seedHEX` | base SR stream seed in hex (default [`MacGemmConfig::DEFAULT_SEED`]) |
//!
//! Examples: `fp8_fp12_rn`, `fp8_fp12_sr13_sub`, `fp8_e6m5_sr13`,
//! `fp8_fp16_rn_sub_seed7f`. [`MacGemmConfig`] implements [`FromStr`] for
//! this grammar and [`Display`](std::fmt::Display) for its canonical form
//! (aliases preferred, defaults omitted); `Display` → `FromStr`
//! round-trips to the same configuration. Thread counts are machine
//! state and have no spec form, exactly as in the checkpoint wire record.
//!
//! # Per-role seed folding
//!
//! When a *per-role* policy assignment resolves a MAC atom **without** an
//! explicit `seed` token, the role id is folded into the default seed
//! ([`srmac_tensor::numerics::fold_role_seed`]) so the roles draw
//! independent SR streams. An explicit seed is always used verbatim, and
//! uniform (single-atom) policies never fold — see the numerics module
//! docs for why that keeps `Numerics::uniform` bit-identical to the
//! legacy single-engine path.

use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, Once};

use srmac_fp::FpFormat;
use srmac_tensor::numerics::{fold_role_seed, register_engine_resolver};
use srmac_tensor::{GemmEngine, GemmRole, Numerics, SpecError};

use crate::engine::{ConfigWireError, MacGemmConfig};
use crate::fastmath::AccumRounding;
use crate::MacGemm;

/// Error parsing a MAC engine spec atom (see the module docs for the
/// grammar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineSpecError {
    /// The atom was empty.
    Empty,
    /// A required field never appeared (`"accumulator format"`,
    /// `"rounding"`).
    Missing(&'static str),
    /// A token is not a valid floating-point format where one was
    /// expected.
    BadFormat(String),
    /// The rounding token is neither `rn` nor `srN` with `N` in 1..=24.
    BadRounding(String),
    /// The `seed` token does not carry valid hex digits.
    BadSeed(String),
    /// A token appeared that the grammar has no place for.
    UnexpectedToken(String),
    /// The fields parse but lie outside the `MacGemm` engine envelope.
    Envelope(ConfigWireError),
}

impl fmt::Display for EngineSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineSpecError::Empty => write!(f, "empty engine spec"),
            EngineSpecError::Missing(what) => write!(f, "spec is missing its {what}"),
            EngineSpecError::BadFormat(tok) => {
                write!(
                    f,
                    "{tok:?} is not a floating-point format (fp8/fp12/fp16/bf16/eXmY)"
                )
            }
            EngineSpecError::BadRounding(tok) => {
                write!(f, "{tok:?} is not a rounding mode (rn or srN, N in 1..=24)")
            }
            EngineSpecError::BadSeed(tok) => write!(f, "{tok:?} is not a valid seed token"),
            EngineSpecError::UnexpectedToken(tok) => write!(f, "unexpected token {tok:?}"),
            EngineSpecError::Envelope(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineSpecError {}

/// A parsed MAC atom, remembering whether the seed was written out (the
/// per-role folding rule needs the distinction; see the module docs).
#[derive(Debug, Clone, Copy)]
pub struct ParsedMacSpec {
    /// The configuration the atom names.
    pub config: MacGemmConfig,
    /// True when the atom carried an explicit `seed` token.
    pub explicit_seed: bool,
}

fn parse_format(tok: &str) -> Option<FpFormat> {
    match tok {
        "fp8" => return Some(FpFormat::e5m2()),
        "fp12" => return Some(FpFormat::e6m5()),
        "fp16" => return Some(FpFormat::e5m10()),
        "bf16" => return Some(FpFormat::e8m7()),
        _ => {}
    }
    let rest = tok.strip_prefix('e')?;
    let (e, m) = rest.split_once('m')?;
    if e.is_empty() || m.is_empty() || !e.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let (e, m) = (e.parse().ok()?, m.parse().ok()?);
    FpFormat::new(e, m).ok()
}

/// The canonical alias of a format in spec atoms (`Display` side of
/// [`parse_format`]). The multiplier position aliases E5M2 to `fp8`; the
/// accumulator position aliases E6M5/E5M10/E8M7 to `fp12`/`fp16`/`bf16`.
fn format_alias(fmt: FpFormat, multiplier: bool) -> String {
    let (e, m) = (fmt.exp_bits(), fmt.man_bits());
    match (multiplier, e, m) {
        (true, 5, 2) => "fp8".to_owned(),
        (false, 6, 5) => "fp12".to_owned(),
        (false, 5, 10) => "fp16".to_owned(),
        (false, 8, 7) => "bf16".to_owned(),
        _ => format!("e{e}m{m}"),
    }
}

/// Parses a MAC atom (see the module docs for the grammar).
///
/// # Errors
///
/// Returns [`EngineSpecError`] on any grammar or envelope violation.
pub fn parse_mac_spec(atom: &str) -> Result<ParsedMacSpec, EngineSpecError> {
    let atom = atom.trim();
    if atom.is_empty() {
        return Err(EngineSpecError::Empty);
    }
    let mut tokens = atom.split('_');
    let mul_tok = tokens.next().expect("split yields at least one token"); // PANIC-OK: split() always yields at least one token.
    let mul_fmt =
        parse_format(mul_tok).ok_or_else(|| EngineSpecError::BadFormat(mul_tok.to_owned()))?;
    let acc_tok = tokens
        .next()
        .ok_or(EngineSpecError::Missing("accumulator format"))?;
    let acc_fmt =
        parse_format(acc_tok).ok_or_else(|| EngineSpecError::BadFormat(acc_tok.to_owned()))?;
    let rnd_tok = tokens.next().ok_or(EngineSpecError::Missing("rounding"))?;
    let rounding = match rnd_tok {
        "rn" => AccumRounding::Nearest,
        _ => {
            let r = rnd_tok
                .strip_prefix("sr")
                .and_then(|d| {
                    if d.is_empty() {
                        None
                    } else {
                        d.parse::<u32>().ok()
                    }
                })
                .ok_or_else(|| EngineSpecError::BadRounding(rnd_tok.to_owned()))?;
            AccumRounding::Stochastic { r }
        }
    };
    let (mut mul_sub, mut acc_sub) = (false, false);
    let mut seed = MacGemmConfig::DEFAULT_SEED;
    let mut explicit_seed = false;
    let mut next = tokens.next();
    if let Some(tok @ ("sub" | "msub" | "asub")) = next {
        match tok {
            "sub" => (mul_sub, acc_sub) = (true, true),
            "msub" => mul_sub = true,
            _ => acc_sub = true,
        }
        next = tokens.next();
    }
    if let Some(tok) = next {
        let digits = tok
            .strip_prefix("seed")
            .ok_or_else(|| EngineSpecError::UnexpectedToken(tok.to_owned()))?;
        if digits.is_empty() {
            return Err(EngineSpecError::BadSeed(tok.to_owned()));
        }
        seed = u64::from_str_radix(digits, 16)
            .map_err(|_| EngineSpecError::BadSeed(tok.to_owned()))?;
        explicit_seed = true;
        next = tokens.next();
    }
    if let Some(tok) = next {
        return Err(EngineSpecError::UnexpectedToken(tok.to_owned()));
    }
    let config = MacGemmConfig {
        mul_fmt: mul_fmt.with_subnormals(mul_sub),
        acc_fmt: acc_fmt.with_subnormals(acc_sub),
        rounding,
        seed,
        threads: srmac_tensor::available_threads(),
    };
    config.validate().map_err(EngineSpecError::Envelope)?;
    Ok(ParsedMacSpec {
        config,
        explicit_seed,
    })
}

impl FromStr for MacGemmConfig {
    type Err = EngineSpecError;

    fn from_str(atom: &str) -> Result<Self, EngineSpecError> {
        Ok(parse_mac_spec(atom)?.config)
    }
}

impl fmt::Display for MacGemmConfig {
    /// The canonical spec atom: aliases preferred, the subnormal token
    /// chosen by which formats honor subnormals, the seed omitted at
    /// [`MacGemmConfig::DEFAULT_SEED`]. `Display` then `FromStr`
    /// reproduces this configuration exactly (thread count aside, which
    /// is machine state).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}_{}",
            format_alias(self.mul_fmt, true),
            format_alias(self.acc_fmt, false)
        )?;
        match self.rounding {
            AccumRounding::Nearest => write!(f, "_rn")?,
            AccumRounding::Stochastic { r } => write!(f, "_sr{r}")?,
        }
        match (self.mul_fmt.subnormals(), self.acc_fmt.subnormals()) {
            (true, true) => write!(f, "_sub")?,
            (true, false) => write!(f, "_msub")?,
            (false, true) => write!(f, "_asub")?,
            (false, false) => {}
        }
        if self.seed != Self::DEFAULT_SEED {
            write!(f, "_seed{:x}", self.seed)?;
        }
        Ok(())
    }
}

/// Builds one engine from a spec atom: `"f32"` for the exact baseline,
/// otherwise the MAC atom grammar. This is the single-engine entry point
/// the construction boilerplate across the stack routes through; for a
/// whole per-role policy use [`numerics_from_spec`].
///
/// # Errors
///
/// Returns [`EngineSpecError`] when the atom is not `"f32"` and fails
/// the MAC grammar.
pub fn engine_from_spec(atom: &str) -> Result<Arc<dyn GemmEngine>, EngineSpecError> {
    if atom.trim() == "f32" {
        return Ok(Arc::new(srmac_tensor::F32Engine::default()));
    }
    Ok(Arc::new(MacGemm::new(parse_mac_spec(atom)?.config)))
}

/// The [`srmac_tensor::numerics`] resolver for MAC atoms. Runs after the
/// built-in `"f32"` atom and claims everything else (its error messages
/// therefore double as the "unknown spec" diagnostics of the registry).
fn mac_resolver(
    atom: &str,
    role: Option<GemmRole>,
) -> Option<Result<Arc<dyn GemmEngine>, SpecError>> {
    let parsed = match parse_mac_spec(atom) {
        Ok(p) => p,
        Err(e) => {
            return Some(Err(SpecError::Engine {
                atom: atom.to_owned(),
                reason: e.to_string(),
            }))
        }
    };
    let mut config = parsed.config;
    if let (Some(role), false) = (role, parsed.explicit_seed) {
        config = config.with_seed(fold_role_seed(config.seed, role));
    }
    Some(Ok(Arc::new(MacGemm::new(config))))
}

/// Registers the MAC atom grammar with the [`srmac_tensor::numerics`]
/// spec registry (idempotent). After this, `Numerics::from_spec` resolves
/// atoms like `fp8_fp12_sr13`; [`numerics_from_spec`] calls it for you.
pub fn register_engine_specs() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| register_engine_resolver(mac_resolver));
}

/// Builds a per-role [`Numerics`] policy from a spec string, with the MAC
/// atom grammar registered — e.g.
/// `numerics_from_spec("fwd=fp8_fp12_rn;bwd=fp8_fp12_sr13")`.
///
/// # Errors
///
/// Returns [`SpecError`] on bad policy syntax or a bad engine atom.
pub fn numerics_from_spec(spec: &str) -> Result<Numerics, SpecError> {
    register_engine_specs();
    Numerics::from_spec(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(atom: &str) -> MacGemmConfig {
        atom.parse().unwrap_or_else(|e| panic!("{atom}: {e}"))
    }

    #[test]
    fn named_atoms_match_the_constructors() {
        let want = MacGemmConfig::fp8_fp12(AccumRounding::Stochastic { r: 13 }, false);
        let got = cfg("fp8_fp12_sr13");
        assert_eq!(got.mul_fmt, want.mul_fmt);
        assert_eq!(got.acc_fmt, want.acc_fmt);
        assert_eq!(got.rounding, want.rounding);
        assert_eq!(got.seed, want.seed);

        let want = MacGemmConfig::fp8_fp12(AccumRounding::Nearest, true);
        let got = cfg("fp8_fp12_rn_sub");
        assert_eq!(got.mul_fmt, want.mul_fmt);
        assert_eq!(got.acc_fmt, want.acc_fmt);
        assert_eq!(got.rounding, want.rounding);

        // Explicit widths are the same formats as the aliases.
        assert_eq!(
            cfg("fp8_e6m5_sr13_sub").acc_fmt,
            cfg("fp8_fp12_sr13_sub").acc_fmt
        );
        assert_eq!(
            cfg("e5m2_fp16_rn").acc_fmt,
            FpFormat::e5m10().with_subnormals(false)
        );
        assert_eq!(cfg("e5m2_fp16_rn_asub").acc_fmt, FpFormat::e5m10());
    }

    #[test]
    fn display_is_canonical_and_roundtrips() {
        for (atom, canonical) in [
            ("fp8_fp12_sr13", "fp8_fp12_sr13"),
            ("fp8_e6m5_sr13_sub", "fp8_fp12_sr13_sub"),
            ("e5m2_e5m10_rn", "fp8_fp16_rn"),
            ("fp8_fp12_rn_msub", "fp8_fp12_rn_msub"),
            ("fp8_fp12_rn_asub_seedff", "fp8_fp12_rn_asub_seedff"),
            ("fp8_fp12_sr13_seed5eed", "fp8_fp12_sr13"),
            ("e4m3_fp12_sr9_sub", "e4m3_fp12_sr9_sub"),
        ] {
            assert_eq!(cfg(atom).to_string(), canonical, "{atom}");
        }
    }

    #[test]
    fn spec_rejects_garbage() {
        use EngineSpecError as E;
        assert_eq!(parse_mac_spec("").unwrap_err(), E::Empty);
        assert_eq!(
            parse_mac_spec("fp8").unwrap_err(),
            E::Missing("accumulator format")
        );
        assert_eq!(
            parse_mac_spec("fp8_fp12").unwrap_err(),
            E::Missing("rounding")
        );
        assert_eq!(
            parse_mac_spec("fq8_fp12_rn").unwrap_err(),
            E::BadFormat("fq8".into())
        );
        assert_eq!(
            parse_mac_spec("fp8_em5_rn").unwrap_err(),
            E::BadFormat("em5".into())
        );
        assert_eq!(
            parse_mac_spec("fp8_fp12_down").unwrap_err(),
            E::BadRounding("down".into())
        );
        assert_eq!(
            parse_mac_spec("fp8_fp12_sr").unwrap_err(),
            E::BadRounding("sr".into())
        );
        assert_eq!(
            parse_mac_spec("fp8_fp12_rn_seed").unwrap_err(),
            E::BadSeed("seed".into())
        );
        assert_eq!(
            parse_mac_spec("fp8_fp12_rn_seedzz").unwrap_err(),
            E::BadSeed("seedzz".into())
        );
        assert_eq!(
            parse_mac_spec("fp8_fp12_rn_sub_extra").unwrap_err(),
            E::UnexpectedToken("extra".into())
        );
        assert_eq!(
            parse_mac_spec("fp8_fp12_rn_seed1_sub").unwrap_err(),
            E::UnexpectedToken("sub".into()),
            "tokens are ordered: sub before seed"
        );
        // Valid formats outside the engine envelope are typed errors, not
        // panics in MacGemm::new.
        assert!(matches!(
            parse_mac_spec("fp16_fp12_rn").unwrap_err(),
            E::Envelope(ConfigWireError::OutsideEngineEnvelope(_))
        ));
        assert!(matches!(
            parse_mac_spec("fp8_e8m23_rn").unwrap_err(),
            E::Envelope(ConfigWireError::OutsideEngineEnvelope(_))
        ));
        assert!(matches!(
            parse_mac_spec("fp8_fp12_sr31").unwrap_err(),
            E::Envelope(ConfigWireError::BadSrBits(31))
        ));
    }

    #[test]
    fn engine_from_spec_covers_f32_and_mac() {
        assert_eq!(
            engine_from_spec("f32").expect("f32").name(),
            "f32 (FP32 baseline)"
        );
        let mac = engine_from_spec("fp8_fp12_sr13").expect("mac");
        assert!(mac.name().contains("SR r=13"));
        assert!(engine_from_spec("nonsense").is_err());
    }
}
