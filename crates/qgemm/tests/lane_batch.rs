//! Lane-batching equivalence suite: the batched compacted path must be a
//! pure performance transform. Every lane width gives bitwise-identical
//! GEMM output, ragged tails (n not divisible by the lane width) are
//! exact, and the batched engine agrees with the dense scalar reference
//! (`gemm_scoped`) on sparse, signed-zero-laden and NaN-free inputs.
//!
//! (The operand-level guarantee — `FastAdderBatch` == `FastAdder` over
//! the full 256 x 256-per-format code plane and SR draws — lives next to
//! the implementation in `src/batch.rs`; this file covers the engine
//! integration on top of it.)

use srmac_qgemm::{AccumRounding, MacGemm, MacGemmConfig};
use srmac_rng::SplitMix64;
use srmac_tensor::GemmEngine;

fn rand_vec(n: usize, seed: u64, scale: f32) -> Vec<f32> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| (rng.next_f64() as f32 - 0.5) * scale)
        .collect()
}

fn relu_sparse_vec(n: usize, seed: u64, sparsity: f64) -> Vec<f32> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let v = rng.next_f64() as f32 - 0.5;
            if rng.next_f64() < sparsity {
                if rng.next_f64() < 0.5 {
                    0.0
                } else {
                    -0.0
                }
            } else {
                v
            }
        })
        .collect()
}

/// Every lane width (1 = pure scalar path, then each batched width) must
/// produce bitwise-identical output, under RN and SR, with and without
/// subnormals — including output widths that leave ragged tails at every
/// block size.
#[test]
fn lane_width_invariance_with_ragged_tails() {
    let (m, k) = (5usize, 57);
    for rounding in [AccumRounding::Nearest, AccumRounding::Stochastic { r: 13 }] {
        for subnormals in [true, false] {
            for n in [1usize, 3, 7, 8, 9, 12, 31, 64, 65] {
                let a = rand_vec(m * k, 7 + n as u64, 2.0);
                let b = rand_vec(k * n, 9 + n as u64, 2.0);
                let reference = {
                    let engine =
                        MacGemm::new(MacGemmConfig::fp8_fp12(rounding, subnormals).with_threads(1))
                            .with_lane_width(1);
                    let mut out = vec![0.0f32; m * n];
                    engine.gemm(m, k, n, &a, &b, &mut out);
                    out
                };
                for lanes in [4usize, 8, 16, 32, 64] {
                    let engine =
                        MacGemm::new(MacGemmConfig::fp8_fp12(rounding, subnormals).with_threads(1))
                            .with_lane_width(lanes);
                    let mut out = vec![0.0f32; m * n];
                    engine.gemm(m, k, n, &a, &b, &mut out);
                    let same = reference
                        .iter()
                        .zip(&out)
                        .all(|(x, y)| x.to_bits() == y.to_bits());
                    assert!(
                        same,
                        "{rounding:?} sub={subnormals} n={n} lanes={lanes}: \
                         lane width changed bits"
                    );
                }
            }
        }
    }
}

/// The default (batched) engine against the dense scalar reference path on
/// ReLU-sparse inputs with mixed-sign zeros: the compaction + lane
/// batching + tail handling must reproduce the dense scalar loop exactly.
#[test]
fn batched_engine_matches_dense_scalar_reference() {
    let (m, k, n) = (11usize, 83, 29);
    let a = relu_sparse_vec(m * k, 21, 0.6);
    let b = rand_vec(k * n, 22, 2.0);
    for rounding in [AccumRounding::Nearest, AccumRounding::Stochastic { r: 13 }] {
        for subnormals in [true, false] {
            let engine =
                MacGemm::new(MacGemmConfig::fp8_fp12(rounding, subnormals).with_threads(1));
            let mut dense = vec![0.0f32; m * n];
            engine.gemm_scoped(m, k, n, &a, &b, &mut dense);
            let mut batched = vec![0.0f32; m * n];
            engine.gemm(m, k, n, &a, &b, &mut batched);
            let same = dense
                .iter()
                .zip(&batched)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(
                same,
                "{rounding:?} sub={subnormals}: batched != dense scalar"
            );
        }
    }
}

/// Thread-count invariance composes with lane batching: the runtime may
/// split rows across workers at any lane width without changing a bit.
#[test]
fn lane_batching_is_thread_invariant() {
    let (m, k, n) = (16usize, 40, 23);
    let a = rand_vec(m * k, 31, 1.0);
    let b = rand_vec(k * n, 32, 1.0);
    let mut outs = Vec::new();
    for threads in [1usize, 3] {
        for lanes in [8usize, 64] {
            let engine = MacGemm::new(
                MacGemmConfig::fp8_fp12(AccumRounding::Stochastic { r: 13 }, false)
                    .with_threads(threads),
            )
            .with_lane_width(lanes);
            let mut out = vec![0.0f32; m * n];
            engine.gemm(m, k, n, &a, &b, &mut out);
            outs.push(out);
        }
    }
    for other in &outs[1..] {
        assert_eq!(&outs[0], other);
    }
}

/// Accumulator overflow to infinity (the special-lane scalar fallback)
/// must survive lane batching bit-for-bit.
#[test]
fn special_values_survive_lane_batching() {
    let (m, k, n) = (2usize, 48, 9);
    // Large same-sign values drive the E6M5 accumulator into saturation
    // and overflow-to-infinity territory.
    let a = vec![40000.0f32; m * k];
    let b = vec![40000.0f32; k * n];
    for rounding in [AccumRounding::Nearest, AccumRounding::Stochastic { r: 13 }] {
        let engine = MacGemm::new(MacGemmConfig::fp8_fp12(rounding, true).with_threads(1));
        let mut dense = vec![0.0f32; m * n];
        engine.gemm_scoped(m, k, n, &a, &b, &mut dense);
        assert!(
            dense.iter().all(|v| v.is_infinite()),
            "overflow input must saturate to infinity"
        );
        let mut batched = vec![0.0f32; m * n];
        engine.gemm(m, k, n, &a, &b, &mut batched);
        let same = dense
            .iter()
            .zip(&batched)
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "{rounding:?}: special path diverged under batching");
    }
}
