//! Property tests of the engine-spec registry: `Display` → `FromStr` is
//! the identity on every representable `MacGemmConfig`, the policy-spec
//! grammar round-trips, and corrupted spec strings come back as typed
//! errors, never panics or silently different configs.

use proptest::prelude::*;
use srmac_fp::FpFormat;
use srmac_qgemm::{numerics_from_spec, AccumRounding, EngineSpecError, MacGemmConfig};
use srmac_tensor::{GemmRole, PolicySpec};

/// Decodes a `u64` into an arbitrary *valid* `MacGemmConfig` (formats
/// inside the engine envelope, SR bits in 1..=24, any seed derived from
/// the high bits).
fn arb_config(x: u64) -> MacGemmConfig {
    // Multiplier: up to 8 total bits (E in 2..=6, M in 1..=(7-E)).
    let me = 2 + (x % 5) as u32; // 2..=6
    let mm = 1 + ((x >> 3) % u64::from(7 - me)) as u32;
    // Accumulator: <= 16 bits, precision (M+1) <= 12 (E in 2..=8, M <= 11).
    let ae = 2 + ((x >> 7) % 7) as u32; // 2..=8
    let am_cap = (15 - ae).min(11);
    let am = 1 + ((x >> 11) % u64::from(am_cap)) as u32;
    let rounding = if x & (1 << 16) == 0 {
        AccumRounding::Nearest
    } else {
        AccumRounding::Stochastic {
            r: 1 + ((x >> 17) % 24) as u32,
        }
    };
    let seed = x.rotate_left(23).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    MacGemmConfig {
        mul_fmt: FpFormat::of(me, mm).with_subnormals(x & (1 << 41) != 0),
        acc_fmt: FpFormat::of(ae, am).with_subnormals(x & (1 << 42) != 0),
        rounding,
        seed: if x & (1 << 43) == 0 {
            MacGemmConfig::DEFAULT_SEED
        } else {
            seed
        },
        threads: 1,
    }
}

fn same_numerics(a: &MacGemmConfig, b: &MacGemmConfig) -> bool {
    a.mul_fmt == b.mul_fmt && a.acc_fmt == b.acc_fmt && a.rounding == b.rounding && a.seed == b.seed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(600))]

    /// `Display` then `FromStr` reproduces every representable config
    /// exactly (threads excluded: machine state has no spec form).
    #[test]
    fn display_fromstr_roundtrip(x in any::<u64>()) {
        let cfg = arb_config(x);
        prop_assume!(cfg.validate().is_ok());
        let atom = cfg.to_string();
        let back: MacGemmConfig = atom.parse().unwrap_or_else(|e| {
            panic!("canonical atom {atom:?} must reparse: {e}")
        });
        prop_assert!(
            same_numerics(&cfg, &back),
            "{atom}: {cfg:?} vs {back:?}"
        );
        // And the canonical form is a fixed point.
        prop_assert_eq!(back.to_string(), atom);
    }

    /// Uniform policy specs of valid atoms round-trip through the full
    /// registry: spec -> Numerics -> to_spec -> Numerics rebuilds engines
    /// with identical spec atoms.
    #[test]
    fn uniform_policy_rebuild_is_exact(x in any::<u64>()) {
        let cfg = arb_config(x);
        prop_assume!(cfg.validate().is_ok());
        let numerics = numerics_from_spec(&cfg.to_string()).expect("uniform spec resolves");
        let stored = numerics.to_spec().expect("spec-built policies have specs");
        let rebuilt = numerics_from_spec(&stored).expect("stored spec resolves");
        for role in GemmRole::ALL {
            prop_assert_eq!(
                rebuilt.engine(role).spec(),
                numerics.engine(role).spec()
            );
        }
    }

    /// Mutating any single byte of a canonical atom never panics the
    /// parser, and whatever still parses must not silently be the
    /// original config under a different name (the canonical form is
    /// unique, so a mutated string that parses is a *different* spelling
    /// only if it differs in recognized aliases — we only require no
    /// panic and a typed error or a config here).
    #[test]
    fn mutated_atoms_never_panic(x in any::<u64>(), pos in any::<u16>(), byte in any::<u8>()) {
        let cfg = arb_config(x);
        prop_assume!(cfg.validate().is_ok());
        let mut atom = cfg.to_string().into_bytes();
        let pos = usize::from(pos) % atom.len();
        atom[pos] = byte;
        if let Ok(s) = String::from_utf8(atom) {
            let _ = s.parse::<MacGemmConfig>();
        }
    }

    /// Policy-spec strings assembled from arbitrary role keys and atoms
    /// either parse into a spec whose Display reparses to the same value,
    /// or fail with a typed error — never a panic.
    #[test]
    fn policy_grammar_roundtrips_or_rejects(x in any::<u64>(), garbage in any::<u32>()) {
        let atoms = ["f32", "fp8_fp12_sr13", "fp8_fp12_rn_sub", "bogus*engine"];
        let keys = ["fwd", "dgrad", "wgrad", "bwd", "sideways"];
        let pick = |shift: u32, n: usize| ((x >> shift) % n as u64) as usize;
        let spec = format!(
            "{}={};{}={};{}={}",
            keys[pick(0, 5)], atoms[pick(3, 4)],
            keys[pick(5, 5)], atoms[pick(8, 4)],
            keys[pick(10, 5)], atoms[pick(13, 4)],
        );
        // Typed rejection is fine; whatever parses must have a canonical
        // Display that reparses to the same value.
        if let Ok(parsed) = spec.parse::<PolicySpec>() {
            let canonical = parsed.to_string();
            prop_assert_eq!(canonical.parse::<PolicySpec>().unwrap(), parsed);
        }
        // Raw garbage bytes too.
        let noise: String = garbage.to_le_bytes().iter().map(|b| (b % 96 + 32) as char).collect();
        let _ = noise.parse::<PolicySpec>();
        let _ = noise.parse::<MacGemmConfig>();
    }
}

#[test]
fn typed_errors_name_the_offending_token() {
    let err = "fp8_fp12_sr99".parse::<MacGemmConfig>().unwrap_err();
    assert!(matches!(err, EngineSpecError::Envelope(_)), "{err}");
    let err = "fp8_zzz_rn".parse::<MacGemmConfig>().unwrap_err();
    assert_eq!(err, EngineSpecError::BadFormat("zzz".into()));
    assert!(err.to_string().contains("zzz"));
}
