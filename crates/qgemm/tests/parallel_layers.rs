//! Cross-stack bitwise determinism: the full convolution and linear layer
//! passes — parallel im2row/col2im/scatter/gather/transpose on the shared
//! runtime around engine GEMMs — must produce bit-identical outputs,
//! input gradients and weight gradients for every thread count 1..=8,
//! under the exact f32 engine and the MAC engine with RN and SR
//! accumulation. Parallelism must change wall-clock time, never bits.

use std::sync::Arc;

use srmac_qgemm::{AccumRounding, MacGemm, MacGemmConfig, Runtime};
use srmac_rng::SplitMix64;
use srmac_tensor::init::kaiming_normal;
use srmac_tensor::layers::{Conv2d, Layer, Linear};
use srmac_tensor::{F32Engine, GemmEngine, Tensor};

fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = SplitMix64::new(seed);
    let data = (0..shape.iter().product())
        .map(|_| {
            let v = rng.next_f32() * 2.0 - 1.0;
            // ReLU-like sparsity so the compacted GEMM path is exercised.
            if rng.next_f64() < 0.4 {
                0.0
            } else {
                v
            }
        })
        .collect();
    Tensor::from_vec(data, shape)
}

/// Engine configurations under test; each is rebuilt per runtime so the
/// GEMM dispatch itself also runs on the runtime being checked.
fn engines(rt: &Arc<Runtime>) -> Vec<(&'static str, Arc<dyn GemmEngine>)> {
    vec![
        ("f32", Arc::new(F32Engine::new(1))),
        (
            "mac-rn",
            Arc::new(MacGemm::with_runtime(
                MacGemmConfig::fp8_fp12(AccumRounding::Nearest, true),
                Arc::clone(rt),
            )),
        ),
        (
            "mac-sr13",
            Arc::new(MacGemm::with_runtime(
                MacGemmConfig::fp8_fp12(AccumRounding::Stochastic { r: 13 }, false),
                Arc::clone(rt),
            )),
        ),
    ]
}

/// One train-mode forward + backward through a conv layer; returns
/// (output, input gradient, weight gradient) bits.
fn conv_pass(engine: Arc<dyn GemmEngine>, rt: Arc<Runtime>) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut rng = SplitMix64::new(11);
    let weight = kaiming_normal(&[6, 3 * 3 * 3], 27, &mut rng);
    let mut conv = Conv2d::new(3, 6, 3, 2, 1, weight, engine).with_runtime(rt);
    let x = rand_tensor(&[3, 3, 9, 7], 21);
    let y = conv.forward(&x, true);
    let grad = rand_tensor(y.shape(), 22);
    let dx = conv.backward(&grad);
    let mut wgrad = Vec::new();
    conv.visit_params(&mut |p| wgrad.extend(p.grad.data().iter().map(|v| v.to_bits())));
    (
        y.data().iter().map(|v| v.to_bits()).collect(),
        dx.data().iter().map(|v| v.to_bits()).collect(),
        wgrad,
    )
}

/// Same for a linear layer.
fn linear_pass(engine: Arc<dyn GemmEngine>, rt: Arc<Runtime>) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut rng = SplitMix64::new(12);
    let weight = kaiming_normal(&[10, 24], 24, &mut rng);
    let mut lin = Linear::new(24, 10, weight, engine).with_runtime(rt);
    let x = rand_tensor(&[7, 24], 23);
    let y = lin.forward(&x, true);
    let grad = rand_tensor(y.shape(), 24);
    let dx = lin.backward(&grad);
    let mut wgrad = Vec::new();
    lin.visit_params(&mut |p| wgrad.extend(p.grad.data().iter().map(|v| v.to_bits())));
    (
        y.data().iter().map(|v| v.to_bits()).collect(),
        dx.data().iter().map(|v| v.to_bits()).collect(),
        wgrad,
    )
}

#[test]
fn conv_layer_is_bitwise_thread_invariant() {
    let serial = Arc::new(Runtime::serial());
    for (name, engine) in engines(&serial) {
        let want = conv_pass(engine, Arc::clone(&serial));
        for threads in 1..=8 {
            let rt = Arc::new(Runtime::new(threads));
            let (engine_name, engine) = engines(&rt).into_iter().find(|(n, _)| *n == name).unwrap();
            let got = conv_pass(engine, Arc::clone(&rt));
            assert_eq!(
                want, got,
                "{engine_name}: conv diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn linear_layer_is_bitwise_thread_invariant() {
    let serial = Arc::new(Runtime::serial());
    for (name, engine) in engines(&serial) {
        let want = linear_pass(engine, Arc::clone(&serial));
        for threads in 1..=8 {
            let rt = Arc::new(Runtime::new(threads));
            let (engine_name, engine) = engines(&rt).into_iter().find(|(n, _)| *n == name).unwrap();
            let got = linear_pass(engine, Arc::clone(&rt));
            assert_eq!(
                want, got,
                "{engine_name}: linear diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn conv_rejects_kernel_larger_than_padded_input() {
    let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
    let mut rng = SplitMix64::new(3);
    let weight = kaiming_normal(&[4, 3 * 5 * 5], 75, &mut rng);
    let mut conv = Conv2d::new(3, 4, 5, 1, 1, weight, engine);
    // 2 + 2*1 < 5: must panic with a clear message instead of wrapping in
    // release builds and allocating an absurd im2row matrix.
    let x = Tensor::zeros(&[1, 3, 2, 2]);
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = conv.forward(&x, false);
    }));
    let msg = *panic
        .expect_err("invalid geometry must panic")
        .downcast::<String>()
        .expect("panic payload should be a formatted message");
    assert!(
        msg.contains("conv geometry invalid"),
        "panic should explain the geometry, got: {msg}"
    );
}
