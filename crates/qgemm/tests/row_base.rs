//! Row-offset engine derivation (`GemmEngine::with_row_base`): the
//! position contract behind deterministic data parallelism. A derived
//! engine computing a sub-batch's rows must reproduce, bit for bit, the
//! rows the base engine assigns those positions in the full-batch
//! product — regardless of lane blocking, thread count, or whether the
//! operands arrive packed or raw.

use std::sync::Arc;

use srmac_qgemm::{AccumRounding, MacGemm, MacGemmConfig};
use srmac_rng::SplitMix64;
use srmac_tensor::GemmEngine;

fn rand_vec(n: usize, seed: u64, scale: f32) -> Vec<f32> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| (rng.next_f64() as f32 - 0.5) * scale)
        .collect()
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Under SR, the derived engine's output over A's tail rows must equal
/// the same rows of the base engine's full product — across output
/// widths that exercise the 64-lane panel, the 8-lane panel and the
/// scalar tail, and across thread counts.
#[test]
fn derived_rows_match_full_product_rows() {
    let (m, k) = (13usize, 57);
    let sr = AccumRounding::Stochastic { r: 13 };
    for n in [9usize, 65, 130] {
        let a = rand_vec(m * k, 11 + n as u64, 2.0);
        let b = rand_vec(k * n, 13 + n as u64, 2.0);
        for threads in [1usize, 4] {
            let base = MacGemm::new(MacGemmConfig::fp8_fp12(sr, true).with_threads(threads));
            let mut full = vec![0.0f32; m * n];
            base.gemm(m, k, n, &a, &b, &mut full);
            for first_row in [1usize, 4, 9] {
                let rows = m - first_row;
                let derived = base
                    .with_row_base(first_row)
                    .expect("SR engine must derive a row-offset engine");
                let mut sub = vec![0.0f32; rows * n];
                derived.gemm(rows, k, n, &a[first_row * k..], &b, &mut sub);
                assert_eq!(
                    bits(&sub),
                    bits(&full[first_row * n..]),
                    "offset {first_row} rows differ from the full product \
                     (n={n}, threads={threads})"
                );
            }
        }
    }
}

/// Packed operands carry no position state: packs built by the base
/// engine must run through a derived engine bit-identically to the
/// derived engine's raw-operand path.
#[test]
fn base_packed_operands_run_on_derived_engines() {
    let (m, k, n) = (11usize, 33, 70);
    let sr = AccumRounding::Stochastic { r: 13 };
    let base = MacGemm::new(MacGemmConfig::fp8_fp12(sr, false).with_threads(1));
    let first_row = 5;
    let rows = m - first_row;
    let a = rand_vec(m * k, 3, 2.0);
    let b = rand_vec(k * n, 5, 2.0);
    let derived = base.with_row_base(first_row).expect("SR engine derives");

    let mut raw = vec![0.0f32; rows * n];
    derived.gemm(rows, k, n, &a[first_row * k..], &b, &mut raw);

    let pa = base.pack_a(rows, k, &a[first_row * k..]);
    let pb = base.pack_b(k, n, &b);
    let mut packed = vec![0.0f32; rows * n];
    derived.gemm_packed(rows, k, n, &pa, &pb, &mut packed);
    assert_eq!(bits(&raw), bits(&packed), "packed path changed bits");
}

/// Deriving from a derived engine composes offsets: two hops of 3 and 4
/// equal one hop of 7.
#[test]
fn row_bases_compose() {
    let (m, k, n) = (10usize, 21, 17);
    let sr = AccumRounding::Stochastic { r: 13 };
    let base = MacGemm::new(MacGemmConfig::fp8_fp12(sr, true).with_threads(1));
    let a = rand_vec(m * k, 17, 2.0);
    let b = rand_vec(k * n, 19, 2.0);
    let rows = m - 7;

    let one_hop = base.with_row_base(7).expect("SR engine derives");
    let two_hop: Arc<dyn GemmEngine> = {
        let mid = base.with_row_base(3).expect("SR engine derives");
        mid.with_row_base(4).expect("derived engine derives again")
    };
    let mut out_one = vec![0.0f32; rows * n];
    one_hop.gemm(rows, k, n, &a[7 * k..], &b, &mut out_one);
    let mut out_two = vec![0.0f32; rows * n];
    two_hop.gemm(rows, k, n, &a[7 * k..], &b, &mut out_two);
    assert_eq!(bits(&out_one), bits(&out_two), "offset composition broke");
}

/// Position-invariant configurations (RN accumulation) and a zero offset
/// both decline derivation — callers keep using the engine unchanged.
#[test]
fn rn_and_zero_offsets_decline_derivation() {
    let sr = AccumRounding::Stochastic { r: 13 };
    let rn_engine = MacGemm::new(MacGemmConfig::fp8_fp12(AccumRounding::Nearest, true));
    assert!(rn_engine.with_row_base(5).is_none(), "RN needs no offset");
    let sr_engine = MacGemm::new(MacGemmConfig::fp8_fp12(sr, true));
    assert!(
        sr_engine.with_row_base(0).is_none(),
        "zero offset is a no-op"
    );
    assert!(sr_engine.with_row_base(1).is_some());
}
