//! Tiled-kernel equivalence suite: the cache-blocked tile grid, the
//! multi-core tile dispatch and the narrow product-pair LUT must all be
//! pure performance transforms. Every tile shape x thread count
//! combination reproduces the lanes=1/threads=1 scalar reference
//! bit-for-bit, the pair LUT changes nothing when toggled, and formats
//! outside the narrow envelope (which silently fall back to the wide
//! u64 kernel) obey the same invariances.
//!
//! (Lane-width invariance at the default tiling lives in
//! `tests/lane_batch.rs`; the operand-level narrow/wide adder
//! equivalence lives next to the implementation in `src/batch.rs`.)

use srmac_fp::FpFormat;
use srmac_qgemm::{AccumRounding, MacGemm, MacGemmConfig, TileConfig};
use srmac_rng::SplitMix64;
use srmac_tensor::GemmEngine;

fn rand_vec(n: usize, seed: u64, scale: f32) -> Vec<f32> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| (rng.next_f64() as f32 - 0.5) * scale)
        .collect()
}

fn relu_sparse_vec(n: usize, seed: u64, sparsity: f64) -> Vec<f32> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let v = rng.next_f64() as f32 - 0.5;
            if rng.next_f64() < sparsity {
                if rng.next_f64() < 0.5 {
                    0.0
                } else {
                    -0.0
                }
            } else {
                v
            }
        })
        .collect()
}

const SHAPES: [(usize, usize, usize); 4] = [(5, 33, 67), (17, 40, 130), (3, 57, 8), (9, 48, 200)];

const TILES: [TileConfig; 4] = [
    TileConfig {
        row_tile: 1,
        col_tile: 64,
    },
    TileConfig {
        row_tile: 3,
        col_tile: 64,
    },
    TileConfig {
        row_tile: 8,
        col_tile: 128,
    },
    TileConfig {
        row_tile: 32,
        col_tile: 512,
    },
];

fn assert_bits_eq(reference: &[f32], out: &[f32], what: &str) {
    let same = reference
        .iter()
        .zip(out)
        .all(|(x, y)| x.to_bits() == y.to_bits());
    assert!(same, "{what}: output bits changed");
}

fn scalar_reference(
    config: MacGemmConfig,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
) -> Vec<f32> {
    let engine = MacGemm::new(config.with_threads(1)).with_lane_width(1);
    let mut out = vec![0.0f32; m * n];
    engine.gemm(m, k, n, a, b, &mut out);
    out
}

/// The load-bearing invariance of the tentpole: every tile shape x
/// thread count reproduces the scalar single-thread reference exactly,
/// under SR (where any dispatch-order leak would scramble the
/// position-seeded streams) and RN.
#[test]
fn tile_thread_grid_is_bitwise_invariant() {
    for rounding in [AccumRounding::Stochastic { r: 13 }, AccumRounding::Nearest] {
        let config = MacGemmConfig::fp8_fp12(rounding, false);
        for &(m, k, n) in &SHAPES {
            let a = rand_vec(m * k, 100 + (m * n) as u64, 2.0);
            let b = rand_vec(k * n, 200 + (k * n) as u64, 2.0);
            let reference = scalar_reference(config, m, k, n, &a, &b);
            for tiles in TILES {
                for threads in [1usize, 2, 3, 8] {
                    let engine = MacGemm::new(config.with_threads(threads)).with_tiles(tiles);
                    let mut out = vec![0.0f32; m * n];
                    engine.gemm(m, k, n, &a, &b, &mut out);
                    assert_bits_eq(
                        &reference,
                        &out,
                        &format!("{rounding:?} {m}x{k}x{n} tiles={tiles:?} threads={threads}"),
                    );
                }
            }
        }
    }
}

/// The prepared-operand path (`gemm_packed`) walks the same tile grid;
/// tile geometry must be equally invisible there, including when the
/// packed operands came from a *differently tiled* engine (packing is
/// tile-independent by contract).
#[test]
fn packed_path_is_tile_invariant() {
    let (m, k, n) = (17usize, 40, 130);
    let config = MacGemmConfig::fp8_fp12(AccumRounding::Stochastic { r: 13 }, false);
    let a = rand_vec(m * k, 41, 2.0);
    let b = rand_vec(k * n, 42, 2.0);
    let reference = scalar_reference(config, m, k, n, &a, &b);
    let packer = MacGemm::new(config.with_threads(1));
    let (pa, pb) = (packer.pack_a(m, k, &a), packer.pack_b(k, n, &b));
    for tiles in TILES {
        for threads in [1usize, 3] {
            let engine = MacGemm::new(config.with_threads(threads)).with_tiles(tiles);
            let mut out = vec![0.0f32; m * n];
            engine.gemm_packed(m, k, n, &pa, &pb, &mut out);
            assert_bits_eq(
                &reference,
                &out,
                &format!("packed tiles={tiles:?} threads={threads}"),
            );
        }
    }
}

/// The narrow product-pair LUT is engaged by default for the paper's
/// E6M5 family and must be a no-op in the bits when toggled off (wide
/// u64 fallback), across rounding modes, subnormal handling and ragged
/// shapes.
#[test]
fn pair_lut_toggle_changes_no_bits() {
    for rounding in [AccumRounding::Stochastic { r: 13 }, AccumRounding::Nearest] {
        for subnormals in [false, true] {
            let config = MacGemmConfig::fp8_fp12(rounding, subnormals);
            for &(m, k, n) in &SHAPES {
                let a = rand_vec(m * k, 300 + n as u64, 2.0);
                let b = rand_vec(k * n, 400 + n as u64, 2.0);
                let on = MacGemm::new(config.with_threads(1));
                assert!(
                    on.pair_lut_active(),
                    "E6M5 family must engage the narrow pair LUT by default"
                );
                let off = MacGemm::new(config.with_threads(1)).with_pair_lut(false);
                assert!(!off.pair_lut_active());
                let mut out_on = vec![0.0f32; m * n];
                on.gemm(m, k, n, &a, &b, &mut out_on);
                let mut out_off = vec![0.0f32; m * n];
                off.gemm(m, k, n, &a, &b, &mut out_off);
                assert_bits_eq(
                    &out_on,
                    &out_off,
                    &format!("{rounding:?} sub={subnormals} {m}x{k}x{n} pair LUT toggle"),
                );
            }
        }
    }
}

/// An accumulator outside the narrow envelope (E5M10 at SR13) must
/// decline the pair LUT and still honor the tile/thread invariance on
/// the wide kernel it falls back to.
#[test]
fn wide_fallback_format_keeps_tile_invariance() {
    let config = MacGemmConfig::fp8_acc(
        FpFormat::e5m10(),
        AccumRounding::Stochastic { r: 13 },
        false,
    );
    let probe = MacGemm::new(config.with_threads(1));
    assert!(
        !probe.pair_lut_active(),
        "E5M10 @ SR13 exceeds the narrow envelope; the gate must disengage"
    );
    let (m, k, n) = (9usize, 48, 200);
    let a = rand_vec(m * k, 51, 2.0);
    let b = rand_vec(k * n, 52, 2.0);
    let reference = scalar_reference(config, m, k, n, &a, &b);
    for tiles in [TILES[0], TILES[2], TILES[3]] {
        for threads in [1usize, 3] {
            let engine = MacGemm::new(config.with_threads(threads)).with_tiles(tiles);
            let mut out = vec![0.0f32; m * n];
            engine.gemm(m, k, n, &a, &b, &mut out);
            assert_bits_eq(
                &reference,
                &out,
                &format!("e5m10 tiles={tiles:?} threads={threads}"),
            );
        }
    }
}

/// ReLU-sparse inputs (zero-product skip interacts with SR draw
/// consumption) and saturating inputs (the special-lane scalar fixup)
/// must survive the tiled multi-core path bit-for-bit.
#[test]
fn sparse_and_special_inputs_survive_tiling() {
    let config = MacGemmConfig::fp8_fp12(AccumRounding::Stochastic { r: 13 }, true);
    let (m, k, n) = (11usize, 83, 67);
    let a = relu_sparse_vec(m * k, 61, 0.6);
    let b = rand_vec(k * n, 62, 2.0);
    let reference = scalar_reference(config, m, k, n, &a, &b);
    for tiles in [TILES[1], TILES[3]] {
        let engine = MacGemm::new(config.with_threads(3)).with_tiles(tiles);
        let mut out = vec![0.0f32; m * n];
        engine.gemm(m, k, n, &a, &b, &mut out);
        assert_bits_eq(&reference, &out, &format!("sparse tiles={tiles:?}"));
    }

    // Saturating magnitudes drive the accumulator to infinity; the
    // special path diverts to the scalar fixup inside the vector loop.
    let sat_a = vec![40000.0f32; m * k];
    let sat_b = vec![40000.0f32; k * n];
    let sat_ref = scalar_reference(config, m, k, n, &sat_a, &sat_b);
    assert!(sat_ref.iter().all(|v| v.is_infinite()));
    for threads in [1usize, 3] {
        let engine = MacGemm::new(config.with_threads(threads)).with_tiles(TILES[2]);
        let mut out = vec![0.0f32; m * n];
        engine.gemm(m, k, n, &sat_a, &sat_b, &mut out);
        assert_bits_eq(&sat_ref, &out, &format!("saturated threads={threads}"));
    }
}

/// Tile accessors and validation: the builder round-trips, and
/// `TileConfig::auto` is what a fresh engine reports.
#[test]
fn tile_config_accessors() {
    let config = MacGemmConfig::fp8_fp12(AccumRounding::Nearest, false);
    let engine = MacGemm::new(config);
    assert_eq!(engine.tiles(), TileConfig::auto());
    let custom = TileConfig {
        row_tile: 7,
        col_tile: 192,
    };
    assert_eq!(MacGemm::new(config).with_tiles(custom).tiles(), custom);
}
