//! Rounding machinery: round-to-nearest-even, truncation and stochastic
//! rounding of exact values into a target format.
//!
//! Stochastic rounding follows the hardware semantics of the paper's Fig. 1
//! (add an `r`-bit random word to the discarded tail; a carry out rounds up):
//! with tail fraction `eps_x`, the result rounds up for exactly
//! `floor(eps_x * 2^r)` of the `2^r` possible random words — "x will be
//! rounded up in `2^r * eps_x` cases out of `2^r`" (paper, Sec. II-A).

use crate::format::{mask, mask128, FpFormat};

/// Maximum supported number of stochastic-rounding random bits.
pub const MAX_SR_BITS: u32 = 64;

/// A rounding mode for [`FpFormat::round_finite`] and the golden operations
/// in [`crate::ops`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoundMode {
    /// IEEE-754 round-to-nearest, ties to even.
    NearestEven,
    /// Truncation toward zero.
    TowardZero,
    /// Stochastic rounding with an `r`-bit random word.
    ///
    /// `word` is consumed modulo `2^r`; callers draw a fresh word per
    /// operation (the paper's LFSR "operates in parallel and asynchronously"
    /// with the datapath).
    Stochastic {
        /// Number of random bits `r` (1..=64).
        r: u32,
        /// The random word for this operation.
        word: u64,
    },
}

impl RoundMode {
    /// Number of tail bits the mode inspects (`r` for SR, 2 for RN-even's
    /// guard+sticky reading, 0 for truncation).
    #[must_use]
    pub fn tail_depth(&self) -> u32 {
        match self {
            RoundMode::NearestEven => 2,
            RoundMode::TowardZero => 0,
            RoundMode::Stochastic { r, .. } => *r,
        }
    }
}

/// Exception flags produced by a rounding or arithmetic operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Flags {
    /// The result differs from the exact value.
    pub inexact: bool,
    /// The exact value overflowed the format's range.
    pub overflow: bool,
    /// A nonzero value was flushed to zero (or denormalized inexactly).
    pub underflow: bool,
    /// An invalid operation produced NaN.
    pub invalid: bool,
}

impl Flags {
    /// Merges two flag sets (bitwise OR of each flag).
    #[must_use]
    pub fn merge(self, other: Flags) -> Flags {
        Flags {
            inexact: self.inexact || other.inexact,
            overflow: self.overflow || other.overflow,
            underflow: self.underflow || other.underflow,
            invalid: self.invalid || other.invalid,
        }
    }
}

/// Result of rounding an exact value into a format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rounded {
    /// The encoded result.
    pub bits: u64,
    /// Exception flags.
    pub flags: Flags,
}

/// The discarded-tail summary a rounding decision is based on; exposed for
/// the RTL models in `srmac-core`, whose datapaths compute the same values
/// structurally.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TailInfo {
    /// First discarded bit (the guard bit).
    pub guard: bool,
    /// OR of every discarded bit below the guard.
    pub sticky: bool,
    /// The top `r` discarded bits as an integer (SR modes only, else 0).
    pub t: u64,
    /// True if any discarded bit is set.
    pub inexact: bool,
}

impl FpFormat {
    /// Rounds the exact value `(-1)^neg * sig * 2^exp` into this format.
    ///
    /// `trailing_ones` asserts that the exact value carries an infinite
    /// string of 1 bits immediately below `sig`'s LSB (used by the golden
    /// adder to represent far-path subtraction borrows exactly).
    /// `extra_sticky` asserts additional nonzero value strictly below every
    /// bit position the mode inspects; it only influences the sticky bit and
    /// the inexact flag.
    ///
    /// Overflow rounds to infinity for [`RoundMode::NearestEven`] and
    /// [`RoundMode::Stochastic`], and to the largest finite value for
    /// [`RoundMode::TowardZero`]. Without subnormal support, results in the
    /// subnormal range flush to zero after rounding at the normal quantum.
    ///
    /// # Panics
    ///
    /// Panics if `sig == 0` (use the zero encodings directly) or if a
    /// stochastic mode requests more than [`MAX_SR_BITS`] bits.
    #[must_use]
    pub fn round_finite(
        &self,
        neg: bool,
        exp: i32,
        sig: u128,
        trailing_ones: bool,
        extra_sticky: bool,
        mode: RoundMode,
    ) -> Rounded {
        assert!(sig != 0, "round_finite requires a nonzero significand");
        let p = self.precision();
        let r = match mode {
            RoundMode::Stochastic { r, .. } => {
                assert!(
                    (1..=MAX_SR_BITS).contains(&r),
                    "stochastic rounding needs 1..={MAX_SR_BITS} random bits"
                );
                r
            }
            _ => 1,
        };

        let msb = 127 - sig.leading_zeros() as i32;
        // Natural (normalized) quantum, and the format's minimum quantum.
        let qn = exp + msb - (p as i32 - 1);
        let q = if self.subnormals() {
            qn.max(self.min_quantum())
        } else {
            qn
        };
        let drop = q - exp; // Number of low bits of `sig` that fall below the quantum.

        let (mut kept, tail) = split_at_quantum(sig, drop, r, trailing_ones);
        let mut q = q;
        let sticky = tail.sticky || extra_sticky;
        let inexact = tail.inexact || extra_sticky;

        let round_up = match mode {
            RoundMode::NearestEven => tail.guard && (sticky || (kept & 1 == 1)),
            RoundMode::TowardZero => false,
            RoundMode::Stochastic { r, word } => {
                u128::from(tail.t) + u128::from(word & mask(r)) >= (1u128 << r)
            }
        };
        if round_up {
            kept += 1;
            if kept == 1u128 << p {
                kept >>= 1;
                q += 1;
            }
        }

        let mut flags = Flags {
            inexact,
            ..Flags::default()
        };
        if kept == 0 {
            flags.underflow = inexact;
            return Rounded {
                bits: self.zero_bits(neg),
                flags,
            };
        }

        if kept >= 1u128 << (p - 1) {
            // Normal-form result.
            let e_unbiased = q + p as i32 - 1;
            if e_unbiased > self.emax() {
                flags.overflow = true;
                flags.inexact = true;
                let bits = match mode {
                    RoundMode::TowardZero => self.max_finite_bits(neg),
                    _ => self.inf_bits(neg),
                };
                return Rounded { bits, flags };
            }
            if e_unbiased < self.emin() {
                // Only reachable without subnormal support (the quantum is
                // not clamped): flush to zero.
                debug_assert!(!self.subnormals());
                flags.underflow = true;
                flags.inexact = true;
                return Rounded {
                    bits: self.zero_bits(neg),
                    flags,
                };
            }
            let e_field = (e_unbiased + self.bias()) as u64;
            let m = (kept as u64) & self.man_mask();
            Rounded {
                bits: self.pack(neg, e_field, m),
                flags,
            }
        } else {
            // Subnormal result: only arises when the quantum was clamped.
            debug_assert!(self.subnormals() && q == self.min_quantum());
            flags.underflow = inexact;
            Rounded {
                bits: self.pack(neg, 0, kept as u64),
                flags,
            }
        }
    }

    /// Quantizes an `f64` into this format with the given rounding mode.
    ///
    /// The decomposition of the input is exact, so no double rounding occurs.
    ///
    /// # Examples
    ///
    /// ```
    /// use srmac_fp::{FpFormat, RoundMode};
    ///
    /// let f = FpFormat::e5m2();
    /// let one = f.quantize_f64(1.0, RoundMode::NearestEven).bits;
    /// assert_eq!(f.decode_f64(one), 1.0);
    /// // 1.1 is not representable in E5M2; RN picks the nearest neighbor.
    /// let q = f.quantize_f64(1.1, RoundMode::NearestEven);
    /// assert!(q.flags.inexact);
    /// assert_eq!(f.decode_f64(q.bits), 1.0);
    /// ```
    #[must_use]
    pub fn quantize_f64(&self, x: f64, mode: RoundMode) -> Rounded {
        if x.is_nan() {
            return Rounded {
                bits: self.nan_bits(),
                flags: Flags::default(),
            };
        }
        let neg = x.is_sign_negative();
        if x.is_infinite() {
            return Rounded {
                bits: self.inf_bits(neg),
                flags: Flags::default(),
            };
        }
        if x == 0.0 {
            return Rounded {
                bits: self.zero_bits(neg),
                flags: Flags::default(),
            };
        }
        let b = x.abs().to_bits();
        let e_field = (b >> 52) as i32;
        let frac = b & ((1u64 << 52) - 1);
        let (sig, exp) = if e_field == 0 {
            (u128::from(frac), -1074)
        } else {
            (u128::from(frac | (1u64 << 52)), e_field - 1075)
        };
        self.round_finite(neg, exp, sig, false, false, mode)
    }

    /// Quantizes an `f32` into this format (via exact promotion to `f64`).
    #[must_use]
    pub fn quantize_f32(&self, x: f32, mode: RoundMode) -> Rounded {
        self.quantize_f64(f64::from(x), mode)
    }
}

/// Splits `sig` (with `drop` low bits below the quantum, possibly negative
/// or > 128, and optional infinite trailing ones below the LSB) into the
/// kept significand and the tail summary read `r` bits deep.
fn split_at_quantum(sig: u128, drop: i32, r: u32, trailing_ones: bool) -> (u128, TailInfo) {
    if drop <= 0 {
        // Every bit of `sig` is at or above the quantum. Gap positions
        // between the quantum and sig's LSB are filled by the virtual ones.
        let up = (-drop) as u32;
        debug_assert!(up < 32, "quantum unexpectedly far below significand");
        let kept = (sig << up) | if trailing_ones { mask128(up) } else { 0 };
        let tail = TailInfo {
            guard: trailing_ones,
            sticky: trailing_ones,
            t: if trailing_ones { mask(r) } else { 0 },
            inexact: trailing_ones,
        };
        return (kept, tail);
    }

    let drop = drop as u32;
    let kept = shr_saturating(sig, drop);

    // Virtual tail string: bit i (i = 1 = just below the quantum, counting
    // down) is sig bit (drop - i) for drop - i in [0, 128), and
    // `trailing_ones` below that.
    let guard = tail_bit(sig, drop, 1, trailing_ones);

    // sticky: any bit strictly below the guard.
    let below_guard_from_sig = if drop >= 2 {
        low_bits_nonzero(sig, drop - 1)
    } else {
        false
    };
    let sticky = below_guard_from_sig || trailing_ones;

    // t: the top r tail bits as an integer.
    let t = {
        let from_sig = if drop >= r {
            (shr_saturating(sig, drop - r) as u64) & mask(r)
        } else {
            ((sig as u64) & mask(drop)) << (r - drop)
        };
        let pad = if trailing_ones && drop < r {
            mask(r - drop)
        } else {
            0
        };
        from_sig | pad
    };

    let inexact = low_bits_nonzero(sig, drop) || trailing_ones;
    (
        kept,
        TailInfo {
            guard,
            sticky,
            t,
            inexact,
        },
    )
}

/// Bit `i` (1-based from the top) of the virtual tail string.
fn tail_bit(sig: u128, drop: u32, i: u32, trailing_ones: bool) -> bool {
    if i > drop {
        return trailing_ones;
    }
    let pos = drop - i;
    if pos >= 128 {
        false
    } else {
        (sig >> pos) & 1 == 1
    }
}

fn shr_saturating(x: u128, n: u32) -> u128 {
    if n >= 128 {
        0
    } else {
        x >> n
    }
}

fn low_bits_nonzero(x: u128, n: u32) -> bool {
    x & mask128(n.min(128)) != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    const RN: RoundMode = RoundMode::NearestEven;

    fn dec(fmt: &FpFormat, bits: u64) -> f64 {
        fmt.decode_f64(bits)
    }

    #[test]
    fn quantize_exact_values_roundtrip() {
        for fmt in [
            FpFormat::e5m2(),
            FpFormat::e6m5(),
            FpFormat::e5m10(),
            FpFormat::e8m7(),
        ] {
            for bits in fmt.iter_encodings() {
                if fmt.is_nan(bits) {
                    continue;
                }
                let v = dec(&fmt, bits);
                let q = fmt.quantize_f64(v, RN);
                assert!(!q.flags.inexact, "{fmt}: {v} should quantize exactly");
                assert_eq!(
                    dec(&fmt, q.bits),
                    v,
                    "{fmt}: roundtrip of {bits:#x} ({v}) gave {:#x}",
                    q.bits
                );
            }
        }
    }

    #[test]
    fn nearest_even_ties() {
        let f = FpFormat::e5m2(); // ULP of 1.0 is 0.25
                                  // 1.125 is exactly between 1.0 and 1.25 -> ties to even (1.0).
        assert_eq!(dec(&f, f.quantize_f64(1.125, RN).bits), 1.0);
        // 1.375 is between 1.25 and 1.5 -> ties to even (1.5).
        assert_eq!(dec(&f, f.quantize_f64(1.375, RN).bits), 1.5);
        // Slightly above the tie rounds up.
        assert_eq!(dec(&f, f.quantize_f64(1.126, RN).bits), 1.25);
    }

    #[test]
    fn toward_zero_truncates() {
        let f = FpFormat::e5m2();
        let q = f.quantize_f64(1.24, RoundMode::TowardZero);
        assert_eq!(dec(&f, q.bits), 1.0);
        let q = f.quantize_f64(-1.24, RoundMode::TowardZero);
        assert_eq!(dec(&f, q.bits), -1.0);
    }

    #[test]
    fn overflow_behaviour_per_mode() {
        let f = FpFormat::e5m2(); // max finite 57344
        let big = 1.0e9;
        let q = f.quantize_f64(big, RN);
        assert!(q.flags.overflow);
        assert!(f.is_inf(q.bits));
        let q = f.quantize_f64(big, RoundMode::TowardZero);
        assert!(q.flags.overflow);
        assert_eq!(q.bits, f.max_finite_bits(false));
        let q = f.quantize_f64(-big, RoundMode::Stochastic { r: 8, word: 0 });
        assert!(q.flags.overflow);
        assert_eq!(q.bits, f.inf_bits(true));
    }

    #[test]
    fn rn_overflow_boundary() {
        let f = FpFormat::e5m2();
        // Values below maxfinite + ulp/2 round down to maxfinite.
        let maxf = 57344.0;
        let half_ulp = 4096.0; // ulp at emax = 2^15 * 2^-2 = 8192; half = 4096
        let q = f.quantize_f64(maxf + half_ulp - 1.0, RN);
        assert_eq!(q.bits, f.max_finite_bits(false));
        let q = f.quantize_f64(maxf + half_ulp, RN);
        assert!(f.is_inf(q.bits));
    }

    #[test]
    fn subnormal_quantization() {
        let f = FpFormat::e5m2();
        // Min subnormal 2^-16; half of it ties to even (0).
        let q = f.quantize_f64(2f64.powi(-17), RN);
        assert_eq!(dec(&f, q.bits), 0.0);
        assert!(q.flags.underflow);
        let q = f.quantize_f64(2f64.powi(-17) * 1.5, RN);
        assert_eq!(dec(&f, q.bits), 2f64.powi(-16));
        // Subnormal-exact values stay exact.
        let q = f.quantize_f64(3.0 * 2f64.powi(-16), RN);
        assert!(!q.flags.inexact);
        assert_eq!(dec(&f, q.bits), 3.0 * 2f64.powi(-16));
    }

    #[test]
    fn flush_to_zero_without_subnormals() {
        let f = FpFormat::e5m2().with_subnormals(false);
        // 3 * 2^-16 is subnormal-range: flushed even though it is exact
        // with subnormal support.
        let q = f.quantize_f64(3.0 * 2f64.powi(-16), RN);
        assert_eq!(q.bits, f.zero_bits(false));
        assert!(q.flags.underflow);
        // Values that round (at the *normal* quantum) to >= 2^emin survive.
        let q = f.quantize_f64(2f64.powi(-14) * 0.999, RN);
        assert_eq!(dec(&f, q.bits), 2f64.powi(-14));
    }

    #[test]
    fn stochastic_rounding_exhaustive_distribution() {
        // For x strictly between two E5M2 neighbors, the number of r-bit
        // words that round up must be exactly floor(eps * 2^r).
        let f = FpFormat::e5m2();
        let r = 6;
        // x = 1.0 + 3/16 ulp-of-1.0... use 1.0 + 0.25 * k/64 for several k.
        for k in [1u32, 7, 17, 32, 45, 63] {
            let x = 1.0 + 0.25 * f64::from(k) / 64.0;
            let mut ups = 0u32;
            for word in 0..(1u64 << r) {
                let q = f.quantize_f64(x, RoundMode::Stochastic { r, word });
                let v = dec(&f, q.bits);
                assert!(v == 1.0 || v == 1.25, "SR must pick a neighbor");
                if v == 1.25 {
                    ups += 1;
                }
            }
            assert_eq!(ups, k, "eps = {k}/64 must round up in exactly {k} cases");
        }
    }

    #[test]
    fn stochastic_rounding_truncates_below_r() {
        // Tail bits beyond position r are dropped: with eps < 2^-r the value
        // never rounds up (the r = 4 accuracy-collapse mechanism).
        let f = FpFormat::e5m2();
        let r = 4;
        let x = 1.0 + 0.25 / 64.0; // eps = 1/64 < 1/16
        for word in 0..(1u64 << r) {
            let q = f.quantize_f64(x, RoundMode::Stochastic { r, word });
            assert_eq!(dec(&f, q.bits), 1.0);
        }
        // Same value with r = 6 rounds up for exactly one word.
        let mut ups = 0;
        for word in 0..(1u64 << 6) {
            let q = f.quantize_f64(x, RoundMode::Stochastic { r: 6, word });
            if dec(&f, q.bits) == 1.25 {
                ups += 1;
            }
        }
        assert_eq!(ups, 1);
    }

    #[test]
    fn trailing_ones_round_like_the_limit() {
        // value = (2 - 2^-inf) should round to 2.0 under RN.
        let f = FpFormat::e5m2();
        let rounded = f.round_finite(false, -63, mask128(64), true, false, RN);
        assert_eq!(dec(&f, rounded.bits), 2.0);
        // Under SR with r bits it rounds up for all but... T = all ones, so
        // any nonzero word carries: 2^r - 1 of 2^r words round up.
        let r = 5;
        let mut ups = 0;
        for word in 0..(1u64 << r) {
            let rr = f.round_finite(
                false,
                -63,
                mask128(64),
                true,
                false,
                RoundMode::Stochastic { r, word },
            );
            if dec(&f, rr.bits) == 2.0 {
                ups += 1;
            }
        }
        assert_eq!(ups, (1 << r) - 1);
    }

    #[test]
    fn stochastic_rounding_r64_mask64_edge_case() {
        // r = MAX_SR_BITS = 64 exercises mask(64) (the n >= 64 branch must
        // return all-ones, not shift-overflow) and the u128 carry compare
        // `t + word >= 2^64`, which no u64 arithmetic could represent.
        let f = FpFormat::e5m2();
        let r = MAX_SR_BITS;
        let x = 1.0 + 0.25 * 0.5; // exactly halfway: eps = 1/2
                                  // word = 0: t + 0 = 2^63 < 2^64 -> rounds down.
        let q = f.quantize_f64(x, RoundMode::Stochastic { r, word: 0 });
        assert_eq!(dec(&f, q.bits), 1.0);
        // word = 2^63: t + word = 2^64 -> carries, rounds up.
        let q = f.quantize_f64(
            x,
            RoundMode::Stochastic {
                r,
                word: 1u64 << 63,
            },
        );
        assert_eq!(dec(&f, q.bits), 1.25);
        // word = u64::MAX (the full mask(64) word) on a tiny eps still
        // rounds up; on an exact value it must not.
        let q = f.quantize_f64(
            1.0 + 0.25 / 64.0,
            RoundMode::Stochastic { r, word: u64::MAX },
        );
        assert_eq!(dec(&f, q.bits), 1.25);
        let q = f.quantize_f64(1.25, RoundMode::Stochastic { r, word: u64::MAX });
        assert_eq!(dec(&f, q.bits), 1.25, "exact values ignore the random word");
        assert!(!q.flags.inexact);
    }

    #[test]
    fn stochastic_rounding_r64_threshold_is_exact() {
        // For eps = k/64, exactly the words with t + word >= 2^64 round up:
        // the round-up probability measured over word strata must be
        // eps even at r = 64. Check the threshold word directly.
        let f = FpFormat::e5m2();
        for k in [1u64, 13, 32, 63] {
            let x = 1.0 + 0.25 * k as f64 / 64.0;
            // t (the top 64 tail bits) is k << 58 for eps = k/64.
            let t = k << 58;
            let threshold = t.wrapping_neg(); // smallest word that carries
            let down = f.quantize_f64(
                x,
                RoundMode::Stochastic {
                    r: 64,
                    word: threshold - 1,
                },
            );
            assert_eq!(dec(&f, down.bits), 1.0, "eps {k}/64: below threshold");
            let up = f.quantize_f64(
                x,
                RoundMode::Stochastic {
                    r: 64,
                    word: threshold,
                },
            );
            assert_eq!(dec(&f, up.bits), 1.25, "eps {k}/64: at threshold");
        }
    }

    #[test]
    #[should_panic(expected = "stochastic rounding needs 1..=64")]
    fn stochastic_rounding_rejects_r_above_max() {
        let f = FpFormat::e5m2();
        let _ = f.quantize_f64(1.1, RoundMode::Stochastic { r: 65, word: 0 });
    }

    #[test]
    fn negative_values_round_magnitude() {
        let f = FpFormat::e5m2();
        let q = f.quantize_f64(-1.1, RN);
        assert_eq!(dec(&f, q.bits), -1.0);
        let q = f.quantize_f64(-1.2, RN);
        assert_eq!(dec(&f, q.bits), -1.25);
    }

    #[test]
    fn significand_carry_propagates_to_exponent() {
        let f = FpFormat::e5m2();
        // 1.75 + ulp/2 up = rounds to 2.0 (carry out of significand).
        let q = f.quantize_f64(1.875, RN);
        assert_eq!(dec(&f, q.bits), 2.0);
    }
}
