//! Golden bit-exact arithmetic: addition/subtraction and multiplication on
//! encoded values, with any [`RoundMode`].
//!
//! These routines compute the *exact* real result internally (using wide
//! integers, plus an exactness-preserving compression for very distant
//! operands) and then round once. They are the ground truth against which
//! the RTL-level models in `srmac-core` are verified.

use crate::format::{mask128, FpFormat};
use crate::round::{Flags, RoundMode, Rounded};
use crate::value::FpValue;

/// Adds two encoded values of the same format, rounding with `mode`.
///
/// Shorthand for [`add_full`] discarding the flags.
#[must_use]
pub fn add(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> u64 {
    add_full(fmt, a, b, mode).bits
}

/// Subtracts `b` from `a` (`a + (-b)`).
#[must_use]
pub fn sub(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> u64 {
    add(fmt, a, fmt.negate(b), mode)
}

/// Adds two encoded values of the same format, returning flags.
///
/// Semantics follow IEEE-754 where applicable:
/// - NaN operands (or `inf + -inf`) produce the canonical NaN;
/// - exact zero results of nonzero operands are `+0`;
/// - `-0 + -0 = -0`, any other zero pairing gives `+0`;
/// - with subnormal support disabled, subnormal inputs read as zero and
///   subnormal-range outputs flush to zero.
#[must_use]
pub fn add_full(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> Rounded {
    let va = fmt.decode(a);
    let vb = fmt.decode(b);

    // Specials.
    if va.is_nan() || vb.is_nan() {
        let invalid = !va.is_nan() && !vb.is_nan();
        return Rounded {
            bits: fmt.nan_bits(),
            flags: Flags {
                invalid,
                ..Flags::default()
            },
        };
    }
    match (va, vb) {
        (FpValue::Inf { neg: n1 }, FpValue::Inf { neg: n2 }) => {
            return if n1 == n2 {
                Rounded {
                    bits: fmt.inf_bits(n1),
                    flags: Flags::default(),
                }
            } else {
                Rounded {
                    bits: fmt.nan_bits(),
                    flags: Flags {
                        invalid: true,
                        ..Flags::default()
                    },
                }
            };
        }
        (FpValue::Inf { neg }, _) | (_, FpValue::Inf { neg }) => {
            return Rounded {
                bits: fmt.inf_bits(neg),
                flags: Flags::default(),
            };
        }
        (FpValue::Zero { neg: n1 }, FpValue::Zero { neg: n2 }) => {
            return Rounded {
                bits: fmt.zero_bits(n1 && n2),
                flags: Flags::default(),
            };
        }
        (FpValue::Zero { .. }, FpValue::Finite { .. }) => {
            // b is representable as-is (it decoded to finite), but re-encode
            // to normalize flushed-subnormal inputs.
            return Rounded {
                bits: b & fmt.bits_mask(),
                flags: Flags::default(),
            };
        }
        (FpValue::Finite { .. }, FpValue::Zero { .. }) => {
            return Rounded {
                bits: a & fmt.bits_mask(),
                flags: Flags::default(),
            };
        }
        _ => {}
    }

    let (
        FpValue::Finite {
            neg: mut na,
            exp: mut ea,
            sig: mut sa,
        },
        FpValue::Finite {
            neg: mut nb,
            exp: mut eb,
            sig: mut sb,
        },
    ) = (va, vb)
    else {
        unreachable!("specials handled above")
    };

    // Order by magnitude: x = larger, y = smaller.
    if va.cmp_mag(&vb) == std::cmp::Ordering::Less {
        std::mem::swap(&mut na, &mut nb);
        std::mem::swap(&mut ea, &mut eb);
        std::mem::swap(&mut sa, &mut sb);
    }
    let d = ea - eb;
    debug_assert!(
        d >= 0,
        "ULP exponents must be ordered after the magnitude swap"
    );
    let d = d as u32;

    // Fraction bits carried below x's ULP. Wide enough that the fuzzy
    // region of the sigma-compression (see below) sits strictly below every
    // bit position the rounding mode inspects.
    let f_bits = fmt.precision() + mode.tail_depth().max(2) + 4;
    debug_assert!(
        fmt.precision() + f_bits + 1 < 128,
        "datapath width exceeds u128"
    );

    let x = sa << f_bits;
    // Align y; if it is shifted entirely past the window, compress the
    // dropped bits into a single "sigma" flag (exactness argument: the
    // dropped value is < 1 unit of the window LSB, which is > tail_depth + 2
    // positions below the result's last inspected bit).
    let (y, sigma) = if d <= f_bits {
        (sb << (f_bits - d), false)
    } else {
        let sh = d - f_bits;
        let y = if sh >= 128 { 0 } else { sb >> sh };
        let dropped = if sh >= 128 { sb } else { sb & mask128(sh) };
        (y, dropped != 0)
    };

    let effective_sub = na != nb;
    let (s, trailing_ones, extra_sticky) = if effective_sub {
        debug_assert!(x >= y);
        if sigma {
            // True value is (x - y) - delta with 0 < delta < 1 window unit:
            // the bit string is (x - y - 1) followed by infinite ones.
            (x - y - 1, true, false)
        } else {
            (x - y, false, false)
        }
    } else {
        (x + y, false, sigma)
    };

    if s == 0 {
        debug_assert!(!trailing_ones);
        // Exact cancellation: +0 (IEEE round-to-nearest convention).
        return Rounded {
            bits: fmt.zero_bits(false),
            flags: Flags::default(),
        };
    }

    fmt.round_finite(na, ea - f_bits as i32, s, trailing_ones, extra_sticky, mode)
}

/// Multiplies two `fmt_in` encodings into `fmt_out`, rounding with `mode`.
///
/// The significand product is computed exactly before the single rounding,
/// so `fmt_in == fmt_out` behaves like an IEEE fused operation and a wide
/// enough `fmt_out` (at least `2p` significand bits and `E+1` exponent bits)
/// makes the product exact — the paper's MAC multiplier configuration
/// (E5M2 inputs, E6M5 output).
#[must_use]
pub fn mul_full(fmt_in: FpFormat, fmt_out: FpFormat, a: u64, b: u64, mode: RoundMode) -> Rounded {
    let va = fmt_in.decode(a);
    let vb = fmt_in.decode(b);

    if va.is_nan() || vb.is_nan() {
        return Rounded {
            bits: fmt_out.nan_bits(),
            flags: Flags::default(),
        };
    }
    let neg = va.is_negative() != vb.is_negative();
    match (&va, &vb) {
        (FpValue::Inf { .. }, FpValue::Zero { .. })
        | (FpValue::Zero { .. }, FpValue::Inf { .. }) => {
            return Rounded {
                bits: fmt_out.nan_bits(),
                flags: Flags {
                    invalid: true,
                    ..Flags::default()
                },
            };
        }
        (FpValue::Inf { .. }, _) | (_, FpValue::Inf { .. }) => {
            return Rounded {
                bits: fmt_out.inf_bits(neg),
                flags: Flags::default(),
            };
        }
        (FpValue::Zero { .. }, _) | (_, FpValue::Zero { .. }) => {
            return Rounded {
                bits: fmt_out.zero_bits(neg),
                flags: Flags::default(),
            };
        }
        _ => {}
    }
    let (
        FpValue::Finite {
            exp: ea, sig: sa, ..
        },
        FpValue::Finite {
            exp: eb, sig: sb, ..
        },
    ) = (va, vb)
    else {
        unreachable!("specials handled above")
    };
    debug_assert!(sa < 1 << 25 && sb < 1 << 25);
    fmt_out.round_finite(neg, ea + eb, sa * sb, false, false, mode)
}

/// Multiplies two encodings, discarding flags.
#[must_use]
pub fn mul(fmt_in: FpFormat, fmt_out: FpFormat, a: u64, b: u64, mode: RoundMode) -> u64 {
    mul_full(fmt_in, fmt_out, a, b, mode).bits
}

/// True if `fmt_out` can represent every product of two `fmt_in` values
/// exactly (ignoring subnormal flushing when `fmt_out` lacks subnormals):
/// requires `p_out >= 2 * p_in` and an exponent field wider by one bit.
#[must_use]
pub fn product_is_exact(fmt_in: FpFormat, fmt_out: FpFormat) -> bool {
    fmt_out.precision() >= 2 * fmt_in.precision() && fmt_out.exp_bits() > fmt_in.exp_bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::FpFormat;

    const RN: RoundMode = RoundMode::NearestEven;

    fn enc(fmt: &FpFormat, x: f64) -> u64 {
        let q = fmt.quantize_f64(x, RN);
        assert!(!q.flags.inexact, "{x} not representable in {fmt}");
        q.bits
    }

    #[test]
    fn simple_sums() {
        let f = FpFormat::e6m5();
        let one = enc(&f, 1.0);
        let two = enc(&f, 2.0);
        assert_eq!(f.decode_f64(add(f, one, one, RN)), 2.0);
        assert_eq!(f.decode_f64(add(f, one, two, RN)), 3.0);
        assert_eq!(f.decode_f64(sub(f, two, one, RN)), 1.0);
        assert_eq!(f.decode_f64(sub(f, one, one, RN)), 0.0);
    }

    #[test]
    fn addition_matches_f64_when_small_distance() {
        // For operands whose exponents are close, the f64 sum is exact, so
        // quantizing it equals our golden add.
        let f = FpFormat::e6m5();
        let mut patterns = Vec::new();
        for bits in f.iter_encodings() {
            if !f.is_nan(bits) && !f.is_inf(bits) {
                patterns.push(bits);
            }
        }
        let mut checked = 0usize;
        for &a in patterns.iter().step_by(7) {
            for &b in patterns.iter().step_by(11) {
                let xa = f.decode_f64(a);
                let xb = f.decode_f64(b);
                if xa == 0.0 || xb == 0.0 {
                    continue;
                }
                let (ea, eb) = (xa.abs().log2().floor(), xb.abs().log2().floor());
                if (ea - eb).abs() > 40.0 {
                    continue; // f64 sum no longer exact
                }
                let exact = xa + xb; // exact in f64: p=6 each, distance <= 40
                let expect = f.quantize_f64(exact, RN).bits;
                let got = add(f, a, b, RN);
                assert_eq!(
                    f.decode_f64(got),
                    f.decode_f64(expect),
                    "{xa} + {xb}: got {}, want {}",
                    f.decode_f64(got),
                    f.decode_f64(expect)
                );
                checked += 1;
            }
        }
        assert!(checked > 10_000, "exercised {checked} pairs");
    }

    #[test]
    fn far_subtraction_with_sigma_compression() {
        let f = FpFormat::e8m7();
        // 1.0 - tiny: tiny is many ULPs below the window; exact result is
        // just under 1.0 and must round back to 1.0 under RN.
        let one = enc(&f, 1.0);
        let tiny = enc(&f, 2f64.powi(-100));
        let rn = add(f, one, f.negate(tiny), RN);
        assert_eq!(f.decode_f64(rn), 1.0);
        // Under SR, 1 - tiny rounds down to prev(1.0) for at most one random
        // word in 2^r (eps is all-ones) — i.e. rounds *up* to 1.0 for all
        // word != 0.
        let r = 9;
        let mut to_one = 0;
        for word in 0..(1u64 << r) {
            let v = add(f, one, f.negate(tiny), RoundMode::Stochastic { r, word });
            if f.decode_f64(v) == 1.0 {
                to_one += 1;
            }
        }
        assert_eq!(to_one, (1 << r) - 1);
    }

    #[test]
    fn far_addition_sigma_is_sticky_only() {
        let f = FpFormat::e8m7();
        let one = enc(&f, 1.0);
        let tiny = enc(&f, 2f64.powi(-100));
        // RN: 1 + tiny rounds to 1.0 (tail guard 0).
        assert_eq!(f.decode_f64(add(f, one, tiny, RN)), 1.0);
        // SR truncates the sub-2^-r tail: never rounds up.
        for word in [0u64, 1, 100, 511] {
            let v = add(f, one, tiny, RoundMode::Stochastic { r: 9, word });
            assert_eq!(f.decode_f64(v), 1.0);
        }
    }

    #[test]
    fn signed_zero_rules() {
        let f = FpFormat::e6m5();
        let pz = f.zero_bits(false);
        let nz = f.zero_bits(true);
        assert_eq!(add(f, nz, nz, RN), nz);
        assert_eq!(add(f, pz, nz, RN), pz);
        assert_eq!(add(f, nz, pz, RN), pz);
        let one = enc(&f, 1.0);
        // x + (-x) = +0
        assert_eq!(add(f, one, f.negate(one), RN), pz);
    }

    #[test]
    fn special_value_rules() {
        let f = FpFormat::e6m5();
        let inf = f.inf_bits(false);
        let ninf = f.inf_bits(true);
        let one = enc(&f, 1.0);
        assert!(f.is_nan(add(f, inf, ninf, RN)));
        assert_eq!(add(f, inf, one, RN), inf);
        assert_eq!(add(f, one, ninf, RN), ninf);
        assert!(f.is_nan(add(f, f.nan_bits(), one, RN)));
        assert!(f.is_nan(mul(f, f, inf, f.zero_bits(false), RN)));
        assert_eq!(mul(f, f, inf, f.negate(one), RN), ninf);
    }

    #[test]
    fn addition_overflow_saturates_to_inf() {
        let f = FpFormat::e5m2();
        let maxf = f.max_finite_bits(false);
        let r = add_full(f, maxf, maxf, RN);
        assert!(r.flags.overflow);
        assert!(f.is_inf(r.bits));
    }

    #[test]
    fn e5m2_products_exact_into_e6m5() {
        assert!(product_is_exact(FpFormat::e5m2(), FpFormat::e6m5()));
        assert!(!product_is_exact(FpFormat::e4m3(), FpFormat::e6m5()));
        let fin = FpFormat::e5m2();
        let fout = FpFormat::e6m5();
        for a in fin.iter_encodings() {
            for b in fin.iter_encodings() {
                if fin.is_nan(a) || fin.is_nan(b) || fin.is_inf(a) || fin.is_inf(b) {
                    continue;
                }
                let r = mul_full(fin, fout, a, b, RN);
                assert!(
                    !r.flags.inexact,
                    "product of {:#04x} and {:#04x} must be exact in E6M5",
                    a, b
                );
                let exact = fin.decode_f64(a) * fin.decode_f64(b); // exact in f64
                assert_eq!(fout.decode_f64(r.bits), exact);
            }
        }
    }

    #[test]
    fn e5m2_products_without_subnormals_flush() {
        let fin = FpFormat::e5m2().with_subnormals(false);
        let fout = FpFormat::e6m5().with_subnormals(false);
        // Smallest normal product = 2^-14 * 2^-14 = 2^-28 >= 2^-30: exact.
        let min_n = fin.min_normal_bits(false);
        let r = mul_full(fin, fout, min_n, min_n, RN);
        assert!(!r.flags.inexact);
        assert_eq!(fout.decode_f64(r.bits), 2f64.powi(-28));
        // Subnormal inputs decode as zero.
        let sub = fin.pack(false, 0, 1);
        let one = fin.pack(false, 15, 0);
        let r = mul_full(fin, fout, sub, one, RN);
        assert_eq!(r.bits, fout.zero_bits(false));
    }

    #[test]
    fn sr_add_unbiased_over_all_words() {
        // Mean of SR results over all 2^r words equals the exact value (when
        // eps has <= r bits) — the unbiasedness that defeats stagnation.
        let f = FpFormat::e6m5();
        let one = enc(&f, 1.0);
        let small = enc(&f, 2f64.powi(-9)); // eps = 2^-4 ulp of 1.0
        let r = 8;
        let mut acc = 0.0;
        for word in 0..(1u64 << r) {
            acc += f.decode_f64(add(f, one, small, RoundMode::Stochastic { r, word }));
        }
        let mean = acc / f64::from(1u32 << r);
        assert!(
            (mean - (1.0 + 2f64.powi(-9))).abs() < 1e-12,
            "mean = {mean}"
        );
    }
}
