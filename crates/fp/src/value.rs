//! Exact semantic values of floating-point encodings.
//!
//! [`FpValue`] represents the mathematical value behind an encoding without
//! any precision limit: finite values are `(-1)^neg * sig * 2^exp` with an
//! exact integer significand. This is the representation the golden
//! arithmetic in [`crate::ops`] computes with.

use crate::format::FpFormat;

/// The exact value of a floating-point encoding.
///
/// Finite values are *not* required to be normalized: `sig` may carry
/// trailing zeros. Use [`FpValue::normalized`] for canonical comparisons.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FpValue {
    /// Not a number (payload-less; all NaNs are collapsed).
    Nan,
    /// Positive or negative infinity.
    Inf {
        /// Sign: `true` for negative infinity.
        neg: bool,
    },
    /// Positive or negative zero.
    Zero {
        /// Sign: `true` for negative zero.
        neg: bool,
    },
    /// A nonzero finite value `(-1)^neg * sig * 2^exp`.
    Finite {
        /// Sign: `true` for negative values.
        neg: bool,
        /// Exponent of the significand's unit in the last place.
        exp: i32,
        /// Integer significand, never zero.
        sig: u128,
    },
}

impl FpValue {
    /// Creates a finite value, collapsing a zero significand to `Zero`.
    #[must_use]
    pub fn finite(neg: bool, exp: i32, sig: u128) -> Self {
        if sig == 0 {
            FpValue::Zero { neg }
        } else {
            FpValue::Finite { neg, exp, sig }
        }
    }

    /// Canonicalizes a finite value by stripping trailing zero bits of the
    /// significand; other variants are returned unchanged.
    #[must_use]
    pub fn normalized(self) -> Self {
        match self {
            FpValue::Finite { neg, exp, sig } => {
                let tz = sig.trailing_zeros();
                FpValue::Finite {
                    neg,
                    exp: exp + tz as i32,
                    sig: sig >> tz,
                }
            }
            other => other,
        }
    }

    /// True if the value is NaN.
    #[must_use]
    pub fn is_nan(&self) -> bool {
        matches!(self, FpValue::Nan)
    }

    /// True for ±zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        matches!(self, FpValue::Zero { .. })
    }

    /// True for nonzero finite values.
    #[must_use]
    pub fn is_finite_nonzero(&self) -> bool {
        matches!(self, FpValue::Finite { .. })
    }

    /// Sign of the value (`true` = negative). NaN reports `false`.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        match self {
            FpValue::Nan => false,
            FpValue::Inf { neg } | FpValue::Zero { neg } | FpValue::Finite { neg, .. } => *neg,
        }
    }

    /// Returns the value with the sign flipped (NaN unchanged).
    #[must_use]
    pub fn negated(self) -> Self {
        match self {
            FpValue::Nan => FpValue::Nan,
            FpValue::Inf { neg } => FpValue::Inf { neg: !neg },
            FpValue::Zero { neg } => FpValue::Zero { neg: !neg },
            FpValue::Finite { neg, exp, sig } => FpValue::Finite {
                neg: !neg,
                exp,
                sig,
            },
        }
    }

    /// Exact conversion to `f64`.
    ///
    /// Exact for every value of every supported format (p <= 24, |exp| small);
    /// values outside `f64` range would lose precision, but no supported
    /// format produces them.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        match *self {
            FpValue::Nan => f64::NAN,
            FpValue::Inf { neg } => {
                if neg {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                }
            }
            FpValue::Zero { neg } => {
                if neg {
                    -0.0
                } else {
                    0.0
                }
            }
            FpValue::Finite { neg, exp, sig } => {
                let v = self.normalized();
                let (exp, sig) = match v {
                    FpValue::Finite { exp, sig, .. } => (exp, sig),
                    _ => (exp, sig),
                };
                debug_assert!(sig <= (1u128 << 53), "significand too wide for exact f64");
                let magnitude = (sig as f64) * 2f64.powi(exp);
                if neg {
                    -magnitude
                } else {
                    magnitude
                }
            }
        }
    }

    /// Compares the magnitudes of two values. NaN and infinities are not
    /// supported here (callers dispatch on specials first).
    ///
    /// # Panics
    ///
    /// Panics if either value is NaN or infinite.
    #[must_use]
    pub fn cmp_mag(&self, other: &FpValue) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        // Key = (exponent of MSB, left-justified significand): magnitudes
        // compare lexicographically on it.
        let key = |v: &FpValue| -> Option<(i32, u128)> {
            match *v {
                FpValue::Zero { .. } => None,
                FpValue::Finite { exp, sig, .. } => {
                    let lz = sig.leading_zeros();
                    Some((exp + (127 - lz as i32), sig << lz))
                }
                _ => panic!("cmp_mag on non-finite value"),
            }
        };
        match (key(self), key(other)) {
            (None, None) => Ordering::Equal,
            (None, Some(_)) => Ordering::Less,
            (Some(_), None) => Ordering::Greater,
            (Some((ea, sa)), Some((eb, sb))) => ea.cmp(&eb).then(sa.cmp(&sb)),
        }
    }
}

impl FpFormat {
    /// Decodes an encoding into its exact value.
    ///
    /// With subnormal support disabled, subnormal encodings decode to
    /// (signed) zero, matching the paper's "W/O Sub" hardware.
    ///
    /// # Examples
    ///
    /// ```
    /// use srmac_fp::{FpFormat, FpValue};
    ///
    /// let f = FpFormat::e5m2();
    /// // 0x3C = 0_01111_00 = 1.0
    /// assert_eq!(f.decode(0x3C).to_f64(), 1.0);
    /// ```
    #[must_use]
    pub fn decode(&self, bits: u64) -> FpValue {
        let (neg, e, m) = self.unpack(bits);
        if e == self.exp_special() {
            return if m == 0 {
                FpValue::Inf { neg }
            } else {
                FpValue::Nan
            };
        }
        if e == 0 {
            if m == 0 || !self.subnormals() {
                return FpValue::Zero { neg };
            }
            // Subnormal: value = m * 2^(emin - M).
            return FpValue::Finite {
                neg,
                exp: self.min_quantum(),
                sig: u128::from(m),
            };
        }
        let sig = u128::from(m) | (1u128 << self.man_bits());
        let exp = (e as i32 - self.bias()) - self.man_bits() as i32;
        FpValue::Finite { neg, exp, sig }
    }

    /// Decodes an encoding directly to `f64` (exact for all supported
    /// formats).
    #[must_use]
    pub fn decode_f64(&self, bits: u64) -> f64 {
        self.decode(bits).to_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_known_e5m2_values() {
        let f = FpFormat::e5m2();
        assert_eq!(f.decode_f64(0x00), 0.0);
        assert!(f.decode_f64(0x80).is_sign_negative());
        assert_eq!(f.decode_f64(0x3C), 1.0);
        assert_eq!(f.decode_f64(0x3D), 1.25);
        assert_eq!(f.decode_f64(0x3E), 1.5);
        assert_eq!(f.decode_f64(0x42), 3.0);
        assert_eq!(f.decode_f64(0x44), 4.0);
        // Max finite E5M2 = 1.75 * 2^15 = 57344.
        assert_eq!(f.decode_f64(f.max_finite_bits(false)), 57344.0);
        // Min subnormal = 2^-16.
        assert_eq!(f.decode_f64(0x01), 2f64.powi(-16));
        assert!(f.decode_f64(f.inf_bits(false)).is_infinite());
        assert!(f.decode_f64(f.nan_bits()).is_nan());
    }

    #[test]
    fn decode_subnormals_flush_when_disabled() {
        let f = FpFormat::e5m2().with_subnormals(false);
        assert_eq!(f.decode(0x01), FpValue::Zero { neg: false });
        assert_eq!(f.decode(0x81), FpValue::Zero { neg: true });
        // Normals unaffected.
        assert_eq!(f.decode_f64(0x3C), 1.0);
    }

    #[test]
    fn decode_e6m5_values() {
        let f = FpFormat::e6m5();
        // 1.0 = 0_011111_00000
        let one = f.pack(false, 31, 0);
        assert_eq!(f.decode_f64(one), 1.0);
        // ULP of 1.0 is 2^-5.
        assert_eq!(f.decode_f64(one + 1), 1.0 + 2f64.powi(-5));
        assert_eq!(f.decode_f64(f.min_normal_bits(false)), 2f64.powi(-30));
        assert_eq!(f.decode_f64(1), 2f64.powi(-35));
    }

    #[test]
    fn normalized_strips_trailing_zeros() {
        let v = FpValue::Finite {
            neg: false,
            exp: -4,
            sig: 0b1100,
        };
        assert_eq!(
            v.normalized(),
            FpValue::Finite {
                neg: false,
                exp: -2,
                sig: 0b11
            }
        );
        assert_eq!(v.to_f64(), 0.75);
    }

    #[test]
    fn cmp_mag_orders_by_magnitude() {
        use std::cmp::Ordering;
        let f = FpFormat::e5m2();
        let one = f.decode(0x3C);
        let one_q = f.decode(0x3D);
        let three = f.decode(0x42);
        let zero = f.decode(0x00);
        assert_eq!(one.cmp_mag(&one_q), Ordering::Less);
        assert_eq!(three.cmp_mag(&one), Ordering::Greater);
        assert_eq!(zero.cmp_mag(&one), Ordering::Less);
        assert_eq!(one.cmp_mag(&one), Ordering::Equal);
        // Sign is ignored.
        let neg_three = f.decode(f.negate(0x42));
        assert_eq!(neg_three.cmp_mag(&three), Ordering::Equal);
    }

    #[test]
    fn roundtrip_all_encodings_to_f64_and_back_is_injective() {
        // Distinct finite encodings (modulo -0/+0) map to distinct f64s.
        for fmt in [FpFormat::e5m2(), FpFormat::e4m3(), FpFormat::e6m5()] {
            let mut seen = std::collections::BTreeMap::new();
            for bits in fmt.iter_encodings() {
                if fmt.is_nan(bits) {
                    continue;
                }
                let v = fmt.decode_f64(bits);
                if let Some(prev) = seen.insert(v.to_bits(), bits) {
                    panic!("{fmt}: encodings {prev:#x} and {bits:#x} both decode to {v}");
                }
            }
        }
    }
}
