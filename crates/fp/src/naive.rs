//! An *independent*, deliberately simple executable specification of the
//! rounding semantics, used as an oracle in tests.
//!
//! Values of small formats are represented as exact scaled integers
//! (`value * 2^SCALE` as an `i128`), the full value grid is materialized,
//! and rounding picks between the two enclosing grid neighbors literally
//! following Sec. II-A of the paper. No bit tricks are shared with the
//! production code in [`crate::round`] / [`crate::ops`], which is the point:
//! agreement between the two is strong evidence of correctness.
//!
//! Only formats with `min_quantum() >= -SCALE_MARGIN` and values that fit
//! the scaled range are supported (E3M2, E4M3, E5M2, E6M5 — the exhaustive
//! test formats). Subnormal support must be enabled; the flush-to-zero
//! variants are covered by targeted tests instead.

use crate::format::FpFormat;
use crate::round::RoundMode;
use crate::value::FpValue;

/// Power-of-two scale of the exact integer representation.
pub const SCALE: i32 = 48;

/// A materialized rounding grid for a small format.
#[derive(Debug, Clone)]
pub struct Grid {
    fmt: FpFormat,
    /// Sorted non-negative finite grid values (scaled), including one
    /// virtual binade above the largest finite value for overflow handling.
    values: Vec<i128>,
    /// Encoding for each grid value; `None` marks virtual overflow points.
    encodings: Vec<Option<u64>>,
    max_finite: i128,
}

impl Grid {
    /// Builds the grid for `fmt`.
    ///
    /// # Panics
    ///
    /// Panics if the format is too large for the oracle or lacks subnormal
    /// support.
    #[must_use]
    pub fn new(fmt: FpFormat) -> Self {
        assert!(
            fmt.subnormals(),
            "the naive oracle requires subnormal support"
        );
        assert!(
            fmt.min_quantum() >= -SCALE,
            "format too fine for the oracle scale"
        );
        assert!(fmt.emax() <= 40, "format too wide for the oracle scale");
        let mut pairs: Vec<(i128, Option<u64>)> = Vec::new();
        for bits in fmt.iter_encodings() {
            match fmt.decode(bits) {
                FpValue::Zero { neg: false } => pairs.push((0, Some(bits))),
                FpValue::Finite {
                    neg: false,
                    exp,
                    sig,
                } => {
                    pairs.push((scaled(exp, sig), Some(bits)));
                }
                _ => {}
            }
        }
        // One virtual binade above emax so overflow rounding has neighbors.
        let p = fmt.precision();
        let e_over = fmt.emax() + 1;
        for k in 0..(1u128 << (p - 1)) {
            let sig = (1u128 << (p - 1)) + k;
            let exp = e_over - (p as i32 - 1);
            pairs.push((scaled(exp, sig), None));
        }
        // And the single point 2^(emax+2) that caps the largest possible sum.
        pairs.push((scaled(fmt.emax() + 2, 1), None));
        pairs.sort_by_key(|(v, _)| *v);
        pairs.dedup_by_key(|(v, _)| *v);
        let max_finite = scaled(0, 0).max(
            pairs
                .iter()
                .filter(|(_, e)| e.is_some())
                .map(|(v, _)| *v)
                .max()
                .expect("grid has finite values"), // PANIC-OK: every format encodes at least one finite value.
        );
        let (values, encodings) = pairs.into_iter().unzip();
        Self {
            fmt,
            values,
            encodings,
            max_finite,
        }
    }

    /// The format this grid belongs to.
    #[must_use]
    pub fn format(&self) -> FpFormat {
        self.fmt
    }

    /// Exact scaled value of a finite encoding (`None` for NaN/Inf).
    #[must_use]
    pub fn exact(&self, bits: u64) -> Option<i128> {
        match self.fmt.decode(bits) {
            FpValue::Nan | FpValue::Inf { .. } => None,
            FpValue::Zero { .. } => Some(0),
            FpValue::Finite { neg, exp, sig } => {
                let m = scaled(exp, sig);
                Some(if neg { -m } else { m })
            }
        }
    }

    /// Rounds the exact scaled value `x` into the format, literally per
    /// Sec. II-A: find the two enclosing grid values, then apply the mode.
    #[must_use]
    pub fn round(&self, x: i128, mode: RoundMode) -> u64 {
        if x == 0 {
            return self.fmt.zero_bits(false);
        }
        let neg = x < 0;
        let m = x.unsigned_abs() as i128;
        let idx = self.values.partition_point(|&v| v <= m);
        let lo_i = idx - 1; // values[0] == 0 <= m, so idx >= 1
        let lo = self.values[lo_i];
        if lo == m {
            return self.encode(lo_i, neg, mode);
        }
        let hi_i = lo_i + 1;
        assert!(hi_i < self.values.len(), "value beyond the extended grid");
        let hi = self.values[hi_i];
        let gap = hi - lo;
        let num = m - lo;
        let up = match mode {
            RoundMode::TowardZero => false,
            RoundMode::NearestEven => {
                match (2 * num).cmp(&gap) {
                    std::cmp::Ordering::Less => false,
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Equal => {
                        // Tie: choose the candidate whose encoding has an
                        // even significand LSB (virtual points count as even).
                        let lo_even = self.encodings[lo_i].is_none_or(|b| b & 1 == 0);
                        !lo_even
                    }
                }
            }
            RoundMode::Stochastic { r, word } => {
                // eps = num / gap; T = floor(eps * 2^r); up iff T + word
                // carries out of r bits (Fig. 1 semantics).
                let t = ((num as u128) << r) / (gap as u128);
                t + u128::from(word & crate::format::mask(r)) >= (1u128 << r)
            }
        };
        self.encode(if up { hi_i } else { lo_i }, neg, mode)
    }

    fn encode(&self, idx: usize, neg: bool, mode: RoundMode) -> u64 {
        match self.encodings[idx] {
            Some(_) if self.values[idx] == 0 => self.fmt.zero_bits(neg),
            Some(bits) => {
                if neg {
                    self.fmt.negate(bits)
                } else {
                    bits
                }
            }
            // Beyond the largest finite value: truncation saturates, the
            // nearest/stochastic modes overflow to infinity.
            None => match mode {
                RoundMode::TowardZero => self.fmt.max_finite_bits(neg),
                _ => self.fmt.inf_bits(neg),
            },
        }
    }

    /// Naive addition: exact integer sum, then grid rounding, with IEEE
    /// special/zero-sign rules spelled out longhand.
    #[must_use]
    pub fn add(&self, a: u64, b: u64, mode: RoundMode) -> u64 {
        let f = &self.fmt;
        if f.is_nan(a) || f.is_nan(b) {
            return f.nan_bits();
        }
        match (f.is_inf(a), f.is_inf(b)) {
            (true, true) => {
                let (sa, _, _) = f.unpack(a);
                let (sb, _, _) = f.unpack(b);
                return if sa == sb { a } else { f.nan_bits() };
            }
            (true, false) => return a,
            (false, true) => return b,
            _ => {}
        }
        let xa = self.exact(a).expect("finite"); // PANIC-OK: non-finite operands were handled by the match above.
        let xb = self.exact(b).expect("finite"); // PANIC-OK: same.
        if xa == 0 && xb == 0 {
            let (sa, _, _) = f.unpack(a);
            let (sb, _, _) = f.unpack(b);
            return f.zero_bits(sa && sb);
        }
        if xa == 0 {
            return b;
        }
        if xb == 0 {
            return a;
        }
        self.round(xa + xb, mode)
    }

    /// The largest finite scaled value of the grid.
    #[must_use]
    pub fn max_finite(&self) -> i128 {
        self.max_finite
    }
}

fn scaled(exp: i32, sig: u128) -> i128 {
    let sh = exp + SCALE;
    assert!(sh >= 0, "value finer than the oracle scale");
    assert!(sh < 100, "value beyond the oracle range");
    i128::try_from(sig).expect("significand fits") << sh // PANIC-OK: the asserts above bound sh, and the significand fits i128.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    const RN: RoundMode = RoundMode::NearestEven;

    #[test]
    fn grid_is_strictly_sorted_with_zero_first() {
        for fmt in [FpFormat::e3m2(), FpFormat::e4m3(), FpFormat::e5m2()] {
            let g = Grid::new(fmt);
            assert_eq!(g.values[0], 0);
            assert!(g.values.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn oracle_add_matches_golden_rn_exhaustive_e3m2() {
        let fmt = FpFormat::e3m2();
        let g = Grid::new(fmt);
        for a in fmt.iter_encodings() {
            for b in fmt.iter_encodings() {
                let want = g.add(a, b, RN);
                let got = ops::add(fmt, a, b, RN);
                assert_eq!(
                    fmt.decode(got).normalized(),
                    fmt.decode(want).normalized(),
                    "a={a:#x} b={b:#x}: golden {got:#x} vs oracle {want:#x}"
                );
                // Also require identical encodings (same zero signs etc.).
                assert_eq!(got, want, "a={a:#x} b={b:#x}");
            }
        }
    }

    #[test]
    fn oracle_add_matches_golden_sr_exhaustive_e3m2() {
        let fmt = FpFormat::e3m2();
        let g = Grid::new(fmt);
        let r = 5;
        for a in fmt.iter_encodings() {
            for b in fmt.iter_encodings() {
                if fmt.is_nan(a) || fmt.is_nan(b) {
                    continue;
                }
                for word in 0..(1u64 << r) {
                    let mode = RoundMode::Stochastic { r, word };
                    let want = g.add(a, b, mode);
                    let got = ops::add(fmt, a, b, mode);
                    assert_eq!(got, want, "a={a:#x} b={b:#x} word={word}");
                }
            }
        }
    }

    #[test]
    fn oracle_add_matches_golden_e4m3_sampled_words() {
        let fmt = FpFormat::e4m3();
        let g = Grid::new(fmt);
        for a in fmt.iter_encodings() {
            for b in fmt.iter_encodings() {
                if fmt.is_nan(a) || fmt.is_nan(b) {
                    continue;
                }
                assert_eq!(
                    g.add(a, b, RN),
                    ops::add(fmt, a, b, RN),
                    "RN a={a:#x} b={b:#x}"
                );
                for word in [0u64, 1, 9, 20, 31] {
                    let mode = RoundMode::Stochastic { r: 5, word };
                    assert_eq!(
                        g.add(a, b, mode),
                        ops::add(fmt, a, b, mode),
                        "SR a={a:#x} b={b:#x} word={word}"
                    );
                }
                let rz = RoundMode::TowardZero;
                assert_eq!(
                    g.add(a, b, rz),
                    ops::add(fmt, a, b, rz),
                    "RZ a={a:#x} b={b:#x}"
                );
            }
        }
    }

    #[test]
    fn oracle_quantize_matches_golden_on_random_reals() {
        // Dense rational probes around the E5M2 grid.
        let fmt = FpFormat::e5m2();
        let g = Grid::new(fmt);
        let mut x = 1i128;
        // Simple LCG over scaled values within range.
        for _ in 0..20_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let v = (x % (g.max_finite() * 2)).abs();
            let got = fmt.round_finite(false, -SCALE, v.max(1) as u128, false, false, RN);
            let want = g.round(v.max(1), RN);
            assert_eq!(got.bits, want, "v={v}");
        }
    }
}
