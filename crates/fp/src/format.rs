//! Parameterized binary floating-point format descriptors.
//!
//! A [`FpFormat`] describes an IEEE-754-style binary interchange format with
//! `E` exponent bits, `M` explicitly stored significand bits and optional
//! subnormal support. All formats studied in the paper are expressible:
//! E5M2 (FP8), E6M5 (the proposed FP12 accumulator), E5M10 (FP16),
//! E8M7 (BFloat16) and E8M23 (FP32).
//!
//! Encodings are carried as the low `1 + E + M` bits of a `u64`
//! (sign | exponent | significand, sign in the MSB position of the format).

use std::fmt;

/// Maximum supported exponent field width in bits.
pub const MAX_EXP_BITS: u32 = 8;
/// Maximum supported stored-significand field width in bits.
pub const MAX_MAN_BITS: u32 = 23;

/// Error returned when constructing an invalid [`FpFormat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FormatError {
    exp_bits: u32,
    man_bits: u32,
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unsupported floating-point format E{}M{} (need 2 <= E <= {MAX_EXP_BITS}, 1 <= M <= {MAX_MAN_BITS})",
            self.exp_bits, self.man_bits
        )
    }
}

impl std::error::Error for FormatError {}

/// A binary floating-point format with `E` exponent bits and `M` stored
/// significand bits, plus a flag controlling subnormal support.
///
/// With subnormal support disabled ("W/O Sub" in the paper), encodings whose
/// exponent field is zero decode to (signed) zero, and rounding results that
/// fall below the normal range flush to zero — "values in the subnormal range
/// are treated as zero" (paper, footnote 3).
///
/// # Examples
///
/// ```
/// use srmac_fp::FpFormat;
///
/// let fp12 = FpFormat::e6m5();
/// assert_eq!(fp12.bits(), 12);
/// assert_eq!(fp12.precision(), 6);
/// assert_eq!(fp12.emax(), 31);
/// assert_eq!(fp12.emin(), -30);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct FpFormat {
    exp_bits: u32,
    man_bits: u32,
    subnormals: bool,
}

impl FpFormat {
    /// Creates a format with `exp_bits` exponent bits and `man_bits` stored
    /// significand bits, with subnormal support enabled.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] if `exp_bits` is not in `2..=8` or `man_bits`
    /// is not in `1..=23`.
    pub fn new(exp_bits: u32, man_bits: u32) -> Result<Self, FormatError> {
        if !(2..=MAX_EXP_BITS).contains(&exp_bits) || !(1..=MAX_MAN_BITS).contains(&man_bits) {
            return Err(FormatError { exp_bits, man_bits });
        }
        Ok(Self {
            exp_bits,
            man_bits,
            subnormals: true,
        })
    }

    /// Like [`FpFormat::new`] but panics on invalid widths; for the fixed
    /// format tables used throughout this crate family.
    ///
    /// # Panics
    ///
    /// Panics if the widths are outside the supported range.
    #[must_use]
    pub fn of(exp_bits: u32, man_bits: u32) -> Self {
        Self::new(exp_bits, man_bits).expect("invalid floating-point format") // PANIC-OK: of() is the documented panicking constructor; fallible callers use new().
    }

    /// Returns a copy of this format with subnormal support set to `enabled`.
    #[must_use]
    pub fn with_subnormals(self, enabled: bool) -> Self {
        Self {
            subnormals: enabled,
            ..self
        }
    }

    /// FP8 E5M2, the paper's multiplier input format.
    #[must_use]
    pub fn e5m2() -> Self {
        Self::of(5, 2)
    }

    /// FP8 E4M3, the other OCP FP8 format (supported as an extension).
    #[must_use]
    pub fn e4m3() -> Self {
        Self::of(4, 3)
    }

    /// FP12 E6M5, the paper's proposed 12-bit accumulator format.
    #[must_use]
    pub fn e6m5() -> Self {
        Self::of(6, 5)
    }

    /// FP16 (half precision), E5M10.
    #[must_use]
    pub fn e5m10() -> Self {
        Self::of(5, 10)
    }

    /// BFloat16, E8M7.
    #[must_use]
    pub fn e8m7() -> Self {
        Self::of(8, 7)
    }

    /// FP32 (single precision), E8M23.
    #[must_use]
    pub fn e8m23() -> Self {
        Self::of(8, 23)
    }

    /// A deliberately tiny format (E3M2, 6 bits) used for exhaustive oracle
    /// testing; not part of the paper.
    #[must_use]
    pub fn e3m2() -> Self {
        Self::of(3, 2)
    }

    /// Number of exponent field bits `E`.
    #[must_use]
    pub fn exp_bits(&self) -> u32 {
        self.exp_bits
    }

    /// Number of stored significand field bits `M`.
    #[must_use]
    pub fn man_bits(&self) -> u32 {
        self.man_bits
    }

    /// Whether subnormal encodings are honoured ("W/ Sub").
    #[must_use]
    pub fn subnormals(&self) -> bool {
        self.subnormals
    }

    /// Total encoding width in bits: `1 + E + M`.
    #[must_use]
    pub fn bits(&self) -> u32 {
        1 + self.exp_bits + self.man_bits
    }

    /// Significand precision `p = M + 1` (including the implicit bit).
    #[must_use]
    pub fn precision(&self) -> u32 {
        self.man_bits + 1
    }

    /// Exponent bias, `2^(E-1) - 1`.
    #[must_use]
    pub fn bias(&self) -> i32 {
        (1i32 << (self.exp_bits - 1)) - 1
    }

    /// Maximum unbiased exponent of a normal value (equals the bias).
    #[must_use]
    pub fn emax(&self) -> i32 {
        self.bias()
    }

    /// Minimum unbiased exponent of a normal value, `1 - bias`.
    #[must_use]
    pub fn emin(&self) -> i32 {
        1 - self.bias()
    }

    /// The exponent (power of two) of the smallest representable quantum:
    /// the ULP of the smallest subnormal, `emin - M`.
    #[must_use]
    pub fn min_quantum(&self) -> i32 {
        self.emin() - self.man_bits as i32
    }

    /// Mask covering every encoding bit of this format.
    #[must_use]
    pub fn bits_mask(&self) -> u64 {
        mask(self.bits())
    }

    /// Mask covering the significand field.
    #[must_use]
    pub fn man_mask(&self) -> u64 {
        mask(self.man_bits)
    }

    /// The all-ones (special) exponent field value.
    #[must_use]
    pub fn exp_special(&self) -> u64 {
        mask(self.exp_bits)
    }

    /// Splits an encoding into `(sign, exponent_field, significand_field)`.
    #[must_use]
    pub fn unpack(&self, bits: u64) -> (bool, u64, u64) {
        let bits = bits & self.bits_mask();
        let sign = (bits >> (self.exp_bits + self.man_bits)) & 1 == 1;
        let e = (bits >> self.man_bits) & mask(self.exp_bits);
        let m = bits & self.man_mask();
        (sign, e, m)
    }

    /// Packs `(sign, exponent_field, significand_field)` into an encoding.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a field exceeds its width.
    #[must_use]
    pub fn pack(&self, sign: bool, e: u64, m: u64) -> u64 {
        debug_assert!(e <= mask(self.exp_bits), "exponent field out of range");
        debug_assert!(m <= self.man_mask(), "significand field out of range");
        (u64::from(sign) << (self.exp_bits + self.man_bits)) | (e << self.man_bits) | m
    }

    /// Encoding of positive zero.
    #[must_use]
    pub fn zero_bits(&self, negative: bool) -> u64 {
        self.pack(negative, 0, 0)
    }

    /// Encoding of infinity with the given sign.
    #[must_use]
    pub fn inf_bits(&self, negative: bool) -> u64 {
        self.pack(negative, self.exp_special(), 0)
    }

    /// Canonical quiet-NaN encoding (positive sign, MSB of significand set).
    #[must_use]
    pub fn nan_bits(&self) -> u64 {
        self.pack(false, self.exp_special(), 1 << (self.man_bits - 1))
    }

    /// Encoding of the largest finite value with the given sign.
    #[must_use]
    pub fn max_finite_bits(&self, negative: bool) -> u64 {
        self.pack(negative, self.exp_special() - 1, self.man_mask())
    }

    /// Encoding of the smallest positive normal value.
    #[must_use]
    pub fn min_normal_bits(&self, negative: bool) -> u64 {
        self.pack(negative, 1, 0)
    }

    /// True if `bits` encodes a NaN.
    #[must_use]
    pub fn is_nan(&self, bits: u64) -> bool {
        let (_, e, m) = self.unpack(bits);
        e == self.exp_special() && m != 0
    }

    /// True if `bits` encodes ±infinity.
    #[must_use]
    pub fn is_inf(&self, bits: u64) -> bool {
        let (_, e, m) = self.unpack(bits);
        e == self.exp_special() && m == 0
    }

    /// True if `bits` encodes ±zero (an exponent field of zero also counts
    /// when subnormal support is disabled).
    #[must_use]
    pub fn is_zero(&self, bits: u64) -> bool {
        let (_, e, m) = self.unpack(bits);
        e == 0 && (m == 0 || !self.subnormals)
    }

    /// True if `bits` encodes a subnormal value (always false when subnormal
    /// support is disabled).
    #[must_use]
    pub fn is_subnormal(&self, bits: u64) -> bool {
        let (_, e, m) = self.unpack(bits);
        self.subnormals && e == 0 && m != 0
    }

    /// Flips the sign bit of an encoding.
    #[must_use]
    pub fn negate(&self, bits: u64) -> u64 {
        bits ^ (1 << (self.exp_bits + self.man_bits))
    }

    /// Iterates over every encoding of the format (`2^(1+E+M)` patterns).
    pub fn iter_encodings(&self) -> impl Iterator<Item = u64> {
        0..(1u64 << self.bits())
    }
}

impl fmt::Debug for FpFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "E{}M{}{}",
            self.exp_bits,
            self.man_bits,
            if self.subnormals { "" } else { "-nosub" }
        )
    }
}

impl fmt::Display for FpFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Returns a mask with the low `n` bits set (`n <= 64`).
#[must_use]
pub fn mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Returns a mask with the low `n` bits set as a `u128` (`n <= 128`).
#[must_use]
pub fn mask128(n: u32) -> u128 {
    if n >= 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_widths() {
        assert_eq!(FpFormat::e5m2().bits(), 8);
        assert_eq!(FpFormat::e4m3().bits(), 8);
        assert_eq!(FpFormat::e6m5().bits(), 12);
        assert_eq!(FpFormat::e5m10().bits(), 16);
        assert_eq!(FpFormat::e8m7().bits(), 16);
        assert_eq!(FpFormat::e8m23().bits(), 32);
    }

    #[test]
    fn bias_and_ranges() {
        let f = FpFormat::e5m2();
        assert_eq!(f.bias(), 15);
        assert_eq!(f.emax(), 15);
        assert_eq!(f.emin(), -14);
        assert_eq!(f.min_quantum(), -16);

        let f = FpFormat::e8m23();
        assert_eq!(f.bias(), 127);
        assert_eq!(f.emin(), -126);
        assert_eq!(f.min_quantum(), -149);
    }

    #[test]
    fn invalid_formats_rejected() {
        assert!(FpFormat::new(1, 2).is_err());
        assert!(FpFormat::new(9, 2).is_err());
        assert!(FpFormat::new(5, 0).is_err());
        assert!(FpFormat::new(5, 24).is_err());
        let err = FpFormat::new(9, 0).unwrap_err();
        assert!(err.to_string().contains("E9M0"));
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let f = FpFormat::e6m5();
        for bits in f.iter_encodings() {
            let (s, e, m) = f.unpack(bits);
            assert_eq!(f.pack(s, e, m), bits);
        }
    }

    #[test]
    fn special_encodings() {
        let f = FpFormat::e5m2();
        assert!(f.is_inf(f.inf_bits(false)));
        assert!(f.is_inf(f.inf_bits(true)));
        assert!(f.is_nan(f.nan_bits()));
        assert!(!f.is_nan(f.inf_bits(false)));
        assert!(f.is_zero(f.zero_bits(true)));
        // FP8 E5M2 max finite = 57344.
        let (s, e, m) = f.unpack(f.max_finite_bits(false));
        assert!(!s);
        assert_eq!(e, 30);
        assert_eq!(m, 3);
    }

    #[test]
    fn subnormal_classification_respects_flag() {
        let sub_on = FpFormat::e5m2();
        let sub_off = sub_on.with_subnormals(false);
        let sub_enc = sub_on.pack(false, 0, 1);
        assert!(sub_on.is_subnormal(sub_enc));
        assert!(!sub_on.is_zero(sub_enc));
        assert!(!sub_off.is_subnormal(sub_enc));
        assert!(sub_off.is_zero(sub_enc));
    }

    #[test]
    fn negate_flips_only_sign() {
        let f = FpFormat::e6m5();
        for bits in [0u64, 1, 0x7ff, f.max_finite_bits(false)] {
            let n = f.negate(bits);
            let (s1, e1, m1) = f.unpack(bits);
            let (s2, e2, m2) = f.unpack(n);
            assert_ne!(s1, s2);
            assert_eq!((e1, m1), (e2, m2));
        }
    }
}
