//! # srmac-fp: parameterized floating-point formats and golden arithmetic
//!
//! The numeric substrate of the SR-MAC reproduction (Ben Ali, Filip,
//! Sentieys, *A Stochastic Rounding-Enabled Low-Precision Floating-Point MAC
//! for DNN Training*, DATE 2024).
//!
//! This crate provides:
//!
//! - [`FpFormat`]: IEEE-754-style formats with `E` exponent bits, `M` stored
//!   significand bits and optional subnormal support — E5M2 (FP8), E6M5
//!   (the paper's FP12 accumulator), E5M10 (FP16), E8M7 (BFloat16), E8M23
//!   (FP32);
//! - [`FpValue`]: exact decoded values;
//! - [`RoundMode`]: round-to-nearest-even, truncation, and **stochastic
//!   rounding** with an `r`-bit random word, following the paper's
//!   add-random-bits-then-truncate hardware semantics (Sec. II-A, Fig. 1);
//! - golden bit-exact [`ops`] (`add`, `sub`, `mul`) that compute the exact
//!   real result and round once — the ground truth for the RTL-level models
//!   in `srmac-core`;
//! - a [`naive`] oracle: an independent, grid-based executable specification
//!   used to validate the golden implementation exhaustively on small
//!   formats.
//!
//! # Example
//!
//! ```
//! use srmac_fp::{ops, FpFormat, RoundMode};
//!
//! let fp12 = FpFormat::e6m5();
//! let one = fp12.quantize_f64(1.0, RoundMode::NearestEven).bits;
//! let small = fp12.quantize_f64(2f64.powi(-9), RoundMode::NearestEven).bits;
//!
//! // Round-to-nearest swallows the small addend ("swamping") ...
//! let rn = ops::add(fp12, one, small, RoundMode::NearestEven);
//! assert_eq!(fp12.decode_f64(rn), 1.0);
//!
//! // ... stochastic rounding sometimes rounds up, and is unbiased on
//! // average: with eps = 2^-4 ulp, exactly 2^9/2^4 words round up at r = 9.
//! let ups = (0..512u64)
//!     .filter(|&word| {
//!         let sr = ops::add(fp12, one, small, RoundMode::Stochastic { r: 9, word });
//!         fp12.decode_f64(sr) > 1.0
//!     })
//!     .count();
//! assert_eq!(ups, 32);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod format;
pub mod naive;
pub mod ops;
pub mod round;
pub mod value;

pub use format::{mask, mask128, FormatError, FpFormat, MAX_EXP_BITS, MAX_MAN_BITS};
pub use round::{Flags, RoundMode, Rounded, TailInfo, MAX_SR_BITS};
pub use value::FpValue;
