//! Statistical verification of the stochastic-rounding machinery, in the
//! style of Mikaitis, *Stochastic Rounding: Algorithms and Hardware
//! Accelerator* (2020): drive every SR implementation in the stack — the
//! golden rounder of this crate, the RTL-faithful `FpAdder` designs
//! (lazy and eager), and the GEMM hot-path `FastAdder` — with seeded
//! random word streams and assert that the **empirical round-up
//! probability equals the fractional distance** to the upper neighbor,
//! within an explicit binomial confidence bound; plus mean-rounding-error
//! (unbiasedness) checks, the property Gupta et al. (2015) identify as
//! what makes low-precision training converge.
//!
//! The exhaustive bit-equivalence tests elsewhere prove the
//! implementations agree with each other; these tests prove the *shared
//! semantics is actually SR* — a family-wide sign flip in the round-up
//! comparison (`t + word >= 2^r` inverted to `<`) would pass every
//! equivalence test and is exactly what this suite catches: the measured
//! round-up probability becomes `1 - eps` instead of `eps`, failing every
//! asymmetric-`eps` case below by ~40 standard deviations.
//!
//! Verified once locally: inverting the comparison in
//! `FastAdder::round_pack` (`>=` → `<`) fails
//! `fast_adder_round_up_probability_matches_eps` and
//! `sr_mean_rounding_error_is_unbiased`; inverting
//! `FpFormat::round_finite`'s stochastic arm fails the golden-quantizer
//! cases the same way. All streams are fixed-seed (`SplitMix64`), so
//! outcomes are deterministic — the "confidence bound" calibrates the
//! tolerance (z = 4.8, plus the `2^-r` probability granularity), it does
//! not admit flakiness.

use srmac_core::{EagerCorrection, FpAdder, RoundingDesign};
use srmac_fp::{FpFormat, RoundMode};
use srmac_qgemm::{AccumRounding, FastAdder, FastQuantizer};
use srmac_rng::{SplitMix64, SrLaneStreams};

/// Formats under test (the paper's multiplier formats and its proposed
/// accumulator format). Subnormals stay enabled so that every probe value
/// below is exactly representable.
fn formats() -> [FpFormat; 3] {
    [FpFormat::e5m2(), FpFormat::e4m3(), FpFormat::e6m5()]
}

/// Tail fractions `k/16` whose numerators have at most 3 significant
/// bits, so `k/16 * ulp` is exactly representable even in E5M2 (p = 3) —
/// the probe addend must be exact or the expected probability would not
/// be `k/16`. Asymmetric values (k != 8) are what catch an inverted
/// round-up comparison.
const KS: [u64; 8] = [1, 3, 5, 7, 8, 10, 12, 14];

/// Trials per probability estimate. With p in [1/16, 7/8] the binomial
/// standard deviation is at most `0.5 / sqrt(N)`; the assertions allow
/// `Z_BOUND` standard deviations plus the `2^-r` quantization of the
/// probability itself.
const N: u64 = 1 << 15;
const Z_BOUND: f64 = 4.8;

fn binomial_tol(p: f64, r: u32) -> f64 {
    Z_BOUND * (p * (1.0 - p) / N as f64).sqrt() + (2.0f64).powi(-(r as i32))
}

/// Empirical round-up frequency of `roll(word)` over `N` seeded words.
fn round_up_fraction(seed: u64, mut rolls_up: impl FnMut(u64) -> bool) -> f64 {
    let mut rng = SplitMix64::new(seed);
    let mut ups = 0u64;
    for _ in 0..N {
        if rolls_up(rng.next_u64()) {
            ups += 1;
        }
    }
    ups as f64 / N as f64
}

/// The probe: `1.0 + (k/16) * ulp(1.0)` sits strictly between the
/// neighbors `1.0` and `1.0 + ulp`, with fractional distance exactly
/// `k/16`. Returns `(lo_bits, hi_bits, addend_bits, exact_x)`.
fn probe(fmt: FpFormat, k: u64) -> (u64, u64, u64, f64) {
    let one = fmt.quantize_f64(1.0, RoundMode::NearestEven).bits;
    let ulp = (fmt.man_bits() as i32).wrapping_neg(); // ulp(1.0) = 2^-M
    let x = 1.0 + (k as f64 / 16.0) * 2.0f64.powi(ulp);
    let hi = one + 1; // next encoding up from 1.0 is 1.0 + ulp
    let addend = fmt.quantize_f64((k as f64 / 16.0) * 2.0f64.powi(ulp), RoundMode::NearestEven);
    assert!(
        !addend.flags.inexact,
        "{fmt}: probe addend k={k} must be exactly representable"
    );
    (one, hi, addend.bits, x)
}

#[test]
fn golden_sr_round_up_probability_matches_eps() {
    // The golden rounder (FpFormat::quantize_f64 with RoundMode::
    // Stochastic) — the semantics every hardware model is verified
    // against — must round x = 1 + eps*ulp up with empirical probability
    // eps for every format and r.
    for fmt in formats() {
        for r in [4u32, 9, 13] {
            for k in KS {
                let (lo, hi, _, x) = probe(fmt, k);
                let p = k as f64 / 16.0;
                let seed = 0xA0 + k + u64::from(r) * 100;
                let got = round_up_fraction(seed, |word| {
                    let q = fmt.quantize_f64(x, RoundMode::Stochastic { r, word });
                    assert!(
                        q.bits == lo || q.bits == hi,
                        "{fmt}: SR must land on a neighbor"
                    );
                    q.bits == hi
                });
                let tol = binomial_tol(p, r);
                assert!(
                    (got - p).abs() <= tol,
                    "{fmt} r={r} eps={k}/16: round-up frequency {got:.4}, want {p:.4} +- {tol:.4}"
                );
            }
        }
    }
}

#[test]
fn fast_adder_round_up_probability_matches_eps() {
    // The GEMM hot-path adder: acc = 1.0, addend = (k/16) * ulp. The
    // alignment tail is exactly k/16, so P(result > 1.0) must be k/16.
    for fmt in formats() {
        let r = fmt.precision() + 3; // the paper's default r = p + 3
        let adder = FastAdder::new(fmt, AccumRounding::Stochastic { r });
        for k in KS {
            let (lo, hi, addend, _) = probe(fmt, k);
            let p = k as f64 / 16.0;
            let got = round_up_fraction(0xFA57 + k, |word| {
                let s = adder.add(lo, addend, word);
                assert!(s == lo || s == hi, "{fmt}: SR add must land on a neighbor");
                s == hi
            });
            let tol = binomial_tol(p, r);
            assert!(
                (got - p).abs() <= tol,
                "{fmt} r={r} eps={k}/16: FastAdder round-up frequency {got:.4}, want {p:.4} +- {tol:.4}"
            );
        }
    }
}

#[test]
fn fp_adder_lazy_and_eager_round_up_probability_matches_eps() {
    // The RTL-faithful adder models, both rounding datapaths. A reduced k
    // set keeps the runtime proportionate (FpAdder is the slow,
    // trace-producing model).
    for fmt in formats() {
        let r = RoundingDesign::default_r(fmt);
        for design in [
            RoundingDesign::SrLazy { r },
            RoundingDesign::SrEager {
                r,
                correction: EagerCorrection::Exact,
            },
        ] {
            let adder = FpAdder::new(fmt, design);
            for k in [3u64, 8, 12] {
                let (lo, hi, addend, _) = probe(fmt, k);
                let p = k as f64 / 16.0;
                let got = round_up_fraction(0x0F9A + k, |word| {
                    let s = adder.add(lo, addend, word);
                    assert!(s == lo || s == hi, "{fmt}: SR add must land on a neighbor");
                    s == hi
                });
                let tol = binomial_tol(p, r);
                assert!(
                    (got - p).abs() <= tol,
                    "{fmt} {design:?} eps={k}/16: round-up frequency {got:.4}, want {p:.4} +- {tol:.4}"
                );
            }
        }
    }
}

#[test]
fn sr_mean_rounding_error_is_unbiased() {
    // Gupta et al.'s convergence argument rests on E[rounding error] = 0.
    // At eps = 3/16 (deliberately asymmetric), the signed error per
    // operation is -eps*ulp with probability 1-eps and +(1-eps)*ulp with
    // probability eps: mean 0. An inverted SR comparison instead gives
    // mean (1 - 2*eps) = +0.625 ulp here — ~40 sigma outside the bound
    // (verified locally by inverting FastAdder::round_pack's comparison).
    // Note a *uniform*-eps sweep would NOT catch the inversion (its mean
    // bias integrates to zero); the fixed asymmetric eps is load-bearing.
    let k = 3u64;
    let eps = k as f64 / 16.0;
    for fmt in formats() {
        let r = fmt.precision() + 3;
        let ulp = 2.0f64.powi(-(fmt.man_bits() as i32));
        let (lo, _, addend, x) = probe(fmt, k);

        // Golden rounder.
        let mut rng = SplitMix64::new(0xB1A5 + u64::from(fmt.bits()));
        let mut mean_err = 0.0f64;
        for _ in 0..N {
            let word = rng.next_u64();
            let q = fmt.quantize_f64(x, RoundMode::Stochastic { r, word });
            mean_err += (fmt.decode_f64(q.bits) - x) / ulp / N as f64;
        }
        // Var of the per-op normalized error is eps*(1-eps).
        let tol = Z_BOUND * (eps * (1.0 - eps) / N as f64).sqrt() + (2.0f64).powi(-(r as i32));
        assert!(
            mean_err.abs() <= tol,
            "{fmt}: golden SR mean error {mean_err:.5} ulp, want 0 +- {tol:.5}"
        );

        // FastAdder on the same probe.
        let adder = FastAdder::new(fmt, AccumRounding::Stochastic { r });
        let mut rng = SplitMix64::new(0xB1A6 + u64::from(fmt.bits()));
        let mut mean_err = 0.0f64;
        for _ in 0..N {
            let s = adder.add(lo, addend, rng.next_u64());
            mean_err += (fmt.decode_f64(s) - x) / ulp / N as f64;
        }
        assert!(
            mean_err.abs() <= tol,
            "{fmt}: FastAdder SR mean error {mean_err:.5} ulp, want 0 +- {tol:.5}"
        );
    }
}

#[test]
fn sr_lane_streams_round_up_probability_per_lane() {
    // The lane-batched GEMM path draws its rounding words from
    // `SrLaneStreams` instead of one `SplitMix64` per element. Statistical
    // SR semantics must hold *per lane*: each lane's empirical round-up
    // probability on the 1 + (k/16)*ulp probe equals k/16 within the same
    // z = 4.8 binomial bound as the scalar stream tests — for the paper's
    // accumulator format at its default r, through the batch generator's
    // `fill_block` API (the words the batched kernel actually consumes).
    const L: usize = 8;
    let fmt = FpFormat::e6m5();
    let r = fmt.precision() + 3;
    let adder = FastAdder::new(fmt, AccumRounding::Stochastic { r });
    for k in KS {
        let (lo, hi, addend, _) = probe(fmt, k);
        let p = k as f64 / 16.0;
        let mut lanes =
            SrLaneStreams::new(std::array::from_fn(|l| 0x1A9E + k * 31 + 1000 * l as u64));
        let mut block = vec![[0u64; L]; N as usize];
        lanes.fill_block(&mut block);
        let mut ups = [0u64; L];
        for words in &block {
            for l in 0..L {
                let s = adder.add(lo, addend, words[l]);
                assert!(s == lo || s == hi, "{fmt}: SR add must land on a neighbor");
                ups[l] += u64::from(s == hi);
            }
        }
        let tol = binomial_tol(p, r);
        for (l, &u) in ups.iter().enumerate() {
            let got = u as f64 / N as f64;
            assert!(
                (got - p).abs() <= tol,
                "{fmt} lane {l} eps={k}/16: round-up frequency {got:.4}, want {p:.4} +- {tol:.4}"
            );
        }
    }
}

#[test]
fn sr_lane_streams_lanes_are_mutually_uncorrelated() {
    // A simple sign test across every lane pair: at the eps = 1/2 probe,
    // each lane's round-up indicator is a fair coin; if two lanes were
    // correlated (e.g. sharing a stream, or seeds interacting), their
    // per-step agreement rate would leave the binomial(N, 1/2) band.
    // `draw` with all lanes consuming exercises the masked-draw path.
    const L: usize = 8;
    let fmt = FpFormat::e6m5();
    let r = fmt.precision() + 3;
    let adder = FastAdder::new(fmt, AccumRounding::Stochastic { r });
    let (lo, hi, addend, _) = probe(fmt, 8);
    let mut lanes = SrLaneStreams::new(std::array::from_fn(|l| 0xC0FE + 77 * l as u64));
    let mut agree = [[0u64; L]; L];
    for _ in 0..N {
        let words = lanes.draw([true; L]);
        let ups: [bool; L] = std::array::from_fn(|l| {
            let s = adder.add(lo, addend, words[l]);
            assert!(s == lo || s == hi);
            s == hi
        });
        for (i, &up_i) in ups.iter().enumerate() {
            for (j, &up_j) in ups.iter().enumerate().skip(i + 1) {
                agree[i][j] += u64::from(up_i == up_j);
            }
        }
    }
    let tol = Z_BOUND * (0.25 / N as f64).sqrt();
    for (i, row) in agree.iter().enumerate() {
        for (j, &n_agree) in row.iter().enumerate().skip(i + 1) {
            let frac = n_agree as f64 / N as f64;
            assert!(
                (frac - 0.5).abs() <= tol,
                "lanes {i} and {j} agree {frac:.4} of the time, want 0.5 +- {tol:.4}"
            );
        }
    }
}

#[test]
fn summed_reduction_sr_error_obeys_the_sqrt_n_bound() {
    // Drineas & Ipsen, *Stochastic Rounding 2.0 (with a View towards
    // Complexity Analysis)*: the forward error of an n-term SR summation
    // is O(sqrt(n) * u) with high probability — a martingale (Azuma)
    // bound on the zero-mean per-op rounding errors — versus the O(n * u)
    // deterministic worst case that RN actually *attains* under
    // stagnation. This is the gradient-accumulation scenario behind the
    // paper's training claim and the data-parallel trainer's summed
    // gradients: many small per-sample contributions accumulating into a
    // large low-precision total.
    //
    // The probe drives the GEMM hot-path accumulator (E6M5, eager SR,
    // r = 13) through n = 4096 adds of a = 2^-8 — an addend that falls to
    // a quarter-ulp and below as the sum grows, so RN-even drops every
    // single one (the sum never leaves 1.0; error n*a = 16, the full
    // O(n * u) worst case), while SR must stay inside the per-trial
    // martingale bound Z * sqrt(sum_k ulp(s_k)^2 * eps_k (1 - eps_k)),
    // accumulated from the exact per-step variances. Across trials the
    // summed SR error must also be mean-zero (the unbiasedness that makes
    // the bound a convergence argument, not just a tail estimate).
    let fmt = FpFormat::e6m5();
    let r = 13u32;
    let a = 2.0f64.powi(-8);
    let a_bits = {
        let q = fmt.quantize_f64(a, RoundMode::NearestEven);
        assert!(!q.flags.inexact, "probe addend must be exact in {fmt}");
        q.bits
    };
    let one = fmt.quantize_f64(1.0, RoundMode::NearestEven).bits;
    let n = 4096u64;
    let true_sum = 1.0 + n as f64 * a;

    // RN stagnates: a quarter-ulp addend never survives round-to-nearest.
    let rn = FastAdder::new(fmt, AccumRounding::Nearest);
    let mut acc = one;
    for _ in 0..n {
        acc = rn.add(acc, a_bits, 0);
    }
    let rn_err = (fmt.decode_f64(acc) - true_sum).abs();
    assert_eq!(
        fmt.decode_f64(acc),
        1.0,
        "{fmt}: RN must drop every sub-half-ulp addend (stagnation)"
    );

    let trials = 8u64;
    let mut mean_err = 0.0f64;
    let mut bound = 0.0f64;
    for t in 0..trials {
        let sr = FastAdder::new(fmt, AccumRounding::Stochastic { r });
        let mut rng = SplitMix64::new(0xD155 + 0x9E37 * t);
        let mut acc = one;
        let mut var = 0.0f64;
        for _ in 0..n {
            // Exact per-step SR variance: ulp(acc)^2 * eps * (1 - eps),
            // with eps the addend's fractional distance in the current
            // binade (plus the 2^-r probability granularity, folded into
            // the tolerance below).
            let v = fmt.decode_f64(acc);
            let ulp = 2.0f64.powi(v.log2().floor() as i32 - fmt.man_bits() as i32);
            let eps = (a / ulp).min(1.0);
            var += ulp * ulp * eps * (1.0 - eps);
            acc = sr.add(acc, a_bits, rng.next_u64());
        }
        let err = fmt.decode_f64(acc) - true_sum;
        // Azuma bound on the martingale of per-op errors, plus the r-bit
        // probability granularity's worst-case drift.
        let tol = Z_BOUND * var.sqrt() + n as f64 * 2.0f64.powi(-(r as i32)) * 0.5;
        assert!(
            err.abs() <= tol,
            "{fmt} trial {t}: summed SR error {err:.3}, want |err| <= {tol:.3} \
             (sqrt(n)-scale bound)"
        );
        assert!(
            err.abs() < rn_err / 2.0,
            "{fmt} trial {t}: SR error {err:.3} should beat RN stagnation error {rn_err:.3}"
        );
        mean_err += err / trials as f64;
        bound = bound.max(tol);
    }
    // Unbiasedness of the whole reduction: the trial mean tightens by
    // sqrt(trials).
    let mean_tol = bound / (trials as f64).sqrt();
    assert!(
        mean_err.abs() <= mean_tol,
        "{fmt}: mean summed SR error {mean_err:.3} over {trials} trials, want 0 +- {mean_tol:.3}"
    );
}

#[test]
fn fast_quantizer_rounds_to_nearest_with_balanced_direction() {
    // The FastQuantizer is RN-even, not SR: its "round-up probability"
    // over a seeded uniform stream inside one ULP interval must be the
    // measure of the upper half-interval (1/2), and every single output
    // must be the nearer neighbor — checked per sample against the
    // fractional distance, which also pins the tie rule's direction.
    for fmt in formats() {
        let q = FastQuantizer::new(fmt);
        let one = fmt.quantize_f64(1.0, RoundMode::NearestEven).bits;
        let hi = one + 1;
        let ulp = 2.0f64.powi(-(fmt.man_bits() as i32));
        let mut rng = SplitMix64::new(0x9A11 + u64::from(fmt.bits()));
        let mut ups = 0u64;
        let mut n_inner = 0u64;
        for _ in 0..N {
            // Uniform fractional distance in (0, 1), strictly inside the
            // interval so "nearer neighbor" is well defined except at the
            // tie, which a continuous draw never hits exactly... except
            // that f32 is discrete: skip exact midpoints explicitly.
            let eps = rng.next_f64();
            let x = (1.0 + eps * ulp) as f32;
            let exact_eps = (f64::from(x) - 1.0) / ulp;
            if exact_eps <= 0.0 || exact_eps >= 1.0 || (exact_eps - 0.5).abs() < 1e-12 {
                continue;
            }
            n_inner += 1;
            let got = q.quantize(x);
            let want = if exact_eps > 0.5 { hi } else { one };
            assert_eq!(
                got, want,
                "{fmt}: RN quantize(1 + {exact_eps:.6} ulp) must pick the nearer neighbor"
            );
            ups += u64::from(got == hi);
        }
        let frac = ups as f64 / n_inner as f64;
        let tol = Z_BOUND * (0.25 / n_inner as f64).sqrt();
        assert!(
            (frac - 0.5).abs() <= tol,
            "{fmt}: RN round-up direction should be balanced over a uniform \
             stream: {frac:.4} vs 0.5 +- {tol:.4}"
        );
    }
}
