//! Property-based tests (proptest) for the golden arithmetic: algebraic
//! invariants that must hold for every format, rounding mode and input.

use proptest::prelude::*;
use srmac_fp::{ops, FpFormat, FpValue, RoundMode};

fn formats() -> Vec<FpFormat> {
    vec![
        FpFormat::e3m2(),
        FpFormat::e4m3(),
        FpFormat::e5m2(),
        FpFormat::e5m2().with_subnormals(false),
        FpFormat::e6m5(),
        FpFormat::e6m5().with_subnormals(false),
        FpFormat::e5m10(),
        FpFormat::e8m7(),
    ]
}

fn arb_format() -> impl Strategy<Value = FpFormat> {
    (0..formats().len()).prop_map(|i| formats()[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    /// Addition is commutative for every rounding mode (the golden add is
    /// symmetric after the magnitude swap).
    #[test]
    fn add_commutes(
        fmt in arb_format(),
        a in any::<u64>(),
        b in any::<u64>(),
        word in any::<u64>(),
        r in 1u32..=20,
    ) {
        let a = a & fmt.bits_mask();
        let b = b & fmt.bits_mask();
        for mode in [
            RoundMode::NearestEven,
            RoundMode::TowardZero,
            RoundMode::Stochastic { r, word },
        ] {
            prop_assert_eq!(ops::add(fmt, a, b, mode), ops::add(fmt, b, a, mode));
        }
    }

    /// x + 0 == x for finite x, and x - x == +0.
    #[test]
    fn add_identity_and_inverse(fmt in arb_format(), a in any::<u64>(), word in any::<u64>()) {
        let a = a & fmt.bits_mask();
        prop_assume!(!fmt.is_nan(a) && !fmt.is_inf(a));
        let mode = RoundMode::Stochastic { r: 9, word };
        let zero = fmt.zero_bits(false);
        let got = ops::add(fmt, a, zero, mode);
        // Flushed-subnormal inputs re-encode to zero; otherwise identity.
        if fmt.decode(a).is_zero() {
            prop_assert!(fmt.is_zero(got));
        } else {
            prop_assert_eq!(got, a & fmt.bits_mask());
        }
        if !fmt.decode(a).is_zero() {
            prop_assert_eq!(ops::add(fmt, a, fmt.negate(a), mode), zero);
        }
    }

    /// The result of any rounding lies on one of the two neighbors of the
    /// exact sum: SR/RN never skip past a representable value.
    #[test]
    fn rounding_stays_between_neighbors(
        fmt in arb_format(),
        a in any::<u64>(),
        b in any::<u64>(),
        word in any::<u64>(),
    ) {
        let a = a & fmt.bits_mask();
        let b = b & fmt.bits_mask();
        prop_assume!(!fmt.is_nan(a) && !fmt.is_nan(b) && !fmt.is_inf(a) && !fmt.is_inf(b));
        let exact = fmt.decode_f64(a) + fmt.decode_f64(b); // exact when fmt is small? not always -
        // use RZ and "RZ + 1 step" instead of f64 to bound the result.
        let mode = RoundMode::Stochastic { r: 11, word };
        let down = ops::add(fmt, a, b, RoundMode::TowardZero);
        let got = ops::add(fmt, a, b, mode);
        if got == down {
            return Ok(());
        }
        // Otherwise `got` must be exactly one encoding step above `down` in
        // magnitude (or the infinity that follows max-finite).
        let sign_mask = 1u64 << (fmt.bits() - 1);
        let down_mag = down & !sign_mask;
        let got_mag = got & !sign_mask;
        prop_assert_eq!(
            got_mag,
            down_mag + 1,
            "SR must land on a neighbor: exact ~ {}, down {:#x}, got {:#x}",
            exact, down, got
        );
    }

    /// Monotonicity of RN addition: for a fixed addend c >= 0 and
    /// magnitudes a <= b (same sign), add(a, c) <= add(b, c).
    #[test]
    fn rn_addition_is_monotone(
        fmt in arb_format(),
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
    ) {
        let sign_mask = 1u64 << (fmt.bits() - 1);
        let a = a & fmt.bits_mask() & !sign_mask;
        let b = b & fmt.bits_mask() & !sign_mask;
        let c = c & fmt.bits_mask() & !sign_mask;
        prop_assume!(!fmt.is_nan(a) && !fmt.is_nan(b) && !fmt.is_nan(c));
        prop_assume!(!fmt.is_inf(a) && !fmt.is_inf(b) && !fmt.is_inf(c));
        let (lo, hi) = if fmt.decode_f64(a) <= fmt.decode_f64(b) { (a, b) } else { (b, a) };
        let x = fmt.decode_f64(ops::add(fmt, lo, c, RoundMode::NearestEven));
        let y = fmt.decode_f64(ops::add(fmt, hi, c, RoundMode::NearestEven));
        prop_assert!(x <= y, "monotonicity: {x} > {y}");
    }

    /// Quantize/decode roundtrip: decode(quantize(x)) is one of the two
    /// format neighbors of x, and quantizing a decoded value is exact.
    #[test]
    fn quantize_roundtrip(fmt in arb_format(), bits in any::<u64>()) {
        let bits = bits & fmt.bits_mask();
        prop_assume!(!fmt.is_nan(bits));
        let x = fmt.decode_f64(bits);
        let q = fmt.quantize_f64(x, RoundMode::NearestEven);
        prop_assert!(!q.flags.inexact);
        prop_assert_eq!(fmt.decode_f64(q.bits).to_bits(), x.to_bits());
    }

    /// Multiplication commutes and respects signs.
    #[test]
    fn mul_commutes(
        a in any::<u64>(),
        b in any::<u64>(),
        word in any::<u64>(),
    ) {
        let fin = FpFormat::e5m2();
        let fout = FpFormat::e6m5();
        let a = a & fin.bits_mask();
        let b = b & fin.bits_mask();
        for mode in [RoundMode::NearestEven, RoundMode::Stochastic { r: 7, word }] {
            prop_assert_eq!(
                ops::mul(fin, fout, a, b, mode),
                ops::mul(fin, fout, b, a, mode)
            );
        }
    }

    /// SR expectation: the exhaustive-word average of SR results equals the
    /// exact value when the tail fits in r bits (unbiasedness).
    #[test]
    fn sr_exhaustive_mean_is_exact_for_short_tails(
        mant in 0u64..32,
        shift in 1u32..5,
    ) {
        let fmt = FpFormat::e6m5();
        // x = 1.0, y = mant * 2^-(5 + shift): tail length <= shift + 5 bits.
        let r = 10;
        let one = fmt.quantize_f64(1.0, RoundMode::NearestEven).bits;
        let yv = mant as f64 * 2f64.powi(-(5 + shift as i32) - 5);
        let y = fmt.quantize_f64(yv, RoundMode::NearestEven);
        prop_assume!(!y.flags.inexact);
        let mut acc = 0.0f64;
        for word in 0..(1u64 << r) {
            acc += fmt.decode_f64(ops::add(fmt, one, y.bits, RoundMode::Stochastic { r, word }));
        }
        let mean = acc / f64::from(1u32 << r);
        let exact = 1.0 + fmt.decode_f64(y.bits);
        prop_assert!((mean - exact).abs() < 1e-12, "mean {mean} vs exact {exact}");
    }

    /// Decoded values always re-encode to themselves through FpValue.
    #[test]
    fn decode_is_stable(fmt in arb_format(), bits in any::<u64>()) {
        let bits = bits & fmt.bits_mask();
        match fmt.decode(bits) {
            FpValue::Finite { neg, exp, sig } => {
                let r = fmt.round_finite(neg, exp, sig, false, false, RoundMode::NearestEven);
                prop_assert!(!r.flags.inexact);
                prop_assert_eq!(fmt.decode(r.bits), fmt.decode(bits));
            }
            FpValue::Nan => prop_assert!(fmt.is_nan(bits)),
            FpValue::Inf { neg } => prop_assert_eq!(fmt.inf_bits(neg), bits),
            FpValue::Zero { .. } => {}
        }
    }
}
