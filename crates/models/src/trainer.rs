//! The training harness: SGD with momentum, cosine-annealed learning rate,
//! and dynamic loss scaling — the paper's Sec. IV-A recipe — over any GEMM
//! engine or per-role `Numerics` policy (the harness itself is
//! engine-agnostic: the model's layers carry their role-resolved engines,
//! so a mixed RN-forward/SR-backward experiment trains through exactly
//! this code path; see `srmac_tensor::numerics`).
//!
//! The step-wise core is [`Trainer`]: deterministic data-parallel
//! training over CoW model replicas with bitwise tree-reduced gradients.
//! At a fixed gradient-shard count, training bits are invariant to the
//! replica count and the pool size (see the [`Trainer`] docs for the full
//! contract); [`train`] remains the one-call entry point.
//!
//! Training is also **crash-tolerant**: [`Trainer::checkpoint_every`]
//! auto-saves the model *and* the full trainer state (optimizer momentum,
//! loss-scaler trajectory, shuffle-RNG position, epoch/step cursor,
//! mid-epoch loss partials, accumulated history) into an atomic keep-K
//! rotation, and [`Trainer::resume`] reconstructs a trainer that
//! continues the run such that the completed [`History`] is **bitwise
//! identical** to an uninterrupted one — under the exact-f32 engine, the
//! paper's SR MACs, and mixed per-role policies alike (pinned by
//! `tests/resume.rs`).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use srmac_io::{
    recover_latest, save_rotating, CheckpointError, CheckpointMeta, FsStorage, RetryPolicy,
    SaveReport, Storage, TrainState,
};
use srmac_rng::SplitMix64;
use srmac_tensor::layers::Layer;
use srmac_tensor::{
    count_correct, flatten_grads, scatter_grads, softmax_cross_entropy, CosineLr, LossScaler,
    Runtime, Sequential, Sgd, Tensor,
};

use crate::ckpt::{
    codes, config_from_record, config_record, history_from_record, history_record, CkptOptions,
    DEFAULT_KEEP,
};
use crate::data::{shard_spans, Dataset};
use crate::diag::{DiagSink, Diagnostic, Severity};

/// Hyperparameters (defaults follow the paper's ResNet-20 settings:
/// momentum 0.9, initial loss scale 1024, cosine annealing).
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Initial dynamic loss scale.
    pub init_loss_scale: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Print one line per epoch when set.
    pub verbose: bool,
    /// Data-parallel replica count: how many model replicas run a step's
    /// forward/backward concurrently, each over a contiguous slice of the
    /// gradient shards. A pure scheduling knob — at a fixed
    /// [`TrainConfig::grad_shards`], every replica count produces bitwise
    /// identical training.
    pub replicas: usize,
    /// Gradient shard count `S`: how many contiguous sub-batches each
    /// minibatch splits into before the fixed binary-tree gradient
    /// reduction. `S` *defines the step's numerics* (per-shard products,
    /// per-shard batch-norm statistics, the reduction-tree shape); `0`
    /// (the default) resolves to `replicas`, which keeps single-replica
    /// runs on the classic `S = 1` path but means the *default* numerics
    /// follow the replica count. Pin `grad_shards` explicitly to scale
    /// replicas without changing a bit.
    pub grad_shards: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            batch_size: 32,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 1e-4,
            init_loss_scale: 1024.0,
            seed: 0xC0FFEE,
            verbose: false,
            replicas: 1,
            grad_shards: 0,
        }
    }
}

/// Per-epoch training records.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Mean training loss per epoch, over the finite batch losses only: a
    /// batch that overflowed (and whose step the scaler skipped) must not
    /// poison the whole epoch's mean with NaN when training recovered. An
    /// epoch with no finite batch at all records NaN truthfully.
    pub train_loss: Vec<f32>,
    /// Test accuracy (percent) per epoch.
    pub test_acc: Vec<f32>,
    /// Steps skipped by the loss scaler.
    pub skipped_steps: usize,
    /// Batches whose loss came out non-finite (excluded from the
    /// `train_loss` means).
    pub nonfinite_batches: usize,
    /// Final loss scale.
    pub final_scale: f32,
    /// Checkpoint saves that exhausted their retry budget (graceful
    /// degradation: training continued, the failures are counted here and
    /// diagnosed as `ckpt::retry-exhausted`).
    pub ckpt_save_failures: usize,
}

impl History {
    /// Number of epochs recorded.
    #[must_use]
    pub fn epochs(&self) -> usize {
        self.test_acc.len()
    }

    /// Final test accuracy in percent. Defined for every history: `0.0`
    /// when no epoch ran (never panics).
    #[must_use]
    pub fn final_accuracy(&self) -> f32 {
        self.test_acc.last().copied().unwrap_or(0.0)
    }

    /// Best test accuracy in percent across epochs. Defined for every
    /// history: `0.0` when no epoch ran, and NaN entries (degenerate
    /// evaluations) are ignored rather than poisoning the maximum.
    #[must_use]
    pub fn best_accuracy(&self) -> f32 {
        // `f32::max` returns the non-NaN operand, so NaNs drop out.
        self.test_acc.iter().copied().fold(0.0, f32::max)
    }

    /// Final epoch's mean training loss. Defined for every history: NaN
    /// when no epoch ran (matching an epoch with no finite batch) — never
    /// panics, so callers don't need the `train_loss.last().unwrap()`
    /// footgun.
    #[must_use]
    pub fn final_loss(&self) -> f32 {
        self.train_loss.last().copied().unwrap_or(f32::NAN)
    }

    /// Lowest *finite* epoch loss across the run. Defined for every
    /// history: NaN when no epoch recorded a finite loss (zero-epoch runs
    /// and all-non-finite runs alike).
    #[must_use]
    pub fn best_loss(&self) -> f32 {
        self.train_loss
            .iter()
            .copied()
            .filter(|l| l.is_finite())
            .fold(f32::NAN, f32::min)
    }
}

/// Trains `model` on `train`, evaluating on `test` after every epoch — a
/// shim over [`Trainer`], kept as the stable entry point. With the default
/// `replicas = 1` / `grad_shards = 0` config this runs the classic
/// single-model step bit-for-bit.
pub fn train(
    model: &mut Sequential,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> History {
    Trainer::new(cfg).run(model, train, test)
}

/// One shard's step result: shard index, sub-batch loss, sample count,
/// flattened (loss-scaled) gradients, and flattened layer state
/// (batch-norm running statistics after the shard's forward).
type ShardResult = (usize, f32, usize, Vec<f32>, Vec<f32>);

/// Runs one shard's forward/backward on its replica. Pure in its inputs:
/// the same shard on the same replica yields the same bits no matter
/// which job or thread runs it.
fn run_shard(
    idx: usize,
    mut replica: Sequential,
    x: Tensor,
    labels: Vec<usize>,
    grad_scale: f32,
) -> ShardResult {
    let logits = replica.forward(&x, true);
    let (loss, mut grad) = softmax_cross_entropy(&logits, &labels);
    grad.scale_(grad_scale);
    replica.backward(&grad);
    let mut flat = Vec::new();
    flatten_grads(&mut replica, &mut flat);
    let state = flatten_state(&mut replica);
    (idx, loss, labels.len(), flat, state)
}

/// Concatenates every [`Layer::visit_state`] buffer in visit order.
fn flatten_state(model: &mut Sequential) -> Vec<f32> {
    let mut out = Vec::new();
    model.visit_state(&mut |s| out.extend_from_slice(s));
    out
}

/// Writes a [`flatten_state`]-shaped vector back through `visit_state`.
fn write_state(model: &mut Sequential, flat: &[f32]) {
    let mut off = 0usize;
    model.visit_state(&mut |s| {
        let len = s.len();
        s.copy_from_slice(&flat[off..off + len]);
        off += len;
    });
    assert_eq!(off, flat.len(), "state layout differs between replicas");
}

/// The step-wise, data-parallel training core behind [`train`].
///
/// Owns the optimizer, learning-rate schedule, loss scaler, shuffling RNG,
/// and the accumulating [`History`]. [`Trainer::run`] drives whole epochs;
/// [`Trainer::train_step`] executes exactly one optimizer step on an
/// already-assembled minibatch.
///
/// # Determinism contract
///
/// A step at gradient-shard count `S > 1` proceeds in fixed phases:
///
/// 1. **Shard** — the minibatch splits into `S` contiguous sub-batches
///    ([`shard_spans`]: equal prefix, remainder to the last shard; empty
///    shards are skipped).
/// 2. **Replicate** — the model is CoW-cloned per non-empty shard
///    ([`Sequential::try_clone`]; weight tensors and packed-weight caches
///    are shared, gradients start fresh), and each clone is told its
///    shard's sample offset within the full batch
///    ([`Layer::set_batch_offset`]) so position-seeded SR engines draw
///    the same per-sample rounding streams the full batch would.
/// 3. **Compute** — replicas run forward/backward on the runtime pool.
///    `TrainConfig::replicas` controls only how shards are grouped onto
///    concurrent jobs; every grouping computes identical shard results.
/// 4. **Reduce** — per-shard gradient vectors combine through a fixed
///    binary tree in shard order ([`Runtime::tree_reduce`]); the tree
///    shape is a pure function of `S`, never of thread or replica count.
///    The batch loss and batch-norm running statistics combine
///    count-weighted in `f64`, also in shard order.
/// 5. **Step** — one [`Sgd::step`] on the primary model (or one skip,
///    when the scaler saw a non-finite loss or gradient).
///
/// Training bits therefore depend on `S` (and the usual numerics knobs)
/// but **not** on `replicas` or pool size. `S == 1` bypasses all of the
/// above and runs the classic single-model inline step — bit-for-bit the
/// pre-data-parallel trainer, with no cloning.
#[derive(Debug)]
pub struct Trainer {
    cfg: TrainConfig,
    grad_shards: usize,
    opt: Sgd,
    schedule: CosineLr,
    scaler: LossScaler,
    rng: SplitMix64,
    history: History,
    runtime: Arc<Runtime>,
    /// The run cursor: (epoch, optimizer steps completed inside it).
    /// `(cfg.epochs, 0)` marks a completed run.
    cursor: (usize, usize),
    /// Mid-epoch running loss sum over finite batches (f64, like the
    /// epoch mean it feeds).
    epoch_loss: f64,
    /// Mid-epoch finite-batch count.
    finite_batches: usize,
    /// Training-set length of the run (pinned at `run` start; a resumed
    /// trainer checks the dataset it is handed against it).
    train_len: u64,
    /// Auto-checkpoint policy, when armed.
    ckpt: Option<CkptOptions>,
    /// Diagnostic sink for `ckpt::*` / `train::*` events.
    diag: Option<DiagSink>,
    /// Stop after this many total optimizer steps (test/interrupt hook).
    halt_after: Option<usize>,
    /// Expected RNG state after replaying the resumed run's shuffles —
    /// verified once, at the resume epoch's shuffle.
    resume_rng_state: Option<u64>,
    /// Expected training-set length for a resumed run.
    resume_train_len: Option<u64>,
}

impl Trainer {
    /// Creates a trainer from `cfg` (resolving `grad_shards = 0` to the
    /// replica count) on the process-global runtime.
    #[must_use]
    pub fn new(cfg: &TrainConfig) -> Self {
        let grad_shards = if cfg.grad_shards == 0 {
            cfg.replicas.max(1)
        } else {
            cfg.grad_shards
        };
        Self {
            cfg: *cfg,
            grad_shards,
            opt: Sgd::new(cfg.momentum, cfg.weight_decay),
            schedule: CosineLr::new(cfg.lr, cfg.epochs.max(1)),
            scaler: LossScaler::with_scale(cfg.init_loss_scale),
            rng: SplitMix64::new(cfg.seed),
            history: History::default(),
            runtime: Arc::clone(Runtime::global()),
            cursor: (0, 0),
            epoch_loss: 0.0,
            finite_batches: 0,
            train_len: 0,
            ckpt: None,
            diag: None,
            halt_after: None,
            resume_rng_state: None,
            resume_train_len: None,
        }
    }

    /// Replaces the runtime used for batch assembly, replica dispatch,
    /// gradient reduction, and the optimizer's chunked update (default:
    /// [`Runtime::global`]). Training bits never depend on the choice.
    /// Restored optimizer state (a resumed trainer's momentum buffers)
    /// survives the swap.
    #[must_use]
    pub fn with_runtime(mut self, runtime: Arc<Runtime>) -> Self {
        self.opt.set_runtime(Arc::clone(&runtime));
        self.runtime = runtime;
        self
    }

    /// Arms auto-checkpointing: every `every` optimizer steps (counted
    /// across epochs), the model and the full trainer state are saved to
    /// the keep-K rotation at `path` (`ckpt.srmc`, `ckpt.1.srmc`, …)
    /// atomically, with bounded retry; one final save lands at run
    /// completion regardless of cadence. `meta` is stamped on every save
    /// — give it the architecture tag and numerics/engine info a resumer
    /// needs to rebuild the model. Defaults: keep 3 generations
    /// ([`DEFAULT_KEEP`]), [`RetryPolicy::default`], the real filesystem.
    #[must_use]
    pub fn checkpoint_every(
        mut self,
        every: usize,
        path: impl Into<PathBuf>,
        meta: CheckpointMeta,
    ) -> Self {
        self.ckpt = Some(CkptOptions {
            every,
            path: path.into(),
            meta,
            keep: DEFAULT_KEEP,
            retry: RetryPolicy::default(),
            storage: Arc::new(FsStorage),
        });
        self
    }

    /// Sets the rotation depth (generations kept, head included).
    ///
    /// # Panics
    ///
    /// Panics unless [`Trainer::checkpoint_every`] was called first.
    #[must_use]
    pub fn with_keep(mut self, keep: usize) -> Self {
        self.ckpt_options_mut().keep = keep;
        self
    }

    /// Sets the per-save retry budget.
    ///
    /// # Panics
    ///
    /// Panics unless [`Trainer::checkpoint_every`] was called first.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.ckpt_options_mut().retry = retry;
        self
    }

    /// Routes checkpoint I/O through an explicit [`Storage`] — the
    /// fault-injection hook.
    ///
    /// # Panics
    ///
    /// Panics unless [`Trainer::checkpoint_every`] was called first.
    #[must_use]
    pub fn with_storage(mut self, storage: Arc<dyn Storage>) -> Self {
        self.ckpt_options_mut().storage = storage;
        self
    }

    /// Attaches a diagnostic sink; checkpoint saves, failures, and
    /// resume provenance are reported as `ckpt::*` / `train::*` events.
    #[must_use]
    pub fn with_diag(mut self, diag: DiagSink) -> Self {
        self.diag = Some(diag);
        self
    }

    /// Stops [`Trainer::run`] after `n` total optimizer steps (counted
    /// across epochs), returning the partial history — the deterministic
    /// "kill the process here" hook the crash-recovery tests and the
    /// interrupt demo are built on.
    #[must_use]
    pub fn halt_after(mut self, n: usize) -> Self {
        self.halt_after = Some(n);
        self
    }

    fn ckpt_options_mut(&mut self) -> &mut CkptOptions {
        self.ckpt
            .as_mut()
            .expect("configure checkpointing with checkpoint_every(..) first") // PANIC-OK: documented API-misuse panic — checkpoint_every(..) must be configured first.
    }

    /// The resolved gradient-shard count `S` (after `0 -> replicas`).
    #[must_use]
    pub fn grad_shards(&self) -> usize {
        self.grad_shards
    }

    /// The history accumulated so far (epoch records from [`Trainer::run`]
    /// plus counters from stand-alone [`Trainer::train_step`] calls).
    #[must_use]
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Runs the full training loop: per epoch, a Fisher-Yates shuffle,
    /// one [`Trainer::train_step`] per minibatch, then an [`evaluate`]
    /// pass — and returns the completed [`History`].
    ///
    /// A trainer built by [`Trainer::resume`] continues from its saved
    /// epoch/step cursor instead of the beginning: the shuffles the
    /// interrupted run already consumed are replayed from the seed (the
    /// RNG is touched only by the shuffle, so the permutation and the RNG
    /// state at any epoch are pure functions of seed × epoch index), the
    /// landing state is verified against the checkpoint, and the
    /// already-completed steps of the resume epoch are skipped. The
    /// completed [`History`] is bitwise identical to the uninterrupted
    /// run's.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`, if a resumed run is handed a training
    /// set whose length differs from the checkpointed one, if the
    /// replayed shuffle RNG does not land on the checkpointed state
    /// (dataset or seed changed), or (at `S > 1`) if a model layer does
    /// not support replication.
    pub fn run(mut self, model: &mut Sequential, train: &Dataset, test: &Dataset) -> History {
        let cfg = self.cfg;
        assert!(cfg.batch_size > 0, "training needs a nonzero batch size");
        if let Some(expected) = self.resume_train_len {
            assert_eq!(
                train.len() as u64,
                expected,
                "resumed run must see the training set it was checkpointed with \
                 ({expected} samples)"
            );
        }
        self.train_len = train.len() as u64;
        let steps_per_epoch = train.len().div_ceil(cfg.batch_size);
        let (start_epoch, start_step) = self.cursor;
        let mut order: Vec<usize> = (0..train.len()).collect();
        // Replay the shuffles a resumed run already consumed.
        for _ in 0..start_epoch.min(cfg.epochs) {
            self.shuffle(&mut order);
        }
        if start_epoch >= cfg.epochs {
            // Resumed a run that had already completed (final checkpoint).
            self.verify_resume_rng();
            return self.history;
        }
        // One reused batch buffer for the whole run (only the final ragged
        // batch of an epoch reshapes it); assembled on the trainer's
        // runtime.
        let rt = Arc::clone(&self.runtime);
        let s = train.image_size();
        let mut x = Tensor::zeros(&[cfg.batch_size.min(train.len().max(1)), 3, s, s]);
        let mut labels = Vec::with_capacity(cfg.batch_size);
        for epoch in start_epoch..cfg.epochs {
            let lr = self.schedule.at(epoch);
            self.shuffle(&mut order);
            if epoch == start_epoch {
                // The checkpointed RNG state was captured after the resume
                // epoch's shuffle — the replay must land exactly on it.
                self.verify_resume_rng();
            }
            let skip = if epoch == start_epoch { start_step } else { 0 };
            self.cursor = (epoch, skip);
            for chunk in order.chunks(cfg.batch_size).skip(skip) {
                if x.shape()[0] != chunk.len() {
                    x = Tensor::zeros(&[chunk.len(), 3, s, s]);
                }
                train.batch_into(&rt, chunk, &mut x, &mut labels);
                let loss = self.train_step(model, &x, &labels, lr);
                if loss.is_finite() {
                    self.epoch_loss += f64::from(loss);
                    self.finite_batches += 1;
                }
                self.cursor.1 += 1;
                let total = epoch * steps_per_epoch + self.cursor.1;
                if self
                    .ckpt
                    .as_ref()
                    .is_some_and(|c| c.every > 0 && total.is_multiple_of(c.every))
                {
                    self.autosave(model);
                }
                if self.halt_after.is_some_and(|h| total >= h) {
                    // The deterministic interrupt: the partial history goes
                    // back as-is. Resume recomputes any steps past the last
                    // save — the halt need not coincide with one.
                    return self.history;
                }
            }
            let acc = evaluate(model, test, cfg.batch_size);
            self.history.train_loss.push(if self.finite_batches > 0 {
                (self.epoch_loss / self.finite_batches as f64) as f32
            } else {
                f32::NAN
            });
            self.history.test_acc.push(acc);
            if cfg.verbose {
                eprintln!(
                    "  epoch {:>3}: lr {:.4}  loss {:.4}  test acc {:.2}%  (scale {})",
                    epoch + 1,
                    lr,
                    self.history.train_loss.last().unwrap(), // PANIC-OK: this epoch's loss was pushed just above.
                    acc,
                    self.scaler.scale(),
                );
            }
            self.cursor = (epoch + 1, 0);
            self.epoch_loss = 0.0;
            self.finite_batches = 0;
        }
        self.history.final_scale = self.scaler.scale();
        if self.ckpt.is_some() {
            // Final save at cursor (epochs, 0): a resume of a finished run
            // returns the completed history without touching the model.
            self.autosave(model);
        }
        self.history
    }

    /// One Fisher-Yates pass over `order` driven by the trainer's RNG —
    /// the **only** consumer of `self.rng`, which is what makes shuffle
    /// replay on resume sound.
    fn shuffle(&mut self, order: &mut [usize]) {
        for i in (1..order.len()).rev() {
            let j = self.rng.next_below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
    }

    /// Checks the replayed RNG against the checkpointed state, once.
    fn verify_resume_rng(&mut self) {
        if let Some(expected) = self.resume_rng_state.take() {
            assert_eq!(
                self.rng.state(),
                expected,
                "replayed shuffle RNG diverged from the checkpoint — the training \
                 set or the seed changed since the save"
            );
        }
    }

    /// Snapshots the full trainer state for persistence.
    fn capture_train_state(&self) -> TrainState {
        TrainState {
            epoch: self.cursor.0 as u32,
            step: self.cursor.1 as u32,
            rng_state: self.rng.state(),
            scaler_scale: self.scaler.scale(),
            scaler_good_steps: self.scaler.good_steps(),
            scaler_growth_interval: self.scaler.growth_interval,
            epoch_loss: self.epoch_loss,
            finite_batches: self.finite_batches as u32,
            config: config_record(&self.cfg, self.grad_shards, self.train_len),
            history: history_record(&self.history),
            velocities: self.opt.velocity_state(),
        }
    }

    /// Saves the model plus the full trainer state to the configured
    /// keep-K rotation right now, regardless of cadence.
    ///
    /// # Errors
    ///
    /// Returns the last attempt's error when every retry failed; older
    /// rotation generations stay intact.
    ///
    /// # Panics
    ///
    /// Panics unless [`Trainer::checkpoint_every`] was called first.
    pub fn checkpoint_now(
        &mut self,
        model: &mut Sequential,
    ) -> Result<SaveReport, CheckpointError> {
        let state = self.capture_train_state();
        let opts = self
            .ckpt
            .as_ref()
            .expect("configure checkpointing with checkpoint_every(..) first"); // PANIC-OK: only reached from the checkpointing path, where ckpt is configured.
        let bytes = srmac_io::Checkpoint::capture(model, opts.meta.clone())
            .with_train_state(state)
            .encode();
        save_rotating(
            opts.storage.as_ref(),
            &opts.path,
            &bytes,
            opts.keep,
            opts.retry,
        )
    }

    /// The cadence save: never fatal. A save that needed retries is
    /// surfaced as a `ckpt::save-failed` warning; one that exhausted them
    /// is counted in [`History::ckpt_save_failures`] and diagnosed as
    /// `ckpt::retry-exhausted`, and training continues.
    fn autosave(&mut self, model: &mut Sequential) {
        match self.checkpoint_now(model) {
            Ok(report) => {
                if report.attempts > 1 {
                    if let Some(d) = &self.diag {
                        d.emit(
                            Diagnostic::new(
                                Severity::Warning,
                                codes::SAVE_FAILED,
                                "checkpoint save attempt failed; a retry landed it",
                            )
                            .field("attempts", report.attempts.to_string()),
                        );
                    }
                }
            }
            Err(e) => {
                self.history.ckpt_save_failures += 1;
                if let Some(d) = &self.diag {
                    d.emit(
                        Diagnostic::new(
                            Severity::Error,
                            codes::RETRY_EXHAUSTED,
                            "checkpoint save exhausted its retry budget; training continues",
                        )
                        .field("error", e.to_string()),
                    );
                }
            }
        }
    }

    /// Reconstructs a trainer (and `model`'s weights) from the newest
    /// valid checkpoint in the rotation set at `path`, such that
    /// [`Trainer::run`] continues the interrupted run **bitwise
    /// identically** to an uninterrupted one.
    ///
    /// The caller supplies a model of the same architecture (same layers,
    /// same engines — the checkpoint's metadata records which); weights,
    /// optimizer momentum, loss-scaler trajectory, RNG position, cursor,
    /// and history all come from the checkpoint. Re-arm auto-checkpointing
    /// with [`Trainer::checkpoint_every`] if the continued run should keep
    /// saving.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::NoValidCheckpoint`] when no rotation slot
    /// decodes; [`CheckpointError::MissingTrainState`] when the newest
    /// valid one is a plain model checkpoint (pre-v3 or saved without a
    /// trainer); [`CheckpointError::ModelMismatch`] when `model` does not
    /// match the checkpointed architecture.
    pub fn resume(path: impl AsRef<Path>, model: &mut Sequential) -> Result<Self, CheckpointError> {
        Self::resume_with(&FsStorage, path.as_ref(), model, None)
    }

    /// [`Trainer::resume`] through an explicit [`Storage`], optionally
    /// reporting provenance to `diag`: a `train::resume-version` info
    /// event always, plus a `ckpt::corrupt-head-fallback` warning when
    /// the rotation head was unusable and an older generation was used.
    pub fn resume_with(
        storage: &dyn Storage,
        path: &Path,
        model: &mut Sequential,
        diag: Option<&DiagSink>,
    ) -> Result<Self, CheckpointError> {
        let rec = recover_latest(storage, path)?;
        let state = rec
            .checkpoint
            .train
            .clone()
            .ok_or(CheckpointError::MissingTrainState)?;
        rec.checkpoint.apply_to(model)?;
        let cfg = config_from_record(&state.config);
        let mut t = Trainer::new(&cfg);
        t.scaler = LossScaler::from_parts(
            state.scaler_scale,
            state.scaler_good_steps,
            state.scaler_growth_interval,
        );
        t.opt
            .restore_velocities(model, &state.velocities)
            .map_err(|what| CheckpointError::ModelMismatch { what })?;
        t.history = history_from_record(&state.history);
        t.cursor = (state.epoch as usize, state.step as usize);
        t.epoch_loss = state.epoch_loss;
        t.finite_batches = state.finite_batches as usize;
        t.resume_rng_state = Some(state.rng_state);
        t.resume_train_len = Some(state.config.train_len);
        if let Some(d) = diag {
            if rec.slot > 0 {
                let mut diag_fallback = Diagnostic::new(
                    Severity::Warning,
                    codes::CORRUPT_HEAD_FALLBACK,
                    "rotation head unusable; resumed from an older generation",
                )
                .field("slot", rec.slot.to_string());
                if let Some((p, e)) = rec.rejected.first() {
                    diag_fallback = diag_fallback
                        .field("head", p.display().to_string())
                        .field("head_error", e.to_string());
                }
                d.emit(diag_fallback);
            }
            let version = storage
                .read(&rec.path)
                .ok()
                .and_then(|b| srmac_io::wire_version(&b).ok());
            d.emit(
                Diagnostic::new(
                    Severity::Info,
                    codes::RESUME,
                    "training resumed from checkpoint",
                )
                .field("path", rec.path.display().to_string())
                .field(
                    "wire_version",
                    version.map_or_else(|| "?".into(), |v| v.to_string()),
                )
                .field("epoch", state.epoch.to_string())
                .field("step", state.step.to_string()),
            );
            t.diag = Some(d.clone());
        }
        Ok(t)
    }

    /// Executes one optimizer step on an assembled minibatch (`x` holds
    /// `labels.len()` samples in row order) at learning rate `lr`, and
    /// returns the batch loss (possibly non-finite; already recorded in
    /// the trainer's counters).
    ///
    /// # Panics
    ///
    /// Panics on an empty batch, a `x`/`labels` row-count mismatch, or
    /// (at `S > 1`) a model layer that does not support replication.
    pub fn train_step(
        &mut self,
        model: &mut Sequential,
        x: &Tensor,
        labels: &[usize],
        lr: f32,
    ) -> f32 {
        if self.grad_shards == 1 {
            self.inline_step(model, x, labels, lr)
        } else {
            self.sharded_step(model, x, labels, lr)
        }
    }

    /// The classic `S == 1` step: forward/backward on the primary model
    /// itself. Kept verbatim from the pre-data-parallel trainer so default
    /// configs reproduce pinned histories bit-for-bit.
    fn inline_step(
        &mut self,
        model: &mut Sequential,
        x: &Tensor,
        labels: &[usize],
        lr: f32,
    ) -> f32 {
        let logits = model.forward(x, true);
        let (loss, mut grad) = softmax_cross_entropy(&logits, labels);
        if !loss.is_finite() {
            self.history.nonfinite_batches += 1;
        }
        grad.scale_(self.scaler.scale());
        model.backward(&grad);

        let mut finite = loss.is_finite();
        if finite {
            model.visit_params(&mut |p| finite &= p.grad.all_finite());
        }
        if self.scaler.update(finite) {
            self.opt.step(model, lr, 1.0 / self.scaler.scale());
        } else {
            Sgd::zero_grad(model);
            self.history.skipped_steps += 1;
        }
        loss
    }

    /// The `S > 1` data-parallel step (see the type-level contract).
    fn sharded_step(
        &mut self,
        model: &mut Sequential,
        x: &Tensor,
        labels: &[usize],
        lr: f32,
    ) -> f32 {
        let n = labels.len();
        assert!(n > 0, "train_step needs a nonempty batch");
        assert_eq!(x.shape()[0], n, "batch tensor rows must match labels");
        let plane = x.numel() / n;

        // Phase 1: shard. Batches smaller than S leave the leading shards
        // empty; they contribute nothing and are skipped.
        let spans: Vec<_> = shard_spans(n, self.grad_shards)
            .into_iter()
            .filter(|sp| !sp.is_empty())
            .collect();

        // Phase 2: replicate. Warm the primary's weight packs first so
        // every clone shares ready packs instead of re-packing per shard.
        model.warm_weight_packs();
        let scale = self.scaler.scale();
        let mut shard_work = Vec::with_capacity(spans.len());
        for (idx, sp) in spans.iter().enumerate() {
            let mut replica = model
                .try_clone()
                .expect("data-parallel training needs every layer to support clone_layer"); // PANIC-OK: documented contract — data-parallel training requires replicable layers.
            replica.set_batch_offset(sp.start);
            let mut shape = x.shape().to_vec();
            shape[0] = sp.len();
            let xs = Tensor::from_vec(x.data()[sp.start * plane..sp.end * plane].to_vec(), &shape);
            let ls = labels[sp.clone()].to_vec();
            // Pre-scale the shard's loss gradient by its batch fraction:
            // the loss divides by the shard's rows, so n_s/N turns the
            // tree-reduced sum into the full batch's 1/N mean scaling.
            let gs = scale * (sp.len() as f32 / n as f32);
            shard_work.push((idx, replica, xs, ls, gs));
        }

        // Phase 3: compute. Group shards into at most `replicas`
        // contiguous jobs; grouping affects scheduling only — each shard's
        // result is the same bits under every grouping.
        let groups = shard_spans(
            shard_work.len(),
            self.cfg.replicas.max(1).min(shard_work.len()),
        );
        let mut work_iter = shard_work.into_iter();
        let jobs: Vec<_> = groups
            .into_iter()
            .map(|g| {
                let batch: Vec<_> = work_iter.by_ref().take(g.len()).collect();
                move || {
                    batch
                        .into_iter()
                        .map(|(idx, replica, xs, ls, gs)| run_shard(idx, replica, xs, ls, gs))
                        .collect::<Vec<ShardResult>>()
                }
            })
            .collect();
        let mut results: Vec<ShardResult> =
            self.runtime.run_jobs(jobs).into_iter().flatten().collect();
        // Job order already equals shard order (contiguous ascending
        // groups); the sort pins that invariant structurally.
        results.sort_by_key(|r| r.0);

        // Phase 4: reduce — fixed binary tree in shard order.
        let mut bufs: Vec<Vec<f32>> = results
            .iter_mut()
            .map(|r| std::mem::take(&mut r.3))
            .collect();
        self.runtime.tree_reduce(&mut bufs);
        let reduced = &bufs[0];

        // Count-weighted batch loss in f64 (a non-finite shard loss
        // propagates into the batch loss, exactly as it would inline).
        let mut loss_acc = 0.0f64;
        for r in &results {
            loss_acc += f64::from(r.1) * r.2 as f64;
        }
        let loss = (loss_acc / n as f64) as f32;

        // Batch-norm running statistics advance during forward whether or
        // not the step proceeds (as a single-model forward would). The
        // count-weighted f64 combine equals a momentum update against the
        // pooled per-shard batch statistics.
        if !results[0].4.is_empty() {
            let mut acc = vec![0.0f64; results[0].4.len()];
            for r in &results {
                let w = r.2 as f64 / n as f64;
                for (a, &v) in acc.iter_mut().zip(&r.4) {
                    *a += w * f64::from(v);
                }
            }
            let combined: Vec<f32> = acc.iter().map(|&v| v as f32).collect();
            write_state(model, &combined);
        }

        if !loss.is_finite() {
            self.history.nonfinite_batches += 1;
        }
        let mut finite = loss.is_finite();
        if finite {
            finite = reduced.iter().all(|g| g.is_finite());
        }

        // Phase 5: one optimizer step on the primary (or one skip).
        if self.scaler.update(finite) {
            scatter_grads(model, reduced);
            self.opt.step(model, lr, 1.0 / self.scaler.scale());
        } else {
            Sgd::zero_grad(model);
            self.history.skipped_steps += 1;
        }
        loss
    }
}

/// Evaluates classification accuracy (percent) on a dataset.
///
/// Batches stream through one reused batch tensor, assembled in parallel
/// on the shared runtime (`Dataset::batch_into`): after the first batch
/// the loop performs no per-batch input allocations. Batch boundaries are
/// identical to the naive per-batch path, so accuracies are bitwise
/// unchanged under every engine and rounding mode.
///
/// # Panics
///
/// Panics if `batch_size == 0`.
pub fn evaluate(model: &mut Sequential, data: &Dataset, batch_size: usize) -> f32 {
    assert!(batch_size > 0, "evaluate needs a nonzero batch size");
    let rt = srmac_tensor::Runtime::global();
    let s = data.image_size();
    let idx: Vec<usize> = (0..data.len()).collect();
    let mut x = Tensor::zeros(&[batch_size.min(data.len().max(1)), 3, s, s]);
    let mut labels = Vec::with_capacity(batch_size);
    let mut correct = 0usize;
    for chunk in idx.chunks(batch_size) {
        if x.shape()[0] != chunk.len() {
            // Only the final ragged batch reshapes the buffer.
            x = Tensor::zeros(&[chunk.len(), 3, s, s]);
        }
        data.batch_into(rt, chunk, &mut x, &mut labels);
        let logits = model.forward(&x, false);
        correct += count_correct(&logits, &labels);
    }
    100.0 * correct as f32 / data.len().max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synth_cifar10;
    use crate::resnet::resnet20;
    use srmac_qgemm::engine_from_spec;
    use srmac_rng::SplitMix64;
    use srmac_tensor::init::kaiming_normal;
    use srmac_tensor::layers::{Conv2d, GlobalAvgPool, Linear, Relu};
    use srmac_tensor::{F32Engine, GemmEngine};
    use std::sync::Arc;

    #[test]
    fn f32_training_learns_synthetic_classes() {
        // A tiny ResNet on a tiny synthetic set must beat chance (10%)
        // decisively within a few epochs — the sanity bar for every
        // experiment built on this harness.
        let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::default());
        let mut net = resnet20(&engine, 4, 10, 42);
        let train_ds = synth_cifar10(160, 12, 10);
        let test_ds = synth_cifar10(80, 12, 11);
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 20,
            lr: 0.05,
            ..TrainConfig::default()
        };
        let h = train(&mut net, &train_ds, &test_ds, &cfg);
        assert_eq!(h.test_acc.len(), 6);
        assert!(
            h.best_accuracy() > 30.0,
            "tiny ResNet should beat chance (10%) decisively, got {:.1}%",
            h.best_accuracy()
        );
        // Loss must come down substantially.
        assert!(
            h.train_loss.last().unwrap() < &1.8,
            "loss: {:?}",
            h.train_loss
        );
    }

    /// A small conv net with the weight-pack caching of every GEMM-backed
    /// layer switched on or off.
    fn small_net(engine: &Arc<dyn GemmEngine>, cached: bool) -> Sequential {
        let mut rng = SplitMix64::new(5);
        let mut net = Sequential::new();
        net.push(
            Conv2d::new(
                3,
                6,
                3,
                1,
                1,
                kaiming_normal(&[6, 27], 27, &mut rng),
                engine.clone(),
            )
            .with_weight_pack_caching(cached),
        );
        net.push(Relu::new());
        net.push(GlobalAvgPool::new());
        net.push(
            Linear::new(6, 10, kaiming_normal(&[10, 6], 6, &mut rng), engine.clone())
                .with_weight_pack_caching(cached),
        );
        net
    }

    #[test]
    fn weight_pack_caching_does_not_change_history() {
        // Caching packed weights is an execution-plan change, not a numeric
        // one: the full training History (losses, accuracies, scaler
        // trajectory) must be bitwise unchanged — on the exact f32 engine
        // and on the paper's SR MAC engine, whose per-element rounding
        // streams must not notice *when* operands were quantized.
        // Engines by spec name (results are thread-invariant, so the
        // registry's default thread count changes nothing).
        let engines: Vec<Arc<dyn GemmEngine>> = vec![
            Arc::new(F32Engine::new(2)),
            engine_from_spec("fp8_fp12_sr13").expect("paper's pick"),
            engine_from_spec("fp8_fp12_rn_sub").expect("RN reference"),
        ];
        let train_ds = synth_cifar10(48, 8, 21);
        let test_ds = synth_cifar10(32, 8, 22);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 12,
            ..TrainConfig::default()
        };
        for engine in &engines {
            let mut cached_net = small_net(engine, true);
            let mut uncached_net = small_net(engine, false);
            let cached = train(&mut cached_net, &train_ds, &test_ds, &cfg);
            let uncached = train(&mut uncached_net, &train_ds, &test_ds, &cfg);
            assert_eq!(cached.train_loss, uncached.train_loss, "{}", engine.name());
            assert_eq!(cached.test_acc, uncached.test_acc, "{}", engine.name());
            assert_eq!(
                cached.skipped_steps,
                uncached.skipped_steps,
                "{}",
                engine.name()
            );
            assert_eq!(
                cached.nonfinite_batches,
                uncached.nonfinite_batches,
                "{}",
                engine.name()
            );
            assert_eq!(
                cached.final_scale,
                uncached.final_scale,
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn overflow_batch_does_not_poison_the_epoch_loss() {
        // One sample with absurd magnitudes overflows its batch: the loss
        // comes out non-finite and the scaler skips that step. The epoch
        // mean must stay finite (the old code recorded NaN for the whole
        // epoch although training recovered), and the poisoned batches
        // must be counted.
        let base = synth_cifar10(40, 8, 31);
        let plane = 3 * 8 * 8;
        let mut images = Vec::with_capacity(40 * plane);
        for i in 0..40 {
            let (x, _) = base.batch(&[i]);
            images.extend_from_slice(x.data());
        }
        // Poison one sample far beyond f32 comfort.
        images[3 * plane..4 * plane]
            .iter_mut()
            .for_each(|v| *v = 1.0e20);
        let ds = Dataset::from_parts(images, base.labels().to_vec(), 8);

        let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
        let mut net = small_net(&engine, true);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.01,
            ..TrainConfig::default()
        };
        let h = train(&mut net, &ds, &base, &cfg);
        assert!(
            h.nonfinite_batches > 0,
            "the poisoned sample must produce at least one non-finite batch loss"
        );
        assert!(
            h.train_loss.iter().all(|l| l.is_finite()),
            "finite batches exist in every epoch, so no epoch mean may be NaN: {:?}",
            h.train_loss
        );
        assert!(
            h.skipped_steps > 0,
            "the scaler must skip the overflowed steps"
        );
    }

    #[test]
    fn history_accessors_are_defined_on_empty_runs() {
        // A zero-epoch run (`epochs: 0` is a legal config — e.g. "just
        // evaluate a checkpoint") must yield defined accessor values, not
        // panics or poisoned NaN maxima.
        let h = History::default();
        assert_eq!(h.epochs(), 0);
        assert_eq!(h.final_accuracy(), 0.0);
        assert_eq!(h.best_accuracy(), 0.0);
        assert!(h.final_loss().is_nan());
        assert!(h.best_loss().is_nan());

        // And the trainer really produces such a history for epochs = 0.
        let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
        let mut net = small_net(&engine, true);
        let ds = synth_cifar10(10, 8, 1);
        let cfg = TrainConfig {
            epochs: 0,
            batch_size: 5,
            ..TrainConfig::default()
        };
        let h = train(&mut net, &ds, &ds, &cfg);
        assert_eq!(h.epochs(), 0);
        assert_eq!(h.final_accuracy(), 0.0);
        assert!(h.final_loss().is_nan());
    }

    #[test]
    fn history_accessors_are_defined_on_all_non_finite_runs() {
        // A run whose every epoch loss came out non-finite (every batch
        // overflowed) keeps NaN epoch records; the accessors must stay
        // defined and must not let the NaNs poison the accuracy maximum.
        let h = History {
            train_loss: vec![f32::NAN, f32::NAN],
            test_acc: vec![10.0, f32::NAN],
            skipped_steps: 2,
            nonfinite_batches: 4,
            final_scale: 512.0,
            ckpt_save_failures: 0,
        };
        assert_eq!(h.epochs(), 2);
        assert_eq!(h.best_accuracy(), 10.0, "NaN accuracy must be ignored");
        assert!(h.final_loss().is_nan());
        assert!(
            h.best_loss().is_nan(),
            "no finite loss exists, so best_loss is NaN by definition"
        );
        assert!(h.final_accuracy().is_nan(), "last entry is truthfully NaN");
    }

    #[test]
    fn grad_shards_zero_resolves_to_replica_count() {
        let t = Trainer::new(&TrainConfig::default());
        assert_eq!(t.grad_shards(), 1, "defaults stay on the legacy path");
        let t = Trainer::new(&TrainConfig {
            replicas: 4,
            ..TrainConfig::default()
        });
        assert_eq!(t.grad_shards(), 4, "auto shards follow the replicas");
        let t = Trainer::new(&TrainConfig {
            replicas: 2,
            grad_shards: 3,
            ..TrainConfig::default()
        });
        assert_eq!(t.grad_shards(), 3, "explicit shards win");
        let t = Trainer::new(&TrainConfig {
            replicas: 0,
            ..TrainConfig::default()
        });
        assert_eq!(t.grad_shards(), 1, "zero replicas clamp to one");
    }

    #[test]
    fn replica_count_does_not_change_training_bits() {
        // The core data-parallel contract on the f32 engine: at a pinned
        // gradient-shard count, every replica count — and every pool size —
        // produces the identical History. Batch 16 with a ragged final
        // batch of 12 exercises uneven shards; resnet20 brings batch-norm
        // state recombination into the picture.
        let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(2));
        let run = |replicas: usize, threads: usize| {
            let mut net = resnet20(&engine, 4, 10, 7);
            let train_ds = synth_cifar10(60, 8, 3);
            let test_ds = synth_cifar10(40, 8, 4);
            let cfg = TrainConfig {
                epochs: 2,
                batch_size: 16,
                replicas,
                grad_shards: 4,
                ..TrainConfig::default()
            };
            let rt = Arc::new(srmac_tensor::Runtime::new(threads));
            Trainer::new(&cfg)
                .with_runtime(rt)
                .run(&mut net, &train_ds, &test_ds)
        };
        let baseline = run(1, 1);
        assert!(
            baseline.train_loss.iter().all(|l| l.is_finite()),
            "sharded training must still train: {:?}",
            baseline.train_loss
        );
        for (replicas, threads) in [(2, 4), (4, 4), (8, 2), (3, 1)] {
            let h = run(replicas, threads);
            assert_eq!(
                baseline
                    .train_loss
                    .iter()
                    .map(|l| l.to_bits())
                    .collect::<Vec<_>>(),
                h.train_loss.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
                "losses changed at replicas={replicas} threads={threads}"
            );
            assert_eq!(
                baseline.test_acc, h.test_acc,
                "accuracy changed at replicas={replicas} threads={threads}"
            );
            assert_eq!(baseline.skipped_steps, h.skipped_steps);
            assert_eq!(baseline.final_scale, h.final_scale);
        }
    }

    #[test]
    fn single_nonempty_shard_matches_the_inline_step() {
        // A batch no larger than one shard's span leaves S-1 shards empty:
        // the sharded step degenerates to one full-batch replica, whose
        // loss-gradient scaling (n_s/N = 1) and single-buffer reduction
        // reproduce the inline path's numbers exactly.
        let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
        let run = |grad_shards: usize| {
            let mut net = small_net(&engine, true);
            let train_ds = synth_cifar10(12, 8, 9);
            let cfg = TrainConfig {
                epochs: 2,
                batch_size: 12,
                // 12 samples, shard span 12: every batch is one shard.
                grad_shards,
                ..TrainConfig::default()
            };
            Trainer::new(&cfg).run(&mut net, &train_ds, &train_ds)
        };
        let inline = run(1);
        // S = 13 > 12 samples: the first 12 spans are empty, the last
        // holds the whole batch — one replica, full batch.
        let degenerate = run(13);
        assert_eq!(
            inline
                .train_loss
                .iter()
                .map(|l| l.to_bits())
                .collect::<Vec<_>>(),
            degenerate
                .train_loss
                .iter()
                .map(|l| l.to_bits())
                .collect::<Vec<_>>(),
            "single-shard sharded step must equal the inline step"
        );
        assert_eq!(inline.test_acc, degenerate.test_acc);
        assert_eq!(inline.final_scale, degenerate.final_scale);
    }

    #[test]
    #[should_panic(expected = "clone_layer")]
    fn sharded_training_rejects_unreplicable_layers() {
        // A layer without clone support must fail loudly, not silently
        // train on something else.
        struct Opaque;
        impl Layer for Opaque {
            fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
                x.clone()
            }
            fn backward(&mut self, grad: &Tensor) -> Tensor {
                grad.clone()
            }
        }
        let mut net = Sequential::new();
        net.push(Opaque);
        let cfg = TrainConfig {
            grad_shards: 2,
            ..TrainConfig::default()
        };
        let x = Tensor::zeros(&[2, 1, 1, 1]);
        let mut t = Trainer::new(&cfg);
        t.train_step(&mut net, &x, &[0, 1], 0.1);
    }

    #[test]
    fn training_is_deterministic() {
        let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(2));
        let run = || {
            let mut net = resnet20(&engine, 4, 10, 7);
            let train_ds = synth_cifar10(60, 8, 3);
            let test_ds = synth_cifar10(40, 8, 4);
            let cfg = TrainConfig {
                epochs: 2,
                batch_size: 16,
                ..TrainConfig::default()
            };
            train(&mut net, &train_ds, &test_ds, &cfg).test_acc
        };
        assert_eq!(run(), run());
    }
}
