//! The training harness: SGD with momentum, cosine-annealed learning rate,
//! and dynamic loss scaling — the paper's Sec. IV-A recipe — over any GEMM
//! engine or per-role `Numerics` policy (the harness itself is
//! engine-agnostic: the model's layers carry their role-resolved engines,
//! so a mixed RN-forward/SR-backward experiment trains through exactly
//! this code path; see `srmac_tensor::numerics`).

use srmac_rng::SplitMix64;
use srmac_tensor::layers::Layer;
use srmac_tensor::{
    count_correct, softmax_cross_entropy, CosineLr, LossScaler, Sequential, Sgd, Tensor,
};

use crate::data::Dataset;

/// Hyperparameters (defaults follow the paper's ResNet-20 settings:
/// momentum 0.9, initial loss scale 1024, cosine annealing).
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Initial dynamic loss scale.
    pub init_loss_scale: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Print one line per epoch when set.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            batch_size: 32,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 1e-4,
            init_loss_scale: 1024.0,
            seed: 0xC0FFEE,
            verbose: false,
        }
    }
}

/// Per-epoch training records.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Mean training loss per epoch, over the finite batch losses only: a
    /// batch that overflowed (and whose step the scaler skipped) must not
    /// poison the whole epoch's mean with NaN when training recovered. An
    /// epoch with no finite batch at all records NaN truthfully.
    pub train_loss: Vec<f32>,
    /// Test accuracy (percent) per epoch.
    pub test_acc: Vec<f32>,
    /// Steps skipped by the loss scaler.
    pub skipped_steps: usize,
    /// Batches whose loss came out non-finite (excluded from the
    /// `train_loss` means).
    pub nonfinite_batches: usize,
    /// Final loss scale.
    pub final_scale: f32,
}

impl History {
    /// Number of epochs recorded.
    #[must_use]
    pub fn epochs(&self) -> usize {
        self.test_acc.len()
    }

    /// Final test accuracy in percent. Defined for every history: `0.0`
    /// when no epoch ran (never panics).
    #[must_use]
    pub fn final_accuracy(&self) -> f32 {
        self.test_acc.last().copied().unwrap_or(0.0)
    }

    /// Best test accuracy in percent across epochs. Defined for every
    /// history: `0.0` when no epoch ran, and NaN entries (degenerate
    /// evaluations) are ignored rather than poisoning the maximum.
    #[must_use]
    pub fn best_accuracy(&self) -> f32 {
        // `f32::max` returns the non-NaN operand, so NaNs drop out.
        self.test_acc.iter().copied().fold(0.0, f32::max)
    }

    /// Final epoch's mean training loss. Defined for every history: NaN
    /// when no epoch ran (matching an epoch with no finite batch) — never
    /// panics, so callers don't need the `train_loss.last().unwrap()`
    /// footgun.
    #[must_use]
    pub fn final_loss(&self) -> f32 {
        self.train_loss.last().copied().unwrap_or(f32::NAN)
    }

    /// Lowest *finite* epoch loss across the run. Defined for every
    /// history: NaN when no epoch recorded a finite loss (zero-epoch runs
    /// and all-non-finite runs alike).
    #[must_use]
    pub fn best_loss(&self) -> f32 {
        self.train_loss
            .iter()
            .copied()
            .filter(|l| l.is_finite())
            .fold(f32::NAN, f32::min)
    }
}

/// Trains `model` on `train`, evaluating on `test` after every epoch.
pub fn train(
    model: &mut Sequential,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> History {
    assert!(cfg.batch_size > 0, "training needs a nonzero batch size");
    let mut opt = Sgd::new(cfg.momentum, cfg.weight_decay);
    let schedule = CosineLr::new(cfg.lr, cfg.epochs.max(1));
    let mut scaler = LossScaler::with_scale(cfg.init_loss_scale);
    let mut rng = SplitMix64::new(cfg.seed);
    let mut history = History::default();

    let mut order: Vec<usize> = (0..train.len()).collect();
    // One reused batch buffer for the whole run (only the final ragged
    // batch of an epoch reshapes it); assembled on the shared runtime.
    let rt = srmac_tensor::Runtime::global();
    let s = train.image_size();
    let mut x = Tensor::zeros(&[cfg.batch_size.min(train.len().max(1)), 3, s, s]);
    let mut labels = Vec::with_capacity(cfg.batch_size);
    for epoch in 0..cfg.epochs {
        let lr = schedule.at(epoch);
        // Fisher-Yates shuffle.
        for i in (1..order.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        let mut epoch_loss = 0.0f64;
        let mut finite_batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            if x.shape()[0] != chunk.len() {
                x = Tensor::zeros(&[chunk.len(), 3, s, s]);
            }
            train.batch_into(rt, chunk, &mut x, &mut labels);
            let logits = model.forward(&x, true);
            let (loss, mut grad) = softmax_cross_entropy(&logits, &labels);
            if loss.is_finite() {
                epoch_loss += f64::from(loss);
                finite_batches += 1;
            } else {
                history.nonfinite_batches += 1;
            }
            grad.scale_(scaler.scale());
            model.backward(&grad);

            let mut finite = loss.is_finite();
            if finite {
                model.visit_params(&mut |p| finite &= p.grad.all_finite());
            }
            if scaler.update(finite) {
                opt.step(model, lr, 1.0 / scaler.scale());
            } else {
                Sgd::zero_grad(model);
                history.skipped_steps += 1;
            }
        }
        let acc = evaluate(model, test, cfg.batch_size);
        history.train_loss.push(if finite_batches > 0 {
            (epoch_loss / finite_batches as f64) as f32
        } else {
            f32::NAN
        });
        history.test_acc.push(acc);
        if cfg.verbose {
            eprintln!(
                "  epoch {:>3}: lr {:.4}  loss {:.4}  test acc {:.2}%  (scale {})",
                epoch + 1,
                lr,
                history.train_loss.last().unwrap(),
                acc,
                scaler.scale(),
            );
        }
    }
    history.final_scale = scaler.scale();
    history
}

/// Evaluates classification accuracy (percent) on a dataset.
///
/// Batches stream through one reused batch tensor, assembled in parallel
/// on the shared runtime (`Dataset::batch_into`): after the first batch
/// the loop performs no per-batch input allocations. Batch boundaries are
/// identical to the naive per-batch path, so accuracies are bitwise
/// unchanged under every engine and rounding mode.
///
/// # Panics
///
/// Panics if `batch_size == 0`.
pub fn evaluate(model: &mut Sequential, data: &Dataset, batch_size: usize) -> f32 {
    assert!(batch_size > 0, "evaluate needs a nonzero batch size");
    let rt = srmac_tensor::Runtime::global();
    let s = data.image_size();
    let idx: Vec<usize> = (0..data.len()).collect();
    let mut x = Tensor::zeros(&[batch_size.min(data.len().max(1)), 3, s, s]);
    let mut labels = Vec::with_capacity(batch_size);
    let mut correct = 0usize;
    for chunk in idx.chunks(batch_size) {
        if x.shape()[0] != chunk.len() {
            // Only the final ragged batch reshapes the buffer.
            x = Tensor::zeros(&[chunk.len(), 3, s, s]);
        }
        data.batch_into(rt, chunk, &mut x, &mut labels);
        let logits = model.forward(&x, false);
        correct += count_correct(&logits, &labels);
    }
    100.0 * correct as f32 / data.len().max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synth_cifar10;
    use crate::resnet::resnet20;
    use srmac_qgemm::engine_from_spec;
    use srmac_rng::SplitMix64;
    use srmac_tensor::init::kaiming_normal;
    use srmac_tensor::layers::{Conv2d, GlobalAvgPool, Linear, Relu};
    use srmac_tensor::{F32Engine, GemmEngine};
    use std::sync::Arc;

    #[test]
    fn f32_training_learns_synthetic_classes() {
        // A tiny ResNet on a tiny synthetic set must beat chance (10%)
        // decisively within a few epochs — the sanity bar for every
        // experiment built on this harness.
        let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::default());
        let mut net = resnet20(&engine, 4, 10, 42);
        let train_ds = synth_cifar10(160, 12, 10);
        let test_ds = synth_cifar10(80, 12, 11);
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 20,
            lr: 0.05,
            ..TrainConfig::default()
        };
        let h = train(&mut net, &train_ds, &test_ds, &cfg);
        assert_eq!(h.test_acc.len(), 6);
        assert!(
            h.best_accuracy() > 30.0,
            "tiny ResNet should beat chance (10%) decisively, got {:.1}%",
            h.best_accuracy()
        );
        // Loss must come down substantially.
        assert!(
            h.train_loss.last().unwrap() < &1.8,
            "loss: {:?}",
            h.train_loss
        );
    }

    /// A small conv net with the weight-pack caching of every GEMM-backed
    /// layer switched on or off.
    fn small_net(engine: &Arc<dyn GemmEngine>, cached: bool) -> Sequential {
        let mut rng = SplitMix64::new(5);
        let mut net = Sequential::new();
        net.push(
            Conv2d::new(
                3,
                6,
                3,
                1,
                1,
                kaiming_normal(&[6, 27], 27, &mut rng),
                engine.clone(),
            )
            .with_weight_pack_caching(cached),
        );
        net.push(Relu::new());
        net.push(GlobalAvgPool::new());
        net.push(
            Linear::new(6, 10, kaiming_normal(&[10, 6], 6, &mut rng), engine.clone())
                .with_weight_pack_caching(cached),
        );
        net
    }

    #[test]
    fn weight_pack_caching_does_not_change_history() {
        // Caching packed weights is an execution-plan change, not a numeric
        // one: the full training History (losses, accuracies, scaler
        // trajectory) must be bitwise unchanged — on the exact f32 engine
        // and on the paper's SR MAC engine, whose per-element rounding
        // streams must not notice *when* operands were quantized.
        // Engines by spec name (results are thread-invariant, so the
        // registry's default thread count changes nothing).
        let engines: Vec<Arc<dyn GemmEngine>> = vec![
            Arc::new(F32Engine::new(2)),
            engine_from_spec("fp8_fp12_sr13").expect("paper's pick"),
            engine_from_spec("fp8_fp12_rn_sub").expect("RN reference"),
        ];
        let train_ds = synth_cifar10(48, 8, 21);
        let test_ds = synth_cifar10(32, 8, 22);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 12,
            ..TrainConfig::default()
        };
        for engine in &engines {
            let mut cached_net = small_net(engine, true);
            let mut uncached_net = small_net(engine, false);
            let cached = train(&mut cached_net, &train_ds, &test_ds, &cfg);
            let uncached = train(&mut uncached_net, &train_ds, &test_ds, &cfg);
            assert_eq!(cached.train_loss, uncached.train_loss, "{}", engine.name());
            assert_eq!(cached.test_acc, uncached.test_acc, "{}", engine.name());
            assert_eq!(
                cached.skipped_steps,
                uncached.skipped_steps,
                "{}",
                engine.name()
            );
            assert_eq!(
                cached.nonfinite_batches,
                uncached.nonfinite_batches,
                "{}",
                engine.name()
            );
            assert_eq!(
                cached.final_scale,
                uncached.final_scale,
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn overflow_batch_does_not_poison_the_epoch_loss() {
        // One sample with absurd magnitudes overflows its batch: the loss
        // comes out non-finite and the scaler skips that step. The epoch
        // mean must stay finite (the old code recorded NaN for the whole
        // epoch although training recovered), and the poisoned batches
        // must be counted.
        let base = synth_cifar10(40, 8, 31);
        let plane = 3 * 8 * 8;
        let mut images = Vec::with_capacity(40 * plane);
        for i in 0..40 {
            let (x, _) = base.batch(&[i]);
            images.extend_from_slice(x.data());
        }
        // Poison one sample far beyond f32 comfort.
        images[3 * plane..4 * plane]
            .iter_mut()
            .for_each(|v| *v = 1.0e20);
        let ds = Dataset::from_parts(images, base.labels().to_vec(), 8);

        let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
        let mut net = small_net(&engine, true);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.01,
            ..TrainConfig::default()
        };
        let h = train(&mut net, &ds, &base, &cfg);
        assert!(
            h.nonfinite_batches > 0,
            "the poisoned sample must produce at least one non-finite batch loss"
        );
        assert!(
            h.train_loss.iter().all(|l| l.is_finite()),
            "finite batches exist in every epoch, so no epoch mean may be NaN: {:?}",
            h.train_loss
        );
        assert!(
            h.skipped_steps > 0,
            "the scaler must skip the overflowed steps"
        );
    }

    #[test]
    fn history_accessors_are_defined_on_empty_runs() {
        // A zero-epoch run (`epochs: 0` is a legal config — e.g. "just
        // evaluate a checkpoint") must yield defined accessor values, not
        // panics or poisoned NaN maxima.
        let h = History::default();
        assert_eq!(h.epochs(), 0);
        assert_eq!(h.final_accuracy(), 0.0);
        assert_eq!(h.best_accuracy(), 0.0);
        assert!(h.final_loss().is_nan());
        assert!(h.best_loss().is_nan());

        // And the trainer really produces such a history for epochs = 0.
        let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
        let mut net = small_net(&engine, true);
        let ds = synth_cifar10(10, 8, 1);
        let cfg = TrainConfig {
            epochs: 0,
            batch_size: 5,
            ..TrainConfig::default()
        };
        let h = train(&mut net, &ds, &ds, &cfg);
        assert_eq!(h.epochs(), 0);
        assert_eq!(h.final_accuracy(), 0.0);
        assert!(h.final_loss().is_nan());
    }

    #[test]
    fn history_accessors_are_defined_on_all_non_finite_runs() {
        // A run whose every epoch loss came out non-finite (every batch
        // overflowed) keeps NaN epoch records; the accessors must stay
        // defined and must not let the NaNs poison the accuracy maximum.
        let h = History {
            train_loss: vec![f32::NAN, f32::NAN],
            test_acc: vec![10.0, f32::NAN],
            skipped_steps: 2,
            nonfinite_batches: 4,
            final_scale: 512.0,
        };
        assert_eq!(h.epochs(), 2);
        assert_eq!(h.best_accuracy(), 10.0, "NaN accuracy must be ignored");
        assert!(h.final_loss().is_nan());
        assert!(
            h.best_loss().is_nan(),
            "no finite loss exists, so best_loss is NaN by definition"
        );
        assert!(h.final_accuracy().is_nan(), "last entry is truthfully NaN");
    }

    #[test]
    fn training_is_deterministic() {
        let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(2));
        let run = || {
            let mut net = resnet20(&engine, 4, 10, 7);
            let train_ds = synth_cifar10(60, 8, 3);
            let test_ds = synth_cifar10(40, 8, 4);
            let cfg = TrainConfig {
                epochs: 2,
                batch_size: 16,
                ..TrainConfig::default()
            };
            train(&mut net, &train_ds, &test_ds, &cfg).test_acc
        };
        assert_eq!(run(), run());
    }
}
