//! Crash-tolerant training glue: the diagnostic codes the [`Trainer`]
//! emits on its checkpoint path, the auto-checkpoint policy it carries,
//! and the conversions between the live trainer types and the persisted
//! `srmac_io` wire records.
//!
//! The degradation contract: a checkpoint save that fails transiently is
//! retried with backoff ([`RetryPolicy`]); one that exhausts its retries
//! is **counted and diagnosed, never fatal** — training continues, the
//! failure lands in [`History::ckpt_save_failures`] and a
//! [`codes::RETRY_EXHAUSTED`] diagnostic, and the previous rotation
//! generations stay intact for recovery.
//!
//! [`Trainer`]: crate::trainer::Trainer
//! [`History::ckpt_save_failures`]: crate::trainer::History::ckpt_save_failures

use std::path::PathBuf;
use std::sync::Arc;

use srmac_io::{CheckpointMeta, HistoryRecord, RetryPolicy, Storage, TrainConfigRecord};

use crate::trainer::{History, TrainConfig};

/// Diagnostic codes for the checkpoint/resume path (`ckpt::*` and
/// `train::*` namespaces, alongside the serving codes in
/// [`crate::serve::codes`]).
pub mod codes {
    use crate::diag::DiagCode;

    /// A checkpoint save attempt failed but a retry landed it — the save
    /// succeeded, the storage hiccup is worth surfacing.
    pub const SAVE_FAILED: DiagCode = DiagCode::new("ckpt", 1, "save-failed");
    /// A checkpoint save exhausted its retry budget; training continues
    /// (graceful degradation) with the failure counted in the history.
    pub const RETRY_EXHAUSTED: DiagCode = DiagCode::new("ckpt", 2, "retry-exhausted");
    /// Recovery found the rotation head unusable and fell back to an
    /// older generation.
    pub const CORRUPT_HEAD_FALLBACK: DiagCode = DiagCode::new("ckpt", 3, "corrupt-head-fallback");
    /// A training run resumed from a checkpoint (records the wire-format
    /// version and the slot it came from).
    pub const RESUME: DiagCode = DiagCode::new("train", 1, "resume-version");
}

/// The auto-checkpoint policy a [`crate::trainer::Trainer`] carries:
/// cadence, rotation target, retry budget, and the storage to write
/// through (the fault-injection hook).
#[derive(Debug, Clone)]
pub struct CkptOptions {
    /// Save every `every` optimizer steps (counted across epochs); `0`
    /// disables cadence saves (the final save still happens).
    pub every: usize,
    /// The rotation head path (`ckpt.srmc`; older generations rotate to
    /// `ckpt.1.srmc`, `ckpt.2.srmc`, …).
    pub path: PathBuf,
    /// Metadata stamped on every save (architecture tag, engine config,
    /// numerics policy).
    pub meta: CheckpointMeta,
    /// Rotation generations to keep (head included).
    pub keep: usize,
    /// Retry budget per save.
    pub retry: RetryPolicy,
    /// The storage implementation saves and recovery go through.
    pub storage: Arc<dyn Storage>,
}

/// Default rotation depth: the head plus two older generations.
pub const DEFAULT_KEEP: usize = 3;

/// Builds the persisted config record from a live [`TrainConfig`]. The
/// gradient-shard count is stored **resolved** (the trainer's value, not
/// the config's possibly-`0` knob) and `train_len` pins the dataset the
/// shuffle permutation depends on; the cosmetic `verbose` flag is
/// deliberately dropped.
#[must_use]
pub fn config_record(cfg: &TrainConfig, grad_shards: usize, train_len: u64) -> TrainConfigRecord {
    TrainConfigRecord {
        epochs: cfg.epochs as u32,
        batch_size: cfg.batch_size as u32,
        lr: cfg.lr,
        momentum: cfg.momentum,
        weight_decay: cfg.weight_decay,
        init_loss_scale: cfg.init_loss_scale,
        seed: cfg.seed,
        replicas: cfg.replicas as u32,
        grad_shards: grad_shards as u32,
        train_len,
    }
}

/// Rebuilds a [`TrainConfig`] from the persisted record. `verbose` comes
/// back `false` (not persisted); `grad_shards` is the stored resolved
/// value, so re-resolution in [`crate::trainer::Trainer::new`] is
/// idempotent.
#[must_use]
pub fn config_from_record(rec: &TrainConfigRecord) -> TrainConfig {
    TrainConfig {
        epochs: rec.epochs as usize,
        batch_size: rec.batch_size as usize,
        lr: rec.lr,
        momentum: rec.momentum,
        weight_decay: rec.weight_decay,
        init_loss_scale: rec.init_loss_scale,
        seed: rec.seed,
        verbose: false,
        replicas: rec.replicas as usize,
        grad_shards: rec.grad_shards as usize,
    }
}

/// Builds the persisted history record from a live [`History`].
#[must_use]
pub fn history_record(h: &History) -> HistoryRecord {
    HistoryRecord {
        train_loss: h.train_loss.clone(),
        test_acc: h.test_acc.clone(),
        skipped_steps: h.skipped_steps as u64,
        nonfinite_batches: h.nonfinite_batches as u64,
        final_scale: h.final_scale,
        ckpt_save_failures: h.ckpt_save_failures as u64,
    }
}

/// Rebuilds a live [`History`] from the persisted record.
#[must_use]
pub fn history_from_record(rec: &HistoryRecord) -> History {
    History {
        train_loss: rec.train_loss.clone(),
        test_acc: rec.test_acc.clone(),
        skipped_steps: rec.skipped_steps as usize,
        nonfinite_batches: rec.nonfinite_batches as usize,
        final_scale: rec.final_scale,
        ckpt_save_failures: rec.ckpt_save_failures as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_roundtrips_with_resolution_pinned() {
        let cfg = TrainConfig {
            epochs: 7,
            batch_size: 24,
            replicas: 4,
            grad_shards: 0, // knob unresolved...
            verbose: true,
            ..TrainConfig::default()
        };
        let rec = config_record(&cfg, 4, 123); // ...stored resolved
        assert_eq!(rec.grad_shards, 4);
        assert_eq!(rec.train_len, 123);
        let back = config_from_record(&rec);
        assert_eq!(back.grad_shards, 4, "resolved value survives");
        assert!(!back.verbose, "verbose is cosmetic, not persisted");
        assert_eq!(back.epochs, cfg.epochs);
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.lr.to_bits(), cfg.lr.to_bits());
    }

    #[test]
    fn history_roundtrips_bitwise() {
        let h = History {
            train_loss: vec![2.5, f32::NAN, -0.0],
            test_acc: vec![10.0, 20.0, 30.0],
            skipped_steps: 3,
            nonfinite_batches: 1,
            final_scale: 2048.0,
            ckpt_save_failures: 2,
        };
        let back = history_from_record(&history_record(&h));
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.train_loss), bits(&h.train_loss));
        assert_eq!(back.test_acc, h.test_acc);
        assert_eq!(back.skipped_steps, 3);
        assert_eq!(back.nonfinite_batches, 1);
        assert_eq!(back.final_scale, 2048.0);
        assert_eq!(back.ckpt_save_failures, 2);
    }

    #[test]
    fn code_tags_and_paths_follow_the_diag_idiom() {
        assert_eq!(codes::SAVE_FAILED.tag(), "CKPT0001");
        assert_eq!(codes::SAVE_FAILED.path(), "ckpt::save-failed");
        assert_eq!(codes::RETRY_EXHAUSTED.tag(), "CKPT0002");
        assert_eq!(codes::CORRUPT_HEAD_FALLBACK.tag(), "CKPT0003");
        assert_eq!(codes::RESUME.tag(), "TRAIN0001");
        assert_eq!(codes::RESUME.path(), "train::resume-version");
    }
}
