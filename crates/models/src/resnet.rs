//! ResNet models: the CIFAR-style ResNet-20 and the bottleneck ResNet-50
//! of the paper's Sec. IV, with a width knob for laptop-scale runs
//! (`width = 16` reproduces the paper-exact ResNet-20 shape).
//!
//! Every builder exists in two forms: the single-engine original
//! (`resnet20(&engine, ..)`, kept as a [`Numerics::uniform`] shim — bit
//! for bit the old behavior) and the policy form (`resnet20_with(&numerics,
//! ..)`) that resolves each GEMM layer's forward/backward engines through
//! a [`Numerics`] policy, including its per-layer overrides (GEMM layers
//! are numbered in construction order: the stem conv is layer 0, then each
//! block's convs in block order, the classifier head last).

use std::sync::Arc;

use srmac_rng::SplitMix64;
use srmac_tensor::init::uniform_fan_in;
use srmac_tensor::layers::{BatchNorm2d, GlobalAvgPool, Linear, Relu};
use srmac_tensor::numerics::Numerics;
use srmac_tensor::{GemmEngine, Sequential};

use crate::blocks::{conv, ResidualBlock};

/// CIFAR-style ResNet-20: a 3x3 stem, three stages of three basic blocks at
/// widths `(w, 2w, 4w)` with strides `(1, 2, 2)`, global average pooling
/// and a linear classifier. `width = 16` is the paper's exact model.
#[must_use]
pub fn resnet20(
    engine: &Arc<dyn GemmEngine>,
    width: usize,
    classes: usize,
    seed: u64,
) -> Sequential {
    resnet20_with(&Numerics::uniform(engine.clone()), width, classes, seed)
}

/// [`resnet20`] on a per-role [`Numerics`] policy.
#[must_use]
pub fn resnet20_with(numerics: &Numerics, width: usize, classes: usize, seed: u64) -> Sequential {
    resnet_basic_with(numerics, width, &[3, 3, 3], classes, seed)
}

/// A basic-block ResNet with `blocks[i]` blocks in stage `i`.
#[must_use]
pub fn resnet_basic(
    engine: &Arc<dyn GemmEngine>,
    width: usize,
    blocks: &[usize],
    classes: usize,
    seed: u64,
) -> Sequential {
    resnet_basic_with(
        &Numerics::uniform(engine.clone()),
        width,
        blocks,
        classes,
        seed,
    )
}

/// [`resnet_basic`] on a per-role [`Numerics`] policy.
#[must_use]
pub fn resnet_basic_with(
    numerics: &Numerics,
    width: usize,
    blocks: &[usize],
    classes: usize,
    seed: u64,
) -> Sequential {
    let mut rng = SplitMix64::new(seed);
    let mut layers = numerics.layers();
    let mut net = Sequential::new();
    net.push(conv(3, width, 3, 1, 1, layers.next_layer(), &mut rng));
    net.push(BatchNorm2d::new(width));
    net.push(Relu::new());
    let mut in_c = width;
    for (stage, &nblocks) in blocks.iter().enumerate() {
        let out_c = width << stage;
        for b in 0..nblocks {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            net.push(ResidualBlock::basic_with(
                in_c,
                out_c,
                stride,
                &mut layers,
                &mut rng,
            ));
            in_c = out_c;
        }
    }
    net.push(GlobalAvgPool::new());
    net.push(Linear::per_role(
        in_c,
        classes,
        uniform_fan_in(&[classes, in_c], in_c, &mut rng),
        layers.next_layer(),
    ));
    net
}

/// Bottleneck ResNet-50 adapted to small inputs (3x3 stem, no max-pool):
/// stages of `(3, 4, 6, 3)` bottleneck blocks at widths `(w, 2w, 4w, 8w)`
/// (expansion 4) with strides `(1, 2, 2, 2)`. `width = 64` is the paper's
/// exact model up to the stem.
#[must_use]
pub fn resnet50(
    engine: &Arc<dyn GemmEngine>,
    width: usize,
    classes: usize,
    seed: u64,
) -> Sequential {
    resnet50_with(&Numerics::uniform(engine.clone()), width, classes, seed)
}

/// [`resnet50`] on a per-role [`Numerics`] policy.
#[must_use]
pub fn resnet50_with(numerics: &Numerics, width: usize, classes: usize, seed: u64) -> Sequential {
    let mut rng = SplitMix64::new(seed);
    let mut layers = numerics.layers();
    let mut net = Sequential::new();
    net.push(conv(3, width, 3, 1, 1, layers.next_layer(), &mut rng));
    net.push(BatchNorm2d::new(width));
    net.push(Relu::new());
    let stages = [3usize, 4, 6, 3];
    let mut in_c = width;
    for (stage, &nblocks) in stages.iter().enumerate() {
        let w = width << stage;
        for b in 0..nblocks {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            net.push(ResidualBlock::bottleneck_with(
                in_c,
                w,
                stride,
                &mut layers,
                &mut rng,
            ));
            in_c = w * 4;
        }
    }
    net.push(GlobalAvgPool::new());
    net.push(Linear::per_role(
        in_c,
        classes,
        uniform_fan_in(&[classes, in_c], in_c, &mut rng),
        layers.next_layer(),
    ));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use srmac_tensor::layers::Layer;
    use srmac_tensor::{F32Engine, Tensor};

    fn engine() -> Arc<dyn GemmEngine> {
        Arc::new(F32Engine::new(2))
    }

    #[test]
    fn resnet20_shapes_and_param_count() {
        let e = engine();
        let mut net = resnet20(&e, 16, 10, 0);
        // The paper-exact ResNet-20 has ~0.27M parameters.
        let params = net.param_count();
        assert!(
            (250_000..300_000).contains(&params),
            "ResNet-20 has {params} params, expected ~0.27M"
        );
        let x = Tensor::zeros(&[2, 3, 32, 32]);
        let y = net.forward(&x, false);
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn resnet20_slim_forward_backward() {
        let e = engine();
        let mut net = resnet20(&e, 8, 10, 1);
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[2, 10]);
        let dx = net.backward(&Tensor::zeros(&[2, 10]));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn resnet50_slim_forward_backward() {
        let e = engine();
        let mut net = resnet50(&e, 4, 10, 2);
        let x = Tensor::zeros(&[1, 3, 16, 16]);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[1, 10]);
        let dx = net.backward(&Tensor::zeros(&[1, 10]));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn resnet50_has_50_conv_or_fc_layers_worth_of_depth() {
        // 1 stem + (3+4+6+3) blocks * 3 convs + 1 fc = 50.
        let e = engine();
        let mut net = resnet50(&e, 4, 10, 3);
        let desc = net.describe();
        let convs = desc.matches("Conv2d").count();
        let projections = desc.matches("+ proj").count();
        // 1 stem + (3+4+6+3) blocks * 3 convs; projections render separately.
        assert_eq!(convs, 49, "conv count");
        assert_eq!(projections, 4, "one projection per stage");
        let _ = net.param_count();
    }

    #[test]
    fn uniform_policy_builds_the_same_model() {
        // The policy form with a uniform policy must describe (and
        // initialize) exactly the model the single-engine shim builds.
        let e = engine();
        let numerics = Numerics::uniform(e.clone());
        let mut a = resnet20(&e, 4, 10, 9);
        let mut b = resnet20_with(&numerics, 4, 10, 9);
        assert_eq!(a.describe(), b.describe());
        let x = Tensor::from_vec(
            (0..2 * 3 * 8 * 8).map(|i| (i as f32).sin()).collect(),
            &[2, 3, 8, 8],
        );
        let ya = a.forward(&x, false);
        let yb = b.forward(&x, false);
        assert_eq!(ya.data(), yb.data());
    }
}
