//! Replicated, micro-batched inference serving with admission control
//! and latency observability.
//!
//! A single [`InferenceServer`] owns `N` worker replicas of one model
//! ([`ServeConfig::workers`]): a **router** thread pulls requests off a
//! **bounded** admission queue and shards them across per-worker queues;
//! each worker assembles its own dynamic batches (up to
//! [`ServeConfig::max_batch`], dispatching early when its queue runs
//! dry), runs each batch through the model's prepared-operand GEMM path,
//! and answers every request with its logits/argmax. Replicas are
//! copy-on-write clones ([`Sequential::try_clone`]): parameter tensors
//! are `Arc`-shared and the packed-weight caches are warmed on the
//! original before cloning, so `N` workers serve one model with **zero
//! weight duplication** — on a multi-core host, req/s scales with the
//! worker count because the MAC arithmetic is the bottleneck and each
//! replica owns a core's worth of it.
//!
//! # Admission control and deadlines
//!
//! The admission queue is bounded at [`ServeConfig::queue_depth`]:
//! when it is full, [`ServeClient::submit`] fails *immediately* with
//! [`ServeError::Overloaded`] instead of queueing without bound — the
//! shed-load contract that keeps tail latency and memory flat when
//! offered load exceeds capacity. A request may also carry a deadline
//! ([`ServeClient::submit_within`]): a request whose deadline passes
//! while it queues is answered with [`ServeError::DeadlineExceeded`]
//! **without touching a model** — serving an answer the client has
//! already given up on would only steal capacity from requests that can
//! still make theirs.
//!
//! # Observability
//!
//! Every request is timed through three stages — queue wait (submit →
//! joined a batch), batch assembly (joined → dispatch) and inference
//! (dispatch → reply) — aggregated into log2-bucketed
//! [`LatencyHistogram`]s with p50/p95/p99 in [`ServeStats`], which also
//! counts shed and expired requests and per-worker request totals.
//! Operational events (worker panics, lost workers, shutdown) become
//! structured, code-tagged [`Diagnostic`]s (see [`codes`]) collected in
//! a [`DiagSink`] whose handle survives the server — a crashed worker is
//! *recorded*, never silently swallowed, and additionally flips the
//! server's poisoned flag ([`InferenceServer::poisoned`]).
//!
//! # The serving determinism contract (unchanged)
//!
//! For a **position-invariant** engine, serving any request stream under
//! *any* batching pattern — and now, through *any* replica — produces
//! logits bitwise identical to running that request alone (batch size
//! 1): each output row of every GEMM is a pure function of that row's
//! inputs and the weights, every non-GEMM layer is elementwise or
//! per-sample, evaluation-mode batch norm uses running statistics, and
//! every replica shares the very same weight storage.
//! [`srmac_tensor::F32Engine`] and `srmac_qgemm::MacGemm` with
//! `AccumRounding::Nearest` — the inference configurations — are
//! position-invariant, and the contract is asserted bit-for-bit in this
//! module's tests across batch patterns and replica counts.
//!
//! `MacGemm` with **stochastic** accumulation is deliberately *not*
//! position-invariant: its rounding streams are seeded per output
//! coordinate `(row, column)` so that training runs are reproducible,
//! and a sample's GEMM rows depend on its position in the batch. SR is
//! the paper's *training* mechanism; serve with RN (or f32) for
//! deterministic inference. **Every** construction path enforces this:
//! [`InferenceServer::start`] inspects the engines the model actually
//! carries ([`Sequential::stochastic_forward_engine`]), and
//! [`InferenceServer::start_with_numerics`] additionally checks the
//! declared policy.

// The serving layer is the workspace's sanctioned wall-clock/spawn user
// (deadlines, straggler timers, worker threads) — allowlisted by
// srmac-lint's policy table and exempted from clippy.toml's ban here.
#![allow(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use srmac_tensor::layers::Layer;
use srmac_tensor::numerics::Numerics;
use srmac_tensor::{Sequential, Tensor};

use crate::diag::{DiagCode, DiagSink, Diagnostic, Severity};

/// Stable diagnostic codes emitted by the serving subsystem (see
/// [`crate::diag`] for the taxonomy and renderers).
pub mod codes {
    use crate::diag::DiagCode;

    /// A sample of the wrong length was rejected at submission.
    pub const BAD_INPUT: DiagCode = DiagCode::new("serve", 1, "bad-input");
    /// The server is gone (shut down, or every worker died).
    pub const CLOSED: DiagCode = DiagCode::new("serve", 2, "closed");
    /// A stochastic-rounding forward engine was refused at construction.
    pub const STOCHASTIC_FORWARD: DiagCode = DiagCode::new("serve", 3, "stochastic-forward");
    /// The bounded admission queue was full; the request was shed.
    pub const OVERLOADED: DiagCode = DiagCode::new("serve", 4, "overloaded");
    /// A request's deadline passed while it queued; no model was run.
    pub const DEADLINE_EXCEEDED: DiagCode = DiagCode::new("serve", 5, "deadline-exceeded");
    /// The model cannot be CoW-replicated for `workers > 1`.
    pub const NOT_REPLICABLE: DiagCode = DiagCode::new("serve", 6, "not-replicable");
    /// A worker (or the router) thread panicked; recorded at join.
    pub const WORKER_PANIC: DiagCode = DiagCode::new("serve", 7, "worker-panic");
    /// The router found a worker's queue disconnected mid-serve (the
    /// worker died without a shutdown marker) and rerouted around it.
    pub const WORKER_LOST: DiagCode = DiagCode::new("serve", 8, "worker-lost");
    /// A worker's queue disconnected without a shutdown marker — the
    /// router vanished; the worker served what it had and stopped.
    pub const ROUTER_VANISHED: DiagCode = DiagCode::new("serve", 9, "router-vanished");
    /// Clean shutdown: totals for the whole serving session.
    pub const SHUTDOWN: DiagCode = DiagCode::new("serve", 10, "shutdown");
}

/// Batching, replication and admission policy of an [`InferenceServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Number of model replicas serving in parallel. Replica 0 is the
    /// original model; replicas beyond it are CoW clones
    /// ([`Sequential::try_clone`]) sharing the same weight storage and
    /// packed-weight caches, so memory stays flat in `workers`.
    pub workers: usize,
    /// Hard cap on assembled batch size (per worker).
    pub max_batch: usize,
    /// When a worker's queue runs dry with fewer than this many requests
    /// in the batch, the assembler waits [`ServeConfig::straggler_wait`]
    /// for more before dispatching; at or above it, it dispatches
    /// immediately. `1` dispatches as soon as the queue empties
    /// (latency-first).
    pub max_wait_items: usize,
    /// How long to wait for stragglers below `max_wait_items`.
    pub straggler_wait: Duration,
    /// Capacity of the bounded admission queue. When it is full,
    /// [`ServeClient::submit`] sheds the request with
    /// [`ServeError::Overloaded`] instead of queueing without bound.
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            max_batch: 8,
            max_wait_items: 1,
            straggler_wait: Duration::from_micros(200),
            queue_depth: 1024,
        }
    }
}

/// The answer to one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The model's output row for this sample.
    pub logits: Vec<f32>,
    /// Index of the largest logit, by exactly the rule of
    /// `srmac_tensor::count_correct` (ties resolve to the highest index),
    /// so served accuracy can never diverge from `evaluate`.
    pub argmax: usize,
    /// Size of the dynamic batch this request rode in (observability).
    pub batch_size: usize,
}

/// Why a request could not be served (or a server could not start).
#[derive(Debug)]
pub enum ServeError {
    /// The sample length does not match the model input `3 * s * s`.
    BadInput {
        /// Expected element count.
        expected: usize,
        /// Received element count.
        got: usize,
    },
    /// The server has shut down (or every worker died) before replying.
    Closed,
    /// The model carries (or the policy declares) a forward engine that
    /// is not position-invariant (stochastic-rounding accumulation),
    /// which would silently break the batch-invariance contract above —
    /// serve with an RN or f32 forward engine instead (SR is the paper's
    /// *training* mechanism).
    StochasticForward {
        /// `name()` of the offending forward engine.
        engine: String,
    },
    /// The bounded admission queue is full; the request was shed without
    /// queueing (admission control). Retry after a backoff, or raise
    /// [`ServeConfig::queue_depth`] / [`ServeConfig::workers`].
    Overloaded {
        /// The configured [`ServeConfig::queue_depth`].
        depth: usize,
    },
    /// The request's deadline passed while it queued; it was answered
    /// without touching a model.
    DeadlineExceeded {
        /// How far past the deadline the request was when shed.
        missed_by: Duration,
    },
    /// `workers > 1` was requested but the model has a layer without
    /// CoW-replication support ([`srmac_tensor::layers::Layer::clone_layer`]).
    NotReplicable,
    /// A serving thread panicked; the panic was recorded in the server's
    /// diagnostics (code `serve::worker-panic`) rather than swallowed.
    WorkerPanicked {
        /// Thread name (`srmac-serve-3`, `srmac-serve-router`).
        thread: String,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl ServeError {
    /// The stable diagnostic code classifying this error.
    #[must_use]
    pub fn code(&self) -> DiagCode {
        match self {
            ServeError::BadInput { .. } => codes::BAD_INPUT,
            ServeError::Closed => codes::CLOSED,
            ServeError::StochasticForward { .. } => codes::STOCHASTIC_FORWARD,
            ServeError::Overloaded { .. } => codes::OVERLOADED,
            ServeError::DeadlineExceeded { .. } => codes::DEADLINE_EXCEEDED,
            ServeError::NotReplicable => codes::NOT_REPLICABLE,
            ServeError::WorkerPanicked { .. } => codes::WORKER_PANIC,
        }
    }

    /// Severity of this error as a diagnostic: client-side conditions
    /// the server handled by design (bad input, shed load, a missed
    /// deadline) are warnings; structural failures are errors.
    #[must_use]
    pub fn severity(&self) -> Severity {
        match self {
            ServeError::BadInput { .. }
            | ServeError::Overloaded { .. }
            | ServeError::DeadlineExceeded { .. } => Severity::Warning,
            ServeError::Closed
            | ServeError::StochasticForward { .. }
            | ServeError::NotReplicable
            | ServeError::WorkerPanicked { .. } => Severity::Error,
        }
    }

    /// This error as a structured, code-tagged [`Diagnostic`].
    #[must_use]
    pub fn diagnostic(&self) -> Diagnostic {
        let d = Diagnostic::new(self.severity(), self.code(), self.to_string());
        match self {
            ServeError::BadInput { expected, got } => d
                .field("expected", expected.to_string())
                .field("got", got.to_string()),
            ServeError::StochasticForward { engine } => d.field("engine", engine.clone()),
            ServeError::Overloaded { depth } => d.field("queue_depth", depth.to_string()),
            ServeError::DeadlineExceeded { missed_by } => {
                d.field("missed_by_us", missed_by.as_micros().to_string())
            }
            ServeError::WorkerPanicked { thread, message } => d
                .field("thread", thread.clone())
                .field("payload", message.clone()),
            ServeError::Closed | ServeError::NotReplicable => d,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadInput { expected, got } => {
                write!(f, "sample has {got} elements, model expects {expected}")
            }
            ServeError::Closed => write!(f, "inference server is closed"),
            ServeError::StochasticForward { engine } => write!(
                f,
                "forward engine {engine:?} is not position-invariant: serving \
                 through it would make each prediction depend on its batch \
                 position (serve with an RN or f32 forward engine)"
            ),
            ServeError::Overloaded { depth } => write!(
                f,
                "admission queue is full ({depth} requests deep): request shed \
                 (retry after a backoff, or raise queue_depth/workers)"
            ),
            ServeError::DeadlineExceeded { missed_by } => write!(
                f,
                "deadline passed {missed_by:?} before the request reached a \
                 model; answered without running inference"
            ),
            ServeError::NotReplicable => write!(
                f,
                "workers > 1 needs a CoW-replicable model, but a layer has no \
                 clone_layer support"
            ),
            ServeError::WorkerPanicked { thread, message } => {
                write!(f, "serving thread {thread} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A latency histogram with power-of-two (log2) buckets: bucket `i`
/// covers `[2^i, 2^(i+1))` nanoseconds (bucket 0 also holds 0 ns), so 64
/// buckets span every representable duration with constant memory and a
/// bounded relative error of 2x — the classic shape for serving tail
/// latency, where p99 matters and microsecond exactness does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index of a duration: `floor(log2(ns))`, clamped.
    fn bucket_of(d: Duration) -> usize {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        }
    }

    /// The inclusive upper edge of bucket `i` in nanoseconds
    /// (`2^(i+1) - 1`; the last bucket saturates at `u64::MAX`).
    fn upper_edge_ns(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// Records one observation.
    pub fn record(&mut self, d: Duration) {
        self.buckets[Self::bucket_of(d)] += 1;
        self.count += 1;
    }

    /// Number of observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
    }

    /// The raw bucket counts (bucket `i` covers `[2^i, 2^(i+1))` ns).
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// The `p`-th percentile (`0 < p <= 100`) as the **upper edge** of
    /// the log2 bucket containing the `ceil(p/100 * count)`-th smallest
    /// observation — a conservative (never underestimating by more than
    /// the 2x bucket width) tail-latency estimate. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<Duration> {
        assert!(p > 0.0 && p <= 100.0, "percentile must be in (0, 100]");
        if self.count == 0 {
            return None;
        }
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(Duration::from_nanos(Self::upper_edge_ns(i)));
            }
        }
        // count > 0 guarantees the cumulative walk crosses every rank.
        unreachable!("rank {rank} beyond {} recorded observations", self.count)
    }

    /// Median (see [`LatencyHistogram::percentile`]).
    #[must_use]
    pub fn p50(&self) -> Option<Duration> {
        self.percentile(50.0)
    }

    /// 95th percentile (see [`LatencyHistogram::percentile`]).
    #[must_use]
    pub fn p95(&self) -> Option<Duration> {
        self.percentile(95.0)
    }

    /// 99th percentile (see [`LatencyHistogram::percentile`]).
    #[must_use]
    pub fn p99(&self) -> Option<Duration> {
        self.percentile(99.0)
    }

    /// `{"count":N,"p50_us":x,"p95_us":y,"p99_us":z}` (percentiles in
    /// microseconds; `0` when empty).
    #[must_use]
    pub fn render_json(&self) -> String {
        let us = |p: Option<Duration>| p.map_or(0.0, |d| d.as_secs_f64() * 1e6);
        format!(
            "{{\"count\":{},\"p50_us\":{:.1},\"p95_us\":{:.1},\"p99_us\":{:.1}}}",
            self.count,
            us(self.p50()),
            us(self.p95()),
            us(self.p99())
        )
    }
}

/// Counters and latency histograms for one serving session, merged
/// across the router and every worker at shutdown.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Requests answered with a prediction.
    pub requests: usize,
    /// Dynamic batches executed (across all workers).
    pub batches: usize,
    /// Largest batch assembled by any worker.
    pub max_batch_seen: usize,
    /// Number of worker replicas that served.
    pub workers: usize,
    /// Requests shed by admission control ([`ServeError::Overloaded`]).
    pub shed: usize,
    /// Requests whose deadline expired before reaching a model
    /// ([`ServeError::DeadlineExceeded`]).
    pub expired: usize,
    /// Requests answered per worker (index = worker id; sums to
    /// [`ServeStats::requests`]).
    pub worker_requests: Vec<usize>,
    /// Submit → joined a worker's batch.
    pub queue_wait: LatencyHistogram,
    /// Joined a batch → batch dispatched (straggler/assembly time).
    pub batch_assembly: LatencyHistogram,
    /// Batch dispatched → prediction ready (the forward pass).
    pub inference: LatencyHistogram,
}

impl ServeStats {
    /// One JSON object with every counter and per-stage p50/p95/p99 —
    /// the machine-readable stats surface, rendered with the same
    /// conventions as [`Diagnostic::render_json`].
    #[must_use]
    pub fn render_json(&self) -> String {
        let workers: Vec<String> = self
            .worker_requests
            .iter()
            .map(ToString::to_string)
            .collect();
        format!(
            "{{\"requests\":{},\"batches\":{},\"max_batch_seen\":{},\"workers\":{},\
             \"shed\":{},\"expired\":{},\"worker_requests\":[{}],\
             \"latency\":{{\"queue_wait\":{},\"batch_assembly\":{},\"inference\":{}}}}}",
            self.requests,
            self.batches,
            self.max_batch_seen,
            self.workers,
            self.shed,
            self.expired,
            workers.join(","),
            self.queue_wait.render_json(),
            self.batch_assembly.render_json(),
            self.inference.render_json()
        )
    }
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let us = |p: Option<Duration>| p.map_or(0.0, |d| d.as_secs_f64() * 1e6);
        write!(
            f,
            "{} requests in {} batches (largest {}) across {} worker(s); \
             shed {}, expired {}; queue p50/p95/p99 {:.0}/{:.0}/{:.0} us; \
             inference p50/p95/p99 {:.0}/{:.0}/{:.0} us",
            self.requests,
            self.batches,
            self.max_batch_seen,
            self.workers,
            self.shed,
            self.expired,
            us(self.queue_wait.p50()),
            us(self.queue_wait.p95()),
            us(self.queue_wait.p99()),
            us(self.inference.p50()),
            us(self.inference.p95()),
            us(self.inference.p99()),
        )
    }
}

struct Request {
    sample: Vec<f32>,
    reply: mpsc::Sender<Result<Prediction, ServeError>>,
    submitted: Instant,
    deadline: Option<Instant>,
}

/// Admission-queue protocol: requests, or the explicit stop marker.
/// Clients may outlive the server (their sender clones keep the channel
/// open), so the router stops on this marker — never by waiting for
/// disconnection. The channel is ordered, so every request admitted
/// before shutdown is routed (and served) before the marker is seen.
enum Msg {
    Request(Request),
    Shutdown,
}

/// Per-worker queue protocol: the router forwards requests and fans the
/// shutdown marker out to every worker lane. A worker that sees its lane
/// *disconnect* without a marker knows the router died abnormally — the
/// two conditions are deliberately distinct (see [`StopReason`]).
enum WorkerMsg {
    Request(Request),
    Shutdown,
}

/// Why a worker's serve loop ended. `Marker` is the deliberate path;
/// `Disconnected` means the lane hung up without a marker (the router
/// vanished mid-serve) — reported as a `serve::router-vanished` warning
/// so an abnormal stop is never mistaken for a clean one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StopReason {
    Marker,
    Disconnected,
}

/// One request staged in a worker's batch, stamped when it joined.
struct Pending {
    req: Request,
    joined: Instant,
}

#[derive(Default)]
struct WorkerStats {
    requests: usize,
    batches: usize,
    max_batch_seen: usize,
    expired: usize,
    queue_wait: LatencyHistogram,
    batch_assembly: LatencyHistogram,
    inference: LatencyHistogram,
}

/// What a worker thread hands back at join: its model (worker 0 owns
/// the original; others own CoW replicas), its local stats, and why it
/// stopped.
struct WorkerExit {
    model: Sequential,
    stats: WorkerStats,
    reason: StopReason,
}

#[derive(Default)]
struct RouterOutcome {
    /// Requests answered `DeadlineExceeded` by the router before
    /// reaching any worker lane.
    expired: usize,
    /// Requests answered `Closed` because no live worker remained.
    refused: usize,
}

/// A replicated, micro-batching inference server: owns `workers` model
/// replicas behind a router and a bounded admission queue, and serves
/// cloneable [`ServeClient`] handles.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use srmac_models::serve::{InferenceServer, ServeConfig};
/// use srmac_models::{data, resnet};
/// use srmac_tensor::{F32Engine, GemmEngine};
///
/// let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
/// let model = resnet::resnet20(&engine, 4, 10, 0);
/// let server = InferenceServer::start(model, 8, ServeConfig {
///     workers: 2,
///     ..ServeConfig::default()
/// })
/// .expect("f32 forward engines are position-invariant");
/// let client = server.client();
///
/// let ds = data::synth_cifar10(4, 8, 1);
/// let (x, _) = ds.batch(&[0]);
/// let p = client.predict(x.data().to_vec()).unwrap();
/// assert_eq!(p.logits.len(), 10);
/// let (model, stats) = server.shutdown().expect("clean shutdown");
/// assert_eq!(stats.requests, 1);
/// assert_eq!(stats.workers, 2);
/// drop(model);
/// ```
#[derive(Debug)]
pub struct InferenceServer {
    tx: Option<mpsc::SyncSender<Msg>>,
    router: Option<std::thread::JoinHandle<RouterOutcome>>,
    workers: Vec<std::thread::JoinHandle<WorkerExit>>,
    sample_len: usize,
    worker_count: usize,
    queue_depth: usize,
    sink: DiagSink,
    shed: Arc<AtomicUsize>,
    poisoned: Arc<AtomicBool>,
}

impl InferenceServer {
    /// Takes ownership of `model` (expecting `[B, 3, s, s]` inputs with
    /// `s = image_size`), builds `cfg.workers - 1` CoW replicas, and
    /// starts the router and worker threads.
    ///
    /// The batch-invariance guard runs on **this** path too: the engines
    /// the model actually carries are inspected via
    /// [`Sequential::stochastic_forward_engine`], so no construction
    /// path can serve a stochastic-rounding forward model.
    ///
    /// # Errors
    ///
    /// [`ServeError::StochasticForward`] when a forward engine is not
    /// position-invariant; [`ServeError::NotReplicable`] when
    /// `cfg.workers > 1` but a layer has no CoW-clone support.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.workers == 0`, `cfg.max_batch == 0`,
    /// `cfg.queue_depth == 0` or `image_size == 0`.
    pub fn start(
        mut model: Sequential,
        image_size: usize,
        cfg: ServeConfig,
    ) -> Result<Self, ServeError> {
        assert!(cfg.workers > 0, "serving needs at least one worker");
        assert!(cfg.max_batch > 0, "serving needs max_batch >= 1");
        assert!(
            cfg.queue_depth > 0,
            "admission control needs queue_depth >= 1"
        );
        assert!(image_size > 0, "serving needs a nonzero image size");
        if let Some(engine) = model.stochastic_forward_engine() {
            return Err(ServeError::StochasticForward { engine });
        }
        let sample_len = 3 * image_size * image_size;
        let sink = DiagSink::default();
        let shed = Arc::new(AtomicUsize::new(0));
        let poisoned = Arc::new(AtomicBool::new(false));

        // Replicate before moving the original into worker 0. Warming
        // the packed-weight caches first means every replica shares one
        // pack per layer instead of each re-quantizing the same weights.
        let mut models = Vec::with_capacity(cfg.workers);
        if cfg.workers > 1 {
            model.warm_weight_packs();
            for _ in 1..cfg.workers {
                models.push(model.try_clone().ok_or(ServeError::NotReplicable)?);
            }
        }
        models.insert(0, model);

        // Worker lanes are bounded too, so admission-queue backpressure
        // propagates instead of evaporating into unbounded lane queues.
        let lane_depth = cfg.max_batch.max(cfg.queue_depth.div_ceil(cfg.workers));
        let mut lanes = Vec::with_capacity(cfg.workers);
        let mut workers = Vec::with_capacity(cfg.workers);
        for (i, m) in models.into_iter().enumerate() {
            let (ltx, lrx) = mpsc::sync_channel::<WorkerMsg>(lane_depth);
            let worker_sink = sink.clone();
            let handle = std::thread::Builder::new()
                .name(format!("srmac-serve-{i}"))
                .spawn(move || worker_loop(m, image_size, cfg, &lrx, &worker_sink, i))
                .expect("spawn serve worker"); // PANIC-OK: failing to spawn a worker at startup is unrecoverable — abort before serving.
            lanes.push(ltx);
            workers.push(handle);
        }

        let (tx, rx) = mpsc::sync_channel::<Msg>(cfg.queue_depth);
        let router_sink = sink.clone();
        let router_poisoned = Arc::clone(&poisoned);
        let router = std::thread::Builder::new()
            .name("srmac-serve-router".into())
            .spawn(move || router_loop(&rx, lanes, &router_sink, &router_poisoned))
            .expect("spawn serve router"); // PANIC-OK: same — no router, no server.

        Ok(Self {
            tx: Some(tx),
            router: Some(router),
            workers,
            sample_len,
            worker_count: cfg.workers,
            queue_depth: cfg.queue_depth,
            sink,
            shed,
            poisoned,
        })
    }

    /// Like [`InferenceServer::start`], but additionally checks the
    /// declared [`Numerics`] policy up front: every forward engine
    /// (inference uses only the `Forward` role) must be
    /// position-invariant. The model's *actual* engines are checked by
    /// [`InferenceServer::start`] regardless — authoritative, via
    /// [`Sequential::stochastic_forward_engine`] — so passing a policy
    /// that does not match the model cannot smuggle an SR forward engine
    /// past the guard.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::StochasticForward`] naming the offending
    /// engine (plus everything [`InferenceServer::start`] can return).
    ///
    /// # Panics
    ///
    /// See [`InferenceServer::start`].
    pub fn start_with_numerics(
        model: Sequential,
        image_size: usize,
        cfg: ServeConfig,
        numerics: &Numerics,
    ) -> Result<Self, ServeError> {
        numerics
            .forward_position_invariant()
            .map_err(|engine| ServeError::StochasticForward { engine })?;
        Self::start(model, image_size, cfg)
    }

    /// A handle for submitting requests (cloneable, usable from any
    /// thread).
    #[must_use]
    pub fn client(&self) -> ServeClient {
        ServeClient {
            tx: self.tx.clone().expect("server running"), // PANIC-OK: tx is Some for the whole life of a running server; client() is only reachable then.
            sample_len: self.sample_len,
            queue_depth: self.queue_depth,
            shed: Arc::clone(&self.shed),
        }
    }

    /// Number of worker replicas this server runs.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// A handle onto the server's diagnostic sink. The handle shares the
    /// underlying buffer and **outlives the server**, so diagnostics
    /// recorded during `Drop` (a worker panic, for instance) stay
    /// observable.
    #[must_use]
    pub fn diag_sink(&self) -> DiagSink {
        self.sink.clone()
    }

    /// A snapshot of every diagnostic recorded so far.
    #[must_use]
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        self.sink.snapshot()
    }

    /// True once any serving thread has died abnormally (a panicked
    /// worker detected by the router mid-serve, or recorded at join).
    /// The corresponding `serve::worker-panic` / `serve::worker-lost`
    /// diagnostics carry the details.
    #[must_use]
    pub fn poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Stops every worker after all already-admitted requests have been
    /// served (the admission and lane queues are ordered, and the
    /// shutdown marker trails them), and returns the original model with
    /// the merged serving stats. Clients that submit afterwards get
    /// [`ServeError::Closed`].
    ///
    /// # Errors
    ///
    /// [`ServeError::WorkerPanicked`] when any serving thread panicked;
    /// the panic is also recorded as a `serve::worker-panic` diagnostic
    /// (grab [`InferenceServer::diag_sink`] first to inspect it).
    pub fn shutdown(mut self) -> Result<(Sequential, ServeStats), ServeError> {
        let (model, stats, failure) = self.reap();
        if let Some(err) = failure {
            return Err(err);
        }
        Ok((model.expect("worker 0 returns the model"), stats)) // PANIC-OK: reap() reported no failure, so worker 0 returned the model.
    }

    /// Records a panic payload from a joined thread: flips the poisoned
    /// flag, emits a `serve::worker-panic` diagnostic, mirrors it to
    /// stderr (a crashed worker must be visible even when nobody reads
    /// the sink), and returns the typed error.
    fn record_panic(&self, thread: &str, payload: &(dyn std::any::Any + Send)) -> ServeError {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_owned());
        self.poisoned.store(true, Ordering::SeqCst);
        let err = ServeError::WorkerPanicked {
            thread: thread.to_owned(),
            message,
        };
        let diag = err.diagnostic();
        eprintln!("{}", diag.render_short());
        self.sink.emit(diag);
        err
    }

    /// Sends the shutdown marker, joins the router and every worker,
    /// merges their stats, and records (never swallows) any panic.
    /// Idempotent: both [`InferenceServer::shutdown`] and `Drop` call
    /// it; the second call finds nothing left to do.
    fn reap(&mut self) -> (Option<Sequential>, ServeStats, Option<ServeError>) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(Msg::Shutdown);
        }
        let mut stats = ServeStats {
            workers: self.worker_count,
            worker_requests: vec![0; self.worker_count],
            ..ServeStats::default()
        };
        let mut failure: Option<ServeError> = None;
        if let Some(router) = self.router.take() {
            match router.join() {
                Ok(outcome) => stats.expired += outcome.expired,
                Err(payload) => {
                    let err = self.record_panic("srmac-serve-router", payload.as_ref());
                    failure.get_or_insert(err);
                }
            }
        }
        let mut model = None;
        let handles: Vec<_> = self.workers.drain(..).collect();
        for (i, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(exit) => {
                    stats.requests += exit.stats.requests;
                    stats.batches += exit.stats.batches;
                    stats.max_batch_seen = stats.max_batch_seen.max(exit.stats.max_batch_seen);
                    stats.expired += exit.stats.expired;
                    stats.worker_requests[i] = exit.stats.requests;
                    stats.queue_wait.merge(&exit.stats.queue_wait);
                    stats.batch_assembly.merge(&exit.stats.batch_assembly);
                    stats.inference.merge(&exit.stats.inference);
                    debug_assert!(matches!(
                        exit.reason,
                        StopReason::Marker | StopReason::Disconnected
                    ));
                    if i == 0 {
                        model = Some(exit.model);
                    }
                }
                Err(payload) => {
                    let err = self.record_panic(&format!("srmac-serve-{i}"), payload.as_ref());
                    failure.get_or_insert(err);
                }
            }
        }
        stats.shed = self.shed.load(Ordering::SeqCst);
        if stats.requests > 0 || stats.shed > 0 || stats.expired > 0 {
            self.sink.emit(
                Diagnostic::new(
                    Severity::Info,
                    codes::SHUTDOWN,
                    format!(
                        "served {} requests across {} worker(s)",
                        stats.requests, stats.workers
                    ),
                )
                .field("requests", stats.requests.to_string())
                .field("shed", stats.shed.to_string())
                .field("expired", stats.expired.to_string()),
            );
        }
        (model, stats, failure)
    }
}

impl Drop for InferenceServer {
    /// Joins every serving thread. A worker panic discovered here is
    /// **recorded** — poisoned flag set, `serve::worker-panic`
    /// diagnostic emitted (observable through a previously taken
    /// [`InferenceServer::diag_sink`] handle), short rendering mirrored
    /// to stderr — never silently discarded.
    fn drop(&mut self) {
        let _ = self.reap();
    }
}

/// A request handle onto a running [`InferenceServer`].
#[derive(Debug, Clone)]
pub struct ServeClient {
    tx: mpsc::SyncSender<Msg>,
    sample_len: usize,
    queue_depth: usize,
    shed: Arc<AtomicUsize>,
}

/// An in-flight request: redeem with [`PendingPrediction::wait`].
#[derive(Debug)]
pub struct PendingPrediction {
    rx: mpsc::Receiver<Result<Prediction, ServeError>>,
}

impl PendingPrediction {
    /// Blocks until the prediction (or its typed failure) arrives.
    ///
    /// # Errors
    ///
    /// [`ServeError::DeadlineExceeded`] if the request's deadline passed
    /// in queue, and [`ServeError::Closed`] if the server shut down (or
    /// its worker died) first.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        match self.rx.recv() {
            Ok(reply) => reply,
            Err(_) => Err(ServeError::Closed),
        }
    }
}

impl ServeClient {
    fn submit_request(
        &self,
        sample: Vec<f32>,
        deadline: Option<Instant>,
    ) -> Result<PendingPrediction, ServeError> {
        if sample.len() != self.sample_len {
            return Err(ServeError::BadInput {
                expected: self.sample_len,
                got: sample.len(),
            });
        }
        let (reply, rx) = mpsc::channel();
        let req = Request {
            sample,
            reply,
            submitted: Instant::now(),
            deadline,
        };
        match self.tx.try_send(Msg::Request(req)) {
            Ok(()) => Ok(PendingPrediction { rx }),
            Err(mpsc::TrySendError::Full(_)) => {
                self.shed.fetch_add(1, Ordering::SeqCst);
                Err(ServeError::Overloaded {
                    depth: self.queue_depth,
                })
            }
            Err(mpsc::TrySendError::Disconnected(_)) => Err(ServeError::Closed),
        }
    }

    /// Enqueues one sample (row-major `[3, s, s]` pixels) without
    /// blocking; submitting several before waiting lets the server batch
    /// them together and spread them across replicas.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] on a wrong-sized sample,
    /// [`ServeError::Overloaded`] when the bounded admission queue is
    /// full (the request was shed, not queued), and
    /// [`ServeError::Closed`] if the server is gone.
    pub fn submit(&self, sample: Vec<f32>) -> Result<PendingPrediction, ServeError> {
        self.submit_request(sample, None)
    }

    /// Like [`ServeClient::submit`], with a deadline: if `budget`
    /// elapses before the request reaches a model, it is answered with
    /// [`ServeError::DeadlineExceeded`] instead of running inference the
    /// client no longer wants.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::submit`]; the returned
    /// [`PendingPrediction::wait`] may additionally yield
    /// [`ServeError::DeadlineExceeded`].
    pub fn submit_within(
        &self,
        sample: Vec<f32>,
        budget: Duration,
    ) -> Result<PendingPrediction, ServeError> {
        self.submit_request(sample, Some(Instant::now() + budget))
    }

    /// Submits one sample and blocks for its prediction.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::submit`] and [`PendingPrediction::wait`].
    pub fn predict(&self, sample: Vec<f32>) -> Result<Prediction, ServeError> {
        self.submit(sample)?.wait()
    }

    /// Submits one sample with a deadline and blocks for its prediction
    /// (or typed expiry).
    ///
    /// # Errors
    ///
    /// See [`ServeClient::submit_within`].
    pub fn predict_within(
        &self,
        sample: Vec<f32>,
        budget: Duration,
    ) -> Result<Prediction, ServeError> {
        self.submit_within(sample, budget)?.wait()
    }
}

/// The router: pulls admitted requests off the bounded queue and shards
/// them across worker lanes round-robin, skipping full lanes (and, when
/// every live lane is full, blocking on one so backpressure propagates
/// to admission instead of evaporating). Expired deadlines are answered
/// here without touching any lane; a disconnected lane means its worker
/// died — the router records the loss, poisons the server, and reroutes.
fn router_loop(
    rx: &mpsc::Receiver<Msg>,
    lanes: Vec<mpsc::SyncSender<WorkerMsg>>,
    sink: &DiagSink,
    poisoned: &AtomicBool,
) -> RouterOutcome {
    let mut lanes: Vec<Option<mpsc::SyncSender<WorkerMsg>>> = lanes.into_iter().map(Some).collect();
    let mut outcome = RouterOutcome::default();
    let mut next = 0usize;
    // The marker is the deliberate stop; a disconnect of every admission
    // sender (server and all clients gone) is treated the same — nothing
    // can submit anymore.
    while let Ok(Msg::Request(req)) = rx.recv() {
        route(req, &mut lanes, &mut next, &mut outcome, sink, poisoned);
    }
    for lane in lanes.iter().flatten() {
        let _ = lane.send(WorkerMsg::Shutdown);
    }
    outcome
}

/// Marks a worker lane dead (its receiver disconnected without a
/// shutdown marker: the worker panicked mid-serve).
fn lose_lane(
    lanes: &mut [Option<mpsc::SyncSender<WorkerMsg>>],
    idx: usize,
    sink: &DiagSink,
    poisoned: &AtomicBool,
) {
    lanes[idx] = None;
    poisoned.store(true, Ordering::SeqCst);
    sink.emit(
        Diagnostic::new(
            Severity::Error,
            codes::WORKER_LOST,
            format!("worker {idx} queue disconnected mid-serve (worker died); rerouting"),
        )
        .field("worker", idx.to_string()),
    );
}

fn route(
    mut req: Request,
    lanes: &mut [Option<mpsc::SyncSender<WorkerMsg>>],
    next: &mut usize,
    outcome: &mut RouterOutcome,
    sink: &DiagSink,
    poisoned: &AtomicBool,
) {
    let now = Instant::now();
    if let Some(deadline) = req.deadline {
        if now > deadline {
            outcome.expired += 1;
            let _ = req.reply.send(Err(ServeError::DeadlineExceeded {
                missed_by: now - deadline,
            }));
            return;
        }
    }
    let n = lanes.len();
    loop {
        // Pass 1: round-robin try_send over live lanes.
        let mut first_full = None;
        for i in 0..n {
            let idx = (*next + i) % n;
            if lanes[idx].is_none() {
                continue;
            }
            match lanes[idx]
                .as_ref()
                .expect("live lane") // PANIC-OK: idx was drawn from the live-lane scan above.
                .try_send(WorkerMsg::Request(req))
            {
                Ok(()) => {
                    *next = (idx + 1) % n;
                    return;
                }
                Err(mpsc::TrySendError::Full(WorkerMsg::Request(r))) => {
                    req = r;
                    if first_full.is_none() {
                        first_full = Some(idx);
                    }
                }
                Err(mpsc::TrySendError::Disconnected(WorkerMsg::Request(r))) => {
                    req = r;
                    lose_lane(lanes, idx, sink, poisoned);
                }
                Err(_) => unreachable!("router only forwards requests"),
            }
        }
        // Pass 2: every live lane is full — block on one, so the
        // admission queue (and with it the clients) feels backpressure.
        match first_full {
            Some(idx) => {
                match lanes[idx]
                    .as_ref()
                    .expect("live lane") // PANIC-OK: first_full indexes a lane observed live in pass 1.
                    .send(WorkerMsg::Request(req))
                {
                    Ok(()) => {
                        *next = (idx + 1) % n;
                        return;
                    }
                    Err(mpsc::SendError(WorkerMsg::Request(r))) => {
                        req = r;
                        lose_lane(lanes, idx, sink, poisoned);
                        // Retry the surviving lanes.
                    }
                    Err(_) => unreachable!("router only forwards requests"),
                }
            }
            None => {
                // No live worker remains: refuse rather than strand.
                outcome.refused += 1;
                let _ = req.reply.send(Err(ServeError::Closed));
                return;
            }
        }
    }
}

/// One worker: block for the first request on its lane, greedily drain
/// up to `max_batch` (briefly waiting for stragglers below
/// `max_wait_items`), run the batch through its replica, reply per
/// request — and stop *deliberately*: on the shutdown marker
/// ([`StopReason::Marker`]), or on lane disconnect without a marker
/// ([`StopReason::Disconnected`], reported as `serve::router-vanished`).
/// A straggler-wait timeout dispatches the partial batch and keeps
/// serving; it is never conflated with disconnection.
fn worker_loop(
    mut model: Sequential,
    image_size: usize,
    cfg: ServeConfig,
    rx: &mpsc::Receiver<WorkerMsg>,
    sink: &DiagSink,
    worker: usize,
) -> WorkerExit {
    let mut stats = WorkerStats::default();
    let mut batch: Vec<Pending> = Vec::with_capacity(cfg.max_batch);
    // One reused input tensor, exactly like the trainer's evaluate loop:
    // only a batch-size change reshapes it.
    let mut x = Tensor::zeros(&[1, 3, image_size, image_size]);
    let mut reason = None;
    while reason.is_none() {
        match rx.recv() {
            Ok(WorkerMsg::Request(r)) => admit(r, &mut batch, &mut stats),
            Ok(WorkerMsg::Shutdown) => reason = Some(StopReason::Marker),
            Err(_) => reason = Some(StopReason::Disconnected),
        }
        while batch.len() < cfg.max_batch && reason.is_none() {
            match rx.try_recv() {
                Ok(WorkerMsg::Request(r)) => admit(r, &mut batch, &mut stats),
                Ok(WorkerMsg::Shutdown) => reason = Some(StopReason::Marker),
                Err(mpsc::TryRecvError::Disconnected) => {
                    reason = Some(StopReason::Disconnected);
                }
                Err(mpsc::TryRecvError::Empty) => {
                    if batch.len() >= cfg.max_wait_items {
                        break;
                    }
                    match rx.recv_timeout(cfg.straggler_wait) {
                        Ok(WorkerMsg::Request(r)) => admit(r, &mut batch, &mut stats),
                        Ok(WorkerMsg::Shutdown) => reason = Some(StopReason::Marker),
                        // A timeout dispatches what we have and keeps
                        // serving; a disconnect is an explicit stop.
                        // The two are distinct on purpose — the old loop
                        // collapsed them (`Err(_) => break`) and relied
                        // on the next outer recv to notice the hangup.
                        Err(mpsc::RecvTimeoutError::Timeout) => break,
                        Err(mpsc::RecvTimeoutError::Disconnected) => {
                            reason = Some(StopReason::Disconnected);
                        }
                    }
                }
            }
        }
        if !batch.is_empty() {
            run_batch(&mut model, &mut x, image_size, &mut batch, &mut stats);
        }
    }
    let reason = reason.expect("loop exits with a reason"); // PANIC-OK: every loop exit assigned a StopReason.
    if reason == StopReason::Disconnected {
        sink.emit(
            Diagnostic::new(
                Severity::Warning,
                codes::ROUTER_VANISHED,
                format!(
                    "worker {worker} stopping: lane disconnected without a shutdown marker \
                     (router vanished)"
                ),
            )
            .field("worker", worker.to_string()),
        );
    }
    WorkerExit {
        model,
        stats,
        reason,
    }
}

/// Stages one routed request into the batch — unless its deadline has
/// already passed, in which case it is answered right here, without
/// touching the model.
fn admit(req: Request, batch: &mut Vec<Pending>, stats: &mut WorkerStats) {
    let now = Instant::now();
    if let Some(deadline) = req.deadline {
        if now > deadline {
            stats.expired += 1;
            let _ = req.reply.send(Err(ServeError::DeadlineExceeded {
                missed_by: now - deadline,
            }));
            return;
        }
    }
    batch.push(Pending { req, joined: now });
}

fn run_batch(
    model: &mut Sequential,
    x: &mut Tensor,
    image_size: usize,
    batch: &mut Vec<Pending>,
    stats: &mut WorkerStats,
) {
    let b = batch.len();
    let plane = 3 * image_size * image_size;
    if x.shape()[0] != b {
        *x = Tensor::zeros(&[b, 3, image_size, image_size]);
    }
    {
        let xd = x.data_mut();
        for (i, p) in batch.iter().enumerate() {
            xd[i * plane..(i + 1) * plane].copy_from_slice(&p.req.sample);
        }
    }
    let dispatched = Instant::now();
    let logits = model.forward(x, false);
    let inference = dispatched.elapsed();
    let classes = logits.numel() / b;
    for (row, p) in logits.data().chunks(classes).zip(batch.drain(..)) {
        // The exact expression of `count_correct`: with the coarse
        // quantized logits the MAC engines produce, ties are real, and
        // any other tie rule would let served accuracy diverge from
        // `evaluate`.
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map_or(0, |(i, _)| i);
        stats
            .queue_wait
            .record(p.joined.saturating_duration_since(p.req.submitted));
        stats
            .batch_assembly
            .record(dispatched.saturating_duration_since(p.joined));
        stats.inference.record(inference);
        // A dropped client is not an error; the work is already done.
        let _ = p.req.reply.send(Ok(Prediction {
            logits: row.to_vec(),
            argmax,
            batch_size: b,
        }));
    }
    stats.requests += b;
    stats.batches += 1;
    stats.max_batch_seen = stats.max_batch_seen.max(b);
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use srmac_qgemm::{engine_from_spec, numerics_from_spec};
    use srmac_tensor::{F32Engine, GemmEngine};

    use super::*;
    use crate::data::synth_cifar10;
    use crate::resnet::{resnet20, resnet20_with};
    use crate::{evaluate, Dataset};

    const SIZE: usize = 8;

    fn sample(ds: &Dataset, i: usize) -> Vec<f32> {
        let (x, _) = ds.batch(&[i]);
        x.data().to_vec()
    }

    /// Reference: logits of each sample computed one at a time (batch
    /// size 1) through a plain forward pass.
    fn batch1_logits(model: &mut Sequential, ds: &Dataset, n: usize) -> Vec<Vec<u32>> {
        (0..n)
            .map(|i| {
                let (x, _) = ds.batch(&[i]);
                model
                    .forward(&x, false)
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect()
    }

    /// Serves all `n` samples with the given submission pattern and
    /// returns per-request logit bits plus the stats.
    fn serve_all(
        model: Sequential,
        ds: &Dataset,
        n: usize,
        cfg: ServeConfig,
        pipelined: bool,
    ) -> (Vec<Vec<u32>>, ServeStats, Sequential) {
        let server = InferenceServer::start(model, SIZE, cfg).expect("position-invariant");
        let client = server.client();
        let logits: Vec<Vec<u32>> = if pipelined {
            // Submit everything up front: the workers are free to
            // assemble any batch pattern up to max_batch.
            let pending: Vec<_> = (0..n)
                .map(|i| client.submit(sample(ds, i)).expect("submit"))
                .collect();
            pending
                .into_iter()
                .map(|p| p.wait().expect("prediction"))
                .map(|p| p.logits.iter().map(|v| v.to_bits()).collect())
                .collect()
        } else {
            // Strictly sequential: every batch has exactly one request.
            (0..n)
                .map(|i| client.predict(sample(ds, i)).expect("predict"))
                .map(|p| p.logits.iter().map(|v| v.to_bits()).collect())
                .collect()
        };
        let (model, stats) = server.shutdown().expect("clean shutdown");
        (logits, stats, model)
    }

    fn engines() -> Vec<(&'static str, Arc<dyn GemmEngine>)> {
        vec![
            ("f32", Arc::new(F32Engine::new(2))),
            ("mac_rn", engine_from_spec("fp8_fp12_rn").expect("spec")),
        ]
    }

    #[test]
    fn any_batching_pattern_matches_batch1_bitwise() {
        // The serving determinism contract, asserted bit for bit for the
        // position-invariant inference engines: pipelined submission
        // (dynamic batches up to 5), strictly sequential submission
        // (all-singleton batches), a greedy max_batch=32 drain, and a
        // 3-replica server must all equal the plain batch-1 forward
        // pass.
        let ds = synth_cifar10(12, SIZE, 31);
        let n = ds.len();
        for (label, engine) in engines() {
            let mut reference_model = resnet20(&engine, 4, 10, 17);
            let want = batch1_logits(&mut reference_model, &ds, n);

            for (pat, cfg, pipelined) in [
                (
                    "pipelined_max5",
                    ServeConfig {
                        max_batch: 5,
                        max_wait_items: 2,
                        straggler_wait: Duration::from_micros(100),
                        ..ServeConfig::default()
                    },
                    true,
                ),
                ("sequential", ServeConfig::default(), false),
                (
                    "greedy_max32",
                    ServeConfig {
                        max_batch: 32,
                        ..ServeConfig::default()
                    },
                    true,
                ),
                (
                    "replicated_w3",
                    ServeConfig {
                        workers: 3,
                        max_batch: 4,
                        max_wait_items: 2,
                        ..ServeConfig::default()
                    },
                    true,
                ),
            ] {
                let model = resnet20(&engine, 4, 10, 17);
                let (got, stats, _) = serve_all(model, &ds, n, cfg, pipelined);
                assert_eq!(stats.requests, n, "{label}/{pat}: request count");
                assert_eq!(
                    stats.worker_requests.iter().sum::<usize>(),
                    n,
                    "{label}/{pat}: per-worker totals must sum to the request count"
                );
                assert_eq!(
                    got, want,
                    "{label}/{pat}: served logits must be bitwise identical to batch-1"
                );
            }
        }
    }

    #[test]
    fn start_rejects_stochastic_forward_on_every_path() {
        // The doc-example path (`start`) used to skip the batch-
        // invariance guard entirely — only `start_with_numerics` checked
        // the layer engines, so a plain `start` happily served an SR
        // forward model with silently position-dependent logits. Both
        // construction paths must refuse.
        let sr = numerics_from_spec("fp8_fp12_sr13").expect("uniform SR policy");
        let model = resnet20_with(&sr, 4, 10, 3);
        let err = InferenceServer::start(model, SIZE, ServeConfig::default())
            .expect_err("start must enforce the layer-engine guard");
        assert!(
            matches!(&err, ServeError::StochasticForward { engine } if engine.contains("SR")),
            "got {err:?}"
        );
        assert_eq!(err.code(), codes::STOCHASTIC_FORWARD);

        let model = resnet20_with(&sr, 4, 10, 3);
        let err = InferenceServer::start_with_numerics(model, SIZE, ServeConfig::default(), &sr)
            .expect_err("the policy path must also refuse");
        assert!(matches!(err, ServeError::StochasticForward { .. }));
    }

    #[test]
    fn worker_distinguishes_disconnect_from_straggler_timeout() {
        // Regression for the straggler-wait disconnect bug: the old loop
        // treated `RecvTimeoutError::Disconnected` as a timeout
        // (`Err(_) => break`), leaving the worker to discover the hangup
        // on its next outer recv. The worker must (a) still serve the
        // batch it was assembling, and (b) stop *because of the
        // disconnect* — promptly, not after the straggler timeout, and
        // with the abnormal stop recorded.
        let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
        let model = resnet20(&engine, 4, 10, 1);
        let cfg = ServeConfig {
            max_batch: 8,
            max_wait_items: 8,                       // always wait for stragglers
            straggler_wait: Duration::from_secs(30), // a timeout would hang the test
            ..ServeConfig::default()
        };
        let (ltx, lrx) = mpsc::sync_channel::<WorkerMsg>(16);
        let sink = DiagSink::default();
        let worker_sink = sink.clone();
        let handle =
            std::thread::spawn(move || worker_loop(model, SIZE, cfg, &lrx, &worker_sink, 0));

        let ds = synth_cifar10(2, SIZE, 5);
        let pending: Vec<_> = (0..2)
            .map(|i| {
                let (reply, rx) = mpsc::channel();
                ltx.send(WorkerMsg::Request(Request {
                    sample: sample(&ds, i),
                    reply,
                    submitted: Instant::now(),
                    deadline: None,
                }))
                .expect("send");
                rx
            })
            .collect();
        // Hang up mid-straggler-wait, with no shutdown marker.
        drop(ltx);
        let exit = handle.join().expect("worker exits cleanly");
        assert_eq!(
            exit.reason,
            StopReason::Disconnected,
            "a hangup without a marker is an explicit disconnect stop"
        );
        // The in-flight batch was still served before stopping.
        for rx in pending {
            let got = rx.recv().expect("reply").expect("prediction");
            assert_eq!(got.logits.len(), 10);
        }
        assert_eq!(exit.stats.requests, 2);
        // The abnormal stop is recorded, not silent.
        let diags = sink.snapshot();
        assert!(
            diags.iter().any(|d| d.code == codes::ROUTER_VANISHED),
            "expected a serve::router-vanished diagnostic, got {diags:?}"
        );
    }

    #[test]
    fn served_argmax_reproduces_evaluate_accuracy() {
        let ds = synth_cifar10(30, SIZE, 41);
        let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(2));
        let mut model = resnet20(&engine, 4, 10, 5);
        let want_acc = evaluate(&mut model, &ds, 7);

        let server = InferenceServer::start(model, SIZE, ServeConfig::default())
            .expect("position-invariant");
        let client = server.client();
        let pending: Vec<_> = (0..ds.len())
            .map(|i| client.submit(sample(&ds, i)).unwrap())
            .collect();
        let correct = pending
            .into_iter()
            .enumerate()
            .filter(|(i, p)| {
                let p = p.rx.recv().expect("reply").expect("prediction");
                p.argmax == ds.labels()[*i]
            })
            .count();
        let got_acc = 100.0 * correct as f32 / ds.len() as f32;
        assert_eq!(
            want_acc.to_bits(),
            got_acc.to_bits(),
            "served accuracy must equal evaluate()"
        );
        let (_, stats) = server.shutdown().expect("clean shutdown");
        assert_eq!(stats.requests, ds.len());
    }

    #[test]
    fn pipelined_submission_actually_batches() {
        // With everything queued before the worker starts draining, at
        // least one multi-request batch must form (the whole point of the
        // queue). `max_wait_items = max_batch` makes assembly greedy.
        let ds = synth_cifar10(16, SIZE, 51);
        let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
        let model = resnet20(&engine, 4, 10, 3);
        let cfg = ServeConfig {
            max_batch: 8,
            max_wait_items: 8,
            straggler_wait: Duration::from_millis(20),
            ..ServeConfig::default()
        };
        let (_, stats, _) = serve_all(model, &ds, ds.len(), cfg, true);
        assert_eq!(stats.requests, 16);
        assert!(
            stats.max_batch_seen > 1,
            "expected at least one multi-request batch, saw max {}",
            stats.max_batch_seen
        );
        assert!(stats.max_batch_seen <= 8, "max_batch must cap assembly");
        assert!(stats.batches < 16, "batching must reduce dispatch count");
        // The observability contract: every served request is timed
        // through all three stages.
        assert_eq!(stats.queue_wait.count(), 16);
        assert_eq!(stats.batch_assembly.count(), 16);
        assert_eq!(stats.inference.count(), 16);
        assert!(stats.inference.p50().expect("recorded") > Duration::ZERO);
    }

    #[test]
    fn bad_input_and_shutdown_are_typed_errors() {
        let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
        let model = resnet20(&engine, 4, 10, 1);
        let server = InferenceServer::start(model, SIZE, ServeConfig::default())
            .expect("position-invariant");
        let client = server.client();
        assert!(matches!(
            client.predict(vec![0.0; 5]),
            Err(ServeError::BadInput {
                expected,
                got: 5
            }) if expected == 3 * SIZE * SIZE
        ));
        let (_, stats) = server.shutdown().expect("clean shutdown");
        assert_eq!(stats.requests, 0, "rejected requests never reach the model");
        assert!(matches!(
            client.predict(vec![0.0; 3 * SIZE * SIZE]),
            Err(ServeError::Closed)
        ));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_nanos(0)), 0);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_nanos(1)), 0);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_nanos(2)), 1);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_nanos(3)), 1);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_nanos(4)), 2);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_nanos(1023)), 9);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_nanos(1024)), 10);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_secs(10_000)), 43);
        // Durations beyond u64 nanoseconds clamp into the last bucket.
        assert_eq!(
            LatencyHistogram::bucket_of(Duration::from_secs(u64::MAX)),
            63
        );
        assert_eq!(LatencyHistogram::upper_edge_ns(0), 1);
        assert_eq!(LatencyHistogram::upper_edge_ns(9), 1023);
        assert_eq!(LatencyHistogram::upper_edge_ns(63), u64::MAX);
    }

    #[test]
    fn histogram_percentiles_report_bucket_upper_edges() {
        let mut h = LatencyHistogram::new();
        assert_eq!(
            h.percentile(50.0),
            None,
            "empty histogram has no percentiles"
        );

        // One observation: every percentile is its bucket's upper edge.
        h.record(Duration::from_nanos(100)); // bucket 6: [64, 128)
        for p in [1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(Duration::from_nanos(127)));
        }

        // 98 fast + 2 slow: the median stays in the fast bucket, the
        // p99 lands in the slow one.
        let mut h = LatencyHistogram::new();
        for _ in 0..98 {
            h.record(Duration::from_micros(1)); // bucket 9: [512, 1024)
        }
        for _ in 0..2 {
            h.record(Duration::from_millis(1)); // bucket 19
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), Some(Duration::from_nanos(1023)));
        assert_eq!(h.p95(), Some(Duration::from_nanos(1023)));
        // rank = ceil(0.99 * 100) = 99 > 98 -> the slow bucket.
        assert_eq!(h.p99(), Some(Duration::from_nanos((1 << 20) - 1)));
        assert_eq!(
            h.percentile(100.0),
            Some(Duration::from_nanos((1 << 20) - 1))
        );

        // Monotone in p.
        let p = [h.p50().unwrap(), h.p95().unwrap(), h.p99().unwrap()];
        assert!(p[0] <= p[1] && p[1] <= p[2]);
    }

    #[test]
    fn histogram_merge_is_additive() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 1..=8u64 {
            a.record(Duration::from_nanos(i * 100));
            b.record(Duration::from_micros(i * 100));
        }
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), 16);
        let mut direct = LatencyHistogram::new();
        for i in 1..=8u64 {
            direct.record(Duration::from_nanos(i * 100));
            direct.record(Duration::from_micros(i * 100));
        }
        assert_eq!(merged, direct, "merge must equal recording everything once");
        assert_eq!(merged.p50(), direct.p50());
    }

    #[test]
    fn stats_render_json_is_balanced_and_complete() {
        let mut stats = ServeStats {
            requests: 3,
            batches: 2,
            max_batch_seen: 2,
            workers: 2,
            shed: 1,
            expired: 1,
            worker_requests: vec![2, 1],
            ..ServeStats::default()
        };
        stats.queue_wait.record(Duration::from_micros(5));
        stats.inference.record(Duration::from_millis(2));
        let json = stats.render_json();
        for key in [
            "\"requests\":3",
            "\"workers\":2",
            "\"shed\":1",
            "\"expired\":1",
            "\"worker_requests\":[2,1]",
            "\"queue_wait\":",
            "\"batch_assembly\":",
            "\"inference\":",
            "\"p99_us\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let human = stats.to_string();
        assert!(human.contains("3 requests"));
        assert!(human.contains("shed 1"));
    }
}
