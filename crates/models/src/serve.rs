//! Micro-batched inference serving: single-sample requests enter a queue,
//! a worker thread assembles them into dynamic batches (up to
//! [`ServeConfig::max_batch`], dispatching early when the queue runs dry),
//! runs each batch through the model's prepared-operand GEMM path, and
//! returns per-request predictions.
//!
//! Because every layer routes its products through cached packed weights
//! (PR 1) and persistent runtime workspaces (PR 2), a batch of `B`
//! requests costs one forward pass with zero weight re-quantization and,
//! after warm-up, no transient layout allocations — the amortization that
//! makes micro-batching worth the queue.
//!
//! # The serving determinism contract
//!
//! For a **position-invariant** engine, serving any request stream under
//! *any* batching pattern produces logits bitwise identical to running
//! that request alone (batch size 1): each output row of every GEMM is a
//! pure function of that row's inputs and the weights, every non-GEMM
//! layer is elementwise or per-sample, and evaluation-mode batch norm uses
//! running statistics. [`srmac_tensor::F32Engine`] and
//! `srmac_qgemm::MacGemm` with `AccumRounding::Nearest` — the inference
//! configurations — are position-invariant, and the contract is asserted
//! bit-for-bit in this module's tests across batch patterns.
//!
//! `MacGemm` with **stochastic** accumulation is deliberately *not*
//! position-invariant: its rounding streams are seeded per output
//! coordinate `(row, column)` so that training runs are reproducible, and
//! a sample's GEMM rows depend on its position in the batch. SR is the
//! paper's *training* mechanism; serve with RN (or f32) for deterministic
//! inference.

use std::sync::mpsc;
use std::time::Duration;

use srmac_tensor::layers::Layer;
use srmac_tensor::numerics::{GemmRole, Numerics};
use srmac_tensor::{Sequential, Tensor};

/// Batching policy of an [`InferenceServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Hard cap on assembled batch size.
    pub max_batch: usize,
    /// When the queue runs dry with fewer than this many requests in the
    /// batch, the assembler waits [`ServeConfig::straggler_wait`] for more
    /// before dispatching; at or above it, it dispatches immediately.
    /// `1` dispatches as soon as the queue empties (latency-first).
    pub max_wait_items: usize,
    /// How long to wait for stragglers below `max_wait_items`.
    pub straggler_wait: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            max_wait_items: 1,
            straggler_wait: Duration::from_micros(200),
        }
    }
}

/// The answer to one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The model's output row for this sample.
    pub logits: Vec<f32>,
    /// Index of the largest logit, by exactly the rule of
    /// `srmac_tensor::count_correct` (ties resolve to the highest index),
    /// so served accuracy can never diverge from `evaluate`.
    pub argmax: usize,
    /// Size of the dynamic batch this request rode in (observability).
    pub batch_size: usize,
}

/// Why a request could not be served (or a server could not start).
#[derive(Debug)]
pub enum ServeError {
    /// The sample length does not match the model input `3 * s * s`.
    BadInput {
        /// Expected element count.
        expected: usize,
        /// Received element count.
        got: usize,
    },
    /// The server has shut down (or the worker died) before replying.
    Closed,
    /// The model's numerics resolve a forward engine that is not
    /// position-invariant (stochastic-rounding accumulation), which would
    /// silently break the batch-invariance contract above — serve with an
    /// RN or f32 forward engine instead (SR is the paper's *training*
    /// mechanism).
    StochasticForward {
        /// `name()` of the offending forward engine.
        engine: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadInput { expected, got } => {
                write!(f, "sample has {got} elements, model expects {expected}")
            }
            ServeError::Closed => write!(f, "inference server is closed"),
            ServeError::StochasticForward { engine } => write!(
                f,
                "forward engine {engine:?} is not position-invariant: serving \
                 through it would make each prediction depend on its batch \
                 position (serve with an RN or f32 forward engine)"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// Counters the worker keeps while serving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered.
    pub requests: usize,
    /// Dynamic batches executed.
    pub batches: usize,
    /// Largest batch assembled.
    pub max_batch_seen: usize,
}

struct Request {
    sample: Vec<f32>,
    reply: mpsc::Sender<Prediction>,
}

/// Queue protocol: requests, or the explicit stop marker. Clients may
/// outlive the server (their sender clones keep the channel open), so the
/// worker stops on this marker — never by waiting for disconnection.
/// The channel is ordered, so every request submitted before shutdown is
/// served before the marker is seen.
enum Msg {
    Request(Request),
    Shutdown,
}

/// A micro-batching inference server: owns the model on a worker thread
/// and serves cloneable [`ServeClient`] handles.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use srmac_models::serve::{InferenceServer, ServeConfig};
/// use srmac_models::{data, resnet};
/// use srmac_tensor::{F32Engine, GemmEngine};
///
/// let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
/// let model = resnet::resnet20(&engine, 4, 10, 0);
/// let server = InferenceServer::start(model, 8, ServeConfig::default());
/// let client = server.client();
///
/// let ds = data::synth_cifar10(4, 8, 1);
/// let (x, _) = ds.batch(&[0]);
/// let p = client.predict(x.data().to_vec()).unwrap();
/// assert_eq!(p.logits.len(), 10);
/// let (model, stats) = server.shutdown();
/// assert_eq!(stats.requests, 1);
/// drop(model);
/// ```
#[derive(Debug)]
pub struct InferenceServer {
    tx: Option<mpsc::Sender<Msg>>,
    worker: Option<std::thread::JoinHandle<(Sequential, ServeStats)>>,
    sample_len: usize,
}

impl InferenceServer {
    /// Takes ownership of `model` (expecting `[B, 3, s, s]` inputs with
    /// `s = image_size`) and starts the batching worker.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.max_batch == 0` or `image_size == 0`.
    #[must_use]
    pub fn start(model: Sequential, image_size: usize, cfg: ServeConfig) -> Self {
        assert!(cfg.max_batch > 0, "serving needs max_batch >= 1");
        assert!(image_size > 0, "serving needs a nonzero image size");
        let sample_len = 3 * image_size * image_size;
        let (tx, rx) = mpsc::channel::<Msg>();
        let worker = std::thread::Builder::new()
            .name("srmac-serve".into())
            .spawn(move || serve_loop(model, image_size, cfg, &rx))
            .expect("spawn serve worker");
        Self {
            tx: Some(tx),
            worker: Some(worker),
            sample_len,
        }
    }

    /// Like [`InferenceServer::start`], but takes the [`Numerics`] policy
    /// the model was built with and enforces the batch-invariance
    /// contract up front: every forward engine (inference uses only the
    /// `Forward` role) must be position-invariant, so a
    /// stochastic-rounding forward engine is a typed error instead of a
    /// silent per-position drift in the served logits.
    ///
    /// Two things are checked: the declared policy, *and* — authoritative,
    /// via [`Layer::visit_role_engines`] — the forward engines the model's
    /// layers actually carry, so passing a policy that does not match the
    /// model cannot smuggle an SR forward engine past the guard.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::StochasticForward`] naming the offending
    /// engine.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.max_batch == 0` or `image_size == 0`.
    pub fn start_with_numerics(
        mut model: Sequential,
        image_size: usize,
        cfg: ServeConfig,
        numerics: &Numerics,
    ) -> Result<Self, ServeError> {
        numerics
            .forward_position_invariant()
            .map_err(|engine| ServeError::StochasticForward { engine })?;
        let mut offender: Option<String> = None;
        model.visit_role_engines(&mut |role, engine| {
            if role == GemmRole::Forward && offender.is_none() && !engine.position_invariant() {
                offender = Some(engine.name());
            }
        });
        if let Some(engine) = offender {
            return Err(ServeError::StochasticForward { engine });
        }
        Ok(Self::start(model, image_size, cfg))
    }

    /// A handle for submitting requests (cloneable, usable from any
    /// thread).
    #[must_use]
    pub fn client(&self) -> ServeClient {
        ServeClient {
            tx: self.tx.clone().expect("server running"),
            sample_len: self.sample_len,
        }
    }

    /// Stops the worker after every already-submitted request has been
    /// served (the queue is ordered), and returns the model with the
    /// serving counters. Clients that submit afterwards get
    /// [`ServeError::Closed`].
    ///
    /// # Panics
    ///
    /// Panics if the worker thread itself panicked.
    #[must_use]
    pub fn shutdown(mut self) -> (Sequential, ServeStats) {
        let tx = self.tx.take().expect("server running");
        let _ = tx.send(Msg::Shutdown);
        self.worker
            .take()
            .expect("server running")
            .join()
            .expect("serve worker panicked")
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(Msg::Shutdown);
        }
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

/// A request handle onto a running [`InferenceServer`].
#[derive(Debug, Clone)]
pub struct ServeClient {
    tx: mpsc::Sender<Msg>,
    sample_len: usize,
}

/// An in-flight request: redeem with [`PendingPrediction::wait`].
#[derive(Debug)]
pub struct PendingPrediction {
    rx: mpsc::Receiver<Prediction>,
}

impl PendingPrediction {
    /// Blocks until the prediction arrives.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] if the server shut down first.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Closed)
    }
}

impl ServeClient {
    /// Enqueues one sample (row-major `[3, s, s]` pixels) without
    /// blocking; submitting several before waiting lets the server batch
    /// them together.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadInput`] on a wrong-sized sample and
    /// [`ServeError::Closed`] if the server is gone.
    pub fn submit(&self, sample: Vec<f32>) -> Result<PendingPrediction, ServeError> {
        if sample.len() != self.sample_len {
            return Err(ServeError::BadInput {
                expected: self.sample_len,
                got: sample.len(),
            });
        }
        let (reply, rx) = mpsc::channel();
        self.tx
            .send(Msg::Request(Request { sample, reply }))
            .map_err(|_| ServeError::Closed)?;
        Ok(PendingPrediction { rx })
    }

    /// Submits one sample and blocks for its prediction.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::submit`].
    pub fn predict(&self, sample: Vec<f32>) -> Result<Prediction, ServeError> {
        self.submit(sample)?.wait()
    }
}

/// The worker: block for the first request, greedily drain the queue up
/// to `max_batch` (briefly waiting for stragglers below
/// `max_wait_items`), run the batch, reply per request.
fn serve_loop(
    mut model: Sequential,
    image_size: usize,
    cfg: ServeConfig,
    rx: &mpsc::Receiver<Msg>,
) -> (Sequential, ServeStats) {
    let mut stats = ServeStats::default();
    let mut batch: Vec<Request> = Vec::with_capacity(cfg.max_batch);
    // One reused input tensor, exactly like the trainer's evaluate loop:
    // only a batch-size change reshapes it.
    let mut x = Tensor::zeros(&[1, 3, image_size, image_size]);
    let mut stop = false;
    while !stop {
        match rx.recv() {
            Ok(Msg::Request(first)) => batch.push(first),
            Ok(Msg::Shutdown) | Err(_) => break,
        }
        while batch.len() < cfg.max_batch {
            match rx.try_recv() {
                Ok(Msg::Request(r)) => batch.push(r),
                Ok(Msg::Shutdown) | Err(mpsc::TryRecvError::Disconnected) => {
                    stop = true;
                    break;
                }
                Err(mpsc::TryRecvError::Empty) => {
                    if batch.len() >= cfg.max_wait_items {
                        break;
                    }
                    match rx.recv_timeout(cfg.straggler_wait) {
                        Ok(Msg::Request(r)) => batch.push(r),
                        Ok(Msg::Shutdown) => {
                            stop = true;
                            break;
                        }
                        Err(_) => break,
                    }
                }
            }
        }
        run_batch(&mut model, &mut x, image_size, &mut batch, &mut stats);
    }
    (model, stats)
}

fn run_batch(
    model: &mut Sequential,
    x: &mut Tensor,
    image_size: usize,
    batch: &mut Vec<Request>,
    stats: &mut ServeStats,
) {
    let b = batch.len();
    let plane = 3 * image_size * image_size;
    if x.shape()[0] != b {
        *x = Tensor::zeros(&[b, 3, image_size, image_size]);
    }
    {
        let xd = x.data_mut();
        for (i, req) in batch.iter().enumerate() {
            xd[i * plane..(i + 1) * plane].copy_from_slice(&req.sample);
        }
    }
    let logits = model.forward(x, false);
    let classes = logits.numel() / b;
    for (row, req) in logits.data().chunks(classes).zip(batch.drain(..)) {
        // The exact expression of `count_correct`: with the coarse
        // quantized logits the MAC engines produce, ties are real, and
        // any other tie rule would let served accuracy diverge from
        // `evaluate`.
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map_or(0, |(i, _)| i);
        // A dropped client is not an error; the work is already done.
        let _ = req.reply.send(Prediction {
            logits: row.to_vec(),
            argmax,
            batch_size: b,
        });
    }
    stats.requests += b;
    stats.batches += 1;
    stats.max_batch_seen = stats.max_batch_seen.max(b);
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use srmac_qgemm::engine_from_spec;
    use srmac_tensor::{F32Engine, GemmEngine};

    use super::*;
    use crate::data::synth_cifar10;
    use crate::resnet::resnet20;
    use crate::{evaluate, Dataset};

    const SIZE: usize = 8;

    fn sample(ds: &Dataset, i: usize) -> Vec<f32> {
        let (x, _) = ds.batch(&[i]);
        x.data().to_vec()
    }

    /// Reference: logits of each sample computed one at a time (batch
    /// size 1) through a plain forward pass.
    fn batch1_logits(model: &mut Sequential, ds: &Dataset, n: usize) -> Vec<Vec<u32>> {
        (0..n)
            .map(|i| {
                let (x, _) = ds.batch(&[i]);
                model
                    .forward(&x, false)
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect()
    }

    /// Serves all `n` samples with the given submission pattern and
    /// returns per-request logit bits plus the stats.
    fn serve_all(
        model: Sequential,
        ds: &Dataset,
        n: usize,
        cfg: ServeConfig,
        pipelined: bool,
    ) -> (Vec<Vec<u32>>, ServeStats, Sequential) {
        let server = InferenceServer::start(model, SIZE, cfg);
        let client = server.client();
        let logits: Vec<Vec<u32>> = if pipelined {
            // Submit everything up front: the worker is free to assemble
            // any batch pattern up to max_batch.
            let pending: Vec<_> = (0..n)
                .map(|i| client.submit(sample(ds, i)).expect("submit"))
                .collect();
            pending
                .into_iter()
                .map(|p| p.wait().expect("prediction"))
                .map(|p| p.logits.iter().map(|v| v.to_bits()).collect())
                .collect()
        } else {
            // Strictly sequential: every batch has exactly one request.
            (0..n)
                .map(|i| client.predict(sample(ds, i)).expect("predict"))
                .map(|p| p.logits.iter().map(|v| v.to_bits()).collect())
                .collect()
        };
        let (model, stats) = server.shutdown();
        (logits, stats, model)
    }

    fn engines() -> Vec<(&'static str, Arc<dyn GemmEngine>)> {
        vec![
            ("f32", Arc::new(F32Engine::new(2))),
            ("mac_rn", engine_from_spec("fp8_fp12_rn").expect("spec")),
        ]
    }

    #[test]
    fn any_batching_pattern_matches_batch1_bitwise() {
        // The serving determinism contract, asserted bit for bit for the
        // position-invariant inference engines: pipelined submission
        // (dynamic batches up to 5), strictly sequential submission
        // (all-singleton batches), and a greedy max_batch=32 drain must
        // all equal the plain batch-1 forward pass.
        let ds = synth_cifar10(12, SIZE, 31);
        let n = ds.len();
        for (label, engine) in engines() {
            let mut reference_model = resnet20(&engine, 4, 10, 17);
            let want = batch1_logits(&mut reference_model, &ds, n);

            for (pat, cfg, pipelined) in [
                (
                    "pipelined_max5",
                    ServeConfig {
                        max_batch: 5,
                        max_wait_items: 2,
                        straggler_wait: Duration::from_micros(100),
                    },
                    true,
                ),
                ("sequential", ServeConfig::default(), false),
                (
                    "greedy_max32",
                    ServeConfig {
                        max_batch: 32,
                        ..ServeConfig::default()
                    },
                    true,
                ),
            ] {
                let model = resnet20(&engine, 4, 10, 17);
                let (got, stats, _) = serve_all(model, &ds, n, cfg, pipelined);
                assert_eq!(stats.requests, n, "{label}/{pat}: request count");
                assert_eq!(
                    got, want,
                    "{label}/{pat}: served logits must be bitwise identical to batch-1"
                );
            }
        }
    }

    #[test]
    fn served_argmax_reproduces_evaluate_accuracy() {
        let ds = synth_cifar10(30, SIZE, 41);
        let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(2));
        let mut model = resnet20(&engine, 4, 10, 5);
        let want_acc = evaluate(&mut model, &ds, 7);

        let server = InferenceServer::start(model, SIZE, ServeConfig::default());
        let client = server.client();
        let pending: Vec<_> = (0..ds.len())
            .map(|i| client.submit(sample(&ds, i)).unwrap())
            .collect();
        let correct = pending
            .into_iter()
            .enumerate()
            .filter(|(i, p)| {
                let p = p.rx.recv().expect("prediction");
                p.argmax == ds.labels()[*i]
            })
            .count();
        let got_acc = 100.0 * correct as f32 / ds.len() as f32;
        assert_eq!(
            want_acc.to_bits(),
            got_acc.to_bits(),
            "served accuracy must equal evaluate()"
        );
        let (_, stats) = server.shutdown();
        assert_eq!(stats.requests, ds.len());
    }

    #[test]
    fn pipelined_submission_actually_batches() {
        // With everything queued before the worker starts draining, at
        // least one multi-request batch must form (the whole point of the
        // queue). `max_wait_items = max_batch` makes assembly greedy.
        let ds = synth_cifar10(16, SIZE, 51);
        let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
        let model = resnet20(&engine, 4, 10, 3);
        let cfg = ServeConfig {
            max_batch: 8,
            max_wait_items: 8,
            straggler_wait: Duration::from_millis(20),
        };
        let (_, stats, _) = serve_all(model, &ds, ds.len(), cfg, true);
        assert_eq!(stats.requests, 16);
        assert!(
            stats.max_batch_seen > 1,
            "expected at least one multi-request batch, saw max {}",
            stats.max_batch_seen
        );
        assert!(stats.max_batch_seen <= 8, "max_batch must cap assembly");
        assert!(stats.batches < 16, "batching must reduce dispatch count");
    }

    #[test]
    fn bad_input_and_shutdown_are_typed_errors() {
        let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
        let model = resnet20(&engine, 4, 10, 1);
        let server = InferenceServer::start(model, SIZE, ServeConfig::default());
        let client = server.client();
        assert!(matches!(
            client.predict(vec![0.0; 5]),
            Err(ServeError::BadInput {
                expected,
                got: 5
            }) if expected == 3 * SIZE * SIZE
        ));
        let (_, stats) = server.shutdown();
        assert_eq!(stats.requests, 0, "rejected requests never reach the model");
        assert!(matches!(
            client.predict(vec![0.0; 3 * SIZE * SIZE]),
            Err(ServeError::Closed)
        ));
    }
}
