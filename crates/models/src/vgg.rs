//! VGG16 (with batch normalization) for 32x32 inputs, with a width knob
//! (`width_div = 1` reproduces the paper-exact channel plan).

use std::sync::Arc;

use srmac_rng::SplitMix64;
use srmac_tensor::init::uniform_fan_in;
use srmac_tensor::layers::{BatchNorm2d, Flatten, Linear, MaxPool2, Relu};
use srmac_tensor::numerics::Numerics;
use srmac_tensor::{GemmEngine, Sequential};

use crate::blocks::conv;

/// The standard VGG16 channel plan; `0` marks a 2x2 max-pool.
const PLAN: [usize; 18] = [
    64, 64, 0, 128, 128, 0, 256, 256, 256, 0, 512, 512, 512, 0, 512, 512, 512, 0,
];

/// Builds VGG16-BN for `size x size` inputs (`size` must be divisible by
/// 32); all channels are divided by `width_div`.
///
/// # Panics
///
/// Panics if `size` is not a multiple of 32 or `width_div` does not divide
/// the channel plan.
#[must_use]
pub fn vgg16(
    engine: &Arc<dyn GemmEngine>,
    width_div: usize,
    classes: usize,
    size: usize,
    seed: u64,
) -> Sequential {
    vgg16_with(
        &Numerics::uniform(engine.clone()),
        width_div,
        classes,
        size,
        seed,
    )
}

/// [`vgg16`] on a per-role [`Numerics`] policy (GEMM layers are numbered
/// in construction order: the 13 convs, then the classifier).
///
/// # Panics
///
/// Panics if `size` is not a multiple of 32 or `width_div` does not divide
/// the channel plan.
#[must_use]
pub fn vgg16_with(
    numerics: &Numerics,
    width_div: usize,
    classes: usize,
    size: usize,
    seed: u64,
) -> Sequential {
    assert!(
        size.is_multiple_of(32),
        "VGG16 needs input size divisible by 32"
    );
    assert!(
        width_div >= 1 && 64 % width_div == 0,
        "width_div must divide 64"
    );
    let mut rng = SplitMix64::new(seed);
    let mut layers = numerics.layers();
    let mut net = Sequential::new();
    let mut in_c = 3usize;
    for &c in &PLAN {
        if c == 0 {
            net.push(MaxPool2::new());
        } else {
            let out_c = c / width_div;
            net.push(conv(in_c, out_c, 3, 1, 1, layers.next_layer(), &mut rng));
            net.push(BatchNorm2d::new(out_c));
            net.push(Relu::new());
            in_c = out_c;
        }
    }
    // After 5 pools a 32x32 input is 1x1; larger inputs keep (size/32)^2.
    let feat = in_c * (size / 32) * (size / 32);
    net.push(Flatten::new());
    net.push(Linear::per_role(
        feat,
        classes,
        uniform_fan_in(&[classes, feat], feat, &mut rng),
        layers.next_layer(),
    ));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use srmac_tensor::layers::Layer;
    use srmac_tensor::{F32Engine, Tensor};

    #[test]
    fn vgg16_full_width_param_count() {
        let e: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(2));
        let mut net = vgg16(&e, 1, 10, 32, 0);
        // VGG16-BN conv trunk for CIFAR is ~14.7M parameters.
        let params = net.param_count();
        assert!(
            (14_000_000..15_500_000).contains(&params),
            "VGG16 has {params} params"
        );
    }

    #[test]
    fn vgg16_slim_forward_backward() {
        let e: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(2));
        let mut net = vgg16(&e, 8, 10, 32, 1);
        let x = Tensor::zeros(&[2, 3, 32, 32]);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[2, 10]);
        let dx = net.backward(&Tensor::zeros(&[2, 10]));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn vgg16_has_13_convs_plus_classifier() {
        let e: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
        let net = vgg16(&e, 8, 10, 32, 2);
        let desc = net.describe();
        let convs = desc.matches("Conv2d").count();
        let linears = desc.matches("Linear").count();
        assert_eq!(convs + linears, 14, "13 convs + 1 classifier");
    }
}
