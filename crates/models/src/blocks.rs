//! Residual building blocks (basic and bottleneck) shared by the ResNet
//! models.

use std::sync::Arc;

use srmac_rng::SplitMix64;
use srmac_tensor::init::kaiming_normal;
use srmac_tensor::layers::{BatchNorm2d, Conv2d, Layer, Relu};
use srmac_tensor::numerics::{Numerics, NumericsCursor, RoleEngines};
use srmac_tensor::{GemmEngine, Param, Sequential, Tensor};

/// Builds `Conv2d(in, out, k, stride, pad)` with Kaiming-initialized
/// weights on the given per-role engines.
pub(crate) fn conv(
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    engines: RoleEngines,
    rng: &mut SplitMix64,
) -> Conv2d {
    let fan_in = in_c * k * k;
    let w = kaiming_normal(&[out_c, fan_in], fan_in, rng);
    Conv2d::per_role(in_c, out_c, k, stride, pad, w, engines)
}

/// A residual block: `out = relu(main(x) + shortcut(x))`.
///
/// `main` is conv-bn-relu-conv-bn (basic) or the 1x1/3x3/1x1 bottleneck
/// stack; `shortcut` is identity, or 1x1-conv + bn on shape changes.
pub struct ResidualBlock {
    main: Sequential,
    shortcut: Option<Sequential>,
    relu_mask: Vec<bool>,
}

impl std::fmt::Debug for ResidualBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.describe())
    }
}

impl ResidualBlock {
    /// A basic (two 3x3 convs) block from `in_c` to `out_c` with `stride`,
    /// every conv on `engine` (the [`Numerics::uniform`] shim of
    /// [`ResidualBlock::basic_with`]).
    #[must_use]
    pub fn basic(
        in_c: usize,
        out_c: usize,
        stride: usize,
        engine: &Arc<dyn GemmEngine>,
        rng: &mut SplitMix64,
    ) -> Self {
        let numerics = Numerics::uniform(engine.clone());
        Self::basic_with(in_c, out_c, stride, &mut numerics.layers(), rng)
    }

    /// A basic block drawing each conv's per-role engines from the
    /// model's [`NumericsCursor`] (construction order: conv1, conv2, then
    /// the projection when one exists).
    #[must_use]
    pub fn basic_with(
        in_c: usize,
        out_c: usize,
        stride: usize,
        layers: &mut NumericsCursor<'_>,
        rng: &mut SplitMix64,
    ) -> Self {
        let mut main = Sequential::new();
        main.push(conv(in_c, out_c, 3, stride, 1, layers.next_layer(), rng));
        main.push(BatchNorm2d::new(out_c));
        main.push(Relu::new());
        main.push(conv(out_c, out_c, 3, 1, 1, layers.next_layer(), rng));
        main.push(BatchNorm2d::new(out_c));
        let shortcut = Self::projection(in_c, out_c, stride, layers, rng);
        Self {
            main,
            shortcut,
            relu_mask: Vec::new(),
        }
    }

    /// A bottleneck (1x1 -> 3x3 -> 1x1, expansion 4) block, every conv on
    /// `engine` (the [`Numerics::uniform`] shim of
    /// [`ResidualBlock::bottleneck_with`]).
    #[must_use]
    pub fn bottleneck(
        in_c: usize,
        width: usize,
        stride: usize,
        engine: &Arc<dyn GemmEngine>,
        rng: &mut SplitMix64,
    ) -> Self {
        let numerics = Numerics::uniform(engine.clone());
        Self::bottleneck_with(in_c, width, stride, &mut numerics.layers(), rng)
    }

    /// A bottleneck block drawing each conv's per-role engines from the
    /// model's [`NumericsCursor`] (construction order: the three main
    /// convs, then the projection when one exists).
    #[must_use]
    pub fn bottleneck_with(
        in_c: usize,
        width: usize,
        stride: usize,
        layers: &mut NumericsCursor<'_>,
        rng: &mut SplitMix64,
    ) -> Self {
        let out_c = width * 4;
        let mut main = Sequential::new();
        main.push(conv(in_c, width, 1, 1, 0, layers.next_layer(), rng));
        main.push(BatchNorm2d::new(width));
        main.push(Relu::new());
        main.push(conv(width, width, 3, stride, 1, layers.next_layer(), rng));
        main.push(BatchNorm2d::new(width));
        main.push(Relu::new());
        main.push(conv(width, out_c, 1, 1, 0, layers.next_layer(), rng));
        main.push(BatchNorm2d::new(out_c));
        let shortcut = Self::projection(in_c, out_c, stride, layers, rng);
        Self {
            main,
            shortcut,
            relu_mask: Vec::new(),
        }
    }

    fn projection(
        in_c: usize,
        out_c: usize,
        stride: usize,
        layers: &mut NumericsCursor<'_>,
        rng: &mut SplitMix64,
    ) -> Option<Sequential> {
        if in_c == out_c && stride == 1 {
            return None;
        }
        let mut s = Sequential::new();
        s.push(conv(in_c, out_c, 1, stride, 0, layers.next_layer(), rng));
        s.push(BatchNorm2d::new(out_c));
        Some(s)
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut y = self.main.forward(x, train);
        let s = match &mut self.shortcut {
            Some(sc) => sc.forward(x, train),
            None => x.clone(),
        };
        y.add_assign(&s);
        if train {
            self.relu_mask = y.data().iter().map(|&v| v > 0.0).collect();
        }
        y.data_mut().iter_mut().for_each(|v| {
            if *v < 0.0 {
                *v = 0.0;
            }
        });
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert_eq!(
            grad.numel(),
            self.relu_mask.len(),
            "backward before forward(train=true)"
        );
        let mut dz = grad.clone();
        for (g, &m) in dz.data_mut().iter_mut().zip(&self.relu_mask) {
            if !m {
                *g = 0.0;
            }
        }
        let mut dx = self.main.backward(&dz);
        let ds = match &mut self.shortcut {
            Some(sc) => sc.backward(&dz),
            None => dz,
        };
        dx.add_assign(&ds);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.main.visit_params(f);
        if let Some(sc) = &mut self.shortcut {
            sc.visit_params(f);
        }
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        self.main.visit_state(f);
        if let Some(sc) = &mut self.shortcut {
            sc.visit_state(f);
        }
    }

    fn visit_role_engines(
        &mut self,
        f: &mut dyn FnMut(srmac_tensor::GemmRole, &Arc<dyn GemmEngine>),
    ) {
        self.main.visit_role_engines(f);
        if let Some(sc) = &mut self.shortcut {
            sc.visit_role_engines(f);
        }
    }

    fn describe(&self) -> String {
        format!(
            "Residual[{}{}]",
            self.main.describe(),
            if self.shortcut.is_some() {
                " + proj"
            } else {
                ""
            }
        )
    }

    fn clone_layer(&self) -> Option<Box<dyn Layer>> {
        let main = self.main.try_clone()?;
        let shortcut = match &self.shortcut {
            Some(sc) => Some(sc.try_clone()?),
            None => None,
        };
        Some(Box::new(ResidualBlock {
            main,
            shortcut,
            // Backward-pass state; forward(train) rebuilds it per replica.
            relu_mask: Vec::new(),
        }))
    }

    fn set_batch_offset(&mut self, offset: usize) {
        self.main.set_batch_offset(offset);
        if let Some(sc) = &mut self.shortcut {
            sc.set_batch_offset(offset);
        }
    }

    fn warm_weight_packs(&mut self) {
        self.main.warm_weight_packs();
        if let Some(sc) = &mut self.shortcut {
            sc.warm_weight_packs();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srmac_tensor::F32Engine;

    fn engine() -> Arc<dyn GemmEngine> {
        Arc::new(F32Engine::new(1))
    }

    #[test]
    fn identity_block_shapes() {
        let e = engine();
        let mut rng = SplitMix64::new(1);
        let mut b = ResidualBlock::basic(8, 8, 1, &e, &mut rng);
        let x = Tensor::zeros(&[2, 8, 6, 6]);
        let y = b.forward(&x, true);
        assert_eq!(y.shape(), &[2, 8, 6, 6]);
        let dx = b.backward(&y);
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn downsampling_block_shapes() {
        let e = engine();
        let mut rng = SplitMix64::new(2);
        let mut b = ResidualBlock::basic(8, 16, 2, &e, &mut rng);
        let x = Tensor::zeros(&[2, 8, 8, 8]);
        let y = b.forward(&x, true);
        assert_eq!(y.shape(), &[2, 16, 4, 4]);
        let dx = b.backward(&y);
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn bottleneck_block_shapes() {
        let e = engine();
        let mut rng = SplitMix64::new(3);
        let mut b = ResidualBlock::bottleneck(16, 4, 2, &e, &mut rng);
        let x = Tensor::zeros(&[1, 16, 8, 8]);
        let y = b.forward(&x, true);
        assert_eq!(y.shape(), &[1, 16, 4, 4]); // 4 * expansion 4 = 16
        let dx = b.backward(&y);
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn residual_gradient_flows_through_both_paths() {
        // With an identity shortcut, a constant positive output gradient
        // must reach the input both directly and through the convs.
        let e = engine();
        let mut rng = SplitMix64::new(4);
        let mut b = ResidualBlock::basic(4, 4, 1, &e, &mut rng);
        let mut x = Tensor::zeros(&[1, 4, 4, 4]);
        x.data_mut()
            .iter_mut()
            .enumerate()
            .for_each(|(i, v)| *v = (i % 7) as f32 * 0.3 + 0.1);
        let y = b.forward(&x, true);
        let g = Tensor::from_vec(vec![1.0; y.numel()], y.shape());
        let dx = b.backward(&g);
        // The identity path alone contributes 1.0 wherever relu was active;
        // dx must therefore be nonzero somewhere.
        assert!(dx.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn per_role_block_draws_layers_in_construction_order() {
        // conv1, conv2, projection — three GEMM layers for a projecting
        // basic block, two for an identity one.
        let numerics = Numerics::uniform(engine());
        let mut rng = SplitMix64::new(5);
        let mut cursor = numerics.layers();
        let _ = ResidualBlock::basic_with(8, 16, 2, &mut cursor, &mut rng);
        assert_eq!(cursor.assigned(), 3);

        let mut cursor = numerics.layers();
        let _ = ResidualBlock::basic_with(8, 8, 1, &mut cursor, &mut rng);
        assert_eq!(cursor.assigned(), 2);

        let mut cursor = numerics.layers();
        let _ = ResidualBlock::bottleneck_with(16, 4, 2, &mut cursor, &mut rng);
        assert_eq!(cursor.assigned(), 4);
    }
}
