//! Synthetic image-classification datasets standing in for CIFAR-10 and
//! Imagewoof (DESIGN.md §3): deterministic class-conditional generators
//! producing 10-class RGB images. Each class is a mixture of oriented
//! sinusoidal textures with class-specific frequencies, phases and color
//! mixes; samples get per-instance jitter and additive noise. The paper's
//! phenomenon under study — swamping in low-precision GEMM accumulation and
//! its rescue by stochastic rounding — is purely numerical, so a synthetic
//! task that exercises the same convolutional pipelines preserves the
//! relevant behaviour while staying laptop-scale and fully reproducible.

use std::ops::Range;
use std::sync::Arc;

use srmac_rng::{scalar_math, SplitMix64};
use srmac_tensor::{Runtime, Tensor};

/// Number of classes in both synthetic datasets.
pub const NUM_CLASSES: usize = 10;

/// Contiguous equal-prefix spans of `n` items over `shards` shards: the
/// first `shards - 1` spans hold exactly `n / shards` items and the last
/// takes the remainder (`n / shards + n % shards`). A pure function of
/// `(n, shards)` — never of thread or replica count — so every consumer
/// (batch sharding in the trainer, [`Dataset::shard`]) splits
/// identically. Spans may be empty when `n < shards`.
///
/// # Panics
///
/// Panics if `shards` is zero.
#[must_use]
pub fn shard_spans(n: usize, shards: usize) -> Vec<Range<usize>> {
    assert!(shards > 0, "shard count must be nonzero");
    let base = n / shards;
    (0..shards)
        .map(|s| {
            let start = s * base;
            let end = if s + 1 == shards { n } else { start + base };
            start..end
        })
        .collect()
}

/// An in-memory labelled image dataset (NCHW, 3 channels).
///
/// Images live behind an `Arc` so batch assembly can hand them to the
/// shared parallel runtime's `'static` jobs without copying.
#[derive(Debug, Clone)]
pub struct Dataset {
    images: Arc<Vec<f32>>,
    labels: Vec<usize>,
    size: usize,
}

impl Dataset {
    /// Wraps raw NCHW image data (3 channels, square images of side
    /// `size`) and labels into a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `images.len() != labels.len() * 3 * size * size`.
    #[must_use]
    pub fn from_parts(images: Vec<f32>, labels: Vec<usize>, size: usize) -> Self {
        assert_eq!(
            images.len(),
            labels.len() * 3 * size * size,
            "images must hold labels.len() NCHW samples of side {size}"
        );
        Self {
            images: Arc::new(images),
            labels,
            size,
        }
    }
    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the dataset has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Image side length.
    #[must_use]
    pub fn image_size(&self) -> usize {
        self.size
    }

    /// Labels slice.
    #[must_use]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Assembles a batch tensor `[B, 3, S, S]` plus labels for the given
    /// sample indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn batch(&self, idx: &[usize]) -> (Tensor, Vec<usize>) {
        let mut x = Tensor::zeros(&[idx.len(), 3, self.size, self.size]);
        let mut labels = Vec::with_capacity(idx.len());
        self.batch_into(Runtime::global(), idx, &mut x, &mut labels);
        (x, labels)
    }

    /// Assembles a batch into a caller-owned tensor and label buffer —
    /// the allocation-free path for streaming loops ([`Tensor::data_mut`]
    /// reuses the buffer whenever no stale share is alive). The sample
    /// gather runs on `rt`, partitioned per sample; results are bitwise
    /// identical to [`Dataset::batch`] at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or `x` is not
    /// `[idx.len(), 3, size, size]`.
    pub fn batch_into(&self, rt: &Runtime, idx: &[usize], x: &mut Tensor, labels: &mut Vec<usize>) {
        let plane = 3 * self.size * self.size;
        assert_eq!(
            x.shape(),
            &[idx.len(), 3, self.size, self.size],
            "batch tensor shape must match the index count"
        );
        labels.clear();
        for &i in idx {
            assert!(
                i < self.labels.len(),
                "sample index {i} out of range (dataset has {} samples)",
                self.labels.len()
            );
            labels.push(self.labels[i]);
        }
        if rt.threads() == 1 {
            // Serial fast path: gather straight into the tensor — no index
            // copy, no pre-zeroing (every element is overwritten).
            let out = x.data_mut();
            for (bi, &i) in idx.iter().enumerate() {
                out[bi * plane..(bi + 1) * plane]
                    .copy_from_slice(&self.images[i * plane..(i + 1) * plane]);
            }
            return;
        }
        let images = Arc::clone(&self.images);
        let idx: Arc<Vec<usize>> = Arc::new(idx.to_vec());
        rt.parallel_fill(idx.len(), plane, 2, x.data_mut(), move |range, block| {
            for (bi, s) in range.enumerate() {
                let from = idx[s] * plane;
                block[bi * plane..(bi + 1) * plane].copy_from_slice(&images[from..from + plane]);
            }
        });
    }

    /// Splits the dataset into `shards` contiguous shards along the
    /// sample axis, per [`shard_spans`]: equal-prefix split, remainder to
    /// the last shard. Deterministic — a pure function of
    /// `(self.len(), shards)`. Shards may be empty when the dataset has
    /// fewer samples than shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn shard(&self, shards: usize) -> Vec<Dataset> {
        let plane = 3 * self.size * self.size;
        shard_spans(self.len(), shards)
            .into_iter()
            .map(|span| Dataset {
                images: Arc::new(self.images[span.start * plane..span.end * plane].to_vec()),
                labels: self.labels[span].to_vec(),
                size: self.size,
            })
            .collect()
    }
}

/// Difficulty profile of the generator.
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    /// Angular separation between class orientations (radians).
    pub angle_step: f64,
    /// Base spatial frequency (cycles per image).
    pub base_freq: f64,
    /// Frequency increment per class group.
    pub freq_step: f64,
    /// Additive Gaussian pixel noise sigma.
    pub noise: f64,
    /// Per-sample orientation jitter sigma (radians).
    pub jitter: f64,
}

impl Profile {
    /// CIFAR-10-like difficulty: classes separated enough for a slim
    /// ResNet baseline to clear ~90% at the default experiment scale, with
    /// enough headroom below for degraded arithmetic to show.
    #[must_use]
    pub fn cifar() -> Self {
        Self {
            angle_step: 0.32,
            base_freq: 2.0,
            freq_step: 0.5,
            noise: 0.45,
            jitter: 0.10,
        }
    }

    /// Imagewoof-like difficulty ("a more challenging dataset"): closer
    /// class parameters, stronger noise and jitter.
    #[must_use]
    pub fn imagewoof() -> Self {
        Self {
            angle_step: 0.24,
            base_freq: 2.2,
            freq_step: 0.4,
            noise: 0.60,
            jitter: 0.14,
        }
    }
}

/// Generates a synthetic dataset with `n` samples of side `size`.
///
/// Deterministic in `(profile, n, size, seed)`; labels are balanced
/// round-robin.
#[must_use]
pub fn generate(profile: Profile, n: usize, size: usize, seed: u64) -> Dataset {
    let mut rng = SplitMix64::new(seed ^ 0x0DA7_A5E7);
    let plane = size * size;
    let mut images = Vec::with_capacity(n * 3 * plane);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % NUM_CLASSES;
        labels.push(class);
        // Class parameters.
        let theta0 = class as f64 * profile.angle_step;
        let freq = profile.base_freq + f64::from(class as u32 % 5) * profile.freq_step;
        let freq2 = profile.base_freq * 1.9 + f64::from(class as u32 / 5) * profile.freq_step;
        // Per-sample jitter.
        let theta = theta0 + rng.next_normal() * profile.jitter;
        let phase = rng.next_f64() * std::f64::consts::TAU;
        let phase2 = rng.next_f64() * std::f64::consts::TAU;
        let (sin_t, cos_t) = (scalar_math::sin_f64(theta), scalar_math::cos_f64(theta));
        // Class color mixing of the two texture components.
        let mix = |c: usize, ch: usize| -> f64 {
            let k = (c * 3 + ch) as f64;
            0.5 + 0.5 * scalar_math::sin_f64(k * 1.7 + 0.4)
        };
        for ch in 0..3 {
            let (w1, w2) = (mix(class, ch), 1.0 - mix(class, ch));
            for y in 0..size {
                for x in 0..size {
                    let u = x as f64 / size as f64;
                    let v = y as f64 / size as f64;
                    let ur = u * cos_t - v * sin_t;
                    let vr = u * sin_t + v * cos_t;
                    // Pinned scalar sin/cos: synthetic pixels are part of
                    // the golden-vector contract and must not change with
                    // the build's target features.
                    let t1 = scalar_math::sin_f64(std::f64::consts::TAU * freq * ur + phase);
                    let t2 = scalar_math::cos_f64(std::f64::consts::TAU * freq2 * vr + phase2);
                    let val = w1 * t1 + w2 * t2 + profile.noise * rng.next_normal();
                    images.push(val as f32 * 0.5);
                }
            }
        }
    }
    Dataset::from_parts(images, labels, size)
}

/// SynthCIFAR10: the CIFAR-10 stand-in.
#[must_use]
pub fn synth_cifar10(n: usize, size: usize, seed: u64) -> Dataset {
    generate(Profile::cifar(), n, size, seed)
}

/// SynthImagewoof: the Imagewoof stand-in (harder).
#[must_use]
pub fn synth_imagewoof(n: usize, size: usize, seed: u64) -> Dataset {
    generate(Profile::imagewoof(), n, size, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_balanced() {
        let a = synth_cifar10(40, 8, 7);
        let b = synth_cifar10(40, 8, 7);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
        for c in 0..NUM_CLASSES {
            assert_eq!(a.labels().iter().filter(|&&l| l == c).count(), 4);
        }
    }

    #[test]
    fn batch_shapes() {
        let d = synth_cifar10(20, 8, 1);
        let (x, y) = d.batch(&[0, 3, 7]);
        assert_eq!(x.shape(), &[3, 3, 8, 8]);
        assert_eq!(y.len(), 3);
        assert!(x.all_finite());
    }

    #[test]
    fn batch_into_is_thread_invariant_and_reuses_the_buffer() {
        let d = synth_cifar10(20, 8, 1);
        let idx = [4usize, 0, 17, 9];
        let (want_x, want_y) = d.batch(&idx);
        let mut labels = Vec::new();
        for threads in 1..=8 {
            let rt = Runtime::new(threads);
            let mut x = Tensor::zeros(&[idx.len(), 3, 8, 8]);
            d.batch_into(&rt, &idx, &mut x, &mut labels);
            let same = want_x
                .data()
                .iter()
                .zip(x.data())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{threads} threads: batch gather diverged");
            assert_eq!(labels, want_y);
        }
        // Reuse without stale shares keeps the same allocation.
        let rt = Runtime::serial();
        let mut x = Tensor::zeros(&[idx.len(), 3, 8, 8]);
        d.batch_into(&rt, &idx, &mut x, &mut labels);
        let ptr = x.data().as_ptr();
        d.batch_into(&rt, &[1, 2, 3, 4], &mut x, &mut labels);
        assert_eq!(x.data().as_ptr(), ptr);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn batch_rejects_out_of_range_indices() {
        let d = synth_cifar10(10, 8, 1);
        let _ = d.batch(&[10]);
    }

    #[test]
    #[should_panic(expected = "must hold")]
    fn from_parts_rejects_mismatched_lengths() {
        let _ = Dataset::from_parts(vec![0.0; 10], vec![0, 1], 8);
    }

    #[test]
    fn shard_spans_are_equal_prefix_with_remainder_last() {
        assert_eq!(shard_spans(10, 4), vec![0..2, 2..4, 4..6, 6..10]);
        assert_eq!(shard_spans(12, 4), vec![0..3, 3..6, 6..9, 9..12]);
        assert_eq!(shard_spans(7, 1), vec![0..7]);
        // Fewer items than shards: every prefix span is empty, the last
        // takes everything.
        assert_eq!(shard_spans(3, 5), vec![0..0, 0..0, 0..0, 0..0, 0..3]);
        assert_eq!(shard_spans(0, 3), vec![0..0, 0..0, 0..0]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn shard_spans_reject_zero_shards() {
        let _ = shard_spans(4, 0);
    }

    #[test]
    fn dataset_shards_partition_samples_in_order() {
        let d = synth_cifar10(10, 8, 1);
        let shards = d.shard(4);
        assert_eq!(
            shards.iter().map(Dataset::len).collect::<Vec<_>>(),
            vec![2, 2, 2, 4],
            "ragged split puts the remainder in the last shard"
        );
        // Every sample lands in exactly one shard, order preserved,
        // pixels and labels bit-identical to batching the original.
        let plane = 3 * 8 * 8;
        let mut global = 0usize;
        for shard in &shards {
            for local in 0..shard.len() {
                assert_eq!(shard.labels()[local], d.labels()[global]);
                let (sx, _) = shard.batch(&[local]);
                let (dx, _) = d.batch(&[global]);
                assert_eq!(sx.data().len(), plane);
                let same = sx
                    .data()
                    .iter()
                    .zip(dx.data())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "shard sample {global} changed bits");
                global += 1;
            }
        }
        assert_eq!(global, d.len());
    }

    #[test]
    fn sharding_below_shard_count_yields_empty_prefix_shards() {
        let d = synth_cifar10(3, 8, 2);
        let shards = d.shard(5);
        assert_eq!(
            shards.iter().map(Dataset::len).collect::<Vec<_>>(),
            vec![0, 0, 0, 0, 3]
        );
        assert!(shards[0].is_empty());
        // Empty shards are structurally valid datasets.
        assert_eq!(shards[0].image_size(), 8);
    }

    #[test]
    fn pixel_range_is_sane() {
        let d = synth_cifar10(100, 12, 2);
        let mx = d.images.iter().fold(0.0f32, |a, &b| a.max(b.abs()));
        assert!(mx < 3.0, "pixels should be O(1), got {mx}");
        let mean: f32 = d.images.iter().sum::<f32>() / d.images.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
    }

    /// Phase-invariant texture features: mean absolute horizontal and
    /// vertical differences per channel (orientation- and frequency-
    /// sensitive, unlike raw pixel means, which are ~0 because each sample
    /// draws a random phase).
    fn directional_features(d: &Dataset, sample: usize) -> [f32; 6] {
        let s = d.image_size();
        let plane = s * s;
        let img = &d.images[sample * 3 * plane..(sample + 1) * 3 * plane];
        let mut feat = [0.0f32; 6];
        for ch in 0..3 {
            let base = ch * plane;
            let (mut gh, mut gv) = (0.0f32, 0.0f32);
            for y in 0..s {
                for x in 0..s - 1 {
                    gh += (img[base + y * s + x + 1] - img[base + y * s + x]).abs();
                }
            }
            for y in 0..s - 1 {
                for x in 0..s {
                    gv += (img[base + (y + 1) * s + x] - img[base + y * s + x]).abs();
                }
            }
            feat[ch * 2] = gh / (s * (s - 1)) as f32;
            feat[ch * 2 + 1] = gv / (s * (s - 1)) as f32;
        }
        feat
    }

    /// Class centroids in directional-feature space, and the ratio of the
    /// closest between-class distance to the mean within-class spread.
    fn separability(d: &Dataset) -> f32 {
        let mut centroids = [[0.0f32; 6]; NUM_CLASSES];
        let mut counts = [0usize; NUM_CLASSES];
        let feats: Vec<[f32; 6]> = (0..d.len()).map(|i| directional_features(d, i)).collect();
        for (i, f) in feats.iter().enumerate() {
            let c = d.labels()[i];
            counts[c] += 1;
            for (acc, v) in centroids[c].iter_mut().zip(f) {
                *acc += v;
            }
        }
        for (c, n) in centroids.iter_mut().zip(counts) {
            c.iter_mut().for_each(|v| *v /= n as f32);
        }
        let dist = |a: &[f32; 6], b: &[f32; 6]| -> f32 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt()
        };
        let mut min_between = f32::INFINITY;
        for i in 0..NUM_CLASSES {
            for j in (i + 1)..NUM_CLASSES {
                min_between = min_between.min(dist(&centroids[i], &centroids[j]));
            }
        }
        let mut spread = 0.0f32;
        for (i, f) in feats.iter().enumerate() {
            spread += dist(f, &centroids[d.labels()[i]]);
        }
        spread /= feats.len() as f32;
        min_between / spread.max(1e-9)
    }

    #[test]
    fn classes_are_statistically_distinct() {
        let d = synth_cifar10(400, 12, 3);
        let sep = separability(&d);
        assert!(sep > 0.4, "class separability in feature space: {sep}");
    }

    #[test]
    fn imagewoof_is_harder_than_cifar() {
        // Harder = lower class separability (closer class parameters, more
        // noise and jitter).
        let easy = separability(&synth_cifar10(400, 12, 4));
        let hard = separability(&synth_imagewoof(400, 12, 4));
        assert!(
            hard < easy * 0.8,
            "imagewoof separability {hard} should be well below cifar {easy}"
        );
    }
}
