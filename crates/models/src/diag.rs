//! Structured, code-tagged diagnostics for the serving subsystem (and any
//! future operational surface): a severity taxonomy, namespaced stable
//! codes, and three renderers — human (multi-line, for terminals), short
//! (one line, for logs) and JSON (one object per diagnostic, for
//! machines) — so a server misbehaving under load can say *what* went
//! wrong in a form that is grep-able, parseable and stable across
//! releases.
//!
//! The design follows the compiler-diagnostics idiom: every diagnostic
//! carries a [`Severity`], a [`DiagCode`] (a `namespace::name` pair plus
//! a numeric tag like `SERVE0007` that never changes meaning once
//! shipped), a human message, and optional key/value context fields.
//! Emitters push into a bounded, thread-safe [`DiagSink`]; readers
//! snapshot or drain it. The sink is capacity-bounded so a pathological
//! error loop cannot grow memory without bound — overflow is *counted*,
//! never silently ignored.
//!
//! ```
//! use srmac_models::diag::{DiagCode, DiagSink, Diagnostic, Severity};
//!
//! const DEMO: DiagCode = DiagCode::new("serve", 7, "worker-panic");
//! let sink = DiagSink::default();
//! sink.emit(
//!     Diagnostic::new(Severity::Error, DEMO, "inference worker 2 panicked")
//!         .field("worker", "2"),
//! );
//! assert_eq!(sink.worst(), Some(Severity::Error));
//! let d = &sink.snapshot()[0];
//! assert_eq!(d.code.tag(), "SERVE0007");
//! assert!(d.render_short().starts_with("E[SERVE0007]"));
//! assert!(d.render_json().contains("\"serve::worker-panic\""));
//! ```

use std::sync::{Arc, Mutex};

/// How bad a diagnostic is. Ordered: `Info < Warning < Error`, so the
/// worst severity in a batch is simply the maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Operational information (startup, shutdown, totals).
    Info,
    /// Something degraded but handled (shed load, a vanished peer).
    Warning,
    /// Something failed (a panicked worker, a lost request).
    Error,
}

impl Severity {
    /// One-letter tag used by the short renderer: `I`/`W`/`E`.
    #[must_use]
    pub fn letter(self) -> char {
        match self {
            Severity::Info => 'I',
            Severity::Warning => 'W',
            Severity::Error => 'E',
        }
    }

    /// Lowercase name used by the human and JSON renderers.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A stable, namespaced diagnostic code: `namespace::name` for humans,
/// plus a numeric tag (`SERVE0007`) that is unique within the namespace
/// and never reused for a different meaning. Declare codes as `const`s
/// next to the subsystem that emits them (see
/// [`crate::serve::codes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DiagCode {
    /// The emitting subsystem (`"serve"`, ...). Lowercase.
    pub namespace: &'static str,
    /// Number unique within the namespace; part of the stable tag.
    pub id: u16,
    /// Kebab-case name unique within the namespace (`"worker-panic"`).
    pub name: &'static str,
}

impl DiagCode {
    /// Declares a code. `namespace` and `name` should be lowercase;
    /// `id` must be unique within the namespace.
    #[must_use]
    pub const fn new(namespace: &'static str, id: u16, name: &'static str) -> Self {
        Self {
            namespace,
            id,
            name,
        }
    }

    /// The compact stable tag, e.g. `SERVE0007`.
    #[must_use]
    pub fn tag(&self) -> String {
        format!("{}{:04}", self.namespace.to_uppercase(), self.id)
    }

    /// The namespaced name, e.g. `serve::worker-panic`.
    #[must_use]
    pub fn path(&self) -> String {
        format!("{}::{}", self.namespace, self.name)
    }
}

impl std::fmt::Display for DiagCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.path(), self.tag())
    }
}

/// One diagnostic: severity + code + message + key/value context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// The stable code identifying *what kind* of event this is.
    pub code: DiagCode,
    /// Human-readable, single-sentence description of *this* event.
    pub message: String,
    /// Ordered key/value context (worker index, capacity, ...).
    pub fields: Vec<(&'static str, String)>,
}

impl Diagnostic {
    /// Creates a diagnostic with no context fields.
    #[must_use]
    pub fn new(severity: Severity, code: DiagCode, message: impl Into<String>) -> Self {
        Self {
            severity,
            code,
            message: message.into(),
            fields: Vec::new(),
        }
    }

    /// Appends one key/value context field (builder style).
    #[must_use]
    pub fn field(mut self, key: &'static str, value: impl Into<String>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Multi-line terminal rendering, compiler style:
    ///
    /// ```text
    /// error[SERVE0007]: inference worker 2 panicked: boom
    ///   = code: serve::worker-panic
    ///   = worker: 2
    /// ```
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut out = format!(
            "{}[{}]: {}\n  = code: {}",
            self.severity.name(),
            self.code.tag(),
            self.message,
            self.code.path()
        );
        for (k, v) in &self.fields {
            out.push_str(&format!("\n  = {k}: {v}"));
        }
        out
    }

    /// One-line log rendering:
    /// `E[SERVE0007] serve::worker-panic: inference worker 2 panicked (worker=2)`.
    #[must_use]
    pub fn render_short(&self) -> String {
        let mut out = format!(
            "{}[{}] {}: {}",
            self.severity.letter(),
            self.code.tag(),
            self.code.path(),
            self.message
        );
        if !self.fields.is_empty() {
            let kv: Vec<String> = self
                .fields
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            out.push_str(&format!(" ({})", kv.join(", ")));
        }
        out
    }

    /// One JSON object (no trailing newline); fields land in a nested
    /// `"fields"` object in emission order.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"severity\":\"{}\",\"code\":\"{}\",\"name\":\"{}\",\"message\":\"{}\"",
            self.severity.name(),
            self.code.tag(),
            json_escape(&self.code.path()),
            json_escape(&self.message)
        );
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Escapes a string for embedding inside a JSON string literal
/// (backslash, quote, and control characters; everything else passes
/// through unchanged — the inputs here are UTF-8 Rust strings already).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[derive(Debug, Default)]
struct SinkInner {
    items: Vec<Diagnostic>,
    dropped: usize,
}

/// A bounded, thread-safe diagnostic collector. Cloning the sink clones
/// a *handle* to the same buffer, so an emitter (a worker thread) and a
/// reader (a test, an operator console) can outlive each other — in
/// particular a handle taken from a server survives the server's `Drop`,
/// which is how a worker panic recorded during teardown stays
/// observable.
#[derive(Debug, Clone)]
pub struct DiagSink {
    inner: Arc<Mutex<SinkInner>>,
    capacity: usize,
}

impl Default for DiagSink {
    /// A sink holding up to 256 diagnostics.
    fn default() -> Self {
        Self::with_capacity(256)
    }
}

impl DiagSink {
    /// Creates a sink that keeps at most `capacity` diagnostics; later
    /// emissions past the cap are counted in [`DiagSink::dropped`]
    /// instead of growing memory.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "a diagnostic sink needs room for at least one entry"
        );
        Self {
            inner: Arc::new(Mutex::new(SinkInner::default())),
            capacity,
        }
    }

    /// Locks the buffer, recovering from a poisoned lock: diagnostics
    /// are exactly the thing we still want after another thread
    /// panicked.
    fn lock(&self) -> std::sync::MutexGuard<'_, SinkInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records one diagnostic (or counts it as dropped at capacity).
    pub fn emit(&self, d: Diagnostic) {
        let mut inner = self.lock();
        if inner.items.len() < self.capacity {
            inner.items.push(d);
        } else {
            inner.dropped += 1;
        }
    }

    /// A copy of everything currently held, in emission order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Diagnostic> {
        self.lock().items.clone()
    }

    /// Removes and returns everything currently held, resetting the
    /// dropped counter.
    pub fn drain(&self) -> Vec<Diagnostic> {
        let mut inner = self.lock();
        inner.dropped = 0;
        std::mem::take(&mut inner.items)
    }

    /// How many diagnostics were discarded because the sink was full.
    #[must_use]
    pub fn dropped(&self) -> usize {
        self.lock().dropped
    }

    /// Number of diagnostics currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when nothing has been recorded (or everything was drained).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// The maximum severity currently held, or `None` when empty.
    #[must_use]
    pub fn worst(&self) -> Option<Severity> {
        self.lock().items.iter().map(|d| d.severity).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CODE: DiagCode = DiagCode::new("serve", 7, "worker-panic");

    #[test]
    fn code_tags_and_paths_are_stable() {
        assert_eq!(CODE.tag(), "SERVE0007");
        assert_eq!(CODE.path(), "serve::worker-panic");
        assert_eq!(CODE.to_string(), "serve::worker-panic (SERVE0007)");
    }

    #[test]
    fn severity_orders_info_warning_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(
            [Severity::Warning, Severity::Error, Severity::Info]
                .into_iter()
                .max(),
            Some(Severity::Error)
        );
    }

    #[test]
    fn three_renderers_agree_on_content() {
        let d = Diagnostic::new(Severity::Error, CODE, "worker 2 panicked: boom")
            .field("worker", "2")
            .field("payload", "boom");
        let human = d.render_human();
        assert!(human.starts_with("error[SERVE0007]: worker 2 panicked: boom"));
        assert!(human.contains("= code: serve::worker-panic"));
        assert!(human.contains("= worker: 2"));
        let short = d.render_short();
        assert_eq!(
            short,
            "E[SERVE0007] serve::worker-panic: worker 2 panicked: boom (worker=2, payload=boom)"
        );
        let json = d.render_json();
        assert_eq!(
            json,
            "{\"severity\":\"error\",\"code\":\"SERVE0007\",\
             \"name\":\"serve::worker-panic\",\
             \"message\":\"worker 2 panicked: boom\",\
             \"fields\":{\"worker\":\"2\",\"payload\":\"boom\"}}"
        );
    }

    #[test]
    fn json_escape_handles_hostile_strings() {
        assert_eq!(json_escape("a\"b\\c\nd\te\r"), "a\\\"b\\\\c\\nd\\te\\r");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
        // The escaped form of a panic payload must survive a JSON parse;
        // spot-check the renderer output stays balanced.
        let d = Diagnostic::new(Severity::Info, CODE, "say \"hi\"\n");
        let json = d.render_json();
        assert!(json.contains("say \\\"hi\\\"\\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn sink_bounds_memory_and_counts_overflow() {
        let sink = DiagSink::with_capacity(2);
        for i in 0..5 {
            sink.emit(Diagnostic::new(Severity::Info, CODE, format!("d{i}")));
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
        assert_eq!(sink.worst(), Some(Severity::Info));
        let drained = sink.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].message, "d0");
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn sink_handles_are_shared() {
        let sink = DiagSink::default();
        let handle = sink.clone();
        sink.emit(Diagnostic::new(Severity::Warning, CODE, "one"));
        drop(sink);
        assert_eq!(handle.len(), 1);
        assert_eq!(handle.worst(), Some(Severity::Warning));
    }
}
