//! # srmac-models: the paper's DNN workloads
//!
//! Model definitions (ResNet-20, ResNet-50, VGG16 — with width knobs for
//! laptop-scale runs), deterministic synthetic datasets standing in for
//! CIFAR-10 and Imagewoof, and the training harness implementing the
//! paper's Sec. IV-A recipe (SGD momentum 0.9, cosine annealing, dynamic
//! loss scaling from 1024).
//!
//! # Example
//!
//! ```no_run
//! use std::sync::Arc;
//! use srmac_models::{data, resnet, trainer};
//! use srmac_qgemm::{AccumRounding, MacGemm, MacGemmConfig};
//! use srmac_tensor::GemmEngine;
//!
//! // Train a slim ResNet-20 with every GEMM on the paper's best MAC
//! // (E6M5 accumulator, eager SR, r = 13, no subnormals).
//! let engine: Arc<dyn GemmEngine> = Arc::new(MacGemm::new(
//!     MacGemmConfig::fp8_fp12(AccumRounding::Stochastic { r: 13 }, false),
//! ));
//! let mut net = resnet::resnet20(&engine, 8, 10, 0);
//! let train_ds = data::synth_cifar10(400, 16, 1);
//! let test_ds = data::synth_cifar10(200, 16, 2);
//! let h = trainer::train(&mut net, &train_ds, &test_ds, &trainer::TrainConfig::default());
//! println!("final accuracy: {:.2}%", h.final_accuracy());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod blocks;
pub mod ckpt;
pub mod data;
pub mod diag;
pub mod resnet;
pub mod serve;
pub mod trainer;
pub mod vgg;

pub use blocks::ResidualBlock;
pub use ckpt::{CkptOptions, DEFAULT_KEEP};
pub use data::{shard_spans, synth_cifar10, synth_imagewoof, Dataset, NUM_CLASSES};
pub use diag::{DiagCode, DiagSink, Diagnostic, Severity};
pub use serve::{
    InferenceServer, LatencyHistogram, Prediction, ServeClient, ServeConfig, ServeError, ServeStats,
};
pub use trainer::{evaluate, train, History, TrainConfig, Trainer};
