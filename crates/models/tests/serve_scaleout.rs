//! Scale-out serving integration tests: replicated workers vs batch-1
//! bitwise, admission control (shed load + deadlines), shutdown with
//! in-flight requests, and worker-panic surfacing.
//!
//! The gated/panicking layers here stand in for a slow or crashing
//! model so the tests control *when* a forward pass runs (or whether it
//! ever does) — the determinism assertions use the real ResNet-20.

// Serving tests time out against real deadlines (clippy.toml bans
// wall-clock only for numerics code).
#![allow(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use srmac_models::serve::codes;
use srmac_models::{data, resnet, Dataset, InferenceServer, ServeConfig, ServeError, Severity};
use srmac_qgemm::engine_from_spec;
use srmac_tensor::layers::Layer;
use srmac_tensor::{F32Engine, GemmEngine, Sequential, Tensor};

const SIZE: usize = 8;

fn sample(ds: &Dataset, i: usize) -> Vec<f32> {
    let (x, _) = ds.batch(&[i]);
    x.data().to_vec()
}

/// An identity layer whose forward pass blocks until the shared gate
/// opens, signalling entry and counting invocations — the test's handle
/// on "a model is busy right now" and "the model ran N times".
struct GateLayer {
    gate: Arc<(Mutex<bool>, Condvar)>,
    entered: mpsc::Sender<()>,
    forwards: Arc<AtomicUsize>,
}

impl Layer for GateLayer {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        self.forwards.fetch_add(1, Ordering::SeqCst);
        let _ = self.entered.send(());
        let (lock, cvar) = &*self.gate;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cvar.wait(open).unwrap();
        }
        x.clone()
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        grad.clone()
    }
}

struct Gate {
    gate: Arc<(Mutex<bool>, Condvar)>,
    entered: mpsc::Receiver<()>,
    forwards: Arc<AtomicUsize>,
}

impl Gate {
    fn model() -> (Sequential, Gate) {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let forwards = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        let mut model = Sequential::new();
        model.push(GateLayer {
            gate: Arc::clone(&gate),
            entered: tx,
            forwards: Arc::clone(&forwards),
        });
        (
            model,
            Gate {
                gate,
                entered: rx,
                forwards,
            },
        )
    }

    fn open(&self) {
        let (lock, cvar) = &*self.gate;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
    }
}

/// A layer whose forward pass always panics — a stand-in for a worker
/// crashing mid-inference.
struct PanicLayer;

impl Layer for PanicLayer {
    fn forward(&mut self, _x: &Tensor, _train: bool) -> Tensor {
        panic!("boom");
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        grad.clone()
    }
}

/// Gated models use `image_size = 1`: one sample is `3 * 1 * 1 = 3`
/// floats and the identity forward yields 3 "logits".
const GATED_SIZE: usize = 1;

fn gated_sample(v: f32) -> Vec<f32> {
    vec![v; 3]
}

#[test]
fn multithreaded_clients_on_replicas_match_batch1_bitwise() {
    // The scaled-out determinism contract: four concurrent client
    // threads hammering a 3-replica server get logits bitwise identical
    // to the single-threaded batch-1 forward pass, for both inference
    // engines — whichever replica served, whatever batches formed.
    let ds = data::synth_cifar10(12, SIZE, 71);
    let n = ds.len();
    let engines: Vec<(&str, Arc<dyn GemmEngine>)> = vec![
        ("f32", Arc::new(F32Engine::new(2))),
        ("mac_rn", engine_from_spec("fp8_fp12_rn").expect("spec")),
    ];
    for (label, engine) in engines {
        let mut reference = resnet::resnet20(&engine, 4, 10, 23);
        let want: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let (x, _) = ds.batch(&[i]);
                reference
                    .forward(&x, false)
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect();

        let model = resnet::resnet20(&engine, 4, 10, 23);
        let server = InferenceServer::start(
            model,
            SIZE,
            ServeConfig {
                workers: 3,
                max_batch: 4,
                max_wait_items: 2,
                ..ServeConfig::default()
            },
        )
        .expect("RN/f32 forward engines are position-invariant");
        assert_eq!(server.workers(), 3);

        let got: Vec<Vec<u32>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let client = server.client();
                    let ds = &ds;
                    s.spawn(move || {
                        // Each thread serves a strided quarter of the set.
                        (t..n)
                            .step_by(4)
                            .map(|i| {
                                let p = client.predict(sample(ds, i)).expect("prediction");
                                (
                                    i,
                                    p.logits.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut got = vec![Vec::new(); n];
            for h in handles {
                for (i, bits) in h.join().expect("client thread") {
                    got[i] = bits;
                }
            }
            got
        });
        assert_eq!(
            got, want,
            "{label}: replica-served logits must equal batch-1"
        );

        let (_, stats) = server.shutdown().expect("clean shutdown");
        assert_eq!(stats.requests, n, "{label}");
        assert_eq!(stats.workers, 3, "{label}");
        assert_eq!(
            stats.worker_requests.iter().sum::<usize>(),
            n,
            "{label}: per-worker totals must sum to the request count"
        );
        assert_eq!(stats.queue_wait.count(), n as u64, "{label}");
        assert_eq!(stats.inference.count(), n as u64, "{label}");
    }
}

#[test]
fn full_admission_queue_sheds_with_typed_overloaded() {
    // With the single worker wedged inside a gated forward pass and a
    // 2-deep admission queue, a 32-request burst must shed most of the
    // load as `Overloaded` *immediately* (no blocking), and every
    // accepted request must still be answered once the gate opens.
    let (model, gate) = Gate::model();
    let server = InferenceServer::start(
        model,
        GATED_SIZE,
        ServeConfig {
            workers: 1,
            max_batch: 1,
            queue_depth: 2,
            ..ServeConfig::default()
        },
    )
    .expect("gate layer has no GEMM engines");
    let client = server.client();

    // Wedge the worker: the first request enters the (closed) gate.
    let wedge = client
        .submit(gated_sample(0.0))
        .expect("first request admitted");
    gate.entered.recv().expect("worker entered forward");

    let mut accepted = Vec::new();
    let mut shed = 0usize;
    for i in 0..32 {
        match client.submit(gated_sample(i as f32)) {
            Ok(p) => accepted.push(p),
            Err(ServeError::Overloaded { depth }) => {
                assert_eq!(depth, 2, "error reports the configured depth");
                shed += 1;
            }
            Err(e) => panic!("expected Overloaded, got {e:?}"),
        }
    }
    // Total in-flight capacity with the worker wedged: the admission
    // queue (2) + the worker lane (2) + one request held by the router's
    // blocking reroute. Everything else must have been shed.
    assert!(shed >= 24, "expected >= 24 shed of 32, got {shed}");
    assert_eq!(accepted.len() + shed, 32);

    gate.open();
    assert_eq!(wedge.wait().expect("wedged request served").logits.len(), 3);
    let n_accepted = accepted.len();
    for p in accepted {
        p.wait().expect("accepted request eventually served");
    }
    let (_, stats) = server.shutdown().expect("clean shutdown");
    assert_eq!(stats.shed, shed, "stats must count every shed request");
    assert_eq!(stats.requests, 1 + n_accepted);
}

#[test]
fn expired_deadline_is_answered_without_touching_a_model() {
    // Request A wedges the worker inside the gate; request B carries a
    // 1 ms deadline and must be answered `DeadlineExceeded` — and the
    // forward counter proves no model ever ran for it.
    let (model, gate) = Gate::model();
    let server = InferenceServer::start(
        model,
        GATED_SIZE,
        ServeConfig {
            workers: 1,
            max_batch: 1,
            ..ServeConfig::default()
        },
    )
    .expect("gate layer has no GEMM engines");
    let client = server.client();

    let a = client.submit(gated_sample(1.0)).expect("submit A");
    gate.entered.recv().expect("worker entered forward");
    let b = client
        .submit_within(gated_sample(2.0), Duration::from_millis(1))
        .expect("B admitted (queue is not full)");
    std::thread::sleep(Duration::from_millis(50)); // let B's deadline lapse
    gate.open();

    assert_eq!(a.wait().expect("A served").logits.len(), 3);
    match b.wait() {
        Err(ServeError::DeadlineExceeded { missed_by }) => {
            assert!(
                missed_by >= Duration::from_millis(1),
                "missed_by = {missed_by:?}"
            );
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let (_, stats) = server.shutdown().expect("clean shutdown");
    assert_eq!(stats.expired, 1, "one deadline expiry counted");
    assert_eq!(stats.requests, 1, "only A reached a model");
    assert_eq!(
        gate.forwards.load(Ordering::SeqCst),
        1,
        "the expired request must never touch the model"
    );
}

#[test]
fn shutdown_serves_in_flight_requests_across_replicas() {
    // 16 requests submitted and then an immediate shutdown: the marker
    // trails the requests through the ordered queues, so every admitted
    // request is served (by either replica) before the workers stop.
    let engine: Arc<dyn GemmEngine> = Arc::new(F32Engine::new(1));
    let model = resnet::resnet20(&engine, 4, 10, 9);
    let server = InferenceServer::start(
        model,
        SIZE,
        ServeConfig {
            workers: 2,
            max_batch: 4,
            max_wait_items: 4,
            ..ServeConfig::default()
        },
    )
    .expect("position-invariant");
    let client = server.client();
    let ds = data::synth_cifar10(16, SIZE, 81);
    let pending: Vec<_> = (0..16)
        .map(|i| client.submit(sample(&ds, i)).expect("submit"))
        .collect();
    let (_, stats) = server.shutdown().expect("clean shutdown");
    assert_eq!(stats.requests, 16, "every in-flight request was served");
    assert_eq!(stats.workers, 2);
    for p in pending {
        assert_eq!(p.wait().expect("served before shutdown").logits.len(), 10);
    }
}

#[test]
fn worker_panic_is_recorded_not_swallowed() {
    let mut model = Sequential::new();
    model.push(PanicLayer);
    let server = InferenceServer::start(model, GATED_SIZE, ServeConfig::default())
        .expect("panic layer has no GEMM engines");
    let sink = server.diag_sink();
    let client = server.client();

    // The request that kills the worker: its reply channel drops with
    // the worker's stack, so the client sees a typed `Closed`.
    match client.predict(gated_sample(0.0)) {
        Err(ServeError::Closed) => {}
        other => panic!("expected Closed from a dead worker, got {other:?}"),
    }

    // The router discovers the corpse when it next routes to the lane;
    // keep submitting until the poisoned flag flips (bounded wait).
    let deadline = Instant::now() + Duration::from_secs(10);
    while !server.poisoned() {
        assert!(
            Instant::now() < deadline,
            "server never noticed the dead worker"
        );
        let _ = client.predict(gated_sample(0.0));
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        server
            .diagnostics()
            .iter()
            .any(|d| d.code == codes::WORKER_LOST && d.severity == Severity::Error),
        "the router must record the lost worker"
    );

    // Shutdown surfaces the panic as a typed error...
    match server.shutdown() {
        Err(ServeError::WorkerPanicked { thread, message }) => {
            assert_eq!(thread, "srmac-serve-0");
            assert_eq!(message, "boom");
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    // ...and as a diagnostic that outlives the server through the sink
    // handle taken earlier.
    let diags = sink.snapshot();
    let panic_diag = diags
        .iter()
        .find(|d| d.code == codes::WORKER_PANIC)
        .expect("worker panic recorded in diagnostics");
    assert_eq!(panic_diag.severity, Severity::Error);
    assert!(panic_diag.render_human().contains("boom"));
}

#[test]
fn dropped_server_still_records_worker_panics() {
    // The Drop path must record the panic too — the old Drop impl
    // did `let _ = w.join();`, making a crashed worker indistinguishable
    // from a clean shutdown.
    let mut model = Sequential::new();
    model.push(PanicLayer);
    let server = InferenceServer::start(model, GATED_SIZE, ServeConfig::default())
        .expect("panic layer has no GEMM engines");
    let sink = server.diag_sink();
    let client = server.client();
    let _ = client.predict(gated_sample(0.0)); // kills the worker
    drop(server); // joins + records, never swallows

    let diags = sink.snapshot();
    assert!(
        diags.iter().any(|d| d.code == codes::WORKER_PANIC
            && d.severity == Severity::Error
            && d.render_short().contains("boom")),
        "Drop must record the worker panic in the surviving sink, got {diags:?}"
    );
}
