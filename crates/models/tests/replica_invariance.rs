//! Replica-count invariance: the data-parallel determinism contract.
//!
//! At a *pinned* gradient-shard count `S`, the full training `History`
//! must be bitwise identical for every replica count and every runtime
//! pool size — under the exact f32 engine, the paper's SR MAC engine
//! (whose position-seeded rounding streams are the hard part: replicas
//! see sub-batches, yet every sample must draw the stream its position
//! in the *full* batch dictates), and the mixed per-role policy path.
//!
//! `grad_shards` itself is a numerics knob (per-shard products, per-shard
//! batch-norm statistics, reduction-tree shape); these tests vary only
//! `replicas`/threads and hold `S` fixed, which is exactly the knife-edge
//! the trainer promises.

use std::sync::Arc;

use srmac_models::{data, resnet, History, TrainConfig, Trainer};
use srmac_qgemm::numerics_from_spec;
use srmac_tensor::{F32Engine, GemmEngine, Numerics, Runtime};

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|v| v.to_bits()).collect()
}

/// Everything a `History` records, as comparable bits.
fn fingerprint(h: &History) -> (Vec<u32>, Vec<u32>, usize, usize, u32) {
    (
        bits(&h.train_loss),
        bits(&h.test_acc),
        h.skipped_steps,
        h.nonfinite_batches,
        h.final_scale.to_bits(),
    )
}

/// A fixed-seed 2-epoch slim ResNet-20 run with the given scheduling
/// knobs. `batch_size` 16 over 56 samples leaves a ragged final batch of
/// 8, so shards are uneven within an epoch.
fn run_case(spec: &str, replicas: usize, grad_shards: usize, threads: usize) -> History {
    let numerics = match spec {
        "f32" => Numerics::uniform(Arc::new(F32Engine::new(2)) as Arc<dyn GemmEngine>),
        s => numerics_from_spec(s).expect("engine spec"),
    };
    let mut net = resnet::resnet20_with(&numerics, 4, 10, 77);
    let train_ds = data::synth_cifar10(56, 8, 1234);
    let test_ds = data::synth_cifar10(32, 8, 4321);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        lr: 0.05,
        replicas,
        grad_shards,
        ..TrainConfig::default()
    };
    Trainer::new(&cfg)
        .with_runtime(Arc::new(Runtime::new(threads)))
        .run(&mut net, &train_ds, &test_ds)
}

/// Runs the R x threads matrix at pinned S = 4 for one engine spec and
/// demands bit-identical histories throughout.
fn assert_replica_invariant(spec: &str) {
    let base = run_case(spec, 1, 4, 1);
    assert!(
        base.train_loss.iter().all(|l| l.is_finite()),
        "[{spec}] sharded baseline must train: {:?}",
        base.train_loss
    );
    for (replicas, threads) in [(2, 4), (4, 4), (4, 1), (8, 4)] {
        let h = run_case(spec, replicas, 4, threads);
        assert_eq!(
            fingerprint(&base),
            fingerprint(&h),
            "[{spec}] history changed at replicas={replicas} threads={threads}"
        );
    }
}

#[test]
fn f32_history_is_replica_invariant() {
    assert_replica_invariant("f32");
}

#[test]
fn sr_mac_history_is_replica_invariant() {
    // The paper's pick: E6M5 accumulation, eager SR, r = 13. Position-
    // seeded streams make this the strongest case — a wrong row base on
    // any sub-batch product flips bits immediately.
    assert_replica_invariant("fp8_fp12_sr13");
}

#[test]
fn rn_mac_history_is_replica_invariant() {
    // RN accumulation is position-invariant; replicas skip engine
    // derivation entirely and must still agree.
    assert_replica_invariant("fp8_fp12_rn_sub");
}

#[test]
fn mixed_policy_history_is_replica_invariant() {
    // Per-role policy: RN forward, SR r=13 on both backward roles — the
    // derived-engine cache has to key role and row base independently.
    assert_replica_invariant("fwd=fp8_fp12_rn;bwd=fp8_fp12_sr13");
}

#[test]
fn empty_and_ragged_shards_keep_replica_invariance() {
    // batch_size 6 at S = 4 shards as 1+1+1+3; the epoch's ragged final
    // batch of 2 leaves two leading shards *empty* (spans 0,0,0,2). The
    // skip-empty rule and the count-weighted combines must keep every
    // replica count on the same bits.
    let numerics = numerics_from_spec("fp8_fp12_sr13").expect("engine spec");
    let run = |replicas: usize, threads: usize| {
        let mut net = resnet::resnet20_with(&numerics, 4, 10, 9);
        let train_ds = data::synth_cifar10(14, 8, 77);
        let test_ds = data::synth_cifar10(8, 8, 78);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 6,
            lr: 0.05,
            replicas,
            grad_shards: 4,
            ..TrainConfig::default()
        };
        Trainer::new(&cfg)
            .with_runtime(Arc::new(Runtime::new(threads)))
            .run(&mut net, &train_ds, &test_ds)
    };
    let base = run(1, 1);
    for (replicas, threads) in [(2, 4), (4, 4), (8, 1)] {
        let h = run(replicas, threads);
        assert_eq!(
            fingerprint(&base),
            fingerprint(&h),
            "ragged/empty shards broke invariance at replicas={replicas} threads={threads}"
        );
    }
}
