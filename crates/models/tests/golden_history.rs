//! Golden-vector regression: a fixed-seed 2-epoch ResNet-20 run whose
//! full `History` is pinned, bit for bit, against a checked-in snapshot.
//!
//! Training is bitwise deterministic end to end (counter-seeded SR
//! streams, thread-invariant GEMM and data movement, deterministic
//! synthetic data), so *any* numeric change anywhere in the stack — fp
//! rounding, qgemm kernels, tensor layers, movement kernels, trainer
//! bookkeeping — shifts these bits and fails this test with a diff,
//! instead of silently drifting. Exercised through both the exact f32
//! engine and the paper's SR MAC engine so every crate is on the hook.
//!
//! If a change *intentionally* alters numerics, regenerate the snapshot:
//!
//! ```text
//! SRMAC_BLESS=1 cargo test -p srmac-models --test golden_history -- --nocapture
//! ```
//!
//! and paste the printed block over `GOLDEN` below, saying why in the
//! commit message.
//!
//! The snapshot is tied to this target's `f32` semantics (no FMA
//! contraction; Rust does not auto-contract) — x86-64 and aarch64 agree
//! here; exotic targets would need their own snapshot.

use std::sync::Arc;

use srmac_models::{data, resnet, train, History, TrainConfig};
use srmac_qgemm::numerics_from_spec;
use srmac_tensor::{F32Engine, GemmEngine, Numerics};

/// Bit-level snapshot of one training run.
struct Golden {
    name: &'static str,
    train_loss: &'static [u32],
    test_acc: &'static [u32],
    skipped_steps: usize,
    nonfinite_batches: usize,
    final_scale: u32,
}

/// The pinned expectations. Regenerate with `SRMAC_BLESS=1` (see module
/// docs); review the printed diff before blessing.
const GOLDEN: &[Golden] = &[
    Golden {
        name: "f32",
        train_loss: &[0x401802fc, 0x4004ff8a],
        test_acc: &[0x40c80000, 0x417a0000],
        skipped_steps: 0,
        nonfinite_batches: 0,
        final_scale: 0x44800000,
    },
    Golden {
        name: "mac_sr13_nosub",
        train_loss: &[0x40150046, 0x400d2261],
        test_acc: &[0x40480000, 0x41480000],
        skipped_steps: 0,
        nonfinite_batches: 0,
        final_scale: 0x44800000,
    },
    // The per-role policy path: RN forward, SR r=13 on both backward
    // roles with role-folded stream seeds (numerics::fold_role_seed).
    Golden {
        name: "mixed_rn_fwd_sr13_bwd",
        train_loss: &[0x4016af44, 0x40096d61],
        test_acc: &[0x41160000, 0x41960000],
        skipped_steps: 0,
        nonfinite_batches: 0,
        final_scale: 0x44800000,
    },
];

fn run(name: &str) -> History {
    // Engines resolve through the spec registry (results are
    // thread-invariant, so the registry's default pool size changes no
    // bits); the mixed case exercises the per-role policy path with its
    // role-folded backward SR seeds.
    let numerics = match name {
        "f32" => Numerics::uniform(Arc::new(F32Engine::new(2)) as Arc<dyn GemmEngine>),
        "mac_sr13_nosub" => numerics_from_spec("fp8_fp12_sr13").expect("uniform SR spec"),
        "mixed_rn_fwd_sr13_bwd" => {
            numerics_from_spec("fwd=fp8_fp12_rn;bwd=fp8_fp12_sr13").expect("mixed spec")
        }
        other => panic!("unknown golden case {other}"),
    };
    let mut net = resnet::resnet20_with(&numerics, 4, 10, 77);
    let train_ds = data::synth_cifar10(64, 8, 1234);
    let test_ds = data::synth_cifar10(32, 8, 4321);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        lr: 0.05,
        ..TrainConfig::default()
    };
    train(&mut net, &train_ds, &test_ds, &cfg)
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|v| v.to_bits()).collect()
}

fn print_bless_block(name: &str, h: &History) {
    let hex = |v: &[u32]| {
        v.iter()
            .map(|b| format!("{b:#010x}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!("    Golden {{");
    println!("        name: \"{name}\",");
    println!("        train_loss: &[{}],", hex(&bits(&h.train_loss)));
    println!("        test_acc: &[{}],", hex(&bits(&h.test_acc)));
    println!("        skipped_steps: {},", h.skipped_steps);
    println!("        nonfinite_batches: {},", h.nonfinite_batches);
    println!("        final_scale: {:#010x},", h.final_scale.to_bits());
    println!("    }},");
}

#[test]
fn resnet20_two_epoch_history_matches_snapshot() {
    let bless = std::env::var("SRMAC_BLESS").is_ok();
    let mut failures = Vec::new();
    for g in GOLDEN {
        let h = run(g.name);
        if bless {
            print_bless_block(g.name, &h);
            continue;
        }
        let mut diff = |what: &str, same: bool, got: String, want: String| {
            if !same {
                failures.push(format!("[{}] {what}:\n  got  {got}\n  want {want}", g.name));
            }
        };
        diff(
            "train_loss bits",
            bits(&h.train_loss) == g.train_loss,
            format!("{:x?} ({:?})", bits(&h.train_loss), h.train_loss),
            format!("{:x?}", g.train_loss),
        );
        diff(
            "test_acc bits",
            bits(&h.test_acc) == g.test_acc,
            format!("{:x?} ({:?})", bits(&h.test_acc), h.test_acc),
            format!("{:x?}", g.test_acc),
        );
        diff(
            "skipped_steps",
            h.skipped_steps == g.skipped_steps,
            h.skipped_steps.to_string(),
            g.skipped_steps.to_string(),
        );
        diff(
            "nonfinite_batches",
            h.nonfinite_batches == g.nonfinite_batches,
            h.nonfinite_batches.to_string(),
            g.nonfinite_batches.to_string(),
        );
        diff(
            "final_scale bits",
            h.final_scale.to_bits() == g.final_scale,
            format!("{:#010x} ({})", h.final_scale.to_bits(), h.final_scale),
            format!("{:#010x}", g.final_scale),
        );
    }
    assert!(
        failures.is_empty(),
        "golden history drifted — if intentional, re-bless (see module docs):\n{}",
        failures.join("\n")
    );
}
