//! The crash-tolerance matrix: training interrupted at an arbitrary step
//! and resumed from the keep-K rotation must complete with a [`History`]
//! **bitwise identical** to the uninterrupted run's — under the exact-f32
//! engine, the paper's stochastic-rounding MAC, and a mixed per-role
//! policy alike — and checkpoint I/O failures must degrade gracefully
//! (counted and diagnosed, never fatal, never changing the training
//! bits).

use std::path::PathBuf;
use std::sync::Arc;

use srmac_io::{
    CheckpointError, CheckpointMeta, FailpointStorage, FaultKind, FaultOp, FsStorage, RetryPolicy,
};
use srmac_models::ckpt::codes;
use srmac_models::diag::{DiagSink, Severity};
use srmac_models::{data, resnet, History, TrainConfig, Trainer};
use srmac_qgemm::numerics_from_spec;
use srmac_tensor::Sequential;

const WIDTH: usize = 2;
const SIZE: usize = 8;

/// The three numerics regimes the bitwise-resume guarantee is pinned
/// under: exact f32, the paper's eager-SR pick, and a mixed per-role
/// policy (RN forward, SR backward).
const POLICIES: [&str; 3] = ["f32", "fp8_fp12_sr13", "fwd=fp8_fp12_rn;bwd=fp8_fp12_sr13"];

fn net(spec: &str) -> Sequential {
    let numerics = numerics_from_spec(spec).expect("valid policy spec");
    resnet::resnet20_with(&numerics, WIDTH, data::NUM_CLASSES, 42)
}

fn datasets() -> (data::Dataset, data::Dataset) {
    (
        data::synth_cifar10(30, SIZE, 3),
        data::synth_cifar10(20, SIZE, 4),
    )
}

fn cfg() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch_size: 10, // 3 steps per epoch, 6 total
        lr: 0.05,
        ..TrainConfig::default()
    }
}

fn meta(spec: &str) -> CheckpointMeta {
    CheckpointMeta {
        arch: format!("resnet20-w{WIDTH}-c{}", data::NUM_CLASSES),
        engine: None,
        numerics: Some(spec.to_string()),
    }
}

/// A unique scratch directory per test (best-effort cleanup).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srmac_resume_{}_{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Everything the bitwise guarantee covers, as raw bits.
fn bits(h: &History) -> (Vec<u32>, Vec<u32>, usize, usize, u32) {
    (
        h.train_loss.iter().map(|l| l.to_bits()).collect(),
        h.test_acc.iter().map(|a| a.to_bits()).collect(),
        h.skipped_steps,
        h.nonfinite_batches,
        h.final_scale.to_bits(),
    )
}

#[test]
fn kill_at_any_step_resumes_bitwise_under_every_policy() {
    let (train_ds, test_ds) = datasets();
    let dir = scratch("matrix");
    for spec in POLICIES {
        // The golden, uninterrupted run.
        let mut golden_net = net(spec);
        let golden = Trainer::new(&cfg()).run(&mut golden_net, &train_ds, &test_ds);
        assert!(
            golden.train_loss.iter().all(|l| l.is_finite()),
            "{spec}: golden run must train"
        );

        // Kill at the first step, mid-run, and after the last step of an
        // epoch (checkpoint taken before the evaluation pass — the
        // nastiest cursor position).
        for k in [1usize, 3, 5] {
            let path = dir.join(format!(
                "{}_{k}.srmc",
                spec.replace(|c: char| !c.is_alphanumeric(), "_")
            ));
            let mut victim = net(spec);
            let partial = Trainer::new(&cfg())
                .checkpoint_every(1, &path, meta(spec))
                .halt_after(k)
                .run(&mut victim, &train_ds, &test_ds);
            assert!(
                partial.epochs() < golden.epochs() || k >= 6,
                "{spec}: halting at step {k} must interrupt the run"
            );

            // A "restarted process": fresh same-seeded model, trainer
            // rebuilt purely from the rotation set.
            let mut revived = net(spec);
            let resumed = Trainer::resume(&path, &mut revived)
                .expect("rotation set holds a valid checkpoint")
                .run(&mut revived, &train_ds, &test_ds);
            assert_eq!(
                bits(&golden),
                bits(&resumed),
                "{spec}: resume after kill at step {k} must be bitwise identical"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_recomputes_steps_past_the_last_checkpoint() {
    // The halt need not coincide with a save: with a cadence of 2 and a
    // kill at step 3, the head checkpoint sits at step 2 and the resumed
    // run recomputes step 3 — deterministically, so the history is still
    // bit-equal.
    let (train_ds, test_ds) = datasets();
    let dir = scratch("stale_head");
    let path = dir.join("ckpt.srmc");

    let mut golden_net = net("f32");
    let golden = Trainer::new(&cfg()).run(&mut golden_net, &train_ds, &test_ds);

    let mut victim = net("f32");
    Trainer::new(&cfg())
        .checkpoint_every(2, &path, meta("f32"))
        .halt_after(3)
        .run(&mut victim, &train_ds, &test_ds);

    let mut revived = net("f32");
    let resumed = Trainer::resume(&path, &mut revived)
        .expect("checkpoint at step 2 exists")
        .run(&mut revived, &train_ds, &test_ds);
    assert_eq!(bits(&golden), bits(&resumed));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resuming_a_completed_run_returns_its_history_untouched() {
    // The final save lands at cursor (epochs, 0); resuming it replays the
    // shuffles, verifies the RNG landing, and hands back the completed
    // history without running a single step.
    let (train_ds, test_ds) = datasets();
    let dir = scratch("completed");
    let path = dir.join("ckpt.srmc");

    let mut model = net("f32");
    let done = Trainer::new(&cfg())
        .checkpoint_every(0, &path, meta("f32")) // cadence off: final save only
        .run(&mut model, &train_ds, &test_ds);

    let mut revived = net("f32");
    let resumed = Trainer::resume(&path, &mut revived)
        .expect("final checkpoint exists")
        .run(&mut revived, &train_ds, &test_ds);
    assert_eq!(bits(&done), bits(&resumed));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exhausted_save_retries_degrade_gracefully() {
    // Every write fails: each cadence save exhausts its retries. Training
    // must run to completion anyway, with the failures counted in the
    // history and diagnosed as ckpt::retry-exhausted — and the training
    // bits identical to a run with no checkpointing at all.
    let (train_ds, test_ds) = datasets();
    let dir = scratch("degraded");
    let path = dir.join("ckpt.srmc");

    let mut plain_net = net("f32");
    let plain = Trainer::new(&cfg()).run(&mut plain_net, &train_ds, &test_ds);

    let storage = Arc::new(FailpointStorage::new(FsStorage));
    for n in 0..256 {
        storage.fail_nth(FaultOp::Write, n, FaultKind::Error);
    }
    let diag = DiagSink::with_capacity(64);
    let mut victim = net("f32");
    let h = Trainer::new(&cfg())
        .checkpoint_every(1, &path, meta("f32"))
        .with_storage(storage)
        .with_retry(RetryPolicy {
            attempts: 2,
            backoff: std::time::Duration::ZERO,
        })
        .with_diag(diag.clone())
        .run(&mut victim, &train_ds, &test_ds);

    assert_eq!(h.ckpt_save_failures, 7, "6 cadence saves + the final save");
    assert_eq!(
        (bits(&plain).0, bits(&plain).1),
        (bits(&h).0, bits(&h).1),
        "failing checkpoint I/O must not change the training bits"
    );
    let snapshot = diag.snapshot();
    assert!(
        snapshot
            .iter()
            .any(|d| d.code == codes::RETRY_EXHAUSTED && d.severity == Severity::Error),
        "retry exhaustion must be diagnosed: {snapshot:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_head_resumes_from_an_older_generation_with_a_diagnostic() {
    let (train_ds, test_ds) = datasets();
    let dir = scratch("corrupt_head");
    let path = dir.join("ckpt.srmc");

    let mut victim = net("f32");
    Trainer::new(&cfg())
        .checkpoint_every(1, &path, meta("f32"))
        .halt_after(4)
        .run(&mut victim, &train_ds, &test_ds);

    // Flip a byte in the head: its checksum breaks, the previous
    // generation (step 3) takes over.
    let mut head = std::fs::read(&path).expect("head exists");
    let mid = head.len() / 2;
    head[mid] ^= 0x40;
    std::fs::write(&path, &head).expect("corrupt the head");

    let diag = DiagSink::with_capacity(16);
    let mut revived = net("f32");
    let trainer = Trainer::resume_with(&FsStorage, &path, &mut revived, Some(&diag))
        .expect("an older generation is still valid");
    let snapshot = diag.snapshot();
    assert!(
        snapshot
            .iter()
            .any(|d| d.code == codes::CORRUPT_HEAD_FALLBACK && d.severity == Severity::Warning),
        "the fallback must be diagnosed: {snapshot:?}"
    );
    assert!(
        snapshot.iter().any(|d| d.code == codes::RESUME),
        "resume provenance must be diagnosed: {snapshot:?}"
    );

    // And the resumed run still completes bit-identically: the fallback
    // generation is one step older, so one extra step is recomputed.
    let mut golden_net = net("f32");
    let golden = Trainer::new(&cfg()).run(&mut golden_net, &train_ds, &test_ds);
    let resumed = trainer.run(&mut revived, &train_ds, &test_ds);
    assert_eq!(bits(&golden), bits(&resumed));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_failures_are_typed() {
    let dir = scratch("typed_errors");
    let mut model = net("f32");

    // No rotation set at all.
    let err = Trainer::resume(dir.join("nothing.srmc"), &mut model)
        .expect_err("empty rotation set cannot resume");
    assert!(
        matches!(err, CheckpointError::NoValidCheckpoint { .. }),
        "got {err:?}"
    );

    // A weights-only checkpoint (no trainer snapshot) is loadable but not
    // resumable.
    let weights_only = dir.join("weights.srmc");
    srmac_io::save_model(&weights_only, &mut model, meta("f32")).expect("save");
    let err = Trainer::resume(&weights_only, &mut model)
        .expect_err("a plain model checkpoint carries no trainer state");
    assert!(
        matches!(err, CheckpointError::MissingTrainState),
        "got {err:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
