//! Cross-layer tests of the `Numerics` per-role policy API: the uniform
//! shim must be invisible in the bits (full `History` equality against
//! the legacy single-engine path), per-role SR streams must be seeded
//! independently per role, and the serving layer must reject
//! position-variant forward engines with a typed error.

use std::sync::Arc;

use srmac_models::serve::{InferenceServer, ServeConfig, ServeError};
use srmac_models::{data, evaluate, resnet, train, TrainConfig};
use srmac_qgemm::{engine_from_spec, numerics_from_spec};
use srmac_tensor::{F32Engine, GemmEngine, GemmRole, Numerics};

fn train_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch_size: 16,
        lr: 0.05,
        ..TrainConfig::default()
    }
}

#[test]
fn uniform_policy_reproduces_the_single_engine_history_bitwise() {
    // `Numerics::uniform(engine)` shares the engine object across roles,
    // so training through the policy plumbing must be indistinguishable —
    // the whole History (losses, accuracies, scaler trajectory), bit for
    // bit — from handing the engine to every layer directly, under both
    // the exact engine and the paper's SR MAC (whose streams would expose
    // any accidental re-seeding or extra consumption immediately).
    let engines: Vec<(&str, Arc<dyn GemmEngine>)> = vec![
        ("f32", Arc::new(F32Engine::new(2))),
        ("mac_sr13", engine_from_spec("fp8_fp12_sr13").expect("spec")),
    ];
    let train_ds = data::synth_cifar10(64, 8, 1234);
    let test_ds = data::synth_cifar10(32, 8, 4321);
    for (label, engine) in engines {
        let mut legacy = resnet::resnet20(&engine, 4, 10, 77);
        let mut policied = resnet::resnet20_with(&Numerics::uniform(engine.clone()), 4, 10, 77);
        let a = train(&mut legacy, &train_ds, &test_ds, &train_cfg());
        let b = train(&mut policied, &train_ds, &test_ds, &train_cfg());
        let bits = |xs: &[f32]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.train_loss), bits(&b.train_loss), "{label}: loss");
        assert_eq!(bits(&a.test_acc), bits(&b.test_acc), "{label}: accuracy");
        assert_eq!(a.skipped_steps, b.skipped_steps, "{label}: skipped");
        assert_eq!(
            a.nonfinite_batches, b.nonfinite_batches,
            "{label}: nonfinite"
        );
        assert_eq!(
            a.final_scale.to_bits(),
            b.final_scale.to_bits(),
            "{label}: scale"
        );
    }
}

#[test]
fn per_role_sr_streams_are_seeded_independently() {
    // Three SR roles from the same atom must not share stream seeds (the
    // per-role seeding rule): each engine's spec atom carries its exact,
    // role-folded seed, so the three must be pairwise distinct — and all
    // different from the uniform policy's shared default seed.
    let per_role = numerics_from_spec("fwd=fp8_fp12_sr13;dgrad=fp8_fp12_sr13;wgrad=fp8_fp12_sr13")
        .expect("per-role spec");
    let specs: Vec<String> = GemmRole::ALL
        .iter()
        .map(|&r| per_role.engine(r).spec().expect("mac engines have specs"))
        .collect();
    assert_ne!(specs[0], specs[1]);
    assert_ne!(specs[0], specs[2]);
    assert_ne!(specs[1], specs[2]);

    let uniform = numerics_from_spec("fp8_fp12_sr13").expect("uniform spec");
    assert!(uniform.is_uniform(), "single-atom specs share one engine");
    let uniform_spec = uniform.engine(GemmRole::Forward).spec().expect("spec");
    assert!(
        uniform_spec.ends_with("_seed5eed"),
        "uniform engines keep the unfolded default seed, got {uniform_spec}"
    );
    assert!(specs.iter().all(|s| *s != uniform_spec));

    // An explicit seed token is used verbatim — no folding — so both
    // backward roles of `bwd=` pin the same stream seed.
    let pinned = numerics_from_spec("fwd=f32;bwd=fp8_fp12_sr13_seedff").expect("pinned spec");
    let d = pinned.engine(GemmRole::BackwardData).spec().expect("spec");
    let w = pinned
        .engine(GemmRole::BackwardWeight)
        .spec()
        .expect("spec");
    assert_eq!(d, w);
    assert!(d.ends_with("_seedff"), "explicit seeds are verbatim: {d}");
}

#[test]
fn mixed_policy_trains_and_diverges_from_uniform_rn() {
    // A mixed RN-forward / SR-backward policy must actually engage the SR
    // engines: its history cannot coincide with the all-RN run (the
    // backward rounding differs), while its forward-only evaluation of
    // the *same* weights is RN and therefore deterministic.
    let train_ds = data::synth_cifar10(48, 8, 21);
    let test_ds = data::synth_cifar10(32, 8, 22);
    let mixed = numerics_from_spec("fwd=fp8_fp12_rn;bwd=fp8_fp12_sr13").expect("mixed");
    let rn = numerics_from_spec("fp8_fp12_rn").expect("rn");
    let mut mixed_net = resnet::resnet20_with(&mixed, 4, 10, 5);
    let mut rn_net = resnet::resnet20_with(&rn, 4, 10, 5);
    let hm = train(&mut mixed_net, &train_ds, &test_ds, &train_cfg());
    let hr = train(&mut rn_net, &train_ds, &test_ds, &train_cfg());
    assert_ne!(
        hm.train_loss
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        hr.train_loss
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        "SR backward roles must change the training trajectory"
    );
    // Forward evaluation through the mixed policy is RN: repeatable.
    let a = evaluate(&mut mixed_net, &test_ds, 8);
    let b = evaluate(&mut mixed_net, &test_ds, 8);
    assert_eq!(a.to_bits(), b.to_bits());
}

#[test]
fn serving_rejects_stochastic_forward_engines_with_a_typed_error() {
    let size = 8;
    let sr = numerics_from_spec("fp8_fp12_sr13").expect("uniform SR");
    let model = resnet::resnet20_with(&sr, 4, 10, 3);
    let err = InferenceServer::start_with_numerics(model, size, ServeConfig::default(), &sr)
        .expect_err("SR forward engines break batch invariance");
    assert!(
        matches!(&err, ServeError::StochasticForward { engine } if engine.contains("SR")),
        "got {err:?}"
    );

    // A mismatched side-channel policy cannot bypass the guard: the model
    // itself carries SR forward engines, and the server inspects those
    // (Layer::visit_role_engines), not just the declared policy.
    let model = resnet::resnet20_with(&sr, 4, 10, 3);
    let rn = numerics_from_spec("fp8_fp12_rn").expect("rn policy");
    let err = InferenceServer::start_with_numerics(model, size, ServeConfig::default(), &rn)
        .expect_err("the model's own engines are authoritative");
    assert!(matches!(&err, ServeError::StochasticForward { engine } if engine.contains("SR")));

    // The mixed policy's forward role is RN: serving starts and serves.
    let mixed = numerics_from_spec("fwd=fp8_fp12_rn;bwd=fp8_fp12_sr13").expect("mixed");
    let model = resnet::resnet20_with(&mixed, 4, 10, 3);
    let server = InferenceServer::start_with_numerics(model, size, ServeConfig::default(), &mixed)
        .expect("RN forward serves");
    let ds = data::synth_cifar10(3, size, 9);
    let (x, _) = ds.batch(&[0]);
    let p = server.client().predict(x.data().to_vec()).expect("predict");
    assert_eq!(p.logits.len(), 10);
    let (_, stats) = server.shutdown().expect("clean shutdown");
    assert_eq!(stats.requests, 1);
}
