//! Accumulation configurations of the paper's training tables, mapped to
//! GEMM engines.

use std::sync::Arc;

use srmac_fp::FpFormat;
use srmac_qgemm::{AccumRounding, MacGemm, MacGemmConfig};
use srmac_tensor::{F32Engine, GemmEngine};

/// A training-table row: which arithmetic the GEMMs run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccumSetup {
    /// Full `f32` training (the paper's "FP32 Baseline", E8M23 RN).
    Fp32Baseline,
    /// FP8 multipliers with an RN accumulator of the given format.
    Rn {
        /// Accumulator exponent bits.
        e: u32,
        /// Accumulator stored significand bits.
        m: u32,
        /// Subnormal support.
        subnormals: bool,
    },
    /// FP8 multipliers with an SR accumulator of the given format.
    Sr {
        /// Accumulator exponent bits.
        e: u32,
        /// Accumulator stored significand bits.
        m: u32,
        /// Random bits.
        r: u32,
        /// Subnormal support.
        subnormals: bool,
    },
}

impl AccumSetup {
    /// Builds the GEMM engine for this configuration.
    #[must_use]
    pub fn engine(&self, seed: u64, threads: usize) -> Arc<dyn GemmEngine> {
        match *self {
            AccumSetup::Fp32Baseline => Arc::new(F32Engine::new(threads)),
            AccumSetup::Rn { e, m, subnormals } => {
                let acc = FpFormat::of(e, m).with_subnormals(subnormals);
                let cfg = MacGemmConfig::fp8_acc(acc, AccumRounding::Nearest, subnormals)
                    .with_seed(seed)
                    .with_threads(threads);
                Arc::new(MacGemm::new(cfg))
            }
            AccumSetup::Sr {
                e,
                m,
                r,
                subnormals,
            } => {
                let acc = FpFormat::of(e, m).with_subnormals(subnormals);
                let cfg = MacGemmConfig::fp8_acc(acc, AccumRounding::Stochastic { r }, subnormals)
                    .with_seed(seed)
                    .with_threads(threads);
                Arc::new(MacGemm::new(cfg))
            }
        }
    }

    /// The paper's table label for this row.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            AccumSetup::Fp32Baseline => "FP32 Baseline   E8M23      ".to_owned(),
            AccumSetup::Rn { e, m, subnormals } => format!(
                "RN {}  E{}M{}   ",
                if subnormals { "W/ Sub " } else { "W/O Sub" },
                e,
                m
            ),
            AccumSetup::Sr {
                e,
                m,
                r,
                subnormals,
            } => format!(
                "SR {}  E{}M{} r={:<2}",
                if subnormals { "W/ Sub " } else { "W/O Sub" },
                e,
                m,
                r
            ),
        }
    }

    /// The Table III row set (ResNet-20 / CIFAR-10), with the paper's
    /// reported accuracies.
    #[must_use]
    pub fn table3_rows() -> Vec<(AccumSetup, f64)> {
        vec![
            (AccumSetup::Fp32Baseline, 91.47),
            (
                AccumSetup::Rn {
                    e: 5,
                    m: 10,
                    subnormals: true,
                },
                91.1,
            ),
            (
                AccumSetup::Rn {
                    e: 8,
                    m: 7,
                    subnormals: true,
                },
                88.79,
            ),
            (
                AccumSetup::Rn {
                    e: 6,
                    m: 5,
                    subnormals: true,
                },
                83.03,
            ),
            (
                AccumSetup::Sr {
                    e: 6,
                    m: 5,
                    r: 4,
                    subnormals: true,
                },
                43.11,
            ),
            (
                AccumSetup::Sr {
                    e: 6,
                    m: 5,
                    r: 9,
                    subnormals: true,
                },
                89.34,
            ),
            (
                AccumSetup::Sr {
                    e: 6,
                    m: 5,
                    r: 11,
                    subnormals: true,
                },
                90.7,
            ),
            (
                AccumSetup::Sr {
                    e: 6,
                    m: 5,
                    r: 13,
                    subnormals: true,
                },
                91.39,
            ),
            (
                AccumSetup::Sr {
                    e: 6,
                    m: 5,
                    r: 11,
                    subnormals: false,
                },
                90.67,
            ),
            (
                AccumSetup::Sr {
                    e: 6,
                    m: 5,
                    r: 13,
                    subnormals: false,
                },
                91.39,
            ),
        ]
    }
}
