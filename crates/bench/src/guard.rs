//! Bench regression guard: shared workload definitions for the criterion
//! benches and the `bench_guard` binary, plus the minimal
//! `BENCH_gemm.json` reader the guard diffs fresh medians against.
//!
//! The guard exists so a PR that accidentally slows the MAC hot path
//! fails loudly: `bench_guard` re-measures the headline workloads with
//! the *same data generation* as the criterion benches (seeds included)
//! and exits non-zero when a median regresses past the tolerance against
//! the committed `BENCH_gemm.json`.

use std::sync::Arc;

use srmac_io::CheckpointMeta;
use srmac_models::{data, resnet, InferenceServer, ServeConfig, TrainConfig, Trainer};
use srmac_qgemm::{MacGemm, MacGemmConfig};
use srmac_rng::SplitMix64;
use srmac_tensor::numerics::fold_role_seed;
use srmac_tensor::{F32Engine, GemmEngine, GemmRole, Numerics, Runtime};

/// Uniform values in [-0.5, 0.5) — the benches' dense-operand generator.
#[must_use]
pub fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_f32() - 0.5).collect()
}

/// Activation-like data: `sparsity` of the entries are exact zeros, the
/// profile post-ReLU feature maps (plus im2row padding) actually show.
#[must_use]
pub fn relu_sparse_vec(n: usize, seed: u64, sparsity: f64) -> Vec<f32> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let v = rng.next_f32() - 0.5;
            if rng.next_f64() < sparsity {
                0.0
            } else {
                v
            }
        })
        .collect()
}

/// The forward GEMM shapes of a (width-scaled) ResNet-20; with
/// `with_backward`, also the data-gradient products that reuse the same
/// weights. Shared by the `resnet20_train_step`/`resnet20_eval_stream`
/// criterion groups and the regression guard, so both always measure the
/// same sequence.
#[must_use]
pub fn resnet20_weight_gemm_shapes(
    batch: usize,
    size: usize,
    width: usize,
    with_backward: bool,
) -> Vec<(usize, usize, usize)> {
    let mut shapes = Vec::new();
    let mut s = size;
    // Stem 3x3 conv.
    shapes.push((batch * s * s, 27, width));
    let mut in_c = width;
    for stage in 0..3usize {
        let out_c = width << stage;
        for block in 0..3usize {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            if stride == 2 {
                s /= 2;
            }
            shapes.push((batch * s * s, in_c * 9, out_c)); // conv1 forward
            shapes.push((batch * s * s, out_c * 9, out_c)); // conv2 forward
            if in_c != out_c || stride != 1 {
                shapes.push((batch * s * s, in_c, out_c)); // 1x1 projection
            }
            if with_backward {
                // Data-gradient products of the two convs (dY * W).
                shapes.push((batch * s * s, out_c, in_c * 9));
                shapes.push((batch * s * s, out_c, out_c * 9));
            }
            in_c = out_c;
        }
    }
    // Classifier head (and its data gradient when training).
    shapes.push((batch, in_c, 10));
    if with_backward {
        shapes.push((batch, 10, in_c));
    }
    shapes
}

/// The full role-tagged GEMM sequence of one (width-scaled) ResNet-20
/// training step: per conv, the forward product (`Forward`), the
/// data-gradient product (`BackwardData`) and the weight-gradient product
/// (`BackwardWeight`), plus the classifier head's three products. The
/// `mixed_policy` guard workload runs each product on the engine its role
/// resolves to under a per-role `Numerics` policy — the execution shape
/// of a mixed-precision experiment like `fwd=rn;bwd=sr13`.
#[must_use]
pub fn resnet20_role_gemm_shapes(
    batch: usize,
    size: usize,
    width: usize,
) -> Vec<(GemmRole, usize, usize, usize)> {
    let mut shapes = Vec::new();
    let mut s = size;
    let push3 = |shapes: &mut Vec<_>, m: usize, k: usize, n: usize| {
        shapes.push((GemmRole::Forward, m, k, n));
        shapes.push((GemmRole::BackwardData, m, n, k));
        shapes.push((GemmRole::BackwardWeight, n, m, k));
    };
    // Stem 3x3 conv.
    push3(&mut shapes, batch * s * s, 27, width);
    let mut in_c = width;
    for stage in 0..3usize {
        let out_c = width << stage;
        for block in 0..3usize {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            if stride == 2 {
                s /= 2;
            }
            push3(&mut shapes, batch * s * s, in_c * 9, out_c); // conv1
            push3(&mut shapes, batch * s * s, out_c * 9, out_c); // conv2
            if in_c != out_c || stride != 1 {
                push3(&mut shapes, batch * s * s, in_c, out_c); // 1x1 proj
            }
            in_c = out_c;
        }
    }
    // Classifier head.
    push3(&mut shapes, batch, in_c, 10);
    shapes
}

/// The `mixed_policy` workload's per-role policy — RN forward, SR r=13
/// on both backward roles — with every engine pinned to **one thread**,
/// matching the 1-thread pinning of the sibling `gemm_64x128x64` and
/// `prepared_weight_reuse` workloads so the committed absolute medians
/// don't embed the recording host's core count. Configs come from the
/// registry grammar (`FromStr`) and the backward seeds are role-folded
/// exactly as `numerics_from_spec` would fold them; results are bitwise
/// identical to the registry-built policy (which differs only in thread
/// count, and results are thread-invariant). Shared by the criterion
/// `resnet20_train_step/mixed_policy` bench and the guard so both always
/// measure the same engines.
#[must_use]
pub fn mixed_policy_numerics_1thread() -> Numerics {
    let fwd: MacGemmConfig = "fp8_fp12_rn".parse().expect("forward atom");
    let bwd: MacGemmConfig = "fp8_fp12_sr13".parse().expect("backward atom");
    let engine = |cfg: MacGemmConfig, role: GemmRole| {
        Arc::new(MacGemm::new(
            cfg.with_seed(fold_role_seed(cfg.seed, role))
                .with_threads(1),
        )) as Arc<dyn srmac_tensor::GemmEngine>
    };
    Numerics::builder()
        .forward(engine(fwd, GemmRole::Forward))
        .role(GemmRole::BackwardData, engine(bwd, GemmRole::BackwardData))
        .role(
            GemmRole::BackwardWeight,
            engine(bwd, GemmRole::BackwardWeight),
        )
        .build()
        .expect("all roles assigned")
}

/// Minibatch size of the `train_scaling` workload — sharded 4 ways, so
/// every replica count sees shards of 8 samples.
pub const TRAIN_SCALING_BATCH: usize = 32;

/// The `train_scaling` workload: one full data-parallel `Trainer` step —
/// shard, CoW-replicate, per-replica forward/backward, bitwise tree
/// reduction, one SGD step — on a slim ResNet-20 with a **1-thread** SR
/// MAC engine, so replica fan-out across the trainer's pool is the only
/// parallelism in play. The gradient-shard count is pinned at 4 for
/// every replica count; by the trainer's invariance contract all replica
/// counts then compute the *same bits*, and a timing ratio between them
/// measures pure scheduling. Returns a closure running one step per call
/// (optimizer and loss-scaler state carry across calls, like real
/// training) and yielding the step loss. Shared by the `train_scaling`
/// criterion group and `bench_guard`, so both always measure the same
/// model, data and engine.
pub fn train_scaling_step(replicas: usize, threads: usize) -> impl FnMut() -> f32 {
    let atom: MacGemmConfig = "fp8_fp12_sr13".parse().expect("engine atom");
    let engine = Arc::new(MacGemm::new(atom.with_threads(1))) as Arc<dyn GemmEngine>;
    let numerics = Numerics::uniform(engine);
    let mut model = resnet::resnet20_with(&numerics, 4, 10, 42);
    let ds = data::synth_cifar10(TRAIN_SCALING_BATCH, 12, 9);
    let idx: Vec<usize> = (0..ds.len()).collect();
    let (x, labels) = ds.batch(&idx);
    let cfg = TrainConfig {
        batch_size: TRAIN_SCALING_BATCH,
        replicas,
        grad_shards: 4,
        ..TrainConfig::default()
    };
    let mut trainer = Trainer::new(&cfg).with_runtime(Arc::new(Runtime::new(threads)));
    move || trainer.train_step(&mut model, &x, &labels, 0.05)
}

/// Steps per call of the `checkpoint_save` workload: the checkpoint
/// cadence fires once per segment, so the `ckpt`/`plain` timing ratio is
/// the *amortized* per-step overhead of auto-checkpointing at
/// `every = CKPT_SEGMENT_STEPS` — the quantity the <5% overhead gate in
/// `bench_guard` watches.
pub const CKPT_SEGMENT_STEPS: usize = 10;

/// The `checkpoint_save` workload: a segment of [`CKPT_SEGMENT_STEPS`]
/// training steps on a slim ResNet-20, either plain (`with_ckpt =
/// false`) or with one keep-K rotation save of the model plus the full
/// trainer state at the segment's end (`with_ckpt = true`) — exactly
/// what [`Trainer::run`]'s cadence does every `CKPT_SEGMENT_STEPS`
/// steps. The engine is the exact 1-thread f32 GEMM: the checkpoint cost
/// is engine-independent and the guard gates a *ratio*, so the fast
/// engine keeps the workload cheap while making the overhead fraction a
/// conservative (worst-case) estimate — slower MAC-emulation steps only
/// shrink it. Returns a closure running one segment per call and
/// yielding the last step's loss. Shared by the `checkpoint_save`
/// criterion group and `bench_guard`, so both always measure the same
/// model, data and save path.
pub fn checkpoint_save_segment(with_ckpt: bool) -> impl FnMut() -> f32 {
    let engine = Arc::new(F32Engine::new(1)) as Arc<dyn GemmEngine>;
    let numerics = Numerics::uniform(engine);
    let mut model = resnet::resnet20_with(&numerics, 4, 10, 42);
    let ds = data::synth_cifar10(16, 12, 9);
    let idx: Vec<usize> = (0..ds.len()).collect();
    let (x, labels) = ds.batch(&idx);
    let cfg = TrainConfig {
        batch_size: 16,
        ..TrainConfig::default()
    };
    let mut trainer = Trainer::new(&cfg);
    if with_ckpt {
        let path =
            std::env::temp_dir().join(format!("srmac_bench_ckpt_{}.srmc", std::process::id()));
        trainer = trainer.checkpoint_every(
            CKPT_SEGMENT_STEPS,
            path,
            CheckpointMeta {
                arch: "resnet20-w4-c10".into(),
                engine: None,
                numerics: Some("f32".into()),
            },
        );
    }
    move || {
        let mut loss = 0.0;
        for _ in 0..CKPT_SEGMENT_STEPS {
            loss = trainer.train_step(&mut model, &x, &labels, 0.05);
        }
        if with_ckpt {
            trainer.checkpoint_now(&mut model).expect("bench save");
        }
        loss
    }
}

/// Requests per stream of the `serve_scaling` workload.
pub const SERVE_SCALING_STREAM: usize = 32;

/// The `serve_scaling` workload: one pipelined 32-request stream against
/// a replicated [`InferenceServer`] — every request submitted up front,
/// then all replies awaited — on a slim ResNet-20 with a **1-thread** RN
/// MAC engine, so worker fan-out across replicas is the only parallelism
/// in play. By the serving batch-invariance contract every worker count
/// computes the *same bits* per request, so a timing ratio between
/// worker counts measures pure serving scale-out. Returns a closure
/// running one stream per call (the server persists across calls, like a
/// real deployment) and yielding the number of predictions served.
/// Shared by the `serve_scaling` criterion group and `bench_guard`, so
/// both always measure the same model, data and engine.
///
/// # Panics
///
/// Panics if the server cannot start (the RN forward engine is
/// position-invariant and ResNet-20 is CoW-replicable, so it can).
pub fn serve_scaling_stream(workers: usize) -> impl FnMut() -> usize {
    let atom: MacGemmConfig = "fp8_fp12_rn".parse().expect("engine atom");
    let engine = Arc::new(MacGemm::new(atom.with_threads(1))) as Arc<dyn GemmEngine>;
    let model = resnet::resnet20(&engine, 8, 10, 42);
    let size = 16;
    let ds = data::synth_cifar10(SERVE_SCALING_STREAM, size, 9);
    let samples: Vec<Vec<f32>> = (0..ds.len())
        .map(|i| {
            let (x, _) = ds.batch(&[i]);
            x.data().to_vec()
        })
        .collect();
    let server = InferenceServer::start(
        model,
        size,
        ServeConfig {
            workers,
            max_batch: 4,
            max_wait_items: 1,
            queue_depth: 256,
            ..ServeConfig::default()
        },
    )
    .expect("RN forward engine serves");
    let client = server.client();
    // Warm every replica's packed-weight path before timing.
    for s in samples.iter().take(workers.max(1)) {
        client.predict(s.clone()).expect("warmup prediction");
    }
    move || {
        // Owning the server keeps it (and its workers) alive across
        // closure calls; the stream is pipelined so batches form and
        // the router spreads requests over every replica.
        debug_assert_eq!(server.workers(), workers);
        let pending: Vec<_> = samples
            .iter()
            .map(|s| client.submit(s.clone()).expect("submit"))
            .collect();
        let mut served = 0usize;
        for p in pending {
            p.wait().expect("prediction");
            served += 1;
        }
        served
    }
}

/// Requests per stream of the `serve_resnet20` workload (the criterion
/// group's `SERVE_STREAM`).
pub const SERVE_RESNET20_STREAM: usize = 32;

/// The `serve_resnet20` workload: the micro-batched serving stream — a
/// width-8 ResNet-20 (16x16 inputs) behind the `InferenceServer` queue
/// on the deterministic inference engine (1-thread MAC RN), one
/// pipelined [`SERVE_RESNET20_STREAM`]-request stream per call, with
/// dynamic batches of up to `max_batch` (`max_wait_items = max_batch`,
/// 200 us straggler wait) — exactly the `serve_resnet20` criterion
/// group's model, data, engine and queue settings, so the guard and the
/// bench always measure the same thing. Returns a closure running one
/// stream per call (the server persists across calls) and yielding the
/// number of predictions served.
///
/// # Panics
///
/// Panics if the server cannot start (the RN forward engine is
/// position-invariant, so it can).
pub fn serve_microbatch_stream(max_batch: usize) -> impl FnMut() -> usize {
    use srmac_qgemm::AccumRounding;
    let engine = Arc::new(MacGemm::new(
        MacGemmConfig::fp8_fp12(AccumRounding::Nearest, false).with_threads(1),
    )) as Arc<dyn GemmEngine>;
    let size = 16usize;
    let model = resnet::resnet20(&engine, 8, 10, 42);
    let ds = data::synth_cifar10(SERVE_RESNET20_STREAM, size, 9);
    let samples: Vec<Vec<f32>> = (0..ds.len())
        .map(|i| {
            let (x, _) = ds.batch(&[i]);
            x.data().to_vec()
        })
        .collect();
    let server = InferenceServer::start(
        model,
        size,
        ServeConfig {
            max_batch,
            max_wait_items: max_batch,
            straggler_wait: std::time::Duration::from_micros(200),
            ..ServeConfig::default()
        },
    )
    .expect("RN forward engine serves");
    let client = server.client();
    // Warm-up: populate the packed-weight caches and layer workspaces.
    client
        .predict(samples[0].clone())
        .expect("warmup prediction");
    move || {
        // Owning the server keeps its worker alive across closure calls.
        debug_assert!(server.workers() >= 1);
        let pending: Vec<_> = samples
            .iter()
            .map(|s| client.submit(s.clone()).expect("submit"))
            .collect();
        let mut served = 0usize;
        for p in pending {
            p.wait().expect("prediction");
            served += 1;
        }
        served
    }
}

/// One `benchmarks` entry of `BENCH_gemm.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct CommittedMedian {
    /// Criterion group name.
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Recorded median in nanoseconds.
    pub median_ns: f64,
}

/// Extracts every `{"group": ..., "name": ..., "median_ns": ...}` record
/// from the committed `BENCH_gemm.json`. A deliberately minimal reader
/// for the file this workspace itself writes (no dependency on a JSON
/// crate); entries missing any of the three fields are skipped.
#[must_use]
pub fn parse_bench_medians(json: &str) -> Vec<CommittedMedian> {
    fn str_field(obj: &str, key: &str) -> Option<String> {
        let pat = format!("\"{key}\":");
        let rest = obj[obj.find(&pat)? + pat.len()..].trim_start();
        let rest = rest.strip_prefix('"')?;
        Some(rest[..rest.find('"')?].to_owned())
    }
    fn num_field(obj: &str, key: &str) -> Option<f64> {
        let pat = format!("\"{key}\":");
        let rest = obj[obj.find(&pat)? + pat.len()..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }
    json.split('{')
        .skip(1)
        .filter_map(|obj| {
            let obj = &obj[..obj.find('}').unwrap_or(obj.len())];
            Some(CommittedMedian {
                group: str_field(obj, "group")?,
                name: str_field(obj, "name")?,
                median_ns: num_field(obj, "median_ns")?,
            })
        })
        .collect()
}

/// Looks up a committed median.
#[must_use]
pub fn committed_median(entries: &[CommittedMedian], group: &str, name: &str) -> Option<f64> {
    entries
        .iter()
        .find(|e| e.group == group && e.name == name)
        .map(|e| e.median_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_committed_layout() {
        let json = r#"{
  "benchmarks": [
    {"group": "gemm_64x128x64", "name": "f32_1thread", "median_ns": 78394.0, "samples": 15, "iters_per_sample": 448},
    {"group": "resnet20_train_step", "name": "prepared_weight_reuse", "median_ns": 134059004.0, "samples": 10, "iters_per_sample": 1}
  ],
  "pr1_baseline": {
    "prepared_weight_reuse_ns": 171955225.0
  }
}"#;
        let entries = parse_bench_medians(json);
        assert_eq!(
            committed_median(&entries, "gemm_64x128x64", "f32_1thread"),
            Some(78394.0)
        );
        assert_eq!(
            committed_median(&entries, "resnet20_train_step", "prepared_weight_reuse"),
            Some(134_059_004.0)
        );
        assert_eq!(committed_median(&entries, "nope", "nope"), None);
        // The trailing summary objects have no group/name and are skipped.
        assert_eq!(entries.len(), 2);
    }

    #[test]
    fn resnet20_shapes_cover_forward_and_backward() {
        let fwd = resnet20_weight_gemm_shapes(1, 16, 8, false);
        let train = resnet20_weight_gemm_shapes(4, 16, 8, true);
        assert!(train.len() > fwd.len());
        assert!(fwd.iter().all(|&(m, k, n)| m * k * n > 0));
    }

    #[test]
    fn mixed_policy_1thread_matches_the_registry_engines() {
        // The thread-pinned bench policy must resolve to exactly the
        // engines `numerics_from_spec` builds (spec atoms carry the
        // exact role-folded seeds), so the bench measures the real
        // mixed-policy numerics.
        let bench = mixed_policy_numerics_1thread();
        let registry = srmac_qgemm::numerics_from_spec("fwd=fp8_fp12_rn;bwd=fp8_fp12_sr13")
            .expect("registry policy");
        for role in GemmRole::ALL {
            assert_eq!(
                bench.engine(role).spec(),
                registry.engine(role).spec(),
                "{role}"
            );
        }
    }

    #[test]
    fn train_scaling_variants_compute_the_same_bits() {
        // The bench's speedup ratio is only meaningful if the replica
        // counts really run identical numerics — pinned grad_shards = 4
        // must make the 1- and 4-replica steps bitwise equal.
        let l1 = train_scaling_step(1, 1)();
        let l4 = train_scaling_step(4, 4)();
        assert_eq!(
            l1.to_bits(),
            l4.to_bits(),
            "train_scaling replica counts diverged: {l1} vs {l4}"
        );
        assert!(l1.is_finite());
    }

    #[test]
    fn checkpoint_save_variants_compute_the_same_bits() {
        // The bench's overhead ratio is only meaningful if the saving
        // variant really trains the same bits as the plain one — the
        // checkpoint cadence must be pure I/O, never touching the loop's
        // arithmetic. The saving variant must also leave a loadable
        // rotation head behind (otherwise it timed a failed write).
        let plain = checkpoint_save_segment(false)();
        let ckpt = checkpoint_save_segment(true)();
        assert_eq!(
            plain.to_bits(),
            ckpt.to_bits(),
            "auto-checkpointing changed the training bits: {plain} vs {ckpt}"
        );
        assert!(plain.is_finite());
        let path =
            std::env::temp_dir().join(format!("srmac_bench_ckpt_{}.srmc", std::process::id()));
        let ckpt = srmac_io::read_checkpoint(&path).expect("the segment saved a valid head");
        assert!(ckpt.train.is_some(), "the save carries the trainer state");
        // Best-effort scratch cleanup (the rotation set shares the stem).
        if let Some(dir) = path.parent() {
            if let Ok(entries) = std::fs::read_dir(dir) {
                for e in entries.flatten() {
                    if e.file_name()
                        .to_string_lossy()
                        .starts_with(&format!("srmac_bench_ckpt_{}", std::process::id()))
                    {
                        std::fs::remove_file(e.path()).ok();
                    }
                }
            }
        }
    }

    #[test]
    fn serve_scaling_stream_serves_every_request() {
        // The bench's req/s ratio is only meaningful if every worker
        // count actually answers the whole stream.
        let mut stream = serve_scaling_stream(2);
        assert_eq!(stream(), SERVE_SCALING_STREAM);
        assert_eq!(
            stream(),
            SERVE_SCALING_STREAM,
            "server survives across calls"
        );
    }

    #[test]
    fn serve_microbatch_stream_serves_every_request() {
        // The bench's req/s figure is only meaningful if the stream
        // really answers all 32 requests, batched or not.
        let mut stream = serve_microbatch_stream(8);
        assert_eq!(stream(), SERVE_RESNET20_STREAM);
        assert_eq!(
            stream(),
            SERVE_RESNET20_STREAM,
            "server survives across calls"
        );
    }

    #[test]
    fn role_shapes_cover_every_role_per_product() {
        let shapes = resnet20_role_gemm_shapes(4, 16, 8);
        for role in GemmRole::ALL {
            assert_eq!(
                shapes.iter().filter(|(r, ..)| *r == role).count(),
                shapes.len() / 3,
                "{role}: one product of each role per layer"
            );
        }
        assert!(shapes.iter().all(|&(_, m, k, n)| m * k * n > 0));
        // Forward and data-gradient products of one layer share the
        // weight operand transposed: (m, k, n) vs (m, n, k).
        assert_eq!(shapes[0].2, shapes[1].3);
        assert_eq!(shapes[0].3, shapes[1].2);
    }
}
