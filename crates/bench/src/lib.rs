//! # srmac-bench: the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4), plus shared
//! infrastructure: accumulation-configuration descriptors, the training
//! experiment runner, environment-variable scale knobs and plain-text table
//! rendering.
//!
//! Scale knobs (all optional):
//!
//! | variable         | meaning                                | default |
//! |------------------|----------------------------------------|---------|
//! | `SRMAC_TRAIN`    | training samples                       | 480     |
//! | `SRMAC_TEST`     | test samples                           | 200     |
//! | `SRMAC_EPOCHS`   | epochs                                 | 12      |
//! | `SRMAC_SIZE`     | image side (ResNet experiments)        | 12      |
//! | `SRMAC_WIDTH`    | ResNet-20 base width (paper: 16)       | 4       |
//! | `SRMAC_BATCH`    | minibatch size                         | 16      |
//! | `SRMAC_LR`       | initial learning rate                  | 0.1     |
//! | `SRMAC_SEED`     | experiment seed                        | 1       |
//! | `SRMAC_VERBOSE`  | per-epoch logging when set to 1        | 0       |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod configs;
pub mod guard;
pub mod table;

use std::sync::Arc;

use srmac_models::{trainer, Dataset, TrainConfig};
use srmac_tensor::{GemmEngine, Sequential};

/// Reads a numeric environment knob.
#[must_use]
pub fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The common experiment scale, assembled from environment knobs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Training samples.
    pub train_n: usize,
    /// Test samples.
    pub test_n: usize,
    /// Epochs.
    pub epochs: usize,
    /// Image side length.
    pub size: usize,
    /// ResNet-20 base width.
    pub width: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
    /// Per-epoch logging.
    pub verbose: bool,
}

impl Scale {
    /// Loads the scale from the environment.
    #[must_use]
    pub fn from_env() -> Self {
        Self {
            train_n: env_or("SRMAC_TRAIN", 480),
            test_n: env_or("SRMAC_TEST", 200),
            epochs: env_or("SRMAC_EPOCHS", 12),
            size: env_or("SRMAC_SIZE", 12),
            width: env_or("SRMAC_WIDTH", 4),
            batch: env_or("SRMAC_BATCH", 16),
            lr: env_or("SRMAC_LR", 0.1),
            seed: env_or("SRMAC_SEED", 1),
            verbose: env_or("SRMAC_VERBOSE", 0u32) != 0,
        }
    }

    /// The training config this scale implies.
    #[must_use]
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            batch_size: self.batch,
            lr: self.lr,
            momentum: 0.9,
            weight_decay: 1e-4,
            init_loss_scale: 1024.0,
            seed: self.seed.wrapping_mul(0x9E37_79B9) + 7,
            verbose: self.verbose,
            replicas: 1,
            grad_shards: 0,
        }
    }
}

/// Trains a freshly built model on a dataset pair and returns its history.
pub fn run_training(
    build: impl FnOnce(&Arc<dyn GemmEngine>) -> Sequential,
    engine: Arc<dyn GemmEngine>,
    train_ds: &Dataset,
    test_ds: &Dataset,
    cfg: &TrainConfig,
) -> trainer::History {
    let mut model = build(&engine);
    trainer::train(&mut model, train_ds, test_ds, cfg)
}
