//! Plain-text table rendering for the experiment binaries.

/// Renders a table with a header row, a separator and aligned columns.
#[must_use]
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{c:<w$}"));
        }
        line.trim_end().to_owned()
    };
    let hdr: Vec<String> = headers.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = render(
            &["name", "value"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("long-name"));
    }
}
