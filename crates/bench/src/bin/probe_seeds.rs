//! Development probe: per-seed variance of the critical configurations at
//! the candidate table-III difficulty.

use srmac_bench::configs::AccumSetup;
use srmac_bench::{env_or, run_training};
use srmac_models::{data, resnet, TrainConfig};

fn main() {
    let profile = data::Profile {
        angle_step: 0.30,
        base_freq: 2.0,
        freq_step: 0.5,
        noise: 0.50,
        jitter: 0.10,
    };
    let train_n: usize = env_or("SRMAC_TRAIN", 480);
    let epochs: usize = env_or("SRMAC_EPOCHS", 8);
    let train_ds = data::generate(profile, train_n, 12, 1);
    let test_ds = data::generate(profile, 200, 12, 2);

    for setup in [
        AccumSetup::Fp32Baseline,
        AccumSetup::Rn {
            e: 6,
            m: 5,
            subnormals: true,
        },
        AccumSetup::Sr {
            e: 6,
            m: 5,
            r: 4,
            subnormals: true,
        },
        AccumSetup::Sr {
            e: 6,
            m: 5,
            r: 13,
            subnormals: true,
        },
    ] {
        print!("{:<28}", setup.label());
        let seeds: u64 = match setup {
            AccumSetup::Fp32Baseline => 6,
            _ => 3,
        };
        let mut accs = Vec::new();
        for seed in 0..seeds {
            let cfg = TrainConfig {
                epochs,
                batch_size: 32,
                lr: 0.1,
                seed: 1000 + seed,
                ..TrainConfig::default()
            };
            let h = run_training(
                |e| resnet::resnet20(e, 4, 10, 42 + seed),
                setup.engine(77 + seed, 2),
                &train_ds,
                &test_ds,
                &cfg,
            );
            accs.push(h.final_accuracy());
            print!(" {:.1}", h.final_accuracy());
        }
        let mean = accs.iter().sum::<f32>() / accs.len() as f32;
        println!("   mean {mean:.1}%");
    }
}
