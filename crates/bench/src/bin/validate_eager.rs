//! Reproduction of the paper's Sec. III-B validation, strengthened:
//!
//! "we also conduct brute-force testing using a vast array of 10000 input
//! pairs covering all the possible execution traces in the adder
//! architecture. For every combination of input values x and y, we employ
//! 1000 random integers and we calculate the probability of rounding
//! occurrence accurately. We verify that, for each input configuration, the
//! calculated probability aligns with the stochastic rounding definition
//! outlined in Sec. II-A."
//!
//! Here we (1) check bit-exact equality of eager and lazy for every pair and
//! every one of the 2^r random words (stronger than probability agreement),
//! (2) verify the exact up-count floor(eps * 2^r) against exact arithmetic,
//! and (3) quantify the bias of the literal "sum-bit" reading of the prose
//! (DESIGN.md §2.2) that the Exact reading avoids.

use srmac_core::{EagerCorrection, FpAdder, RoundingDesign};
use srmac_fp::{FpFormat, FpValue, RoundMode};

use srmac_rng::SplitMix64;

fn exact_scaled(fmt: FpFormat, bits: u64) -> Option<i128> {
    match fmt.decode(bits) {
        FpValue::Finite { neg, exp, sig } => {
            let v = i128::try_from(sig).unwrap() << (exp + 40);
            Some(if neg { -v } else { v })
        }
        FpValue::Zero { .. } => Some(0),
        _ => None,
    }
}

fn main() {
    let fmt = FpFormat::e6m5();
    let r = srmac_bench::env_or("SRMAC_R", 9u32);
    let pairs = srmac_bench::env_or("SRMAC_PAIRS", 10_000usize);
    let lazy = FpAdder::new(fmt, RoundingDesign::SrLazy { r });
    let eager = FpAdder::new(
        fmt,
        RoundingDesign::SrEager {
            r,
            correction: EagerCorrection::Exact,
        },
    );
    let sumbit = FpAdder::new(
        fmt,
        RoundingDesign::SrEager {
            r,
            correction: EagerCorrection::SumBit,
        },
    );

    let mut rng = SplitMix64::new(0xE5E5);
    let mut tested = 0usize;
    let mut eager_lazy_equal = 0usize;
    let mut count_exact = 0usize;
    let mut sumbit_divergent_pairs = 0usize;
    let mut sumbit_max_prob_err = 0.0f64;
    let mut paths = [0usize; 4]; // far-add, far-sub, close, special/exact

    while tested < pairs {
        let a = rng.next_u64() & fmt.bits_mask();
        let b = rng.next_u64() & fmt.bits_mask();
        let (Some(xa), Some(xb)) = (exact_scaled(fmt, a), exact_scaled(fmt, b)) else {
            continue;
        };
        tested += 1;

        // Classify the trace for coverage reporting.
        let (_, trace) = lazy.add_traced(a, b, 0);
        let pi = match trace.path {
            srmac_core::PathTaken::Far if !trace.effective_sub => 0,
            srmac_core::PathTaken::Far => 1,
            srmac_core::PathTaken::Close => 2,
            srmac_core::PathTaken::Special => 3,
        };
        paths[pi] += 1;

        // (1) per-word equality + up-counts.
        let mut ups = 0u64;
        let mut sumbit_ups = 0u64;
        let mut all_equal = true;
        let mut base = None;
        for word in 0..(1u64 << r) {
            let l = lazy.add(a, b, word);
            let e = eager.add(a, b, word);
            let s = sumbit.add(a, b, word);
            all_equal &= l == e;
            let low = *base.get_or_insert_with(|| {
                // round-toward-zero result = the "down" candidate
                srmac_fp::ops::add(fmt, a, b, RoundMode::TowardZero)
            });
            if l != low {
                ups += 1;
            }
            if s != low {
                sumbit_ups += 1;
            }
        }
        eager_lazy_equal += usize::from(all_equal);

        // (2) the exact expected up-count, straight from the SR definition:
        // T = the top r bits of the discarded tail at the exact sum's
        // rounding quantum (clamped to the subnormal quantum).
        let exact = xa + xb;
        let m = exact.unsigned_abs();
        let msb = if m == 0 {
            0
        } else {
            127 - m.leading_zeros() as i32
        };
        if m != 0 && msb >= fmt.emax() + 1 + 40 {
            // |sum| >= 2^(emax+1): every rounding overflows to infinity; the
            // random word is irrelevant. Verify exactly that.
            let inf = fmt.inf_bits(exact < 0);
            let mut all_inf = true;
            for word in 0..(1u64 << r) {
                all_inf &= eager.add(a, b, word) == inf;
            }
            if all_inf {
                count_exact += 1;
            } else {
                eprintln!("MISMATCH: {a:#x}+{b:#x}: saturating sum must overflow for every word");
            }
            continue;
        }
        let expected = if m == 0 {
            0
        } else {
            let p = fmt.precision() as i32;
            let q = (msb - (p - 1)).max(fmt.min_quantum() + 40);
            debug_assert!(q > 0, "scaled values are 2^-40-granular");
            let tail = m & ((1u128 << q) - 1);
            ((tail << r) >> q) as u64
        };
        if ups == expected {
            count_exact += 1;
        } else {
            eprintln!("MISMATCH: {a:#x}+{b:#x}: up-count {ups} vs exact {expected}");
        }

        // (3) sum-bit ablation bias.
        if sumbit_ups != ups {
            sumbit_divergent_pairs += 1;
            let err = (sumbit_ups as f64 - ups as f64).abs() / f64::from(1u32 << r);
            sumbit_max_prob_err = sumbit_max_prob_err.max(err);
        }
    }

    println!("Sec. III-B validation — E6M5, r = {r}, {tested} input pairs x ALL 2^{r} words");
    println!(
        "  trace coverage: far-add {}, far-sub {}, close {}, special/trivial {}",
        paths[0], paths[1], paths[2], paths[3]
    );
    println!("  eager(Exact) == lazy per-word:            {eager_lazy_equal}/{tested} pairs");
    println!("  up-count == floor(eps*2^r) exactly:       {count_exact}/{tested} pairs");
    println!(
        "  SumBit (literal prose) divergent pairs:   {sumbit_divergent_pairs}/{tested}, max probability error {:.4}",
        sumbit_max_prob_err
    );
    println!("\npaper: \"the calculated probability aligns with the stochastic rounding");
    println!("definition\" — reproduced (and strengthened to exact per-word equality)");
    println!("for the Exact reading; the literal sum-bit reading shows measurable bias,");
    println!("supporting the reconstruction in DESIGN.md §2.2.");

    assert_eq!(
        eager_lazy_equal, tested,
        "eager(Exact) must equal lazy everywhere"
    );
    assert_eq!(
        count_exact, tested,
        "up-counts must match the SR definition exactly"
    );
}
