//! The swamping/stagnation microbenchmark behind the paper's motivation
//! (Sec. II: SR "is particularly effective against stagnation, a frequent
//! occurrence when computing the sum of a large number of terms with small
//! magnitude and a large forward error is produced").
//!
//! Accumulates N small uniform terms into an E6M5 accumulator with RN and
//! with SR at several r, and reports the relative forward error against the
//! exact sum — the pure-numerics shape underlying Table III: RN stagnates
//! once the running sum dwarfs the addend; SR with enough random bits stays
//! unbiased; SR with tiny r truncates sub-2^-r-ULP increments and collapses
//! hardest of all.

use srmac_bench::table;
use srmac_core::{EagerCorrection, MacConfig, MacUnit, RoundingDesign};
use srmac_rng::SplitMix64;

fn run(design: RoundingDesign, n: usize, seed: u64) -> f64 {
    let mut mac = MacUnit::new(MacConfig::fp8_fp12(design, true).with_seed(seed)).unwrap();
    let mut rng = SplitMix64::new(seed ^ 0xABCD);
    let mut exact = 0.0f64;
    let fp8 = mac.config().mul_fmt;
    for _ in 0..n {
        // Small positive terms in [0.25, 0.75), exactly representable-ish in
        // FP8 after RN quantization; track the exact sum of the quantized
        // values so the only error source is accumulation.
        let x = 0.25 + rng.next_f64() * 0.5;
        let q = fp8.quantize_f64(x, srmac_fp::RoundMode::NearestEven).bits;
        let xq = fp8.decode_f64(q);
        let one = fp8.quantize_f64(1.0, srmac_fp::RoundMode::NearestEven).bits;
        mac.mac(q, one);
        exact += xq;
    }
    (mac.acc_f64() - exact).abs() / exact
}

fn main() {
    let trials = srmac_bench::env_or("SRMAC_TRIALS", 8u64);
    let designs: Vec<(String, RoundingDesign)> = vec![
        ("RN".into(), RoundingDesign::Nearest),
        (
            "SR r=4".into(),
            RoundingDesign::SrEager {
                r: 4,
                correction: EagerCorrection::Exact,
            },
        ),
        (
            "SR r=9".into(),
            RoundingDesign::SrEager {
                r: 9,
                correction: EagerCorrection::Exact,
            },
        ),
        (
            "SR r=13".into(),
            RoundingDesign::SrEager {
                r: 13,
                correction: EagerCorrection::Exact,
            },
        ),
    ];
    let lens = [64usize, 256, 1024, 4096, 16384];

    let mut rows = Vec::new();
    for (label, design) in &designs {
        let mut row = vec![label.clone()];
        for &n in &lens {
            let mut err = 0.0;
            for t in 0..trials {
                err += run(*design, n, 100 + t);
            }
            row.push(format!("{:.4}", err / trials as f64));
        }
        rows.push(row);
    }
    println!(
        "Stagnation microbenchmark — mean relative forward error of sum(x_i), E6M5 accumulator"
    );
    println!(
        "(terms ~U[0.25,0.75); error vs exact sum of the FP8-quantized terms; {trials} trials)\n"
    );
    let mut headers = vec!["design"];
    let len_labels: Vec<String> = lens.iter().map(|n| format!("N={n}")).collect();
    headers.extend(len_labels.iter().map(String::as_str));
    println!("{}", table::render(&headers, &rows));
    println!("expected shape: RN error grows with N (stagnation: the sum stops once");
    println!("ULP(sum) exceeds the terms); SR r>=9 stays small and roughly flat; SR r=4");
    println!("saturates hardest (increments below 2^-4 ULP are silently truncated).");
}
